"""Exception hierarchy for the :mod:`repro` package.

Every error deliberately raised by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError`` from NumPy, ``KeyboardInterrupt``
and friends).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "RankError",
    "ConvergenceError",
    "DatasetError",
    "NotFittedError",
    "BackendError",
    "StoreError",
    "StoreFormatError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong number of dimensions or extent.

    Raised eagerly at API boundaries so that shape mistakes surface with a
    message naming the offending argument instead of a NumPy broadcasting
    error deep inside a TTM chain.
    """


class RankError(ReproError, ValueError):
    """A requested Tucker rank is invalid for the given tensor.

    A rank is invalid when it is not a positive integer or when it exceeds
    the dimensionality of its mode (Tucker factors are column-orthonormal,
    so ``J_n <= I_n`` is required).
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to make progress.

    Only raised for genuinely pathological situations (e.g. non-finite fit
    values caused by a non-finite input tensor); simply hitting the sweep
    budget is *not* an error — the solver returns its best result and flags
    ``converged=False``.
    """


class DatasetError(ReproError, ValueError):
    """A dataset generator received unusable parameters or an unknown name."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring a completed ``fit`` was called too early."""


class BackendError(ReproError, ValueError):
    """An execution-backend spec is invalid.

    Raised when a ``backend=`` argument (or the ``REPRO_BACKEND`` /
    ``REPRO_WORKERS`` environment override) names no registered backend or
    carries an unusable worker configuration.
    """


class StoreError(ReproError, ValueError):
    """A persistent model store cannot satisfy the request.

    Raised for usage errors against an otherwise well-formed store: a
    query outside the stored extent, an append onto a store whose layout
    forbids it, or an attempt to overwrite an existing store without
    ``overwrite=True``.
    """


class StoreFormatError(StoreError, ShapeError):
    """An on-disk artifact is corrupt, foreign, or from an unknown version.

    Raised when an ``.npz`` archive, payload directory, or store manifest
    is missing required keys, carries an unexpected ``format`` tag, or
    cannot be parsed at all.  Subclasses :class:`ShapeError` so historical
    callers catching that type on ``load_slice_svd``/``load_tucker`` keep
    working.
    """
