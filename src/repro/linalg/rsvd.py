"""Randomized SVD (Halko, Martinsson & Tropp 2011) — single and batched.

The approximation phase of D-Tucker runs one truncated SVD per slice matrix.
Because all slices share a shape, the whole phase vectorizes into *batched*
range finding and *batched* small SVDs (:func:`batched_rsvd`): one Gaussian
test matrix is shared across slices and every matmul/QR/SVD runs on an
``(L, I1, I2)`` stack in a handful of BLAS calls, which is dramatically
faster in NumPy than a Python loop over ``L`` slices.

Sharing the test matrix across slices does not change the per-slice error
analysis — the Halko bound conditions only on the Gaussian matrix being
independent of the *input*, which it is for every slice.  (It does correlate
errors *across* slices; the A2 ablation benchmark measures the end-to-end
effect and finds it negligible.)
"""

from __future__ import annotations

import numpy as np

from ..engine.array_api import array_module_of
from ..exceptions import RankError
from ..tensor.random import default_rng
from ..validation import check_matrix, check_positive_int
from .svd import sign_fix

__all__ = [
    "rsvd",
    "batched_rsvd",
    "batched_svd_via_gram",
    "randomized_range_finder",
]


def _as_compute_stack(stack: np.ndarray) -> np.ndarray:
    """Coerce a slice stack to a supported compute dtype.

    float32 inputs are kept in float32 (the reduced-precision compression
    path); everything else is coerced to float64, exactly as the historical
    ``dtype=float`` coercion did.  Non-NumPy stacks keep their namespace.
    """
    am = array_module_of(stack)
    if not am.is_numpy:
        if am.np_dtype(stack) != np.float32:
            stack = am.astype(stack, np.float64)
        return stack
    a = np.asarray(stack)
    if a.dtype != np.float32:
        a = np.asarray(a, dtype=np.float64)
    return a


def _batched_sign_fix(u: np.ndarray, vt: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic sign per (batch, component): largest |u| entry positive."""
    am = array_module_of(u, vt)
    if am.is_numpy:
        r = u.shape[2]
        idx = np.argmax(np.abs(u), axis=1)  # (L, r)
        batch = np.arange(u.shape[0])[:, None]
        comp = np.arange(r)[None, :]
        signs = np.sign(u[batch, idx, comp])
        signs[signs == 0] = 1.0
        return u * signs[:, None, :], vt * signs[:, :, None]
    length, m, r = (int(d) for d in u.shape)
    idx = am.argmax(am.abs(u), axis=1)  # (L, r)
    # Flat-gather u[l, idx[l, j], j]: positions in the row-major flattening.
    pos = (am.arange(length)[:, None] * m + idx) * r + am.arange(r)[None, :]
    vals = am.take_flat(u, am.xp.reshape(pos, (-1,)))
    signs = am.sign(am.xp.reshape(vals, (length, r)))
    one = am.asarray(1.0, dtype=am.np_dtype(u))
    signs = am.where(signs == 0, one, signs)
    return u * signs[:, None, :], vt * signs[:, :, None]


def randomized_range_finder(
    matrix: np.ndarray,
    size: int,
    *,
    power_iterations: int = 1,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Orthonormal basis approximating the range of ``matrix``.

    Parameters
    ----------
    matrix:
        Input of shape ``(m, n)``.
    size:
        Number of basis vectors (rank + oversampling), ``<= min(m, n)``.
    power_iterations:
        Number of subspace (power) iterations; each costs two extra passes
        but sharpens the spectrum for slowly decaying singular values.
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Matrix ``Q`` of shape ``(m, size)`` with orthonormal columns.
    """
    a = check_matrix(matrix, name="matrix")
    k = check_positive_int(size, name="size")
    if k > min(int(d) for d in a.shape):
        raise RankError(
            f"size {k} exceeds min(matrix shape) {min(int(d) for d in a.shape)}"
        )
    gen = default_rng(rng)
    am = array_module_of(a)
    if am.is_numpy:
        omega = gen.standard_normal((a.shape[1], k))
        y = a @ omega
        q, _ = np.linalg.qr(y)
        for _ in range(max(0, int(power_iterations))):
            # QR after each half-pass for numerical stability of the power scheme.
            z, _ = np.linalg.qr(a.T @ q)
            q, _ = np.linalg.qr(a @ z)
        return q
    omega = am.standard_normal((int(a.shape[1]), k), np.float64, gen)
    omega = am.astype(omega, am.np_dtype(a))
    q, _ = am.qr(am.matmul(a, omega))
    for _ in range(max(0, int(power_iterations))):
        z, _ = am.qr(am.matmul(am.mT(a), q))
        q, _ = am.qr(am.matmul(a, z))
    return q


def rsvd(
    matrix: np.ndarray,
    rank: int,
    *,
    oversampling: int = 10,
    power_iterations: int = 1,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD ``matrix ≈ U @ diag(s) @ Vt``.

    Parameters
    ----------
    matrix:
        Input of shape ``(m, n)``.
    rank:
        Target rank ``r``.
    oversampling:
        Extra test vectors beyond ``rank`` (clipped so that
        ``rank + oversampling <= min(m, n)``).
    power_iterations:
        Subspace iterations for the range finder.
    rng:
        Seed or generator.

    Returns
    -------
    tuple
        ``(U, s, Vt)`` of shapes ``(m, r)``, ``(r,)``, ``(r, n)``.
    """
    a = check_matrix(matrix, name="matrix")
    r = check_positive_int(rank, name="rank")
    short = min(int(d) for d in a.shape)
    if r > short:
        raise RankError(f"rank {r} exceeds min(matrix shape) {short}")
    k = min(r + max(0, int(oversampling)), short)
    q = randomized_range_finder(
        a, k, power_iterations=power_iterations, rng=rng
    )
    am = array_module_of(a)
    if am.is_numpy:
        b = q.T @ a
        ub, s, vt = np.linalg.svd(b, full_matrices=False)
        u = q @ ub[:, :r]
    else:
        b = am.matmul(am.mT(q), a)
        ub, s, vt = am.svd(b, full_matrices=False)
        u = am.matmul(q, ub[:, :r])
    u, vt_fixed = sign_fix(u, vt[:r])
    assert vt_fixed is not None
    return u, s[:r], vt_fixed


def batched_rsvd(
    stack: np.ndarray,
    rank: int,
    *,
    oversampling: int = 10,
    power_iterations: int = 1,
    rng: int | np.random.Generator | None = None,
    test_matrix: np.ndarray | None = None,
    sketch: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD of every matrix in a ``(L, m, n)`` stack.

    One Gaussian test matrix is shared by all ``L`` inputs so the whole
    computation runs as batched BLAS (see the module docstring for why this
    is statistically sound).

    Parameters
    ----------
    stack:
        Array of shape ``(L, m, n)``: ``L`` matrices to factor.  float32
        stacks are factored in float32; anything else in float64.
    rank:
        Target rank, identical for every matrix.
    oversampling, power_iterations, rng:
        As in :func:`rsvd`.
    test_matrix:
        Pre-drawn Gaussian test matrix of shape ``(n, rank + oversampling)``
        (clipped to ``min(m, n)`` columns).  The execution engine draws it
        once and hands the *same* matrix to every slice chunk, so chunked
        parallel runs factor exactly the same sketch as a single batched
        call.  When given, ``rng`` is ignored.
    sketch:
        Precomputed range sketch ``Y = stack @ Ω`` of shape
        ``(L, m, size)``.  The compression planner applies one test matrix
        to a whole slice slab with a single stacked GEMM and hands each
        chunk its rows, skipping the per-chunk sketch product here.  The
        values are identical either way (batched matmul factors one GEMM
        per matrix); when given, ``test_matrix`` and ``rng`` are ignored.

    Returns
    -------
    tuple
        ``(U, s, Vt)`` of shapes ``(L, m, r)``, ``(L, r)``, ``(L, r, n)``.
    """
    a = _as_compute_stack(stack)
    if a.ndim != 3:
        raise RankError(f"stack must be 3-D (L, m, n), got shape {tuple(a.shape)}")
    am = array_module_of(a)
    if not am.is_numpy:
        return _batched_rsvd_generic(
            am,
            a,
            rank,
            oversampling=oversampling,
            power_iterations=power_iterations,
            rng=rng,
            test_matrix=test_matrix,
            sketch=sketch,
        )
    # Batched BLAS on a strided view is several times slower than on a
    # contiguous buffer; one upfront copy pays for itself immediately.
    a = np.ascontiguousarray(a)
    _, m, n = a.shape
    r = check_positive_int(rank, name="rank")
    if r > min(m, n):
        raise RankError(f"rank {r} exceeds min(m, n) = {min(m, n)}")
    k = min(r + max(0, int(oversampling)), min(m, n))
    if sketch is not None:
        y = np.asarray(sketch, dtype=a.dtype)
        if y.ndim != 3 or y.shape[:2] != a.shape[:2]:
            raise RankError(
                f"sketch must have shape ({a.shape[0]}, {m}, size), got {y.shape}"
            )
        k = y.shape[2]
        if k > min(m, n):
            raise RankError(
                f"sketch has {k} columns, exceeding min(m, n) = {min(m, n)}"
            )
    else:
        if test_matrix is not None:
            omega = np.asarray(test_matrix, dtype=a.dtype)
            if omega.ndim != 2 or omega.shape[0] != n:
                raise RankError(
                    f"test_matrix must have shape ({n}, size), got {omega.shape}"
                )
            k = omega.shape[1]
            if k > min(m, n):
                raise RankError(
                    f"test_matrix has {k} columns, exceeding min(m, n) = {min(m, n)}"
                )
        else:
            gen = default_rng(rng)
            omega = gen.standard_normal((n, k)).astype(a.dtype, copy=False)
        y = a @ omega  # (L, m, k)
    q, _ = np.linalg.qr(y)
    for _ in range(max(0, int(power_iterations))):
        z, _ = np.linalg.qr(np.swapaxes(a, 1, 2) @ q)
        q, _ = np.linalg.qr(a @ z)
    b = np.swapaxes(q, 1, 2) @ a  # (L, k, n)
    ub, s, vt = np.linalg.svd(b, full_matrices=False)
    u = q @ ub[:, :, :r]  # (L, m, r)
    u, vt = _batched_sign_fix(u, vt[:, :r, :])
    return u, s[:, :r], vt


def _batched_rsvd_generic(
    am,
    a,
    rank: int,
    *,
    oversampling: int,
    power_iterations: int,
    rng,
    test_matrix,
    sketch,
):
    """Namespace-generic body of :func:`batched_rsvd` (same math, facade ops)."""
    a = am.ascontiguousarray(a)
    _, m, n = (int(d) for d in a.shape)
    dtype = am.np_dtype(a)
    r = check_positive_int(rank, name="rank")
    if r > min(m, n):
        raise RankError(f"rank {r} exceeds min(m, n) = {min(m, n)}")
    k = min(r + max(0, int(oversampling)), min(m, n))
    if sketch is not None:
        y = am.astype(am.asarray(sketch), dtype)
        if y.ndim != 3 or tuple(int(d) for d in y.shape[:2]) != tuple(
            int(d) for d in a.shape[:2]
        ):
            raise RankError(
                f"sketch must have shape ({int(a.shape[0])}, {m}, size), "
                f"got {tuple(y.shape)}"
            )
        k = int(y.shape[2])
        if k > min(m, n):
            raise RankError(
                f"sketch has {k} columns, exceeding min(m, n) = {min(m, n)}"
            )
    else:
        if test_matrix is not None:
            omega = am.astype(am.asarray(test_matrix), dtype)
            if omega.ndim != 2 or int(omega.shape[0]) != n:
                raise RankError(
                    f"test_matrix must have shape ({n}, size), got {tuple(omega.shape)}"
                )
            k = int(omega.shape[1])
            if k > min(m, n):
                raise RankError(
                    f"test_matrix has {k} columns, exceeding min(m, n) = {min(m, n)}"
                )
        else:
            gen = default_rng(rng)
            omega = am.astype(am.standard_normal((n, k), np.float64, gen), dtype)
        y = am.matmul(a, omega)  # (L, m, k)
    q, _ = am.qr(y)
    for _ in range(max(0, int(power_iterations))):
        z, _ = am.qr(am.matmul(am.mT(a), q))
        q, _ = am.qr(am.matmul(a, z))
    b = am.matmul(am.mT(q), a)  # (L, k, n)
    ub, s, vt = am.svd(b, full_matrices=False)
    u = am.matmul(q, ub[:, :, :r])  # (L, m, r)
    u, vt = _batched_sign_fix(u, vt[:, :r, :])
    return u, s[:, :r], vt


def batched_svd_via_gram(
    stack: np.ndarray, rank: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD of every matrix in a stack via the small-side Gram matrix.

    For slices with one short side ``q = min(m, n)``, the eigendecomposition
    of the ``q × q`` Gram matrix is far cheaper than either a full batched
    SVD or a randomized one with comparable rank, and it is exact up to the
    Gram conditioning (singular values below ``~sqrt(eps)·s_max`` lose
    accuracy — harmless for truncation, where only leading components are
    kept).  :func:`repro.core.slice_svd.compress` selects this path
    automatically when the short side is small enough.

    Slices whose Gram matrix turns out near rank-deficient (a retained
    singular value at or below ``sqrt(eps) · s_max``, or any non-finite
    factor entry) are recomputed with a direct :func:`numpy.linalg.svd`
    instead of propagating the ill-conditioned Gram factors.

    Parameters
    ----------
    stack:
        Array of shape ``(L, m, n)``.  float32 stacks are factored in
        float32; anything else in float64.
    rank:
        Target rank ``r <= min(m, n)``.

    Returns
    -------
    tuple
        ``(U, s, Vt)`` of shapes ``(L, m, r)``, ``(L, r)``, ``(L, r, n)``.
    """
    a = _as_compute_stack(stack)
    if a.ndim != 3:
        raise RankError(f"stack must be 3-D (L, m, n), got shape {tuple(a.shape)}")
    am = array_module_of(a)
    if not am.is_numpy:
        return _batched_svd_via_gram_generic(am, a, rank)
    a = np.ascontiguousarray(a)
    _, m, n = a.shape
    r = check_positive_int(rank, name="rank")
    if r > min(m, n):
        raise RankError(f"rank {r} exceeds min(m, n) = {min(m, n)}")
    # Inversion floor: relative part guards the divide when trailing retained
    # singular values vanish; the absolute part only protects the all-zero
    # slice.  The float64 constants are the historical ones (bit-identity).
    if a.dtype == np.float32:
        rel_floor, abs_floor = float(np.finfo(np.float32).eps), 1e-30
    else:
        rel_floor, abs_floor = 1e-12, 1e-300
    at = np.swapaxes(a, 1, 2)
    if n <= m:
        g = at @ a  # (L, n, n)
        w, vecs = np.linalg.eigh(g)
        s = np.sqrt(np.clip(w[:, ::-1][:, :r], 0.0, None))  # (L, r), descending
        v = vecs[:, :, ::-1][:, :, :r]  # (L, n, r)
        floor = np.maximum(s[:, :1] * rel_floor, abs_floor)
        u = a @ (v / np.maximum(s, floor)[:, None, :])
        vt = np.swapaxes(v, 1, 2)
    else:
        g = a @ at  # (L, m, m)
        w, vecs = np.linalg.eigh(g)
        s = np.sqrt(np.clip(w[:, ::-1][:, :r], 0.0, None))
        u = vecs[:, :, ::-1][:, :, :r]  # (L, m, r)
        floor = np.maximum(s[:, :1] * rel_floor, abs_floor)
        vt = np.swapaxes(u / np.maximum(s, floor)[:, None, :], 1, 2) @ a
    u, vt = _batched_sign_fix(u, vt)
    # Numerical guard: squaring the condition number in the Gram matrix makes
    # components with s <= ~sqrt(eps)·s_max meaningless (and a rank-deficient
    # slice divides by the floor, yielding garbage or non-finite columns).
    # Recompute exactly those slices with a direct SVD.
    tiny = np.sqrt(np.finfo(a.dtype).eps)
    bad = (
        ~np.isfinite(u).all(axis=(1, 2))
        | ~np.isfinite(vt).all(axis=(1, 2))
        | (s[:, -1] <= tiny * s[:, 0])
    )
    if np.any(bad):
        for idx in np.flatnonzero(bad):
            ud, sd, vtd = np.linalg.svd(a[idx], full_matrices=False)
            ud, vtd_fixed = sign_fix(ud[:, :r], vtd[:r])
            assert vtd_fixed is not None
            u[idx], s[idx], vt[idx] = ud, sd[:r], vtd_fixed
    return u, s, vt


def _batched_svd_via_gram_generic(am, a, rank: int):
    """Namespace-generic body of :func:`batched_svd_via_gram`."""
    a = am.ascontiguousarray(a)
    _, m, n = (int(d) for d in a.shape)
    dtype = am.np_dtype(a)
    r = check_positive_int(rank, name="rank")
    if r > min(m, n):
        raise RankError(f"rank {r} exceeds min(m, n) = {min(m, n)}")
    if dtype == np.float32:
        rel_floor, abs_floor = float(np.finfo(np.float32).eps), 1e-30
    else:
        rel_floor, abs_floor = 1e-12, 1e-300
    at = am.mT(a)
    zero = am.asarray(0.0, dtype=dtype)
    abs_floor_arr = am.asarray(abs_floor, dtype=dtype)
    if n <= m:
        g = am.matmul(at, a)  # (L, n, n)
        w, vecs = am.eigh(g)
        s = am.sqrt(am.xp.maximum(am.flip(w, axis=1)[:, :r], zero))
        v = am.flip(vecs, axis=2)[:, :, :r]  # (L, n, r)
        floor = am.xp.maximum(s[:, :1] * rel_floor, abs_floor_arr)
        u = am.matmul(a, v / am.xp.maximum(s, floor)[:, None, :])
        vt = am.mT(v)
    else:
        g = am.matmul(a, at)  # (L, m, m)
        w, vecs = am.eigh(g)
        s = am.sqrt(am.xp.maximum(am.flip(w, axis=1)[:, :r], zero))
        u = am.flip(vecs, axis=2)[:, :, :r]  # (L, m, r)
        floor = am.xp.maximum(s[:, :1] * rel_floor, abs_floor_arr)
        vt = am.matmul(am.mT(u / am.xp.maximum(s, floor)[:, None, :]), a)
    u, vt = _batched_sign_fix(u, vt)
    tiny = float(np.sqrt(np.finfo(dtype).eps))
    # Host-side triage of ill-conditioned slices (tiny boolean vector).
    u_ok = np.isfinite(am.from_device(u)).all(axis=(1, 2))
    vt_ok = np.isfinite(am.from_device(vt)).all(axis=(1, 2))
    s_host = am.from_device(s)
    bad = ~u_ok | ~vt_ok | (s_host[:, -1] <= tiny * s_host[:, 0])
    if np.any(bad):
        for idx in np.flatnonzero(bad):
            ud, sd, vtd = am.svd(a[int(idx)], full_matrices=False)
            ud, vtd_fixed = sign_fix(ud[:, :r], vtd[:r])
            assert vtd_fixed is not None
            u[int(idx)], s[int(idx)], vt[int(idx)] = ud, sd[:r], vtd_fixed
    return u, s, vt
