"""CountSketch and TensorSketch operators.

These power the Tucker-ts / Tucker-ttmts baselines (Malik & Becker,
*Low-Rank Tucker Decomposition of Large Tensors Using TensorSketch*,
NeurIPS 2018).  A :class:`CountSketch` maps ``R^n → R^m`` with a random hash
``h`` and signs ``s``:  ``(Sx)_j = Σ_{i : h(i)=j} s_i x_i``.  A
:class:`TensorSketch` composes one CountSketch per Kronecker factor so that

.. math:: S(x_1 ⊗ x_2 ⊗ … ⊗ x_p)

can be computed from the *small* per-factor sketches via circular
convolution (FFT), never materialising the Kronecker product.

Ordering convention
-------------------
``TensorSketch(dims)`` sketches vectors indexed in left-to-right Kronecker
order over ``dims`` — the *first* dimension varies slowest, exactly like
:func:`repro.tensor.products.kron_all`.  To sketch the rows of an unfolding
transpose ``X_(n)ᵀ`` (Fortran order over the secondary modes, lowest mode
fastest), pass the secondary dims in *descending* mode order, matching
:func:`repro.tensor.products.kron_secondary`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

from ..exceptions import ShapeError
from ..tensor.random import default_rng
from ..validation import check_positive_int

__all__ = ["CountSketch", "TensorSketch"]


def _to_host(x):
    """Pull a non-NumPy array back to the host (sparse ops are CPU-only)."""
    if type(x) is np.ndarray:
        return x
    from ..engine.array_api import array_module_of

    am = array_module_of(x)
    return x if am.is_numpy else am.from_device(x)


class CountSketch:
    """A CountSketch operator ``S : R^dim_in → R^dim_out``.

    Parameters
    ----------
    dim_in:
        Input dimensionality ``n``.
    dim_out:
        Sketch dimensionality ``m``.
    rng:
        Seed or generator.

    Attributes
    ----------
    hashes:
        Bucket assignment ``h ∈ [0, m)^n``.
    signs:
        Rademacher signs ``s ∈ {±1}^n``.
    """

    def __init__(
        self,
        dim_in: int,
        dim_out: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.dim_in = check_positive_int(dim_in, name="dim_in")
        self.dim_out = check_positive_int(dim_out, name="dim_out")
        gen = default_rng(rng)
        self.hashes = gen.integers(0, self.dim_out, size=self.dim_in)
        self.signs = gen.choice(np.array([-1.0, 1.0]), size=self.dim_in)
        self._operator: sparse.csr_matrix | None = None

    @property
    def operator(self) -> sparse.csr_matrix:
        """The sketch as a sparse ``(dim_out, dim_in)`` matrix (cached)."""
        if self._operator is None:
            self._operator = sparse.csr_matrix(
                (self.signs, (self.hashes, np.arange(self.dim_in))),
                shape=(self.dim_out, self.dim_in),
            )
        return self._operator

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Sketch a vector ``(n,)`` or the columns of a matrix ``(n, k)``.

        CountSketch is a scipy.sparse operator and therefore host-only;
        arrays from other namespaces are pulled back to NumPy first.
        """
        arr = np.asarray(_to_host(x), dtype=float)
        if arr.shape[0] != self.dim_in:
            raise ShapeError(
                f"input has leading dimension {arr.shape[0]}, expected {self.dim_in}"
            )
        return self.operator @ arr

    def to_dense(self) -> np.ndarray:
        """Dense ``(dim_out, dim_in)`` sketch matrix — for tests only."""
        return self.operator.toarray()


class TensorSketch:
    """TensorSketch over ``R^{d_1} ⊗ … ⊗ R^{d_p}`` to ``R^dim_out``.

    Parameters
    ----------
    dims:
        Kronecker factor dimensionalities, *first slowest* (see module
        docstring for how to order them against a tensor unfolding).
    dim_out:
        Sketch dimensionality ``m``.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        dims: Sequence[int],
        dim_out: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if not dims:
            raise ShapeError("TensorSketch needs at least one factor dimension")
        self.dims = tuple(check_positive_int(d, name="dims[i]") for d in dims)
        self.dim_out = check_positive_int(dim_out, name="dim_out")
        gen = default_rng(rng)
        self.sketches = [CountSketch(d, self.dim_out, gen) for d in self.dims]
        self._composite: sparse.csr_matrix | None = None

    @property
    def dim_in(self) -> int:
        """Total input dimensionality ``prod(dims)``."""
        return int(np.prod(self.dims, dtype=np.int64))

    def _composite_hash_and_sign(self) -> tuple[np.ndarray, np.ndarray]:
        """Composite ``h(i) = Σ_k h_k(i_k) mod m`` and ``s(i) = Π_k s_k(i_k)``.

        Built by broadcasting over the factor index grids in C order, which
        matches the left-to-right (first-slowest) Kronecker convention.
        """
        h = np.zeros((1,), dtype=np.int64)
        s = np.ones((1,), dtype=float)
        for cs in self.sketches:
            h = (h[:, None] + cs.hashes[None, :]).reshape(-1)
            s = (s[:, None] * cs.signs[None, :]).reshape(-1)
        return h % self.dim_out, s

    @property
    def operator(self) -> sparse.csr_matrix:
        """The equivalent flat CountSketch as a sparse matrix (cached).

        Materialises arrays of length ``prod(dims)`` — the same order of
        memory as the data being sketched, which is acceptable at library
        scale but should not be used for astronomically large products.
        """
        if self._composite is None:
            h, s = self._composite_hash_and_sign()
            self._composite = sparse.csr_matrix(
                (s, (h, np.arange(self.dim_in))),
                shape=(self.dim_out, self.dim_in),
            )
        return self._composite

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Sketch a flat vector ``(prod dims,)`` or matrix ``(prod dims, k)``."""
        arr = np.asarray(_to_host(x), dtype=float)
        if arr.shape[0] != self.dim_in:
            raise ShapeError(
                f"input has leading dimension {arr.shape[0]}, expected {self.dim_in}"
            )
        return self.operator @ arr

    def sketch_kron(self, matrices: Sequence[np.ndarray]) -> np.ndarray:
        """Compute ``S(kron(matrices))`` without forming the Kronecker product.

        Parameters
        ----------
        matrices:
            One matrix per factor, ``matrices[k].shape == (dims[k], r_k)``,
            in the same (first-slowest) order as ``dims``.

        Returns
        -------
        numpy.ndarray
            ``(dim_out, prod r_k)`` equal (up to round-off) to
            ``self.apply(kron_all(matrices))``.

        Notes
        -----
        Per column combination the identity is the classic FFT trick:
        ``S(a_1 ⊗ … ⊗ a_p) = ifft( Π_k fft(C_k a_k) )`` where the product is
        elementwise (circular convolution of the per-factor count sketches).
        All column combinations are produced at once by an einsum cascade.
        """
        if len(matrices) != len(self.dims):
            raise ShapeError(
                f"expected {len(self.dims)} matrices, got {len(matrices)}"
            )
        ffts = []
        for cs, mat in zip(self.sketches, matrices):
            a = np.asarray(mat, dtype=float)
            if a.ndim != 2 or a.shape[0] != cs.dim_in:
                raise ShapeError(
                    f"matrix of shape {a.shape} does not match factor dim {cs.dim_in}"
                )
            ffts.append(np.fft.rfft(cs.apply(a), n=self.dim_out, axis=0))
        # Combine column indices in C order (first factor slowest), matching
        # the kron_all convention.
        prod = ffts[0]  # (m_f, r_1)
        for f in ffts[1:]:
            prod = np.einsum("mi,mj->mij", prod, f).reshape(prod.shape[0], -1)
        return np.fft.irfft(prod, n=self.dim_out, axis=0)
