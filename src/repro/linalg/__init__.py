"""Randomized and deterministic linear algebra built on NumPy/SciPy.

Contents: truncated SVD with a deterministic sign convention, economy QR,
Halko randomized SVD (single and batched over slice stacks), and
CountSketch/TensorSketch operators for the sketching baselines.
"""

from .frequent_directions import FrequentDirections
from .qr import economy_qr, orthonormalize
from .rsvd import batched_rsvd, batched_svd_via_gram, randomized_range_finder, rsvd
from .sketch import CountSketch, TensorSketch
from .svd import (
    leading_left_singular_vectors,
    sign_fix,
    solve_gram,
    truncated_svd,
)

__all__ = [
    "FrequentDirections",
    "economy_qr",
    "orthonormalize",
    "batched_rsvd",
    "batched_svd_via_gram",
    "randomized_range_finder",
    "rsvd",
    "CountSketch",
    "TensorSketch",
    "leading_left_singular_vectors",
    "sign_fix",
    "solve_gram",
    "truncated_svd",
]
