"""QR-based orthonormalization helpers.

ALS sweeps repeatedly re-orthonormalize factor matrices; these helpers make
that a one-liner with a deterministic sign convention (positive diagonal of
``R``) and a safe fallback for rank-deficient inputs.
"""

from __future__ import annotations

import numpy as np

from ..engine.array_api import array_module_of
from ..validation import check_matrix

__all__ = ["economy_qr", "orthonormalize"]


def economy_qr(matrix):
    """Economy QR with the sign convention ``diag(R) >= 0``.

    Returns
    -------
    tuple
        ``(Q, R)`` with ``Q`` of shape ``(m, min(m, n))`` column-orthonormal
        and ``Q @ R == matrix`` up to round-off.
    """
    a = check_matrix(matrix, name="matrix")
    am = array_module_of(a)
    if am.is_numpy:
        q, r = np.linalg.qr(a)
        signs = np.sign(np.diagonal(r)).copy()
        signs[signs == 0] = 1.0
        return q * signs, r * signs[:, None]
    q, r = am.qr(a)
    signs = am.sign(am.diagonal(r))
    one = am.asarray(1.0, dtype=am.np_dtype(r))
    signs = am.where(signs == 0, one, signs)
    return q * signs, r * signs[:, None]


def orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Return an orthonormal basis for the column space of ``matrix``.

    For numerically rank-deficient inputs the QR basis can contain junk
    directions; callers that need a *spanning* basis should prefer
    :func:`repro.linalg.svd.leading_left_singular_vectors`.  This helper is
    the cheap option used inside ALS sweeps where inputs are well conditioned.
    """
    return economy_qr(matrix)[0]
