"""Frequent-directions matrix sketching for streaming factor refreshes.

:class:`FrequentDirections` (Liberty, KDD 2013; Ghashami et al., SICOMP
2016) maintains a small sketch ``B ∈ R^{ℓ×d}`` of a row stream
``A ∈ R^{n×d}`` such that ``0 ⪯ AᵀA − BᵀB ⪯ (‖A‖_F²/ℓ)·I`` — the best
covariance guarantee any row-update sketch of that size can give.  The
streaming D-Tucker solver feeds it the scaled slice bases ``U_l diag(s_l)``
(columns as rows) so the non-temporal factor refresh

.. math:: A^{(1)} = \\text{top-}J_1\\text{ left singular vectors of } Bᵀ

costs ``O(I_1 ℓ²)`` per update instead of an SVD over the full ``K·L``
column stack the batch initializer uses — the sketch *is* a bounded stand-in
for :func:`repro.core.initialization.initialize`'s scaled block matrix.

The sketch is deterministic (no randomness), supports exponential decay by
scaling the resident rows before each insert batch, and serialises to plain
arrays so a streaming service can resume from disk.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..validation import check_positive_int

__all__ = ["FrequentDirections"]


class FrequentDirections:
    """A frequent-directions sketch of a stream of rows in ``R^dim``.

    Parameters
    ----------
    dim:
        Row dimensionality ``d`` of the stream.
    sketch_size:
        Number of retained directions ``ℓ``.  The working buffer holds
        ``2ℓ`` rows and is shrunk back to ``ℓ`` by one thin SVD whenever it
        fills, so amortised cost per inserted row is ``O(d·ℓ)``.

    Attributes
    ----------
    dim, sketch_size:
        The constructor geometry.
    n_inserted:
        Total rows ever inserted (monotone; unaffected by decay).
    n_shrinks:
        Thin SVDs performed so far (the amortised work counter).
    """

    def __init__(self, dim: int, sketch_size: int) -> None:
        self.dim = check_positive_int(dim, name="dim")
        self.sketch_size = check_positive_int(sketch_size, name="sketch_size")
        self._buffer = np.zeros((2 * self.sketch_size, self.dim))
        self._filled = 0
        self.n_inserted = 0
        self.n_shrinks = 0

    # -- updates -----------------------------------------------------------
    def scale(self, factor: float) -> None:
        """Scale every resident direction by ``factor`` (exponential decay).

        Scaling the sketch rows by ``γ`` scales the tracked covariance
        ``BᵀB`` by ``γ²`` — exactly matching a ``Σ_l ← γ Σ_l`` down-weighting
        of the slice stream the sketch summarises.
        """
        f = float(factor)
        if not np.isfinite(f) or f < 0.0:
            raise ShapeError(f"scale factor must be finite and >= 0, got {factor!r}")
        self._buffer[: self._filled] *= f

    def update(self, rows: np.ndarray) -> None:
        """Insert a batch of rows ``(m, dim)`` (a single row ``(dim,)`` works too).

        The sketch state is host-resident; rows arriving from a non-NumPy
        namespace are pulled back to the host first (one ``xfer:d2h``-sized
        copy per update — negligible next to the sketch SVD).
        """
        if type(rows) is not np.ndarray:
            from ..engine.array_api import array_module_of

            am = array_module_of(rows)
            if not am.is_numpy:
                rows = am.from_device(rows)
        arr = np.asarray(rows, dtype=float)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise ShapeError(
                f"rows must have shape (m, {self.dim}), got {arr.shape}"
            )
        m = arr.shape[0]
        self.n_inserted += m
        pos = 0
        cap = self._buffer.shape[0]
        while pos < m:
            take = min(cap - self._filled, m - pos)
            self._buffer[self._filled : self._filled + take] = arr[pos : pos + take]
            self._filled += take
            pos += take
            if self._filled == cap:
                self._shrink()

    def _shrink(self) -> None:
        """One frequent-directions step: SVD, subtract the ``ℓ``-th energy."""
        _, s, vt = np.linalg.svd(self._buffer[: self._filled], full_matrices=False)
        ell = self.sketch_size
        if s.shape[0] <= ell:
            keep = s.shape[0]
            reduced = s
        else:
            keep = ell
            reduced = np.sqrt(np.maximum(s[:ell] ** 2 - s[ell] ** 2, 0.0))
        self._buffer[:keep] = reduced[:, None] * vt[:keep]
        self._buffer[keep:] = 0.0
        self._filled = keep
        self.n_shrinks += 1

    # -- views -------------------------------------------------------------
    def sketch(self) -> np.ndarray:
        """The current sketch ``B`` as a fresh ``(filled, dim)`` array.

        Shrinks first when the working buffer has overflowed the nominal
        ``ℓ`` rows, so the returned matrix never exceeds ``ℓ`` rows and is
        independent of how inserts were batched up to the frequent-directions
        guarantee.
        """
        if self._filled > self.sketch_size:
            self._shrink()
        return self._buffer[: self._filled].copy()

    def covariance(self) -> np.ndarray:
        """``BᵀB`` — the sketched Gram matrix of the stream ``(dim, dim)``."""
        b = self.sketch()
        return b.T @ b

    def leading_directions(self, rank: int) -> np.ndarray:
        """Top-``rank`` directions as an orthonormal ``(dim, rank)`` matrix.

        These are the leading right singular vectors of the sketch — the
        streaming stand-in for the leading left singular vectors of the full
        column stack the sketch summarises.
        """
        from .svd import leading_left_singular_vectors

        r = check_positive_int(rank, name="rank")
        if r > self.dim:
            raise ShapeError(f"rank {r} exceeds sketch dimensionality {self.dim}")
        return leading_left_singular_vectors(self.sketch().T, r)

    # -- persistence -------------------------------------------------------
    def state(self) -> dict:
        """JSON/npz-friendly snapshot (see :meth:`from_state`)."""
        return {
            "dim": int(self.dim),
            "sketch_size": int(self.sketch_size),
            "buffer": self._buffer[: self._filled].copy(),
            "n_inserted": int(self.n_inserted),
            "n_shrinks": int(self.n_shrinks),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FrequentDirections":
        """Rebuild a sketch from a :meth:`state` snapshot."""
        fd = cls(int(state["dim"]), int(state["sketch_size"]))
        buffer = np.asarray(state["buffer"], dtype=float)
        if buffer.size:
            if buffer.ndim != 2 or buffer.shape[1] != fd.dim:
                raise ShapeError(
                    f"sketch state buffer has shape {buffer.shape}, "
                    f"expected (m, {fd.dim})"
                )
            if buffer.shape[0] > fd._buffer.shape[0]:
                raise ShapeError(
                    f"sketch state holds {buffer.shape[0]} rows, more than "
                    f"the 2*{fd.sketch_size} working buffer"
                )
            fd._buffer[: buffer.shape[0]] = buffer
            fd._filled = buffer.shape[0]
        fd.n_inserted = int(state.get("n_inserted", 0))
        fd.n_shrinks = int(state.get("n_shrinks", 0))
        return fd

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrequentDirections(dim={self.dim}, sketch_size={self.sketch_size}, "
            f"rows={self._filled}, inserted={self.n_inserted})"
        )
