"""Deterministic (truncated) SVD helpers.

These wrappers add three things over ``numpy.linalg.svd``:

* rank truncation with validation,
* a deterministic sign convention (the largest-magnitude entry of every left
  singular vector is made positive) so repeated runs and different code paths
  agree bit-for-bit up to round-off,
* an adaptive *Gram trick*: when a matrix is very wide, its left singular
  vectors are computed from the eigendecomposition of the small ``A Aᵀ``
  instead of a full SVD — the key to making D-Tucker's initialization phase
  cheap when the number of slices is large.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import RankError
from ..validation import check_matrix, check_positive_int

__all__ = [
    "sign_fix",
    "truncated_svd",
    "leading_left_singular_vectors",
    "solve_gram",
]


def sign_fix(u: np.ndarray, vt: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray | None]:
    """Apply a deterministic sign convention to SVD factors.

    The sign of each column of ``u`` is flipped so its largest-magnitude
    entry is positive; the corresponding row of ``vt`` (if given) is flipped
    too, preserving the product ``u @ diag(s) @ vt``.
    """
    u = np.asarray(u)
    idx = np.argmax(np.abs(u), axis=0)
    signs = np.sign(u[idx, np.arange(u.shape[1])])
    signs[signs == 0] = 1.0
    u = u * signs
    if vt is not None:
        vt = np.asarray(vt) * signs[:, None]
    return u, vt


def truncated_svd(
    matrix: np.ndarray, rank: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-``rank`` truncated SVD ``matrix ≈ U @ diag(s) @ Vt``.

    Parameters
    ----------
    matrix:
        Input of shape ``(m, n)``.
    rank:
        Number of singular triplets to keep; must satisfy
        ``1 <= rank <= min(m, n)``.

    Returns
    -------
    tuple
        ``(U, s, Vt)`` with shapes ``(m, rank)``, ``(rank,)``, ``(rank, n)``.
    """
    a = check_matrix(matrix, name="matrix")
    r = check_positive_int(rank, name="rank")
    if r > min(a.shape):
        raise RankError(
            f"rank {r} exceeds min(matrix shape) = {min(a.shape)}"
        )
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    u, vt = sign_fix(u[:, :r], vt[:r])
    return u, s[:r], vt


def _complete_basis(u: np.ndarray, rank: int) -> np.ndarray:
    """Extend ``u`` with orthonormal-complement columns up to ``rank``.

    Needed when more singular vectors are requested than the matrix has
    columns (a degenerate but legal Tucker geometry, e.g. rank ``J_n``
    exceeding ``Π_{k≠n} J_k``): the extra directions carry no energy, but
    downstream code relies on every factor having exactly ``J_n``
    orthonormal columns.
    """
    need = rank - u.shape[1]
    if need <= 0:
        return u[:, :rank]
    m = u.shape[0]
    projector = np.eye(m) - u @ u.T
    w, vecs = np.linalg.eigh((projector + projector.T) / 2.0)
    extra = vecs[:, ::-1][:, :need]
    extra = extra - u @ (u.T @ extra)
    extra, _ = np.linalg.qr(extra)
    return np.hstack([u, extra])


def leading_left_singular_vectors(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Leading ``rank`` left singular vectors, via SVD or the Gram trick.

    When the matrix is wide (``n > 2 m``) the left singular vectors are the
    leading eigenvectors of ``A Aᵀ`` (size ``m × m``), which is much cheaper
    than an ``m × n`` SVD.  Otherwise a thin SVD is used.  Both paths apply
    :func:`sign_fix` so results from either branch agree.  If the matrix has
    fewer than ``rank`` columns, the basis is completed with orthonormal
    directions from the complement (see :func:`_complete_basis`).

    Parameters
    ----------
    matrix:
        Input of shape ``(m, n)``.
    rank:
        Number of vectors; must satisfy ``1 <= rank <= m``.
    """
    a = check_matrix(matrix, name="matrix")
    r = check_positive_int(rank, name="rank")
    m, n = a.shape
    if r > m:
        raise RankError(f"rank {r} exceeds the row count {m}")
    if n > 2 * m:
        g = a @ a.T
        g = (g + g.T) / 2.0
        w, v = np.linalg.eigh(g)
        # eigh returns ascending order; take the top-`r` eigenvectors.
        u = v[:, ::-1][:, :r]
    else:
        u = _complete_basis(np.linalg.svd(a, full_matrices=False)[0], r)
    u, _ = sign_fix(u)
    return u


def solve_gram(gram_matrix: np.ndarray, rhs: np.ndarray, *, ridge: float = 0.0) -> np.ndarray:
    """Solve ``(G + ridge·I) X = rhs`` for a symmetric PSD Gram matrix.

    Uses Cholesky when possible and falls back to the pseudo-inverse when the
    Gram matrix is numerically singular (e.g. a rank-deficient sketch).
    """
    g = check_matrix(gram_matrix, name="gram_matrix")
    if g.shape[0] != g.shape[1]:
        raise RankError(f"gram_matrix must be square, got {g.shape}")
    b = np.asarray(rhs, dtype=float)
    a = g + ridge * np.eye(g.shape[0]) if ridge else g
    try:
        c = np.linalg.cholesky(a)
        y = np.linalg.solve(c, b)
        return np.linalg.solve(c.T, y)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(a) @ b
