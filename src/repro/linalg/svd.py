"""Deterministic (truncated) SVD helpers.

These wrappers add four things over ``numpy.linalg.svd``:

* rank truncation with validation,
* a deterministic sign convention (the largest-magnitude entry of every left
  singular vector is made positive) so repeated runs and different code paths
  agree bit-for-bit up to round-off,
* an adaptive *Gram trick*: when a matrix is very wide, its left singular
  vectors are computed from the eigendecomposition of the small ``A Aᵀ``
  instead of a full SVD — the key to making D-Tucker's initialization phase
  cheap when the number of slices is large,
* a LAPACK-driver fallback: ``numpy.linalg.svd`` uses the fast
  divide-and-conquer driver (gesdd), which can fail to converge on
  near-degenerate inputs; :func:`robust_svd` retries with the slower but
  sturdier QR-iteration driver (gesvd) before giving up — mirroring the
  bad-slice fallback in
  :func:`repro.linalg.rsvd.batched_svd_via_gram`.

All entry points dispatch through the array-namespace facade
(:func:`repro.engine.array_api.array_module_of`): NumPy inputs run the
exact pre-facade NumPy calls (bit-identical), while torch / CuPy /
array-API inputs stay in their namespace end to end.
"""

from __future__ import annotations

import numpy as np

from ..engine.array_api import array_module_of
from ..exceptions import RankError
from ..validation import check_matrix, check_positive_int

__all__ = [
    "sign_fix",
    "truncated_svd",
    "leading_left_singular_vectors",
    "robust_svd",
    "solve_gram",
]


def robust_svd(a, *, full_matrices: bool = False):
    """Thin SVD with a gesdd → gesvd LAPACK-driver fallback.

    NumPy's default divide-and-conquer driver (gesdd) is fast but can raise
    ``LinAlgError: SVD did not converge`` on near-degenerate matrices.  When
    that happens on the NumPy path, retry with SciPy's QR-iteration driver
    (gesvd), which is slower but converges on a strictly larger input class.
    Only the failure path differs — healthy inputs see the identical
    ``np.linalg.svd`` call as before.
    """
    am = array_module_of(a)
    if not am.is_numpy:
        return am.svd(a, full_matrices=full_matrices)
    try:
        return np.linalg.svd(a, full_matrices=full_matrices)
    except np.linalg.LinAlgError:
        try:
            from scipy.linalg import svd as scipy_svd
        except ImportError:  # pragma: no cover - scipy ships with the image
            raise
        u, s, vt = scipy_svd(
            np.asarray(a, dtype=np.float64),
            full_matrices=full_matrices,
            lapack_driver="gesvd",
        )
        return u, s, vt


def sign_fix(u, vt=None):
    """Apply a deterministic sign convention to SVD factors.

    The sign of each column of ``u`` is flipped so its largest-magnitude
    entry is positive; the corresponding row of ``vt`` (if given) is flipped
    too, preserving the product ``u @ diag(s) @ vt``.
    """
    am = array_module_of(u, vt)
    if am.is_numpy:
        u = np.asarray(u)
        idx = np.argmax(np.abs(u), axis=0)
        signs = np.sign(u[idx, np.arange(u.shape[1])])
        signs[signs == 0] = 1.0
        u = u * signs
        if vt is not None:
            vt = np.asarray(vt) * signs[:, None]
        return u, vt
    n_cols = int(u.shape[1])
    idx = am.argmax(am.abs(u), axis=0)
    vals = am.take_flat(u, idx * n_cols + am.arange(n_cols))
    signs = am.sign(vals)
    one = am.asarray(1.0, dtype=am.np_dtype(u))
    signs = am.where(signs == 0, one, signs)
    u = u * signs
    if vt is not None:
        vt = vt * signs[:, None]
    return u, vt


def truncated_svd(matrix, rank: int):
    """Rank-``rank`` truncated SVD ``matrix ≈ U @ diag(s) @ Vt``.

    Parameters
    ----------
    matrix:
        Input of shape ``(m, n)``.
    rank:
        Number of singular triplets to keep; must satisfy
        ``1 <= rank <= min(m, n)``.

    Returns
    -------
    tuple
        ``(U, s, Vt)`` with shapes ``(m, rank)``, ``(rank,)``, ``(rank, n)``.
    """
    a = check_matrix(matrix, name="matrix")
    r = check_positive_int(rank, name="rank")
    if r > min(int(d) for d in a.shape):
        raise RankError(
            f"rank {r} exceeds min(matrix shape) = {min(int(d) for d in a.shape)}"
        )
    u, s, vt = robust_svd(a, full_matrices=False)
    u, vt = sign_fix(u[:, :r], vt[:r])
    return u, s[:r], vt


def _complete_basis(u, rank: int):
    """Extend ``u`` with orthonormal-complement columns up to ``rank``.

    Needed when more singular vectors are requested than the matrix has
    columns (a degenerate but legal Tucker geometry, e.g. rank ``J_n``
    exceeding ``Π_{k≠n} J_k``): the extra directions carry no energy, but
    downstream code relies on every factor having exactly ``J_n``
    orthonormal columns.
    """
    need = rank - int(u.shape[1])
    if need <= 0:
        return u[:, :rank]
    am = array_module_of(u)
    if am.is_numpy:
        m = u.shape[0]
        projector = np.eye(m) - u @ u.T
        w, vecs = np.linalg.eigh((projector + projector.T) / 2.0)
        extra = vecs[:, ::-1][:, :need]
        extra = extra - u @ (u.T @ extra)
        extra, _ = np.linalg.qr(extra)
        return np.hstack([u, extra])
    m = int(u.shape[0])
    ut = am.mT(u)
    projector = am.eye(m, dtype=am.np_dtype(u)) - am.matmul(u, ut)
    w, vecs = am.eigh((projector + am.mT(projector)) / 2.0)
    extra = am.flip(vecs, axis=1)[:, :need]
    extra = extra - am.matmul(u, am.matmul(ut, extra))
    extra, _ = am.qr(extra)
    return am.concatenate([u, extra], axis=1)


def leading_left_singular_vectors(matrix, rank: int):
    """Leading ``rank`` left singular vectors, via SVD or the Gram trick.

    When the matrix is wide (``n > 2 m``) the left singular vectors are the
    leading eigenvectors of ``A Aᵀ`` (size ``m × m``), which is much cheaper
    than an ``m × n`` SVD.  Otherwise a thin SVD is used.  Both paths apply
    :func:`sign_fix` so results from either branch agree.  If the matrix has
    fewer than ``rank`` columns, the basis is completed with orthonormal
    directions from the complement (see :func:`_complete_basis`).

    Parameters
    ----------
    matrix:
        Input of shape ``(m, n)``.
    rank:
        Number of vectors; must satisfy ``1 <= rank <= m``.
    """
    a = check_matrix(matrix, name="matrix")
    r = check_positive_int(rank, name="rank")
    m, n = (int(d) for d in a.shape)
    if r > m:
        raise RankError(f"rank {r} exceeds the row count {m}")
    am = array_module_of(a)
    if am.is_numpy:
        if n > 2 * m:
            g = a @ a.T
            g = (g + g.T) / 2.0
            w, v = np.linalg.eigh(g)
            # eigh returns ascending order; take the top-`r` eigenvectors.
            u = v[:, ::-1][:, :r]
        else:
            u = _complete_basis(robust_svd(a, full_matrices=False)[0], r)
    else:
        if n > 2 * m:
            g = am.matmul(a, am.mT(a))
            g = (g + am.mT(g)) / 2.0
            w, v = am.eigh(g)
            u = am.flip(v, axis=1)[:, :r]
        else:
            u = _complete_basis(am.svd(a, full_matrices=False)[0], r)
    u, _ = sign_fix(u)
    return u


def solve_gram(gram_matrix, rhs, *, ridge: float = 0.0):
    """Solve ``(G + ridge·I) X = rhs`` for a symmetric PSD Gram matrix.

    Uses Cholesky when possible and falls back to the pseudo-inverse when the
    Gram matrix is numerically singular (e.g. a rank-deficient sketch).
    """
    g = check_matrix(gram_matrix, name="gram_matrix")
    if g.shape[0] != g.shape[1]:
        raise RankError(f"gram_matrix must be square, got {tuple(g.shape)}")
    am = array_module_of(g, rhs)
    if am.is_numpy:
        b = np.asarray(rhs, dtype=float)
        a = g + ridge * np.eye(g.shape[0]) if ridge else g
        try:
            c = np.linalg.cholesky(a)
            y = np.linalg.solve(c, b)
            return np.linalg.solve(c.T, y)
        except np.linalg.LinAlgError:
            return np.linalg.pinv(a) @ b
    b = am.astype(am.asarray(rhs), np.float64)
    a = g + ridge * am.eye(int(g.shape[0]), dtype=am.np_dtype(g)) if ridge else g
    try:
        c = am.cholesky(a)
        y = am.solve(c, b)
        return am.solve(am.mT(c), y)
    except Exception:
        return am.matmul(am.pinv(a), b)
