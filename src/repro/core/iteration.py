"""The iteration phase: HOOI-style ALS sweeps in the compressed domain.

Each sweep updates every factor matrix in turn.  The classical HOOI update
for mode ``n`` is

.. math:: A^{(n)} \\leftarrow J_n \\text{ leading left singular vectors of }
          \\left(\\mathcal{X} \\times_{k \\ne n} A^{(k)T}\\right)_{(n)} ,

which on the raw tensor costs ``O(J · Π I_k)`` per mode.  D-Tucker computes
the same TTM chain from the slice SVDs (see :mod:`repro.core._ops`):

* modes 1 and 2 contract the *other* slice mode through the SVD factors
  (``U_l diag(s_l)(V_lᵀA(2))``), leaving an ``(I1, J2, I3…)``-shaped tensor;
* modes ``≥ 3`` start from the fully projected ``W ∈ R^{J1×J2×I3×…}``.

Convergence is monitored without reconstructing anything: for orthonormal
projected factors, ``||X − X̂||² = ||X||² − ||G||²``, and ``||X||²`` was
stored by the approximation phase.  The estimate therefore includes the
(small, fixed) slice-compression residual — exactly the quantity D-Tucker
can observe, and the one the error benchmarks validate against ground truth.

The contractions themselves run through a
:class:`~repro.kernels.workspace.SweepWorkspace`: slice projections are
cached and dirty-tracked on factor versions, the doubly-projected ``W`` is
built exactly once per sweep, TTM chains reuse planned orders and shared
prefixes, and the big intermediates land in preallocated buffers.  Results
are bit-identical to the uncached loop (kept as
:func:`repro.kernels.naive.naive_als_sweeps`); only the redundant work is
gone.  Cache statistics are folded into the phase's
:class:`~repro.engine.trace.PhaseTrace` and returned on the result.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..engine import ExecutionBackend, backend_scope
from ..engine.array_api import resolve_device
from ..exceptions import ConvergenceError
from ..kernels.stats import KernelStats
from ..kernels.workspace import SweepWorkspace
from ..linalg.svd import leading_left_singular_vectors
from ..tensor.norms import core_based_error
from ..tensor.unfold import unfold
from ..validation import check_ranks
from .config import UNSET, DTuckerConfig, resolve_config
from .slice_svd import SliceSVD

__all__ = ["IterationResult", "als_sweeps"]

logger = logging.getLogger("repro.core.iteration")


@dataclass
class IterationResult:
    """Outcome of the iteration phase.

    Attributes
    ----------
    core, factors:
        The final Tucker pieces (factors column-orthonormal).
    errors:
        Estimated reconstruction error after every sweep (compressed-domain
        estimate, see module docstring).
    converged:
        ``True`` when the error variation dropped below the tolerance within
        the sweep budget.
    n_iters:
        Number of completed sweeps.
    kernel_stats:
        Cache hit/miss and buffer-reuse counters accumulated by the sweep
        workspace during this call (``None`` only on legacy pickles).
    """

    core: np.ndarray
    factors: list[np.ndarray]
    errors: list[float] = field(default_factory=list)
    converged: bool = False
    n_iters: int = 0
    kernel_stats: KernelStats | None = None


def als_sweeps(
    ssvd: SliceSVD,
    ranks: int | Sequence[int],
    factors: Sequence[np.ndarray],
    *,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    callback: Callable[[int, float], None] | None = None,
    workspace: SweepWorkspace | None = None,
    max_iters: object = UNSET,
    tol: object = UNSET,
) -> IterationResult:
    """Run compressed-domain ALS sweeps until convergence.

    Parameters
    ----------
    ssvd:
        Compressed tensor from the approximation phase.
    ranks:
        Target Tucker ranks.
    factors:
        Initial factor matrices (from :func:`repro.core.initialization.
        initialize` or any other source); not modified in place.
    config:
        Solver configuration; supplies the sweep budget (``max_iters``),
        tolerance (``tol``) and the execution knobs.
    engine:
        Execution backend spec — an instance (reused, not closed), a name,
        or ``None`` to resolve from ``config`` and the environment.  The
        per-mode slice contractions of every sweep are dispatched through
        it as chunked tasks.
    callback:
        Optional ``callback(sweep_index, error_estimate)`` invoked after
        every sweep — used by the convergence benchmark to timestamp sweeps.
    workspace:
        Optional :class:`~repro.kernels.workspace.SweepWorkspace` bound to
        ``ssvd``.  Passing one lets callers (e.g. the streaming solver)
        carry warm projection caches and scratch buffers across calls;
        when omitted a private workspace is created for this call.
    max_iters, tol:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    IterationResult

    Raises
    ------
    ConvergenceError
        If the error estimate becomes non-finite (corrupt input), or if a
        provided ``workspace`` is bound to a different compressed tensor.
    """
    cfg = resolve_config(config, where="als_sweeps", max_iters=max_iters, tol=tol)
    rank_tuple = check_ranks(ranks, ssvd.shape)
    order = len(rank_tuple)
    facs = [np.asarray(a, dtype=float) for a in factors]
    if len(facs) != order:
        raise ConvergenceError(
            f"expected {order} initial factors, got {len(facs)}"
        )

    if workspace is not None:
        ws = workspace
        stats_before = ws.stats.copy()
    else:
        module = resolve_device(None, config=cfg)
        ws = SweepWorkspace(
            ssvd,
            module=module,
            compute_dtype=(
                np.float32 if cfg.precision == "float32" else np.float64
            ),
        )
        # Empty snapshot: the construction-time device uploads (if any)
        # belong to this call's phase delta.
        stats_before = KernelStats()
    if ws.ssvd is not ssvd:
        raise ConvergenceError(
            "workspace is bound to a different SliceSVD; build a fresh "
            "SweepWorkspace for this compressed tensor"
        )

    errors: list[float] = []
    converged = False
    sweep = 0
    with backend_scope(engine, config=cfg) as eng, eng.phase("iteration") as tr:
        previous_engine = ws.engine
        ws.engine = eng
        try:
            ws.bind_factors(facs)
            for sweep in range(1, int(cfg.max_iters) + 1):
                # Mode 1: X ×_2 A(2)ᵀ ×_{k>=3} A(k)ᵀ, then leading left SVs.
                z1 = ws.project_trailing(ws.mode1_partial(), skip=None, tag="z1")
                facs[0] = leading_left_singular_vectors(unfold(z1, 0), rank_tuple[0])
                ws.update_factor(0, facs[0])

                # Mode 2: X ×_1 A(1)ᵀ ×_{k>=3} A(k)ᵀ.
                z2 = ws.project_trailing(ws.mode2_partial(), skip=None, tag="z2")
                facs[1] = leading_left_singular_vectors(unfold(z2, 1), rank_tuple[1])
                ws.update_factor(1, facs[1])

                # Modes >= 3: chains off the (cached, built-once) W tensor.
                for n in range(2, order):
                    zn = ws.project_w_trailing(skip=n)
                    facs[n] = leading_left_singular_vectors(
                        unfold(zn, n), rank_tuple[n]
                    )
                    ws.update_factor(n, facs[n])

                # Core and compressed-domain error estimate.  W is a cache
                # hit here (factors 0/1 unchanged since the skip chains).
                core = ws.project_w_trailing(skip=None)
                err = core_based_error(ssvd.norm_squared, core)
                if not np.isfinite(err):
                    raise ConvergenceError(
                        f"non-finite error estimate at sweep {sweep}; input corrupt?"
                    )
                errors.append(err)
                ws.finish_sweep()
                if callback is not None:
                    callback(sweep, err)
                if logger.isEnabledFor(logging.DEBUG):
                    logger.debug("sweep %d: estimated error %.6e", sweep, err)
                if len(errors) >= 2 and abs(errors[-2] - errors[-1]) < float(cfg.tol):
                    converged = True
                    break
            if not ws.module.is_numpy:
                # Bring the finished pieces home: results are host arrays
                # regardless of where the sweeps ran.
                am = ws.module
                core = am.from_device(core)
                ws.stats.record_transfer("d2h", core.nbytes)
                for n, fac in enumerate(facs):
                    if type(fac) is not np.ndarray:
                        facs[n] = am.from_device(fac)
                        ws.stats.record_transfer("d2h", facs[n].nbytes)
        finally:
            ws.engine = previous_engine
            stats = ws.stats.delta(stats_before)
            tr.annotate_cache(
                hits=stats.hits,
                misses=stats.misses,
                bytes_reused=stats.bytes_reused,
            )
            tr.annotate_xfer(
                h2d_bytes=stats.bytes_h2d,
                d2h_bytes=stats.bytes_d2h,
                device=ws.module.name,
            )

    return IterationResult(
        core=core,
        factors=facs,
        errors=errors,
        converged=converged,
        n_iters=sweep,
        kernel_stats=stats,
    )
