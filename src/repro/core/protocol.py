"""The :class:`FitLike` protocol every solver outcome satisfies.

Historically the harness and the CLI special-cased solver outputs:
:class:`~repro.core.result.TuckerResult` exposed the decomposition directly
while :class:`~repro.baselines._common.BaselineFit` wrapped one, and every
consumer had to know which it was holding.  Both now satisfy ``FitLike`` —
``core``, ``factors``, ``error(reference)``, ``elapsed`` and ``trace_`` are
available on either — so generic code (experiment harness, ``cli compare``,
user scripts) can treat any solver uniformly::

    def report(fit: FitLike, x) -> str:
        return f"error={fit.error(x):.3e} in {fit.elapsed:.2f}s"

The protocol is ``runtime_checkable``: ``isinstance(obj, FitLike)`` verifies
the attribute surface (not signatures) at runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import PhaseTrace

__all__ = ["FitLike"]


@runtime_checkable
class FitLike(Protocol):
    """Common surface of every solver outcome.

    Attributes
    ----------
    core:
        Core tensor of the decomposition.
    factors:
        Factor matrices, one per mode.
    elapsed:
        Total wall-clock seconds spent producing the fit.
    trace_:
        Structured per-phase execution traces
        (:class:`~repro.engine.PhaseTrace`; empty when the producing solver
        did not run through the execution engine).
    """

    @property
    def core(self) -> np.ndarray: ...

    @property
    def factors(self) -> list[np.ndarray]: ...

    @property
    def elapsed(self) -> float: ...

    @property
    def trace_(self) -> "list[PhaseTrace]": ...

    def error(self, reference: np.ndarray) -> float:
        """Relative reconstruction error against ``reference``."""
        ...
