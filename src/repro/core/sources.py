"""The data-source layer: every fit path reads slices through one protocol.

D-Tucker's whole design is "compress slices once, then iterate in the
compressed domain" — so the only thing that distinguishes the in-memory,
out-of-core, sparse and streaming entry points is *where the slice
matrices come from*.  This module makes that difference a pluggable
object: a :class:`SliceSource` serves ``(B, I1, I2)`` slabs of consecutive
slices, and :func:`compress_source` is the single compression pipeline
that turns any source into a :class:`~repro.core.slice_svd.SliceSVD` —
planner-driven method selection (:mod:`repro.kernels.compress_plan`),
double-buffered IO prefetch (:class:`~repro.engine.pipeline.Prefetcher`),
process-backend descriptor fan-out, and ``PhaseTrace``/``KernelStats``
accounting, uniformly for every source.

Four adapters cover the library's entry points:

* :class:`DenseSource` — an in-memory array (one strided view, no copy);
* :class:`NpySource` — a memory-mapped ``.npy`` file (one cached read-only
  handle per process, batches gathered page-by-page);
* :class:`SparseSource` — a :class:`~repro.sparse.coo.SparseTensor`
  (``O(nnz)`` per-slice randomized SVDs on the default strategy, densified
  batches through the planner otherwise);
* :class:`BlockSource` — a virtual concatenation of same-shape blocks
  along the last (temporal) mode, the streaming extension's view.

Custom adapters (HDF5, zarr, remote shards, …) implement the same small
protocol and inherit the whole solver stack — see ``docs/api.md`` for a
worked example.

Determinism contract
--------------------
All randomness is pre-drawn in batch order from one stream before any
work is dispatched, so results are independent of scheduling and backend.
Sources with ``shared_sketch=True`` (sparse) draw *one* Gaussian test
matrix for every batch — results are then also independent of the
batching; per-batch sources (``.npy`` files) draw one matrix per batch in
batch order, matching the historical out-of-core stream exactly.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from functools import partial
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..engine import ExecutionBackend, Prefetcher, backend_scope, combine_costs
from ..exceptions import RankError, ShapeError
from ..kernels.buffers import BufferPool
from ..kernels.compress_plan import (
    CompressionPlan,
    execute_plan,
    plan_exact_chunk,
    plan_from_config,
    plan_item_costs,
    slab_norms,
)
from ..kernels.stats import KernelStats
from ..linalg.rsvd import batched_rsvd, batched_svd_via_gram
from ..linalg.svd import sign_fix
from ..tensor.random import default_rng
from ..tensor.slices import slice_count, slice_index_to_multi, to_slices
from ..validation import as_tensor, check_positive_int
from .config import DTuckerConfig
from .slice_svd import SliceSVD

__all__ = [
    "SliceSource",
    "SourceDescriptor",
    "DenseSource",
    "NpySource",
    "SparseSource",
    "BlockSource",
    "compress_source",
    "batched_slice_view",
    "clear_memmap_cache",
    "memmap_cache_stats",
]


# -- the protocol -----------------------------------------------------------

@runtime_checkable
class SliceSource(Protocol):
    """Anything that can serve batches of consecutive slice matrices.

    Implementations provide the tensor geometry (``shape``, ``dtype``,
    ``slice_count``), a ``read_batch(start, stop)`` returning the dense
    ``(stop - start, I1, I2)`` slab of slices ``start..stop`` (library-wide
    Fortran order over modes ``3..N``), and a picklable ``descriptor()``
    whose ``open()`` re-creates the source inside a worker process.

    The class attributes below tune how :func:`compress_source` drives an
    implementation; the defaults (resident, per-batch sketches) suit
    in-memory data.

    Attributes
    ----------
    resident:
        ``True`` when ``read_batch`` is cheap (a view or near-view) — the
        pipeline then reads inline; ``False`` routes reads through the
        double-buffered :class:`~repro.engine.pipeline.Prefetcher` so IO
        overlaps factorization.
    default_batch_slices:
        Batch size used when the caller passes none (``None`` = the whole
        tensor in one batch).
    shared_sketch:
        Draw one Gaussian test matrix shared by all batches (results become
        independent of the batching) instead of one per batch.
    phase_name:
        Label of the :class:`~repro.engine.trace.PhaseTrace` emitted for
        the compression phase.
    """

    resident: bool
    default_batch_slices: int | None
    shared_sketch: bool
    phase_name: str

    @property
    def shape(self) -> tuple[int, ...]: ...

    @property
    def dtype(self) -> np.dtype: ...

    @property
    def slice_count(self) -> int: ...

    def read_batch(self, start: int, stop: int) -> np.ndarray: ...

    def descriptor(self) -> "SourceDescriptor": ...


class SourceDescriptor(Protocol):
    """Picklable recipe that re-opens a :class:`SliceSource` in a worker."""

    def open(self) -> SliceSource: ...


class SliceSourceBase:
    """Shared geometry/validation plumbing for the built-in adapters."""

    resident: bool = True
    default_batch_slices: int | None = None
    shared_sketch: bool = False
    phase_name: str = "approximation"

    _shape: tuple[int, ...]
    _dtype: np.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def slice_count(self) -> int:
        return slice_count(self._shape)

    def _check_range(self, start: int, stop: int) -> tuple[int, int]:
        count = self.slice_count
        lo, hi = int(start), int(stop)
        if not 0 <= lo < hi <= count:
            raise ShapeError(
                f"slice range [{lo}, {hi}) invalid for {count} slices"
            )
        return lo, hi

    # -- hooks consumed by compress_source ---------------------------------
    def plan(self, rank: int, config: DTuckerConfig) -> CompressionPlan:
        """The compression plan for this source (planner dispatch by default)."""
        i1, i2 = self._shape[:2]
        return plan_from_config(i1, i2, rank, config)

    def item_costs(
        self, plan: CompressionPlan, start: int, stop: int
    ) -> np.ndarray | None:
        """Per-slice scheduling costs for slices ``start..stop``.

        ``None`` (the default) means "all slices cost the same" — correct
        for dense same-shape slabs, where the scheduler's equal-count split
        is already balanced.  Sources whose per-slice work varies (sparse
        nnz profiles, mixed resident/memmapped blocks) override this; the
        engine then balances chunk boundaries and drains its dynamic queue
        heaviest-first.  Values are relative weights — see
        :mod:`repro.engine.cost`.
        """
        return None

    def batch_costs(
        self, plan: CompressionPlan, bounds: list[tuple[int, int]]
    ) -> np.ndarray | None:
        """Per-batch scheduling costs for descriptor fan-outs.

        Defaults to the per-batch sums of :meth:`item_costs` when a model
        exists, else the batch sizes (the remainder batch then weighs
        proportionally less than the full ones).
        """
        per_batch = []
        uniform = True
        for start, stop in bounds:
            c = self.item_costs(plan, start, stop)
            if c is None:
                per_batch.append(float(stop - start))
            else:
                uniform = False
                per_batch.append(float(np.sum(c)))
        if uniform and len(set(per_batch)) == 1:
            return None
        return np.asarray(per_batch, dtype=float)

    def batch_producer(
        self, plan: CompressionPlan
    ) -> Callable[[tuple[int, int]], Any]:
        """Callable mapping a ``(start, stop)`` bound to a batch payload."""
        return lambda bound: self.read_batch(bound[0], bound[1])

    def compress_batch(
        self,
        engine: ExecutionBackend,
        payload: Any,
        rank: int,
        plan: CompressionPlan,
        omega: np.ndarray | None,
        pool: BufferPool | None,
        costs: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Factor one batch payload into ``(u, s, vt, norms)`` stacks.

        ``costs`` are this batch's per-slice scheduling weights (the
        :meth:`item_costs` restriction to the batch range, or ``None``).
        """
        return execute_plan(
            engine, payload, rank, plan, omega=omega, pool=pool, costs=costs
        )

    def process_parts(
        self,
        engine: ExecutionBackend,
        rank: int,
        plan: CompressionPlan,
        bounds: list[tuple[int, int]],
        omegas: list[np.ndarray | None],
        config: DTuckerConfig,
        *,
        stats: KernelStats | None = None,
        trace: Any | None = None,
    ) -> list[tuple] | None:
        """Process-backend fan-out; ``None`` falls back to inline batches.

        Resident sources return ``None``: their batches run through
        :func:`~repro.kernels.compress_plan.execute_plan`, whose ``chunked``
        dispatch already parallelises each slab across worker processes.
        Non-resident sources override this to ship *batch descriptors*
        instead, so no tensor data crosses process boundaries.

        ``stats`` and ``trace`` are the pipeline's accounting objects;
        sources whose fan-out ships data across process/shard boundaries
        (the distributed layer) record ``comm:*`` counters on them.
        """
        return None


# -- memory-mapped .npy files ----------------------------------------------

#: One read-only memmap handle per (process, file version).  Historically
#: every batch gather re-opened the file via ``np.load``; keyed on the pid
#: so forked workers open their own handle, and on (mtime_ns, size) so a
#: rewritten file is re-mapped rather than served stale.  Bounded LRU:
#: each live handle holds a file descriptor, and a sharded manifest over
#: hundreds of member files must not exhaust the process's fd budget —
#: least-recently-used handles are evicted (and tallied) at the cap.  The
#: ``REPRO_MEMMAP_HANDLES`` environment variable overrides the cap.
_MEMMAP_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_MEMMAP_CACHE_SIZE = 8
_MEMMAP_LOCK = threading.Lock()
_MEMMAP_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}


def _memmap_cache_capacity() -> int:
    raw = os.environ.get("REPRO_MEMMAP_HANDLES")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return _MEMMAP_CACHE_SIZE


def _open_memmap_cached(path: "str | os.PathLike") -> np.ndarray:
    """Read-only memmap of ``path``, opened at most once per file version."""
    p = os.path.realpath(os.fspath(path))
    st = os.stat(p)
    key = (os.getpid(), p, st.st_mtime_ns, st.st_size)
    with _MEMMAP_LOCK:
        mm = _MEMMAP_CACHE.get(key)
        if mm is not None:
            _MEMMAP_CACHE.move_to_end(key)
            _MEMMAP_COUNTERS["hits"] += 1
            return mm
        mm = np.load(p, mmap_mode="r", allow_pickle=False)
        _MEMMAP_COUNTERS["misses"] += 1
        _MEMMAP_CACHE[key] = mm
        cap = _memmap_cache_capacity()
        while len(_MEMMAP_CACHE) > cap:
            _MEMMAP_CACHE.popitem(last=False)
            _MEMMAP_COUNTERS["evictions"] += 1
        return mm


def clear_memmap_cache() -> None:
    """Drop all cached ``.npy`` handles (test isolation / fd hygiene).

    Counters reset with the handles, so tests observe a clean window.
    """
    with _MEMMAP_LOCK:
        _MEMMAP_CACHE.clear()
        _MEMMAP_COUNTERS.update(hits=0, misses=0, evictions=0)


def memmap_cache_stats() -> dict[str, int]:
    """Snapshot of the handle cache: size, capacity, hits/misses/evictions.

    ``evictions`` counts handles dropped at the LRU cap since the last
    :func:`clear_memmap_cache` — nonzero evictions with a hot working set
    mean the cap (``REPRO_MEMMAP_HANDLES``) is too small for the manifest.
    """
    with _MEMMAP_LOCK:
        return {
            "size": len(_MEMMAP_CACHE),
            "capacity": _memmap_cache_capacity(),
            **_MEMMAP_COUNTERS,
        }


def _gathered_slice_loop(
    tensor: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Per-slice gather loop — the reference :func:`batched_slice_view`.

    Kept verbatim as the semantic specification of the fancy-index gather
    below (the regression test asserts bit-identity) and as the fallback
    for array-likes that do not support multi-array advanced indexing.
    """
    shape = tensor.shape
    out = np.empty((stop - start, shape[0], shape[1]))
    for offset, l in enumerate(range(start, stop)):
        multi = slice_index_to_multi(l, shape)
        out[offset] = tensor[(slice(None), slice(None), *multi)]
    return out


def batched_slice_view(
    tensor: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Materialise slices ``start..stop`` of ``tensor`` as ``(B, I1, I2)``.

    Works on memory-mapped arrays: only the pages backing the requested
    slices are read.  Slice indices follow the library-wide Fortran order
    over modes ``3..N``.

    For real ndarrays (including memmaps) the whole batch is gathered with
    a single fancy-index expression over the trailing modes — one NumPy
    call instead of a Python loop per slice; other array-likes fall back
    to the per-slice reference loop.  Both produce bit-identical float64
    C-contiguous output.
    """
    shape = tensor.shape
    count = slice_count(shape)
    if not 0 <= start < stop <= count:
        raise ShapeError(
            f"slice range [{start}, {stop}) invalid for {count} slices"
        )
    if len(shape) == 2:
        return np.asarray(tensor, dtype=float)[None, :, :]
    if not isinstance(tensor, np.ndarray):
        return _gathered_slice_loop(tensor, start, stop)
    # The trailing modes form one contiguous block of advanced indices, so
    # the gathered axis lands in place: result shape (I1, I2, B), assigned
    # into a transposed view of the C-contiguous (B, I1, I2) output.
    multi = np.unravel_index(np.arange(start, stop), shape[2:], order="F")
    out = np.empty((stop - start, shape[0], shape[1]))
    np.moveaxis(out, 0, 2)[...] = tensor[(slice(None), slice(None), *multi)]
    return out


# -- adapters ---------------------------------------------------------------

@dataclass(frozen=True)
class DenseDescriptor:
    """Descriptor of a :class:`DenseSource` (ships the array itself)."""

    tensor: np.ndarray

    def open(self) -> "DenseSource":
        return DenseSource(self.tensor)


class DenseSource(SliceSourceBase):
    """An in-memory dense tensor, served as one strided slice-stack view.

    ``read_batch`` returns views into the original array — no copy is made
    for the default whole-tensor batch, which keeps this path bit-identical
    to the historical in-memory ``compress`` (the per-slice norm einsum is
    layout-sensitive in the last bits).
    """

    def __init__(self, tensor: np.ndarray) -> None:
        x = as_tensor(tensor, min_order=2, name="tensor")
        self._tensor = x
        self._stack = np.moveaxis(to_slices(x), 2, 0)  # (L, I1, I2) view
        self._shape = tuple(int(d) for d in x.shape)
        self._dtype = x.dtype

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        lo, hi = self._check_range(start, stop)
        return self._stack[lo:hi]

    def descriptor(self) -> DenseDescriptor:
        return DenseDescriptor(self._tensor)


@dataclass(frozen=True)
class NpyDescriptor:
    """Descriptor of an :class:`NpySource` (workers re-map the file)."""

    path: str

    def open(self) -> "NpySource":
        return NpySource(self.path)


def _npy_batch_task(
    task: tuple[int, int, np.ndarray | None],
    *,
    path: str,
    rank: int,
    power_iterations: int,
    method: str,
    precision: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compress one ``(start, stop, Ω)`` batch of a ``.npy`` file.

    Module-level (dispatched via :func:`functools.partial`) so the process
    backend can pickle it; each worker opens its own cached memmap, so no
    tensor data crosses process boundaries except the compressed triples.
    """
    start, stop, omega = task
    stack = batched_slice_view(_open_memmap_cached(path), start, stop)
    if precision == "float32":
        stack = np.ascontiguousarray(stack, dtype=np.float32)
    norms = slab_norms(stack)
    if method == "exact":
        u, s, vt, _ = plan_exact_chunk(stack, rank=rank)
    elif method == "gram" or omega is None:
        u, s, vt = batched_svd_via_gram(stack, rank)
    else:
        u, s, vt = batched_rsvd(
            stack, rank, power_iterations=power_iterations, test_matrix=omega
        )
    return u, s, vt, norms


class NpySource(SliceSourceBase):
    """A dense tensor stored in a ``.npy`` file, memory-mapped in batches.

    The file must hold a C-contiguous array of order ``>= 2`` (NumPy
    default).  Batches of consecutive slice indices are *not* contiguous
    on disk in general; the memory map's fancy-index gather reads only the
    touched pages.  One read-only handle is opened per process and reused
    across batches (see :func:`clear_memmap_cache`).
    """

    resident = False
    default_batch_slices = 64
    phase_name = "approximation-ooc"

    def __init__(self, path: "str | os.PathLike") -> None:
        self._path = os.fspath(path)
        probe = _open_memmap_cached(self._path)
        if probe.ndim < 2:
            raise ShapeError(f"tensor in {path!s} must have order >= 2")
        self._shape = tuple(int(d) for d in probe.shape)
        self._dtype = probe.dtype

    @property
    def path(self) -> str:
        return self._path

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        lo, hi = self._check_range(start, stop)
        return batched_slice_view(_open_memmap_cached(self._path), lo, hi)

    def descriptor(self) -> NpyDescriptor:
        return NpyDescriptor(self._path)

    def process_parts(
        self, engine, rank, plan, bounds, omegas, config, *, stats=None, trace=None
    ):
        # Batch descriptors fan out across worker processes; pooled buffers
        # must not be used here (shared-memory uploads are cached by array
        # identity), and each worker maps the file itself.
        tasks = [
            (start, stop, omega)
            for (start, stop), omega in zip(bounds, omegas)
        ]
        fn = partial(
            _npy_batch_task,
            path=self._path,
            rank=rank,
            power_iterations=plan.power_iterations,
            method=plan.method,
            precision=config.precision,
        )
        return engine.map(fn, tasks, costs=self.batch_costs(plan, bounds))


@dataclass(frozen=True)
class SparseDescriptor:
    """Descriptor of a :class:`SparseSource` (ships the COO coordinates)."""

    tensor: object

    def open(self) -> "SparseSource":
        return SparseSource(self.tensor)


def _sparse_slice_svd(
    a: object,
    *,
    rank: int,
    omega: np.ndarray,
    power_iterations: int,
    i1: int,
    i2: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Randomized SVD of one sparse slice (module level for pickling).

    Every matrix product is sparse × dense, so one slice costs
    ``O(nnz_l · (K + p))`` instead of ``O(I1·I2·(K + p))``.  Returns
    zero-padded ``(u, s, vt, norm²)`` of uniform shapes ``(I1, K)``,
    ``(K,)``, ``(K, I2)`` so the caller can stack results regardless of
    per-slice nnz.
    """
    u_out = np.zeros((i1, rank))
    s_out = np.zeros(rank)
    vt_out = np.zeros((rank, i2))
    norm = float(a.data @ a.data) if a.nnz else 0.0  # type: ignore[attr-defined]
    if a.nnz == 0:  # type: ignore[attr-defined]
        # An all-zero slice compresses to zero triples; leave the
        # (orthonormality-irrelevant) factors at zero.
        return u_out, s_out, vt_out, norm
    y = a @ omega  # type: ignore[operator]
    q, _ = np.linalg.qr(y)
    for _ in range(max(0, int(power_iterations))):
        z, _ = np.linalg.qr(a.T @ q)  # type: ignore[attr-defined]
        q, _ = np.linalg.qr(a @ z)  # type: ignore[operator]
    b = q.T @ a  # dense (size, I2)
    ub, s, vt = np.linalg.svd(np.asarray(b), full_matrices=False)
    u = q @ ub[:, :rank]
    u, vt_fixed = sign_fix(u, vt[:rank])
    assert vt_fixed is not None
    u_out[:, : u.shape[1]] = u
    s_out[: s[:rank].shape[0]] = s[:rank]
    vt_out[: vt_fixed.shape[0]] = vt_fixed
    return u_out, s_out, vt_out, norm


def _stack_slice_parts(
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray, float]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stack per-slice ``(u, s, vt, norm)`` tuples into batch arrays."""
    return (
        np.stack([p[0] for p in parts]),
        np.stack([p[1] for p in parts]),
        np.stack([p[2] for p in parts]),
        np.array([p[3] for p in parts]),
    )


class SparseSource(SliceSourceBase):
    """A :class:`~repro.sparse.coo.SparseTensor`, served per-slice or densified.

    On the default configuration (``strategy="rsvd"``, float64) each CSR
    slice is compressed with the ``O(nnz)`` sparse randomized SVD kernel
    and one test matrix is shared across all slices, exactly the historical
    ``compress_sparse`` behaviour.  Any other strategy or precision
    densifies each batch and routes it through the compression planner —
    sparse inputs gain ``strategy``/``precision`` selection this way, at
    densified-batch cost.
    """

    resident = False
    default_batch_slices = 64
    shared_sketch = True
    phase_name = "approximation-sparse"

    def __init__(self, tensor: object) -> None:
        from ..sparse.coo import SparseTensor

        if not isinstance(tensor, SparseTensor):
            raise ShapeError(
                f"SparseSource needs a SparseTensor, got {type(tensor).__name__}"
            )
        if len(tensor.shape) < 2:
            raise ShapeError("SparseSource requires order >= 2")
        self._tensor = tensor
        self._shape = tuple(int(d) for d in tensor.shape)
        self._dtype = tensor.values.dtype
        self._sparse_kernel = True

    @property
    def tensor(self) -> object:
        return self._tensor

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        lo, hi = self._check_range(start, stop)
        mats = self._tensor.slice_matrices(lo, hi)
        return np.stack([np.asarray(m.todense()) for m in mats])

    def descriptor(self) -> SparseDescriptor:
        return SparseDescriptor(self._tensor)

    def plan(self, rank: int, config: DTuckerConfig) -> CompressionPlan:
        plan = super().plan(rank, config)
        # The O(nnz) per-slice kernel serves the default configuration (it
        # is the historical compress_sparse path, bit for bit); any explicit
        # strategy/precision choice densifies batches through the planner.
        self._sparse_kernel = (
            config.strategy == "rsvd"
            and config.precision == "float64"
            and not config.exact_slice_svd
        )
        if self._sparse_kernel and (plan.method != "rsvd" or plan.device != "cpu"):
            # No Gram shortcut on sparse data: the sparse kernel is always
            # randomized, whatever the dense dispatch would pick — and it
            # runs on host CSR matrices, so a device placement is moot.
            plan = replace(plan, method="rsvd", device="cpu")
        return plan

    def batch_producer(self, plan):
        if self._sparse_kernel:
            # CSR extraction (a Python-level gather over the COO
            # coordinates) overlaps the previous batch's SVDs.
            return lambda bound: self._tensor.slice_matrices(bound[0], bound[1])
        return super().batch_producer(plan)

    def item_costs(self, plan, start, stop):
        # The per-slice work profile: the O(nnz) kernel costs nnz_l sparse
        # GEMM rows plus a dense QR/SVD tail that every non-empty slice
        # pays; densified batches cost nnz-independent dense flops plus a
        # densification gather proportional to nnz_l.
        nnz = self._tensor.slice_nnz()[int(start):int(stop)].astype(float)
        if self._sparse_kernel:
            k = float(max(1, plan.k_eff))
            base = k * k * float(min(self._shape[:2]))
            return nnz * k + np.where(nnz > 0, base, 1.0)
        dense = plan_item_costs(plan, int(stop) - int(start))
        return combine_costs(dense, nnz, io_weight=1.0)

    def compress_batch(self, engine, payload, rank, plan, omega, pool, costs=None):
        if not self._sparse_kernel:
            return super().compress_batch(
                engine, payload, rank, plan, omega, pool, costs
            )
        i1, i2 = self._shape[:2]
        fn = partial(
            _sparse_slice_svd,
            rank=rank,
            omega=omega,
            power_iterations=plan.power_iterations,
            i1=i1,
            i2=i2,
        )
        return _stack_slice_parts(engine.map(fn, payload, costs=costs))

    def process_parts(
        self, engine, rank, plan, bounds, omegas, config, *, stats=None, trace=None
    ):
        if not self._sparse_kernel:
            # Densified planner path: ship whole dense batches as tasks.
            fn = partial(
                _sparse_batch_task,
                descriptor=self.descriptor(),
                rank=rank,
                power_iterations=plan.power_iterations,
                method=plan.method,
                precision=config.precision,
            )
            tasks = [
                (start, stop, omega)
                for (start, stop), omega in zip(bounds, omegas)
            ]
            return engine.map(fn, tasks, costs=self.batch_costs(plan, bounds))
        # Historical sparse fan-out: every CSR slice is an independent task.
        i1, i2 = self._shape[:2]
        fn = partial(
            _sparse_slice_svd,
            rank=rank,
            omega=omegas[0],
            power_iterations=plan.power_iterations,
            i1=i1,
            i2=i2,
        )
        parts = engine.map(
            fn,
            self._tensor.slice_matrices(),
            costs=self.item_costs(plan, 0, self.slice_count),
        )
        return [_stack_slice_parts(parts)]


def _sparse_batch_task(
    task: tuple[int, int, np.ndarray | None],
    *,
    descriptor: SparseDescriptor,
    rank: int,
    power_iterations: int,
    method: str,
    precision: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Densify and compress one sparse batch inside a worker process."""
    start, stop, omega = task
    stack = descriptor.open().read_batch(start, stop)
    if precision == "float32":
        stack = np.ascontiguousarray(stack, dtype=np.float32)
    norms = slab_norms(stack)
    if method == "exact":
        u, s, vt, _ = plan_exact_chunk(stack, rank=rank)
    elif method == "gram" or omega is None:
        u, s, vt = batched_svd_via_gram(stack, rank)
    else:
        u, s, vt = batched_rsvd(
            stack, rank, power_iterations=power_iterations, test_matrix=omega
        )
    return u, s, vt, norms


@dataclass(frozen=True)
class BlockDescriptor:
    """Descriptor of a :class:`BlockSource` (ships the block arrays)."""

    blocks: tuple[np.ndarray, ...]

    def open(self) -> "BlockSource":
        return BlockSource(self.blocks)


class BlockSource(SliceSourceBase):
    """A virtual concatenation of blocks along the last (temporal) mode.

    Because the slice index runs in Fortran order over modes ``3..N``, the
    last mode varies slowest — each block therefore owns a contiguous run
    of slices, and the concatenation never materialises.  This is the
    streaming extension's view of an update: ``BlockSource([block])`` for
    one :meth:`~repro.core.streaming.StreamingDTucker.partial_fit`, or all
    accumulated blocks for a one-shot reference fit.

    Single-block batches that fall inside one block are served as views
    (bit-identical to :class:`DenseSource` over that block); batches that
    straddle block boundaries are concatenated copies.

    Blocks may mix resident arrays and memory-mapped ones (``np.memmap``,
    e.g. ``np.load(..., mmap_mode="r")``); slices backed by a memmap carry
    an IO surcharge in the scheduling cost model so chunk boundaries and
    the dynamic queue account for their page reads.
    """

    #: Relative scheduling-cost surcharge of a memmap-backed slice over a
    #: resident one (a cold page read roughly doubles the slice's cost).
    memmap_io_surcharge: float = 1.0

    def __init__(self, blocks: Sequence[np.ndarray]) -> None:
        mapped = [isinstance(b, np.memmap) for b in blocks]
        arrays = [as_tensor(b, min_order=2, name="block") for b in blocks]
        if not arrays:
            raise ShapeError("BlockSource needs at least one block")
        lead = arrays[0].shape[:-1]
        for b in arrays[1:]:
            if b.ndim != arrays[0].ndim or b.shape[:-1] != lead:
                raise ShapeError(
                    f"all blocks must agree on every mode but the last; "
                    f"got {arrays[0].shape} and {b.shape}"
                )
        self._blocks = tuple(arrays)
        self._mapped = tuple(mapped)
        self._stacks = [np.moveaxis(to_slices(b), 2, 0) for b in arrays]
        self._offsets = np.cumsum([0] + [s.shape[0] for s in self._stacks])
        self._shape = tuple(int(d) for d in lead) + (
            int(sum(b.shape[-1] for b in arrays)),
        )
        self._dtype = arrays[0].dtype

    def item_costs(self, plan, start, stop):
        if not any(self._mapped):
            return None
        per_slice = np.empty(self.slice_count)
        for stack, offset, mapped in zip(
            self._stacks, self._offsets[:-1], self._mapped
        ):
            lo, hi = int(offset), int(offset) + stack.shape[0]
            per_slice[lo:hi] = 1.0 + (self.memmap_io_surcharge if mapped else 0.0)
        return per_slice[int(start):int(stop)]

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        lo, hi = self._check_range(start, stop)
        pieces = []
        for stack, offset in zip(self._stacks, self._offsets[:-1]):
            a = max(lo - int(offset), 0)
            b = min(hi - int(offset), stack.shape[0])
            if a < b:
                pieces.append(stack[a:b])
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)

    def descriptor(self) -> BlockDescriptor:
        return BlockDescriptor(self._blocks)


# -- the unified compression pipeline ---------------------------------------

def _draw_omegas(
    plan: CompressionPlan,
    bounds: list[tuple[int, int]],
    i2: int,
    rng: "int | np.random.Generator | None",
    *,
    shared: bool,
) -> list[np.ndarray | None]:
    """Pre-draw every batch's test matrix in batch order from one stream.

    These are the exact draws the sequential loop would make, so results
    do not depend on which worker (or pipeline stage) compresses which
    batch.  ``shared=True`` draws once and hands every batch the same
    matrix (results then do not depend on the batching either).
    Non-randomized methods draw nothing.
    """
    if plan.method != "rsvd":
        return [None] * len(bounds)
    gen = default_rng(rng)
    if shared:
        omega = gen.standard_normal((i2, plan.k_eff))
        return [omega] * len(bounds)
    return [gen.standard_normal((i2, plan.k_eff)) for _ in bounds]


def compress_source(
    source: SliceSource,
    rank: int,
    *,
    batch_slices: int | None = None,
    config: DTuckerConfig | None = None,
    engine: "ExecutionBackend | str | None" = None,
    rng: "int | np.random.Generator | None" = None,
    chunk_size: int | None = None,
    schedule: str | None = None,
    stats: KernelStats | None = None,
) -> SliceSVD:
    """Run the approximation phase on any :class:`SliceSource`.

    This is *the* compression pipeline: ``compress``, ``compress_npy`` and
    ``compress_sparse`` are thin wrappers that construct the matching
    source, and :class:`~repro.core.fit_pipeline.FitPipeline` calls it for
    every fit.  The flow, identical for every source:

    1. plan the method once per slab shape (``source.plan`` →
       :mod:`repro.kernels.compress_plan`),
    2. pre-draw all Gaussian test matrices in batch order,
    3. fan batches out — inline for resident sources (the engine's chunked
       dispatch parallelises within each slab), through a double-buffered
       :class:`~repro.engine.pipeline.Prefetcher` for non-resident ones,
       or as picklable batch descriptors on the process backend,
    4. concatenate the per-batch triples into one :class:`SliceSVD`.

    Parameters
    ----------
    source:
        Any :class:`SliceSource` implementation.
    rank:
        Per-slice truncation rank ``K <= min(I1, I2)``.
    batch_slices:
        Slices per batch (default: the source's preference — whole tensor
        for resident sources, 64 for file/sparse-backed ones).
    config:
        Solver configuration (strategy/precision, randomized-SVD knobs,
        seed, execution knobs).
    engine:
        Execution backend spec — a live backend (reused, not closed), a
        name, or ``None`` to resolve from ``config`` and the environment.
    rng:
        Seed or generator for test-matrix draws; overrides ``config.seed``.
    chunk_size:
        Explicit engine chunk-size override.
    schedule:
        Scheduling-policy override (``"static"``/``"dynamic"``/``"auto"``);
        ``None`` resolves from ``config.schedule`` and the environment.
        The source's :meth:`~SliceSourceBase.item_costs` cost model feeds
        the scheduler either way.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats` accumulating
        planner decisions (``plan:<method>``) and test-matrix draws
        (``sketch`` — at most one per batch, exactly one per source when
        ``shared_sketch``).

    Returns
    -------
    SliceSVD
        The compressed representation, including the exact ``‖X‖_F²``.
    """
    cfg = config if config is not None else DTuckerConfig()
    shape = tuple(int(d) for d in source.shape)
    if len(shape) < 2:
        raise ShapeError(f"source must have order >= 2, got shape {shape}")
    i1, i2 = shape[:2]
    k = check_positive_int(rank, name="rank")
    if k > min(i1, i2):
        raise RankError(f"slice rank {k} exceeds min(I1, I2) = {min(i1, i2)}")
    count = slice_count(shape)
    default_b = source.default_batch_slices
    b = (
        batch_slices
        if batch_slices is not None
        else (default_b if default_b is not None else count)
    )
    b = check_positive_int(b, name="batch_slices")

    plan = source.plan(k, cfg)
    # The final batch may be shorter than ``batch_slices`` (and a single
    # short batch covers the whole tensor when batch_slices > L).
    bounds = [(start, min(start + b, count)) for start in range(0, count, b)]
    omegas = _draw_omegas(
        plan, bounds, i2, rng if rng is not None else cfg.seed,
        shared=source.shared_sketch,
    )
    if stats is not None:
        # One decision (and at most one draw) per batch; shared-sketch
        # sources decide and draw exactly once however many batches run.
        for _ in range(1 if source.shared_sketch else len(bounds)):
            stats.record_miss(f"plan:{plan.method}")
            if plan.method == "rsvd":
                stats.record_miss("sketch")

    with backend_scope(
        engine, chunk_size=chunk_size, schedule=schedule, config=cfg
    ) as eng, eng.phase(source.phase_name) as trace:
        parts = None
        if eng.name == "process":
            parts = source.process_parts(
                eng, k, plan, bounds, omegas, cfg, stats=stats, trace=trace
            )
        if parts is None:
            pool = BufferPool()
            producer = source.batch_producer(plan)
            if source.resident:
                parts = [
                    source.compress_batch(
                        eng,
                        producer(bound),
                        k,
                        plan,
                        omega,
                        pool,
                        source.item_costs(plan, bound[0], bound[1]),
                    )
                    for bound, omega in zip(bounds, omegas)
                ]
            else:
                # Double-buffered pipeline: the background thread gathers
                # batch b+1 while batch b is factored; the lookahead deepens
                # adaptively (within a 4-batch memory budget) when the IO
                # fails to keep up with the factorization.
                parts = []
                with Prefetcher(producer, bounds, max_depth=4) as pf:
                    for payload, (omega, bound) in zip(pf, zip(omegas, bounds)):
                        parts.append(
                            source.compress_batch(
                                eng,
                                payload,
                                k,
                                plan,
                                omega,
                                pool,
                                source.item_costs(plan, bound[0], bound[1]),
                            )
                        )
                    trace.annotate_io(
                        produce_seconds=pf.produce_seconds,
                        wait_seconds=pf.wait_seconds,
                    )
            if pool.bytes_reused:
                trace.annotate_cache(bytes_reused=pool.bytes_reused)
        if plan.device != "cpu":
            # The device executor uploads each slab (plus the test matrix)
            # and downloads the factor triples; the byte totals follow
            # exactly from the plan and geometry, so they are tallied here
            # where the phase trace lives.
            itemsize = np.dtype(plan.compute_dtype).itemsize
            h2d = count * i1 * i2 * itemsize
            if plan.method == "rsvd":
                h2d += len(bounds) * i2 * plan.k_eff * itemsize
            d2h = count * (i1 + i2 + 1) * k * itemsize
            trace.annotate_xfer(
                h2d_bytes=int(h2d), d2h_bytes=int(d2h), device=plan.device
            )
            if stats is not None:
                stats.record_transfer("h2d", int(h2d))
                stats.record_transfer("d2h", int(d2h))

    if len(parts) == 1:
        u, s, vt, slice_norms = parts[0]
        slice_norms = np.asarray(slice_norms, dtype=float)
    else:
        u = np.concatenate([p[0] for p in parts], axis=0)
        s = np.concatenate([p[1] for p in parts], axis=0)
        vt = np.concatenate([p[2] for p in parts], axis=0)
        slice_norms = np.concatenate(
            [np.asarray(p[3], dtype=float) for p in parts]
        )
    return SliceSVD(
        u=u,
        s=s,
        vt=vt,
        shape=shape,
        norm_squared=float(slice_norms.sum()),
        slice_norms_squared=slice_norms,
    )
