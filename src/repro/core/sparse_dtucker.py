"""D-Tucker for sparse tensors — the paper's stated future-work extension.

The slice representation makes the extension natural: *only the
approximation phase touches the data*.  Here each sparse slice
``X_l ∈ R^{I1×I2}`` is compressed with a randomized SVD whose products are
sparse-matrix × dense-matrix (cost ``O(nnz_l · (K + p))`` instead of
``O(I1·I2·(K+p))``), producing exactly the same
:class:`~repro.core.slice_svd.SliceSVD` object the dense pipeline builds.
The initialization and iteration phases then run unchanged — they never see
the original tensor.

For very sparse inputs this is asymptotically cheaper than densifying:
compression scales with ``nnz``, not with ``Π I``.

Both entry points are thin adapters over the unified source pipeline: the
tensor is wrapped in a :class:`~repro.core.sources.SparseSource` and handed
to :func:`~repro.core.sources.compress_source` (for :func:`compress_sparse`)
or a :class:`~repro.core.fit_pipeline.FitPipeline` (for
:func:`sparse_dtucker`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine import ExecutionBackend
from ..kernels.stats import KernelStats
from ..sparse.coo import SparseTensor
from ..validation import check_ranks
from .config import UNSET, DTuckerConfig, resolve_config
from .fit_pipeline import FitPipeline
from .result import TuckerResult
from .slice_svd import SliceSVD
from .sources import SparseSource, compress_source

__all__ = ["compress_sparse", "sparse_dtucker", "SparseDTuckerFit"]


def compress_sparse(
    tensor: SparseTensor,
    rank: int,
    *,
    batch_slices: int = 64,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    rng: int | np.random.Generator | None = None,
    stats: KernelStats | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
) -> SliceSVD:
    """Approximation phase on a sparse tensor: per-slice randomized SVDs.

    Equivalent to ``compress_source(SparseSource(tensor), rank, ...)`` —
    kept as a convenience entry point.

    Parameters
    ----------
    tensor:
        COO sparse tensor of order ``>= 2``.
    rank:
        Per-slice truncation rank ``K <= min(I1, I2)``.
    batch_slices:
        Slices extracted and compressed per pipeline round (serial/thread
        backends): CSR extraction of batch ``b+1`` overlaps the SVDs of
        batch ``b`` through a double-buffered prefetcher, and at most two
        batches of CSR slices are alive at once.  The process backend
        materialises all slices and fans them out as independent tasks.
    config:
        Solver configuration; on the default strategy every matrix product
        is sparse × dense, so each slice costs ``O(nnz_l · (K + p))``.  A
        non-default ``strategy``/``precision`` densifies each batch and
        routes it through the compression planner instead.
    engine:
        Execution backend spec; slices are independent tasks mapped over
        the backend's workers.
    rng:
        Seed or generator (one Gaussian test matrix shared across slices,
        as in the dense batched path); overrides ``config.seed``.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats`; the single
        shared test-matrix draw is recorded as one ``sketch`` miss.
    oversampling, power_iterations:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    SliceSVD
        Identical in structure to the dense pipeline's output, including
        the exact ``‖X‖_F²``.
    """
    cfg = resolve_config(
        config,
        where="compress_sparse",
        oversampling=oversampling,
        power_iterations=power_iterations,
    )
    return compress_source(
        SparseSource(tensor),
        rank,
        batch_slices=batch_slices,
        config=cfg,
        engine=engine,
        rng=rng,
        stats=stats,
    )


class SparseDTuckerFit:
    """Result bundle of :func:`sparse_dtucker` (mirrors ``DTucker`` attrs)."""

    def __init__(
        self,
        result: TuckerResult,
        slice_svd: SliceSVD,
        timings,
        history: list[float],
        converged: bool,
        n_iters: int,
        kernel_stats=None,
    ) -> None:
        self.result_ = result
        self.slice_svd_ = slice_svd
        self.timings_ = timings
        self.history_ = history
        self.converged_ = converged
        self.n_iters_ = n_iters
        self.trace_ = result.trace_
        #: Sweep-workspace cache accounting for the iteration phase
        #: (:class:`repro.kernels.stats.KernelStats`).
        self.kernel_stats_ = kernel_stats


def sparse_dtucker(
    tensor: SparseTensor,
    ranks: int | Sequence[int],
    *,
    slice_rank: int | None = None,
    seed: int | None = None,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
    max_iters: object = UNSET,
    tol: object = UNSET,
) -> SparseDTuckerFit:
    """D-Tucker on a sparse tensor: sparse compression + compressed ALS.

    Parameters mirror :class:`repro.core.dtucker.DTucker`; slice modes are
    fixed to ``(0, 1)`` (permute the COO coordinates first if needed).
    ``oversampling``/``power_iterations``/``max_iters``/``tol`` are
    deprecated — pass ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    SparseDTuckerFit
        With the fitted :class:`TuckerResult`, the reusable compressed
        representation, per-phase timings, and iteration metadata.
    """
    from dataclasses import replace

    cfg = resolve_config(
        config,
        where="sparse_dtucker",
        oversampling=oversampling,
        power_iterations=power_iterations,
        max_iters=max_iters,
        tol=tol,
    )
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    rank_tuple = check_ranks(ranks, tensor.shape)
    pipeline = FitPipeline(
        rank_tuple,
        slice_rank=slice_rank,
        config=cfg,
        engine=engine,  # type: ignore[arg-type]  # specs resolve per call
        strict_slice_rank=False,
    )
    fit = pipeline.fit(SparseSource(tensor))
    return SparseDTuckerFit(
        result=fit.result,
        slice_svd=fit.slice_svd,
        timings=fit.timings,
        history=fit.history,
        converged=fit.converged,
        n_iters=fit.n_iters,
        kernel_stats=fit.kernel_stats,
    )
