"""D-Tucker for sparse tensors — the paper's stated future-work extension.

The slice representation makes the extension natural: *only the
approximation phase touches the data*.  Here each sparse slice
``X_l ∈ R^{I1×I2}`` is compressed with a randomized SVD whose products are
sparse-matrix × dense-matrix (cost ``O(nnz_l · (K + p))`` instead of
``O(I1·I2·(K+p))``), producing exactly the same
:class:`~repro.core.slice_svd.SliceSVD` object the dense pipeline builds.
The initialization and iteration phases then run unchanged — they never see
the original tensor.

For very sparse inputs this is asymptotically cheaper than densifying:
compression scales with ``nnz``, not with ``Π I``.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np
from ..engine import ExecutionBackend, Prefetcher, backend_scope
from ..exceptions import RankError
from ..kernels.stats import KernelStats
from ..linalg.svd import sign_fix
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.random import default_rng
from ..tensor.slices import slice_count
from ..validation import check_positive_int, check_ranks
from .config import UNSET, DTuckerConfig, resolve_config
from .initialization import initialize
from .iteration import als_sweeps
from .result import TuckerResult
from .slice_svd import SliceSVD
from ..sparse.coo import SparseTensor

__all__ = ["compress_sparse", "sparse_dtucker", "SparseDTuckerFit"]


def _sparse_slice_svd(
    a: object,
    *,
    rank: int,
    omega: np.ndarray,
    power_iterations: int,
    i1: int,
    i2: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Randomized SVD of one sparse slice (module level for pickling).

    Returns zero-padded ``(u, s, vt, norm²)`` of uniform shapes
    ``(I1, K)``, ``(K,)``, ``(K, I2)`` so the caller can stack results
    regardless of per-slice nnz.
    """
    u_out = np.zeros((i1, rank))
    s_out = np.zeros(rank)
    vt_out = np.zeros((rank, i2))
    norm = float(a.data @ a.data) if a.nnz else 0.0  # type: ignore[attr-defined]
    if a.nnz == 0:  # type: ignore[attr-defined]
        # An all-zero slice compresses to zero triples; leave the
        # (orthonormality-irrelevant) factors at zero.
        return u_out, s_out, vt_out, norm
    y = a @ omega  # type: ignore[operator]
    q, _ = np.linalg.qr(y)
    for _ in range(max(0, int(power_iterations))):
        z, _ = np.linalg.qr(a.T @ q)  # type: ignore[attr-defined]
        q, _ = np.linalg.qr(a @ z)  # type: ignore[operator]
    b = q.T @ a  # dense (size, I2)
    ub, s, vt = np.linalg.svd(np.asarray(b), full_matrices=False)
    u = q @ ub[:, :rank]
    u, vt_fixed = sign_fix(u, vt[:rank])
    assert vt_fixed is not None
    u_out[:, : u.shape[1]] = u
    s_out[: s[:rank].shape[0]] = s[:rank]
    vt_out[: vt_fixed.shape[0]] = vt_fixed
    return u_out, s_out, vt_out, norm


def _extract_slices(tensor: SparseTensor, bound: tuple[int, int]) -> list:
    """CSR slices for one ``[start, stop)`` batch (the pipeline's producer)."""
    return tensor.slice_matrices(bound[0], bound[1])


def compress_sparse(
    tensor: SparseTensor,
    rank: int,
    *,
    batch_slices: int = 64,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    rng: int | np.random.Generator | None = None,
    stats: KernelStats | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
) -> SliceSVD:
    """Approximation phase on a sparse tensor: per-slice randomized SVDs.

    Parameters
    ----------
    tensor:
        COO sparse tensor of order ``>= 2``.
    rank:
        Per-slice truncation rank ``K <= min(I1, I2)``.
    batch_slices:
        Slices extracted and compressed per pipeline round (serial/thread
        backends): CSR extraction of batch ``b+1`` overlaps the SVDs of
        batch ``b`` through a double-buffered prefetcher, and at most two
        batches of CSR slices are alive at once.  The process backend
        materialises all slices and fans them out as independent tasks.
    config:
        Solver configuration; every matrix product is sparse × dense, so
        each slice costs ``O(nnz_l · (K + p))``.
    engine:
        Execution backend spec; slices are independent tasks mapped over
        the backend's workers.
    rng:
        Seed or generator (one Gaussian test matrix shared across slices,
        as in the dense batched path); overrides ``config.seed``.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats`; the single
        shared test-matrix draw is recorded as one ``sketch`` miss.
    oversampling, power_iterations:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    SliceSVD
        Identical in structure to the dense pipeline's output, including
        the exact ``‖X‖_F²``.
    """
    cfg = resolve_config(
        config,
        where="compress_sparse",
        oversampling=oversampling,
        power_iterations=power_iterations,
    )
    k = check_positive_int(rank, name="rank")
    b = check_positive_int(batch_slices, name="batch_slices")
    i1, i2 = tensor.shape[:2]
    if k > min(i1, i2):
        raise RankError(f"slice rank {k} exceeds min(I1, I2) = {min(i1, i2)}")
    gen = default_rng(rng if rng is not None else cfg.seed)
    size = min(k + max(0, int(cfg.oversampling)), min(i1, i2))
    omega = gen.standard_normal((i2, size))
    if stats is not None:
        stats.record_miss("plan:rsvd")
        stats.record_miss("sketch")

    fn = partial(
        _sparse_slice_svd,
        rank=k,
        omega=omega,
        power_iterations=int(cfg.power_iterations),
        i1=i1,
        i2=i2,
    )
    count = slice_count(tensor.shape)
    with backend_scope(engine, config=cfg) as eng, eng.phase(
        "approximation-sparse"
    ) as trace:
        if eng.name == "process":
            parts = eng.map(fn, tensor.slice_matrices())
        else:
            # Pipeline: extract the next batch of CSR slices (a Python-level
            # gather over the COO coordinates) while the current batch's
            # SVDs run.  The shared omega makes results independent of the
            # batching.
            bounds = [
                (start, min(start + b, count)) for start in range(0, count, b)
            ]
            producer = partial(_extract_slices, tensor)
            parts = []
            with Prefetcher(producer, bounds) as pf:
                for batch in pf:
                    parts.extend(eng.map(fn, batch))
                trace.annotate_io(
                    produce_seconds=pf.produce_seconds,
                    wait_seconds=pf.wait_seconds,
                )
    slice_norms = np.array([p[3] for p in parts])
    return SliceSVD(
        u=np.stack([p[0] for p in parts]),
        s=np.stack([p[1] for p in parts]),
        vt=np.stack([p[2] for p in parts]),
        shape=tensor.shape,
        norm_squared=float(slice_norms.sum()),
        slice_norms_squared=slice_norms,
    )


class SparseDTuckerFit:
    """Result bundle of :func:`sparse_dtucker` (mirrors ``DTucker`` attrs)."""

    def __init__(
        self,
        result: TuckerResult,
        slice_svd: SliceSVD,
        timings: PhaseTimings,
        history: list[float],
        converged: bool,
        n_iters: int,
        kernel_stats=None,
    ) -> None:
        self.result_ = result
        self.slice_svd_ = slice_svd
        self.timings_ = timings
        self.history_ = history
        self.converged_ = converged
        self.n_iters_ = n_iters
        self.trace_ = result.trace_
        #: Sweep-workspace cache accounting for the iteration phase
        #: (:class:`repro.kernels.stats.KernelStats`).
        self.kernel_stats_ = kernel_stats


def sparse_dtucker(
    tensor: SparseTensor,
    ranks: int | Sequence[int],
    *,
    slice_rank: int | None = None,
    seed: int | None = None,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
    max_iters: object = UNSET,
    tol: object = UNSET,
) -> SparseDTuckerFit:
    """D-Tucker on a sparse tensor: sparse compression + compressed ALS.

    Parameters mirror :class:`repro.core.dtucker.DTucker`; slice modes are
    fixed to ``(0, 1)`` (permute the COO coordinates first if needed).
    ``oversampling``/``power_iterations``/``max_iters``/``tol`` are
    deprecated — pass ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    SparseDTuckerFit
        With the fitted :class:`TuckerResult`, the reusable compressed
        representation, per-phase timings, and iteration metadata.
    """
    from dataclasses import replace

    cfg = resolve_config(
        config,
        where="sparse_dtucker",
        oversampling=oversampling,
        power_iterations=power_iterations,
        max_iters=max_iters,
        tol=tol,
    )
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    rank_tuple = check_ranks(ranks, tensor.shape)
    k = (
        int(slice_rank)
        if slice_rank is not None
        else min(max(rank_tuple[0], rank_tuple[1]), min(tensor.shape[:2]))
    )
    timings = PhaseTimings()
    rng = default_rng(cfg.seed)
    with backend_scope(engine, config=cfg) as eng:
        with Timer() as t_approx:
            ssvd = compress_sparse(tensor, k, config=cfg, engine=eng, rng=rng)
        timings.add("approximation", t_approx.seconds)
        with Timer() as t_init:
            _, factors = initialize(ssvd, rank_tuple)
        timings.add("initialization", t_init.seconds)
        with Timer() as t_iter:
            out = als_sweeps(ssvd, rank_tuple, factors, config=cfg, engine=eng)
        timings.add("iteration", t_iter.seconds)
        traces = list(eng.traces)
    result = TuckerResult(
        core=out.core,
        factors=out.factors,
        elapsed=timings.total,
        trace_=traces,
    )
    return SparseDTuckerFit(
        result=result,
        slice_svd=ssvd,
        timings=timings,
        history=out.errors,
        converged=out.converged,
        n_iters=out.n_iters,
        kernel_stats=out.kernel_stats,
    )
