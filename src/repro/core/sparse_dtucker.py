"""D-Tucker for sparse tensors — the paper's stated future-work extension.

The slice representation makes the extension natural: *only the
approximation phase touches the data*.  Here each sparse slice
``X_l ∈ R^{I1×I2}`` is compressed with a randomized SVD whose products are
sparse-matrix × dense-matrix (cost ``O(nnz_l · (K + p))`` instead of
``O(I1·I2·(K+p))``), producing exactly the same
:class:`~repro.core.slice_svd.SliceSVD` object the dense pipeline builds.
The initialization and iteration phases then run unchanged — they never see
the original tensor.

For very sparse inputs this is asymptotically cheaper than densifying:
compression scales with ``nnz``, not with ``Π I``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from ..exceptions import RankError
from ..linalg.svd import sign_fix
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.random import default_rng
from ..validation import check_positive_int, check_ranks
from .initialization import initialize
from .iteration import als_sweeps
from .result import TuckerResult
from .slice_svd import SliceSVD
from ..sparse.coo import SparseTensor

__all__ = ["compress_sparse", "sparse_dtucker", "SparseDTuckerFit"]


def compress_sparse(
    tensor: SparseTensor,
    rank: int,
    *,
    oversampling: int = 10,
    power_iterations: int = 1,
    rng: int | np.random.Generator | None = None,
) -> SliceSVD:
    """Approximation phase on a sparse tensor: per-slice randomized SVDs.

    Parameters
    ----------
    tensor:
        COO sparse tensor of order ``>= 2``.
    rank:
        Per-slice truncation rank ``K <= min(I1, I2)``.
    oversampling, power_iterations:
        Randomized-SVD parameters; every matrix product is
        sparse × dense, so each slice costs ``O(nnz_l · (K + p))``.
    rng:
        Seed or generator (one Gaussian test matrix shared across slices,
        as in the dense batched path).

    Returns
    -------
    SliceSVD
        Identical in structure to the dense pipeline's output, including
        the exact ``‖X‖_F²``.
    """
    k = check_positive_int(rank, name="rank")
    i1, i2 = tensor.shape[:2]
    if k > min(i1, i2):
        raise RankError(f"slice rank {k} exceeds min(I1, I2) = {min(i1, i2)}")
    gen = default_rng(rng)
    size = min(k + max(0, int(oversampling)), min(i1, i2))
    omega = gen.standard_normal((i2, size))

    slices = tensor.slice_matrices()
    u_out = np.zeros((len(slices), i1, k))
    s_out = np.zeros((len(slices), k))
    vt_out = np.zeros((len(slices), k, i2))
    slice_norms = np.zeros(len(slices))
    for l, a in enumerate(slices):
        slice_norms[l] = float(a.data @ a.data) if a.nnz else 0.0
        if a.nnz == 0:
            # An all-zero slice compresses to zero triples; leave the
            # (orthonormality-irrelevant) factors at zero.
            continue
        y = a @ omega
        q, _ = np.linalg.qr(y)
        for _ in range(max(0, int(power_iterations))):
            z, _ = np.linalg.qr(a.T @ q)
            q, _ = np.linalg.qr(a @ z)
        b = q.T @ a  # dense (size, I2)
        ub, s, vt = np.linalg.svd(np.asarray(b), full_matrices=False)
        u = q @ ub[:, :k]
        u, vt_fixed = sign_fix(u, vt[:k])
        u_out[l, :, : u.shape[1]] = u
        s_out[l, : s[:k].shape[0]] = s[:k]
        assert vt_fixed is not None
        vt_out[l, : vt_fixed.shape[0]] = vt_fixed
    return SliceSVD(
        u=u_out,
        s=s_out,
        vt=vt_out,
        shape=tensor.shape,
        norm_squared=float(slice_norms.sum()),
        slice_norms_squared=slice_norms,
    )


class SparseDTuckerFit:
    """Result bundle of :func:`sparse_dtucker` (mirrors ``DTucker`` attrs)."""

    def __init__(
        self,
        result: TuckerResult,
        slice_svd: SliceSVD,
        timings: PhaseTimings,
        history: list[float],
        converged: bool,
        n_iters: int,
    ) -> None:
        self.result_ = result
        self.slice_svd_ = slice_svd
        self.timings_ = timings
        self.history_ = history
        self.converged_ = converged
        self.n_iters_ = n_iters


def sparse_dtucker(
    tensor: SparseTensor,
    ranks: int | Sequence[int],
    *,
    slice_rank: int | None = None,
    oversampling: int = 10,
    power_iterations: int = 1,
    max_iters: int = 50,
    tol: float = 1e-4,
    seed: int | None = None,
) -> SparseDTuckerFit:
    """D-Tucker on a sparse tensor: sparse compression + compressed ALS.

    Parameters mirror :class:`repro.core.dtucker.DTucker`; slice modes are
    fixed to ``(0, 1)`` (permute the COO coordinates first if needed).

    Returns
    -------
    SparseDTuckerFit
        With the fitted :class:`TuckerResult`, the reusable compressed
        representation, per-phase timings, and iteration metadata.
    """
    rank_tuple = check_ranks(ranks, tensor.shape)
    k = (
        int(slice_rank)
        if slice_rank is not None
        else min(max(rank_tuple[0], rank_tuple[1]), min(tensor.shape[:2]))
    )
    timings = PhaseTimings()
    rng = default_rng(seed)
    with Timer() as t_approx:
        ssvd = compress_sparse(
            tensor,
            k,
            oversampling=oversampling,
            power_iterations=power_iterations,
            rng=rng,
        )
    timings.add("approximation", t_approx.seconds)
    with Timer() as t_init:
        _, factors = initialize(ssvd, rank_tuple)
    timings.add("initialization", t_init.seconds)
    with Timer() as t_iter:
        out = als_sweeps(
            ssvd, rank_tuple, factors, max_iters=max_iters, tol=tol
        )
    timings.add("iteration", t_iter.seconds)
    return SparseDTuckerFit(
        result=TuckerResult(core=out.core, factors=out.factors),
        slice_svd=ssvd,
        timings=timings,
        history=out.errors,
        converged=out.converged,
        n_iters=out.n_iters,
    )
