"""Automatic rank selection from the compressed slice representation.

Choosing Tucker ranks is the perennial practical question.  Because the
:class:`~repro.core.slice_svd.SliceSVD` already carries (approximate)
per-mode spectra, ranks meeting a target reconstruction error can be chosen
*without touching the raw tensor*, using the classic (ST-)HOSVD truncation
argument: if the discarded tail energy of mode ``n``'s unfolding is
``t_n``, the rank-``(J_1,…,J_N)`` HOSVD error is at most ``Σ_n t_n``.
Splitting the error budget evenly across modes gives a simple, safe rule —
the same one `suggest_ranks` implements here on compressed data.

All estimates include the (fixed) slice-compression residual
``‖X‖² − ‖X̃‖²``, so they are calibrated against the *original* tensor.
"""

from __future__ import annotations

import numpy as np

from ..validation import check_probability
from ._ops import w_tensor
from .initialization import _scaled_left_blocks, _scaled_right_blocks
from .slice_svd import SliceSVD
from ..linalg.svd import leading_left_singular_vectors
from ..tensor.unfold import unfold

__all__ = ["mode_spectra", "suggest_ranks", "estimate_error"]


def _left_spectrum(blocks: np.ndarray) -> np.ndarray:
    """Descending singular values of a (possibly very wide) block matrix."""
    m, n = blocks.shape
    if n > 2 * m:
        g = blocks @ blocks.T
        w = np.linalg.eigvalsh((g + g.T) / 2.0)
        return np.sqrt(np.clip(w[::-1], 0.0, None))
    return np.linalg.svd(blocks, compute_uv=False)


def mode_spectra(ssvd: SliceSVD) -> list[np.ndarray]:
    """Per-mode singular-value estimates of the compressed tensor.

    Mode 1 uses the spectrum of ``[U_1Σ_1 ⋯ U_LΣ_L]`` (which shares the
    leading spectrum of the mode-1 unfolding because every ``V_l`` is
    orthonormal); mode 2 the ``V`` side; modes ``≥ 3`` the unfoldings of the
    small projected tensor ``W``, built with rank-``K`` bases so no energy
    beyond the compression itself is discarded.

    Returns
    -------
    list of numpy.ndarray
        Descending singular values per mode; entries are capped at the
        compression rank ``K`` for the slice modes.
    """
    spectra = [
        _left_spectrum(_scaled_left_blocks(ssvd)),
        _left_spectrum(_scaled_right_blocks(ssvd)),
    ]
    if ssvd.order > 2:
        i1, i2 = ssvd.slice_shape
        r1 = min(i1, ssvd.rank)
        r2 = min(i2, ssvd.rank)
        a1 = leading_left_singular_vectors(_scaled_left_blocks(ssvd), r1)
        a2 = leading_left_singular_vectors(_scaled_right_blocks(ssvd), r2)
        w = w_tensor(ssvd, a1, a2)
        for n in range(2, ssvd.order):
            spectra.append(np.linalg.svd(unfold(w, n), compute_uv=False))
    return spectra


def estimate_error(ssvd: SliceSVD, ranks: tuple[int, ...]) -> float:
    """Upper-bound estimate of the rank-``ranks`` reconstruction error.

    The HOSVD bound ``Σ_n (tail energy of mode n)`` plus the compression
    residual, normalised by ``‖X‖²``.  Being an upper bound, it is safe for
    budget checks (the realised ALS error is typically noticeably smaller).
    """
    spectra = mode_spectra(ssvd)
    if len(ranks) != len(spectra):
        from ..exceptions import RankError

        raise RankError(
            f"expected {len(spectra)} ranks for an order-{len(spectra)} "
            f"tensor, got {len(ranks)}"
        )
    tail = 0.0
    for s, j in zip(spectra, ranks):
        tail += float(np.sum(s[int(j):] ** 2))
    compression = max(ssvd.norm_squared - ssvd.approx_norm_squared(), 0.0)
    return float(min((tail + compression) / ssvd.norm_squared, 1.0))


def suggest_ranks(
    ssvd: SliceSVD,
    target_error: float,
    *,
    max_rank: int | None = None,
) -> tuple[int, ...]:
    """Smallest per-mode ranks whose estimated error meets ``target_error``.

    Parameters
    ----------
    ssvd:
        Compressed representation (its rank ``K`` caps the slice modes).
    target_error:
        Desired ``‖X − X̂‖²/‖X‖²`` in ``(0, 1]``.
    max_rank:
        Optional cap applied to every mode.

    Returns
    -------
    tuple of int
        One rank per mode.  If the budget is unreachable (e.g. smaller than
        the compression residual), the largest representable ranks are
        returned — callers can verify with :func:`estimate_error`.
    """
    eps = check_probability(target_error, name="target_error")
    spectra = mode_spectra(ssvd)
    order = len(spectra)
    compression = max(ssvd.norm_squared - ssvd.approx_norm_squared(), 0.0)
    budget = max(eps * ssvd.norm_squared - compression, 0.0) / order
    ranks = []
    for n, s in enumerate(spectra):
        energies = s**2
        # Smallest j with tail energy sum(energies[j:]) <= budget.
        tail = np.concatenate([np.cumsum(energies[::-1])[::-1], [0.0]])
        j = int(np.searchsorted(-tail, -budget))  # first index with tail <= budget
        j = max(j, 1)
        cap = ssvd.shape[n]
        if max_rank is not None:
            cap = min(cap, int(max_rank))
        ranks.append(min(j, cap, len(s)))
    return tuple(ranks)
