"""Configuration object for the D-Tucker solver.

Collecting the knobs in a frozen dataclass keeps :class:`repro.core.dtucker.
DTucker`'s signature honest, makes configurations hashable/loggable, and
gives ablation benchmarks a single place to vary parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ShapeError

__all__ = ["DTuckerConfig"]


@dataclass(frozen=True)
class DTuckerConfig:
    """Hyper-parameters of the three D-Tucker phases.

    Attributes
    ----------
    oversampling:
        Extra test vectors for the randomized slice SVDs (approximation
        phase).  Larger values sharpen the compression at linear extra cost.
    power_iterations:
        Subspace iterations for the randomized slice SVDs.
    max_iters:
        ALS sweep budget for the iteration phase.
    tol:
        Convergence tolerance: sweeps stop when the change of the estimated
        reconstruction error between consecutive sweeps drops below ``tol``.
    exact_slice_svd:
        Use exact truncated SVDs per slice instead of randomized ones —
        slower, used as the accuracy reference in ablations.
    seed:
        Seed for all randomness (slice SVD test matrices).  ``None`` draws
        fresh entropy.
    verbose:
        Emit per-sweep log records via :mod:`logging` (logger ``repro``).
    """

    oversampling: int = 10
    power_iterations: int = 1
    max_iters: int = 50
    tol: float = 1e-4
    exact_slice_svd: bool = False
    seed: int | None = None
    verbose: bool = False

    def __post_init__(self) -> None:
        if int(self.oversampling) < 0:
            raise ShapeError(f"oversampling must be >= 0, got {self.oversampling}")
        if int(self.power_iterations) < 0:
            raise ShapeError(
                f"power_iterations must be >= 0, got {self.power_iterations}"
            )
        if int(self.max_iters) < 1:
            raise ShapeError(f"max_iters must be >= 1, got {self.max_iters}")
        if not float(self.tol) > 0.0:
            raise ShapeError(f"tol must be positive, got {self.tol}")
