"""Configuration object for the D-Tucker solver family.

Collecting the knobs in a frozen dataclass keeps the solver signatures
honest, makes configurations hashable/loggable, and gives ablation
benchmarks a single place to vary parameters.  Since the execution-engine
redesign, :class:`DTuckerConfig` is also the *uniform call surface*: every
public entry point (``DTucker``, ``decompose``, ``compress``,
``tucker_als``, the other baselines, the streaming and sparse variants)
accepts ``config=``, and the historical per-function keyword sets survive
only as deprecation shims routed through :func:`resolve_config`.

All validation happens in ``__post_init__`` so a bad ``oversampling`` or
``tol`` fails at *config construction time* with a message naming the
field — never deep inside a phase.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from ..exceptions import BackendError, ShapeError

__all__ = ["DTuckerConfig", "resolve_config", "UNSET"]


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"


#: Default value for deprecated keyword parameters; any other value means
#: the caller explicitly passed the legacy keyword.
UNSET = _Unset()

#: Backend names accepted by :attr:`DTuckerConfig.backend` (``"auto"``
#: defers to the ``REPRO_BACKEND`` environment variable, then serial).
_BACKEND_CHOICES = ("auto", "serial", "thread", "process")

#: Strategies accepted by :attr:`DTuckerConfig.strategy` for the
#: approximation phase (see :mod:`repro.kernels.compress_plan`).
_STRATEGY_CHOICES = ("rsvd", "auto", "gram", "exact")

#: Compute precisions accepted by :attr:`DTuckerConfig.precision`.
_PRECISION_CHOICES = ("float64", "float32")

#: Scheduling policies accepted by :attr:`DTuckerConfig.schedule` (``"auto"``
#: lets the engine pick: dynamic when oversplitting can help, else static;
#: the ``REPRO_SCHEDULE`` environment variable overrides ``"auto"``).
_SCHEDULE_CHOICES = ("auto", "static", "dynamic")

#: Streaming update modes accepted by :attr:`DTuckerConfig.update` (see
#: :class:`repro.core.streaming.StreamingDTucker` and ``docs/streaming.md``).
_UPDATE_CHOICES = ("refit", "incremental", "sketch")


def _device_choices() -> tuple[str, ...]:
    # Imported lazily: engine.array_api is independent of config, but the
    # config module loads very early and should not pull the facade eagerly.
    from ..engine.array_api import DEVICE_NAMES

    return DEVICE_NAMES


@dataclass(frozen=True)
class DTuckerConfig:
    """Hyper-parameters of the three D-Tucker phases plus execution knobs.

    Attributes
    ----------
    oversampling:
        Extra test vectors for the randomized slice SVDs (approximation
        phase).  Larger values sharpen the compression at linear extra cost.
    power_iterations:
        Subspace iterations for the randomized slice SVDs.
    max_iters:
        ALS sweep budget for the iteration phase.
    tol:
        Convergence tolerance: sweeps stop when the change of the estimated
        reconstruction error between consecutive sweeps drops below ``tol``.
    exact_slice_svd:
        Use exact truncated SVDs per slice instead of randomized ones —
        slower, used as the accuracy reference in ablations.  Overrides
        ``strategy``.
    strategy:
        Slice-SVD algorithm for the approximation phase.  ``"rsvd"``
        (default) is the historical behaviour — randomized SVD with the
        small-short-side Gram shortcut — and stays bit-identical to
        pre-planner releases.  ``"gram"`` and ``"exact"`` force those
        algorithms; ``"auto"`` selects per input from a flop-cost model
        over ``(I1, I2, K, dtype)`` — see
        :func:`repro.kernels.compress_plan.plan_compression`.
    precision:
        Compute dtype for the approximation phase: ``"float64"``
        (default, bit-identical to earlier releases) or ``"float32"``
        (roughly half the memory traffic; norms and error bookkeeping
        still accumulate in float64).  The compressed representation is
        always stored in float64.
    seed:
        Seed for all randomness (slice SVD test matrices).  ``None`` draws
        fresh entropy.
    verbose:
        Emit per-sweep log records via :mod:`logging` (logger ``repro``).
    backend:
        Execution backend for the per-slice/per-mode hot paths:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"`` (default —
        honours the ``REPRO_BACKEND`` environment override, else serial).
        See :mod:`repro.engine`.
    n_workers:
        Worker count for parallel backends; ``None`` defers to
        ``REPRO_WORKERS``, then the CPU count.
    chunk_size:
        Items per engine task; ``None`` splits work evenly across workers
        (one chunk total on the serial backend, reproducing the unchunked
        computation exactly).
    device:
        Array namespace / device the compute phases run on: ``"auto"``
        (default — honours the ``REPRO_DEVICE`` environment override, else
        CPU/NumPy), ``"cpu"`` / ``"numpy"`` (bit-identical to earlier
        releases), ``"cuda"`` (first available of torch-CUDA and CuPy), or
        an explicit namespace name (``"torch"``, ``"torch-cuda"``,
        ``"cupy"``, ``"array-api-strict"``).  Non-NumPy namespaces are
        optional extras resolved lazily; requesting one that is not
        installed raises :class:`~repro.exceptions.BackendError` with an
        actionable message.  See ``docs/devices.md``.
    schedule:
        Chunk-scheduling policy: ``"static"`` (one cost-balanced chunk per
        worker), ``"dynamic"`` (oversplit task queue drained
        work-stealing-style by the persistent pools), or ``"auto"``
        (default — dynamic exactly when more than one worker and more
        items than workers; honours the ``REPRO_SCHEDULE`` environment
        override).  Purely a performance knob: results are bit-identical
        under every policy.  See ``docs/performance.md``.
    update:
        Streaming update mode for :class:`~repro.core.streaming.StreamingDTucker`:
        ``"refit"`` (default — full ALS refit over all accumulated slices,
        bit-identical to earlier releases), ``"incremental"`` (cached
        projections carried across updates, O(block) per append), or
        ``"sketch"`` (incremental plus frequent-directions refresh of the
        non-temporal factors).  Ignored by the batch fit paths.  See
        ``docs/streaming.md``.
    window:
        Sliding-window length for streaming fits: keep only the newest
        ``window`` temporal steps, evicting the oldest in O(evicted).
        ``None`` (default) keeps the full history.
    decay:
        Exponential down-weighting ``γ ∈ (0, 1]`` per streamed temporal
        step, folded into the stored ``Σ_l`` scaling.  ``None`` (default)
        means no decay (equivalent to ``1.0``).
    sketch_size:
        Frequent-directions sketch rows ``ℓ`` for ``update="sketch"``;
        ``None`` (default) picks ``2·K + oversampling`` at first ingest.
    drift_budget:
        Relative error-drift budget for the streaming watchdog: when the
        EWMA of the per-update estimated error exceeds
        ``baseline · (1 + drift_budget)``, the solver performs a full
        factor refresh.  ``None`` (default) disables the watchdog.
    shards:
        Partition the input along the temporal mode into this many
        contiguous shards and fit them coordinator-style: compression runs
        shard-local and only the small ``(I1+I2+1)·K`` factor products
        cross shard boundaries.  ``None`` (default) and ``1`` keep the
        single-source path bit-identical to earlier releases.  See
        ``docs/distributed.md``.
    """

    oversampling: int = 10
    power_iterations: int = 1
    max_iters: int = 50
    tol: float = 1e-4
    exact_slice_svd: bool = False
    strategy: str = "rsvd"
    precision: str = "float64"
    seed: int | None = None
    verbose: bool = False
    backend: str = "auto"
    n_workers: int | None = None
    chunk_size: int | None = None
    schedule: str = "auto"
    device: str = "auto"
    update: str = "refit"
    window: int | None = None
    decay: float | None = None
    sketch_size: int | None = None
    drift_budget: float | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if int(self.oversampling) < 0:
            raise ShapeError(f"oversampling must be >= 0, got {self.oversampling}")
        if int(self.power_iterations) < 0:
            raise ShapeError(
                f"power_iterations must be >= 0, got {self.power_iterations}"
            )
        if int(self.max_iters) < 1:
            raise ShapeError(f"max_iters must be >= 1, got {self.max_iters}")
        if not float(self.tol) > 0.0:
            raise ShapeError(f"tol must be positive, got {self.tol}")
        if not isinstance(self.strategy, str) or self.strategy not in _STRATEGY_CHOICES:
            raise ShapeError(
                f"strategy must be one of {', '.join(_STRATEGY_CHOICES)}, "
                f"got {self.strategy!r}"
            )
        if not isinstance(self.precision, str) or self.precision not in _PRECISION_CHOICES:
            raise ShapeError(
                f"precision must be one of {', '.join(_PRECISION_CHOICES)}, "
                f"got {self.precision!r}"
            )
        if self.seed is not None and int(self.seed) != self.seed:
            raise ShapeError(f"seed must be an integer or None, got {self.seed!r}")
        if not isinstance(self.backend, str) or self.backend not in _BACKEND_CHOICES:
            raise BackendError(
                f"backend must be one of {', '.join(_BACKEND_CHOICES)}, "
                f"got {self.backend!r}"
            )
        if self.n_workers is not None and int(self.n_workers) < 1:
            raise ShapeError(f"n_workers must be >= 1 or None, got {self.n_workers}")
        if self.chunk_size is not None and int(self.chunk_size) < 1:
            raise ShapeError(f"chunk_size must be >= 1 or None, got {self.chunk_size}")
        if not isinstance(self.schedule, str) or self.schedule not in _SCHEDULE_CHOICES:
            raise BackendError(
                f"schedule must be one of {', '.join(_SCHEDULE_CHOICES)}, "
                f"got {self.schedule!r}"
            )
        if not isinstance(self.device, str) or self.device not in _device_choices():
            raise BackendError(
                f"device must be one of {', '.join(_device_choices())}, "
                f"got {self.device!r}"
            )
        if not isinstance(self.update, str) or self.update not in _UPDATE_CHOICES:
            raise ShapeError(
                f"update must be one of {', '.join(_UPDATE_CHOICES)}, "
                f"got {self.update!r}"
            )
        if self.window is not None and int(self.window) < 1:
            raise ShapeError(f"window must be >= 1 or None, got {self.window}")
        if self.decay is not None and not 0.0 < float(self.decay) <= 1.0:
            raise ShapeError(f"decay must be in (0, 1] or None, got {self.decay}")
        if self.sketch_size is not None and int(self.sketch_size) < 1:
            raise ShapeError(
                f"sketch_size must be >= 1 or None, got {self.sketch_size}"
            )
        if self.drift_budget is not None and not float(self.drift_budget) > 0.0:
            raise ShapeError(
                f"drift_budget must be positive or None, got {self.drift_budget}"
            )
        if self.shards is not None and int(self.shards) < 1:
            raise ShapeError(f"shards must be >= 1 or None, got {self.shards}")

    def with_overrides(
        self,
        *,
        backend: str | None = None,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        schedule: str | None = None,
        device: str | None = None,
        shards: int | None = None,
    ) -> "DTuckerConfig":
        """A copy with non-``None`` execution knobs replaced (no deprecation)."""
        updates: dict[str, object] = {}
        if backend is not None:
            updates["backend"] = backend
        if n_workers is not None:
            updates["n_workers"] = n_workers
        if chunk_size is not None:
            updates["chunk_size"] = chunk_size
        if schedule is not None:
            updates["schedule"] = schedule
        if device is not None:
            updates["device"] = device
        if shards is not None:
            updates["shards"] = shards
        return replace(self, **updates) if updates else self


def resolve_config(
    config: DTuckerConfig | None,
    *,
    where: str,
    stacklevel: int = 3,
    **legacy: object,
) -> DTuckerConfig:
    """Merge deprecated per-function keywords into a :class:`DTuckerConfig`.

    Every solver entry point routes its historical keyword set through this
    shim: keywords left at :data:`UNSET` are ignored, explicitly passed
    ones are folded into the config **and** trigger a single
    :class:`DeprecationWarning` naming the replacement.  This keeps every
    pre-redesign call site working while steering new code to ``config=``.

    Parameters
    ----------
    config:
        The caller's ``config=`` argument (``None`` means defaults).
    where:
        Entry-point name used in the warning message.
    stacklevel:
        Forwarded to :func:`warnings.warn` so the warning points at the
        user's call site.
    legacy:
        Deprecated keyword values, :data:`UNSET` when not passed.
    """
    provided = {k: v for k, v in legacy.items() if v is not UNSET}
    if provided:
        names = ", ".join(f"{k}=" for k in sorted(provided))
        keys = ", ".join(sorted(provided))
        warnings.warn(
            f"{where}: keyword argument(s) {names} are deprecated; pass "
            f"config=DTuckerConfig({keys}, ...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    base = config if config is not None else DTuckerConfig()
    return replace(base, **provided) if provided else base  # type: ignore[arg-type]
