"""Streaming extension: incremental D-Tucker over a growing temporal mode.

The ICDE paper ends with extending D-Tucker beyond the one-shot setting as
future work (realised by the authors' later follow-ups).  This module
implements the natural streaming variant that falls out of the slice
representation: because the slice index runs in Fortran order over modes
``3..N``, the *last* mode varies slowest — so a new temporal block appended
along the last mode contributes a contiguous run of *new slices* and nothing
else changes.  Each update therefore:

1. compresses only the new block's slices (approximation phase on the block),
2. appends them to the stored :class:`~repro.core.slice_svd.SliceSVD`,
3. warm-starts ALS from the previous factors — only the temporal factor,
   whose row count grew, is re-initialised from the projected slice stack —
4. runs a few compressed-domain sweeps.

No pass over historical data ever happens.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from dataclasses import replace

from ..engine import ExecutionBackend
from ..exceptions import NotFittedError, RankError, ShapeError
from ..kernels.stats import KernelStats
from ..kernels.workspace import SweepWorkspace
from ..linalg.svd import leading_left_singular_vectors
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.random import default_rng
from ..tensor.unfold import unfold
from ..validation import as_tensor, check_positive_int, check_ranks
from .config import UNSET, DTuckerConfig, resolve_config
from .fit_pipeline import FitPipeline
from .initialization import initialize
from .result import TuckerResult
from .slice_svd import SliceSVD
from .sources import BlockSource, compress_source

__all__ = ["StreamingDTucker"]


class StreamingDTucker:
    """Incrementally maintained Tucker decomposition of a temporal tensor.

    The temporal mode must be the *last* mode; slice modes are fixed to
    ``(0, 1)`` (transpose the data first if needed).

    Parameters
    ----------
    ranks:
        Target Tucker ranks, one per mode of the full (growing) tensor.
    slice_rank:
        Per-slice compression rank (default ``max(ranks[0], ranks[1])``).
    sweeps_per_update:
        ALS sweeps run after every :meth:`partial_fit` (small by design —
        warm starts converge in a few sweeps).
    seed:
        Seed for all randomness; overrides ``config.seed`` when not ``None``.
    config:
        Solver configuration (randomized-SVD knobs, tolerance, execution
        backend); the ``max_iters`` field is ignored in favour of
        ``sweeps_per_update``.
    engine:
        Optional live :class:`~repro.engine.ExecutionBackend` reused across
        updates (never closed by this class).
    oversampling, power_iterations, tol, exact_slice_svd:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Attributes (after the first ``partial_fit``)
    --------------------------------------------
    result_ : TuckerResult
        Decomposition of everything seen so far.
    slice_svd_ : SliceSVD
        The accumulated compressed representation.
    n_updates_ : int
        Number of blocks ingested.
    history_ : list of float
        Estimated error after each update.
    timings_ : PhaseTimings
        Accumulated per-phase seconds across updates.
    kernel_stats_ : KernelStats
        Sweep-workspace cache accounting accumulated across all updates
        (see :mod:`repro.kernels`).
    """

    def __init__(
        self,
        ranks: Sequence[int],
        *,
        slice_rank: int | None = None,
        sweeps_per_update: int = 5,
        seed: int | None = None,
        config: DTuckerConfig | None = None,
        engine: ExecutionBackend | None = None,
        oversampling: object = UNSET,
        power_iterations: object = UNSET,
        tol: object = UNSET,
        exact_slice_svd: object = UNSET,
    ) -> None:
        self.ranks = tuple(int(r) for r in ranks)
        if len(self.ranks) < 3:
            raise ShapeError(
                "StreamingDTucker needs an order >= 3 tensor "
                f"(got {len(self.ranks)} ranks); the last mode is temporal"
            )
        self.slice_rank = slice_rank
        self.sweeps_per_update = check_positive_int(
            sweeps_per_update, name="sweeps_per_update"
        )
        cfg = resolve_config(
            config,
            where="StreamingDTucker",
            oversampling=oversampling,
            power_iterations=power_iterations,
            tol=tol,
            exact_slice_svd=exact_slice_svd,
        )
        if seed is not None:
            cfg = replace(cfg, seed=seed)
        # Every update runs exactly sweeps_per_update warm sweeps.
        self.config = replace(cfg, max_iters=self.sweeps_per_update)
        self.engine = engine
        # Lenient slice rank, as streaming always was: an oversized explicit
        # K fails inside compress_source with the uniform bound error.
        self._pipeline = FitPipeline(
            self.ranks,
            slice_rank=slice_rank,
            config=self.config,
            engine=engine,
            strict_slice_rank=False,
        )
        self._rng = default_rng(self.config.seed)
        self.n_updates_ = 0
        self.history_: list[float] = []
        self.timings_ = PhaseTimings()
        self.kernel_stats_ = KernelStats()
        self._ssvd: SliceSVD | None = None
        self._factors: list[np.ndarray] | None = None

    # -- accessors -------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self._ssvd is None:
            raise NotFittedError(
                "no data ingested yet; call partial_fit(block) first"
            )

    @property
    def slice_svd_(self) -> SliceSVD:
        self._require_fitted()
        assert self._ssvd is not None
        return self._ssvd

    @property
    def shape_(self) -> tuple[int, ...]:
        """Shape of everything ingested so far."""
        return self.slice_svd_.shape

    # -- ingestion ---------------------------------------------------------------
    def _effective_ranks(self) -> tuple[int, ...]:
        """Ranks clipped to the current (possibly still small) temporal extent."""
        assert self._ssvd is not None
        shape = self._ssvd.shape
        clipped = list(self.ranks)
        clipped[-1] = min(clipped[-1], shape[-1])
        return check_ranks(clipped, shape)

    def partial_fit(self, block: np.ndarray) -> "StreamingDTucker":
        """Ingest a new temporal block and refresh the decomposition.

        Parameters
        ----------
        block:
            Tensor whose shape matches previously seen data on every mode
            except the last (temporal) one.

        Returns
        -------
        StreamingDTucker
            ``self``, updated.
        """
        x = as_tensor(block, min_order=len(self.ranks), name="block")
        if x.ndim != len(self.ranks):
            raise ShapeError(
                f"block order {x.ndim} does not match ranks order {len(self.ranks)}"
            )
        k = (
            int(self.slice_rank)
            if self.slice_rank is not None
            else min(max(self.ranks[0], self.ranks[1]), min(x.shape[:2]))
        )
        if k > min(x.shape[:2]):
            raise RankError(
                f"slice rank {k} exceeds min(I1, I2) = {min(x.shape[:2])}"
            )

        with Timer() as t_approx:
            # One generator (self._rng) spans all updates, so every block's
            # sketch continues the same stream the one-shot fit would use.
            block_ssvd = compress_source(
                BlockSource([x]),
                k,
                config=self.config,
                engine=self.engine,
                rng=self._rng,
            )
        self.timings_.add("approximation", t_approx.seconds)

        if self._ssvd is None:
            self._ssvd = block_ssvd
        else:
            if x.shape[:-1] != self._ssvd.shape[:-1]:
                raise ShapeError(
                    f"block shape {x.shape} incompatible with accumulated "
                    f"shape {self._ssvd.shape} (all modes but the last must match)"
                )
            self._ssvd = self._ssvd.append(block_ssvd)

        ranks = self._effective_ranks()
        # One workspace per update: the accumulated SliceSVD is a fresh
        # object after append, but within the update the temporal re-init's
        # projections warm the sweep caches (the first sweep's V^T A(2)
        # stack is a cache hit instead of a recompute).
        ws = SweepWorkspace(self._ssvd)
        with Timer() as t_init:
            if self._factors is None:
                _, factors = initialize(self._ssvd, ranks)
            else:
                factors = [a.copy() for a in self._factors[:-1]]
                # The temporal factor's row count changed: re-derive it from
                # the projected slice stack, exactly like the init phase.
                ws.update_factor(0, factors[0])
                ws.update_factor(1, factors[1])
                w = ws.w()
                temporal_mode = self._ssvd.order - 1
                factors.append(
                    leading_left_singular_vectors(
                        unfold(w, temporal_mode), ranks[-1]
                    )
                )
        self.timings_.add("initialization", t_init.seconds)

        with Timer() as t_iter:
            outcome = self._pipeline.iterate(
                self._ssvd, ranks, factors, workspace=ws
            )
        self.timings_.add("iteration", t_iter.seconds)
        if outcome.kernel_stats is not None:
            self.kernel_stats_.merge(outcome.kernel_stats)

        self._factors = outcome.factors
        self.result_ = TuckerResult(
            core=outcome.core,
            factors=outcome.factors,
            elapsed=self.timings_.total,
        )
        self.history_.append(outcome.errors[-1] if outcome.errors else float("nan"))
        self.n_updates_ += 1
        return self

    def revise(self, start_time: int, block: np.ndarray) -> "StreamingDTucker":
        """Overwrite previously ingested timesteps with corrected data.

        Late-arriving corrections are a fact of temporal stores.  The block
        covering timesteps ``[start_time, start_time + T)`` is re-compressed
        and spliced over the stale slices (exact norm bookkeeping via
        per-slice norms), then a few warm ALS sweeps refresh the factors.
        No other historical data is touched.

        Parameters
        ----------
        start_time:
            First timestep (last-mode index) to overwrite.
        block:
            Corrected data; shape must match the ingested tensor on every
            mode but the last, and fit inside the current extent.

        Returns
        -------
        StreamingDTucker
            ``self``, updated.
        """
        self._require_fitted()
        assert self._ssvd is not None
        x = as_tensor(block, min_order=len(self.ranks), name="block")
        if x.shape[:-1] != self._ssvd.shape[:-1]:
            raise ShapeError(
                f"block shape {x.shape} incompatible with accumulated "
                f"shape {self._ssvd.shape} (all modes but the last must match)"
            )
        t0 = int(start_time)
        if not (0 <= t0 and t0 + x.shape[-1] <= self._ssvd.shape[-1]):
            raise ShapeError(
                f"timesteps [{t0}, {t0 + x.shape[-1]}) outside the ingested "
                f"extent {self._ssvd.shape[-1]}"
            )
        with Timer() as t_approx:
            block_ssvd = compress_source(
                BlockSource([x]),
                self._ssvd.rank,
                config=self.config,
                engine=self.engine,
                rng=self._rng,
            )
        self.timings_.add("approximation", t_approx.seconds)
        # Slices per timestep = product of the intermediate mode sizes.
        per_step = int(np.prod(self._ssvd.shape[2:-1], dtype=np.int64)) if (
            self._ssvd.order > 3
        ) else 1
        self._ssvd = self._ssvd.replace(t0 * per_step, block_ssvd)

        ranks = self._effective_ranks()
        assert self._factors is not None
        with Timer() as t_iter:
            outcome = self._pipeline.iterate(
                self._ssvd, ranks, [a.copy() for a in self._factors]
            )
        self.timings_.add("iteration", t_iter.seconds)
        if outcome.kernel_stats is not None:
            self.kernel_stats_.merge(outcome.kernel_stats)
        self._factors = outcome.factors
        self.result_ = TuckerResult(
            core=outcome.core,
            factors=outcome.factors,
            elapsed=self.timings_.total,
        )
        self.history_.append(outcome.errors[-1] if outcome.errors else float("nan"))
        return self
