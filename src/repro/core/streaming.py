"""Streaming extension: incremental D-Tucker over a growing temporal mode.

The ICDE paper ends with extending D-Tucker beyond the one-shot setting as
future work (realised by the authors' later follow-ups).  This module
implements the streaming variant that falls out of the slice
representation: because the slice index runs in Fortran order over modes
``3..N``, the *last* mode varies slowest — so a new temporal block appended
along the last mode contributes a contiguous run of *new slices* and nothing
else changes.

Three update modes (``DTuckerConfig.update``):

``"refit"`` (default)
    Compress only the new block, append, then warm-start full ALS sweeps
    over the entire accumulated :class:`~repro.core.slice_svd.SliceSVD`.
    Bit-identical to the historical behaviour; per-update cost grows with
    the accumulated extent T.
``"incremental"``
    Carry a :class:`~repro.kernels.workspace.StreamingWorkspace` across
    updates: the per-slice projections ``A(1)ᵀU_l``, ``V_lᵀA(2)`` and the
    ``W`` stack of historical slices are cached and only the new block's
    rows are computed, so each update costs O(block) — not O(T).  The
    non-temporal factors stay fixed between updates (the drift watchdog
    refreshes them when the error budget is exceeded); the temporal and
    any intermediate factors are re-derived each update from the cached
    ``W`` tensor, whose cheap HOOI sweeps touch only J-sized quantities.
``"sketch"``
    Incremental, plus bounded frequent-directions sketches of the stacked
    ``[U_l Σ_l]`` / ``[Σ_l V_lᵀ]`` streams
    (:class:`~repro.linalg.FrequentDirections`).  Every update refreshes
    the non-temporal factors from the sketches and re-expresses the cached
    projections with the small rotation ``R = A_oldᵀ A_new`` — exact when
    the refresh stays in the old column space, with the residual tracked
    by the watchdog.

Windowing (``window=N`` — evict the oldest temporal steps in O(evicted))
and exponential decay (``decay=γ`` — folded into the stored ``Σ_l``
scaling) bound long-running services.  An EWMA drift watchdog
(``drift_budget``) triggers a full factor refresh over the live window
when the estimated error drifts beyond budget, and
:meth:`StreamingDTucker.ingest_queue` provides a bounded, blocking-put
ingest pipeline (backpressure) built on
:class:`~repro.engine.pipeline.IngestQueue`.  See ``docs/streaming.md``.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from dataclasses import replace

from ..engine import ExecutionBackend, IngestQueue
from ..engine.array_api import resolve_device
from ..engine.trace import PhaseTrace
from ..exceptions import NotFittedError, RankError, ShapeError, StoreFormatError
from ..kernels.stats import KernelStats
from ..kernels.workspace import StreamingWorkspace, SweepWorkspace
from ..linalg.frequent_directions import FrequentDirections
from ..linalg.svd import leading_left_singular_vectors
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.norms import core_based_error
from ..tensor.products import multi_mode_product
from ..tensor.random import default_rng
from ..tensor.unfold import unfold
from ..validation import as_tensor, check_positive_int, check_ranks
from .config import UNSET, DTuckerConfig, resolve_config
from .fit_pipeline import FitPipeline
from .initialization import _scaled_left_blocks, _scaled_right_blocks, initialize
from .result import TuckerResult
from .slice_svd import SliceSVD
from .sources import BlockSource, compress_source

__all__ = ["StreamingDTucker"]

#: EWMA smoothing for the drift watchdog (fraction of the newest error).
_EWMA_ALPHA = 0.3

#: Name of the streaming-state sidecar directory inside a model store.
_STREAM_DIR = "streaming"
_STREAM_STATE = "state.json"


def _tail_slices(block: SliceSVD, keep_steps: int, per_step: int) -> SliceSVD:
    """The last ``keep_steps`` temporal steps of ``block`` (window > block)."""
    keep = keep_steps * per_step
    drop = block.num_slices - keep
    if drop <= 0:
        return block
    assert block.slice_norms_squared is not None
    norms = block.slice_norms_squared[drop:]
    return SliceSVD(
        u=block.u[drop:],
        s=block.s[drop:],
        vt=block.vt[drop:],
        shape=block.shape[:-1] + (keep_steps,),
        norm_squared=float(norms.sum()),
        slice_norms_squared=norms,
    )


def _sketch_rows(block: SliceSVD) -> tuple[np.ndarray, np.ndarray]:
    """The block's scaled basis columns as frequent-directions row batches.

    Mode 1 rows are the columns of ``[U_1 Σ_1 ⋯ U_L Σ_L]`` (each in
    ``R^{I1}``), mode 2 rows the columns of ``[V_1 Σ_1 ⋯ V_L Σ_L]`` — the
    exact matrices the batch initializer takes leading singular vectors of.
    """
    scaled_u = block.u * block.s[:, None, :]  # (L, I1, K)
    rows1 = scaled_u.transpose(0, 2, 1).reshape(-1, block.slice_shape[0])
    scaled_vt = block.s[:, :, None] * block.vt  # (L, K, I2)
    rows2 = scaled_vt.reshape(-1, block.slice_shape[1])
    return rows1, rows2


class StreamingDTucker:
    """Incrementally maintained Tucker decomposition of a temporal tensor.

    The temporal mode must be the *last* mode; slice modes are fixed to
    ``(0, 1)`` (transpose the data first if needed).

    Parameters
    ----------
    ranks:
        Target Tucker ranks, one per mode of the full (growing) tensor.
    slice_rank:
        Per-slice compression rank (default ``max(ranks[0], ranks[1])``).
    sweeps_per_update:
        ALS sweeps run after every :meth:`partial_fit` (small by design —
        warm starts converge in a few sweeps).
    seed:
        Seed for all randomness; overrides ``config.seed`` when not ``None``.
    config:
        Solver configuration (randomized-SVD knobs, tolerance, execution
        backend, and the streaming fields ``update`` / ``window`` /
        ``decay`` / ``sketch_size`` / ``drift_budget``); the ``max_iters``
        field is ignored in favour of ``sweeps_per_update``.
    engine:
        Optional live :class:`~repro.engine.ExecutionBackend` reused across
        updates (never closed by this class).
    update, window, decay, sketch_size, drift_budget:
        Per-instance overrides of the corresponding config fields (``None``
        defers to the config).  See the module docstring and
        ``docs/streaming.md`` for semantics.
    oversampling, power_iterations, tol, exact_slice_svd:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Attributes (after the first ``partial_fit``)
    --------------------------------------------
    result_ : TuckerResult
        Decomposition of everything currently represented (the live window).
    slice_svd_ : SliceSVD
        The accumulated (windowed, decayed) compressed representation.
    n_updates_ : int
        Number of blocks ingested.
    t_seen_ : int
        Total temporal steps ever ingested (monotone; unaffected by window).
    history_ : list of float
        Estimated error after each update.
    timings_ : PhaseTimings
        Accumulated per-phase seconds across updates.
    kernel_stats_ : KernelStats
        Cache accounting accumulated across all updates; incremental modes
        add the ``stream:proj`` / ``stream:rotate`` counters (see
        :mod:`repro.kernels`).
    watchdog_triggers_ : int
        Full factor refreshes forced by the drift watchdog.
    traces_ : list of PhaseTrace
        Per-update (and per-watchdog-refresh) telemetry records.
    """

    def __init__(
        self,
        ranks: Sequence[int],
        *,
        slice_rank: int | None = None,
        sweeps_per_update: int = 5,
        seed: int | None = None,
        config: DTuckerConfig | None = None,
        engine: ExecutionBackend | None = None,
        update: str | None = None,
        window: int | None = None,
        decay: float | None = None,
        sketch_size: int | None = None,
        drift_budget: float | None = None,
        oversampling: object = UNSET,
        power_iterations: object = UNSET,
        tol: object = UNSET,
        exact_slice_svd: object = UNSET,
    ) -> None:
        self.ranks = tuple(int(r) for r in ranks)
        if len(self.ranks) < 3:
            raise ShapeError(
                "StreamingDTucker needs an order >= 3 tensor "
                f"(got {len(self.ranks)} ranks); the last mode is temporal"
            )
        self.slice_rank = slice_rank
        self.sweeps_per_update = check_positive_int(
            sweeps_per_update, name="sweeps_per_update"
        )
        cfg = resolve_config(
            config,
            where="StreamingDTucker",
            oversampling=oversampling,
            power_iterations=power_iterations,
            tol=tol,
            exact_slice_svd=exact_slice_svd,
        )
        if seed is not None:
            cfg = replace(cfg, seed=seed)
        overrides: dict[str, object] = {}
        if update is not None:
            overrides["update"] = update
        if window is not None:
            overrides["window"] = window
        if decay is not None:
            overrides["decay"] = decay
        if sketch_size is not None:
            overrides["sketch_size"] = sketch_size
        if drift_budget is not None:
            overrides["drift_budget"] = drift_budget
        if overrides:
            cfg = replace(cfg, **overrides)
        # Every update runs exactly sweeps_per_update warm sweeps.
        self.config = replace(cfg, max_iters=self.sweeps_per_update)
        self.update = self.config.update
        self.window = self.config.window
        self.decay = self.config.decay
        self.drift_budget = self.config.drift_budget
        if self.update == "refit" and (
            self.window is not None
            or (self.decay is not None and float(self.decay) < 1.0)
        ):
            raise ShapeError(
                'window/decay require update="incremental" or "sketch"; '
                'update="refit" always refits the full accumulated history'
            )
        self.engine = engine
        # Lenient slice rank, as streaming always was: an oversized explicit
        # K fails inside compress_source with the uniform bound error.
        self._pipeline = FitPipeline(
            self.ranks,
            slice_rank=slice_rank,
            config=self.config,
            engine=engine,
            strict_slice_rank=False,
        )
        self._rng = default_rng(self.config.seed)
        self.n_updates_ = 0
        self.t_seen_ = 0
        self.history_: list[float] = []
        self.timings_ = PhaseTimings()
        self.kernel_stats_ = KernelStats()
        self.watchdog_triggers_ = 0
        self.traces_: list[PhaseTrace] = []
        self._ssvd: SliceSVD | None = None
        self._factors: list[np.ndarray] | None = None
        self._sws: StreamingWorkspace | None = None
        self._fd1: FrequentDirections | None = None
        self._fd2: FrequentDirections | None = None
        self._ewma: float | None = None
        self._baseline: float | None = None

    # -- accessors -------------------------------------------------------------
    def _fitted(self) -> bool:
        if self.update == "refit":
            return self._ssvd is not None
        return self._sws is not None and self._sws.num_slices > 0

    def _require_fitted(self) -> None:
        if not self._fitted():
            raise NotFittedError(
                "no data ingested yet; call partial_fit(block) first"
            )

    @property
    def slice_svd_(self) -> SliceSVD:
        self._require_fitted()
        if self.update == "refit":
            assert self._ssvd is not None
            return self._ssvd
        assert self._sws is not None
        return self._sws.slice_svd()

    @property
    def shape_(self) -> tuple[int, ...]:
        """Shape of the live window (all ingested data without a window)."""
        return self.slice_svd_.shape

    # -- ingestion ---------------------------------------------------------------
    def _effective_ranks(self, shape: Sequence[int]) -> tuple[int, ...]:
        """Ranks clipped to the current (possibly still small) temporal extent."""
        clipped = list(self.ranks)
        clipped[-1] = min(clipped[-1], int(shape[-1]))
        return check_ranks(clipped, shape)

    def _validate_block(self, block: np.ndarray) -> tuple[np.ndarray, int]:
        """Shape/rank-check a block *before* any RNG or state is touched."""
        x = as_tensor(block, min_order=len(self.ranks), name="block")
        if x.ndim != len(self.ranks):
            raise ShapeError(
                f"block order {x.ndim} does not match ranks order {len(self.ranks)}"
            )
        if self._fitted():
            accumulated = self.shape_
            if x.shape[:-1] != accumulated[:-1]:
                raise ShapeError(
                    f"block shape {x.shape} incompatible with accumulated "
                    f"shape {accumulated} (all modes but the last must match)"
                )
        k = (
            int(self.slice_rank)
            if self.slice_rank is not None
            else min(max(self.ranks[0], self.ranks[1]), min(x.shape[:2]))
        )
        if k > min(x.shape[:2]):
            raise RankError(
                f"slice rank {k} exceeds min(I1, I2) = {min(x.shape[:2])}"
            )
        return x, k

    def partial_fit(self, block: np.ndarray) -> "StreamingDTucker":
        """Ingest a new temporal block and refresh the decomposition.

        Parameters
        ----------
        block:
            Tensor whose shape matches previously seen data on every mode
            except the last (temporal) one.

        Returns
        -------
        StreamingDTucker
            ``self``, updated.
        """
        # Validation happens before compression so a bad block leaves the
        # RNG stream, n_updates_ and every accumulator untouched.
        x, k = self._validate_block(block)

        with Timer() as t_approx:
            # One generator (self._rng) spans all updates, so every block's
            # sketch continues the same stream the one-shot fit would use.
            block_ssvd = compress_source(
                BlockSource([x]),
                k,
                config=self.config,
                engine=self.engine,
                rng=self._rng,
            )
        self.timings_.add("approximation", t_approx.seconds)

        if self.update == "refit":
            self._refit_update(block_ssvd)
        else:
            self._stream_update(x, block_ssvd)
        self.t_seen_ += int(x.shape[-1])
        self.n_updates_ += 1
        return self

    # -- refit mode (historical behaviour, bit-identical) ----------------------
    def _refit_update(self, block_ssvd: SliceSVD) -> None:
        if self._ssvd is None:
            self._ssvd = block_ssvd
        else:
            self._ssvd = self._ssvd.append(block_ssvd)

        ranks = self._effective_ranks(self._ssvd.shape)
        # One workspace per update: the accumulated SliceSVD is a fresh
        # object after append, but within the update the temporal re-init's
        # projections warm the sweep caches (the first sweep's V^T A(2)
        # stack is a cache hit instead of a recompute).
        ws = SweepWorkspace(
            self._ssvd,
            module=resolve_device(None, config=self.config),
            compute_dtype=(
                np.float32
                if self.config.precision == "float32"
                else np.float64
            ),
        )
        with Timer() as t_init:
            if self._factors is None:
                _, factors = initialize(self._ssvd, ranks)
            else:
                factors = [a.copy() for a in self._factors[:-1]]
                # The temporal factor's row count changed: re-derive it from
                # the projected slice stack, exactly like the init phase.
                ws.update_factor(0, factors[0])
                ws.update_factor(1, factors[1])
                w = ws.w()
                temporal_mode = self._ssvd.order - 1
                factors.append(
                    leading_left_singular_vectors(
                        unfold(w, temporal_mode), ranks[-1]
                    )
                )
        self.timings_.add("initialization", t_init.seconds)

        with Timer() as t_iter:
            outcome = self._pipeline.iterate(
                self._ssvd, ranks, factors, workspace=ws
            )
        self.timings_.add("iteration", t_iter.seconds)
        if outcome.kernel_stats is not None:
            self.kernel_stats_.merge(outcome.kernel_stats)

        self._factors = outcome.factors
        self.result_ = TuckerResult(
            core=outcome.core,
            factors=outcome.factors,
            elapsed=self.timings_.total,
        )
        self.history_.append(outcome.errors[-1] if outcome.errors else float("nan"))

    # -- incremental / sketch modes --------------------------------------------
    def _stream_update(self, x: np.ndarray, block_ssvd: SliceSVD) -> None:
        start = time.perf_counter()
        per_step = int(np.prod(x.shape[2:-1], dtype=np.int64)) if x.ndim > 3 else 1
        t_new = int(x.shape[-1])
        first = self._sws is None or self._sws.num_slices == 0
        if self._sws is None:
            # The workspace tallies straight into kernel_stats_, so the
            # stream:proj / stream:rotate counters accumulate like every
            # other kernel counter.
            self._sws = StreamingWorkspace(stats=self.kernel_stats_)
        sws = self._sws
        proj_hits0 = self.kernel_stats_.hits_for("stream:proj")
        proj_miss0 = self.kernel_stats_.misses_for("stream:proj")

        with Timer() as t_init:
            # Decay first: the stored Σ_l (and sketches) represent history,
            # which has aged by the incoming block's extent.
            if not first and self.decay is not None and float(self.decay) < 1.0:
                factor = float(self.decay) ** t_new
                sws.decay(factor)
                if self._fd1 is not None:
                    self._fd1.scale(factor)
                    assert self._fd2 is not None
                    self._fd2.scale(factor)

            # Window: evict the oldest steps so extent never exceeds window.
            if self.window is not None:
                w_cap = int(self.window)
                if t_new > w_cap:
                    block_ssvd = _tail_slices(block_ssvd, w_cap, per_step)
                    t_live = w_cap
                else:
                    t_live = t_new
                evict_steps = max(0, sws.extent + t_live - w_cap)
                sws.evict(evict_steps * per_step)

            eff = self._effective_ranks(
                x.shape[:-1] + (sws.extent + block_ssvd.shape[-1],)
            )
            if first:
                a1 = leading_left_singular_vectors(
                    _scaled_left_blocks(block_ssvd), eff[0]
                )
                a2 = leading_left_singular_vectors(
                    _scaled_right_blocks(block_ssvd), eff[1]
                )
                if self.update == "sketch":
                    i1, i2 = block_ssvd.slice_shape
                    ell = self.config.sketch_size
                    if ell is None:
                        ell = 2 * block_ssvd.rank + int(self.config.oversampling)
                    self._fd1 = FrequentDirections(i1, min(int(ell), i1))
                    self._fd2 = FrequentDirections(i2, min(int(ell), i2))
                    rows1, rows2 = _sketch_rows(block_ssvd)
                    self._fd1.update(rows1)
                    self._fd2.update(rows2)
            else:
                if self.update == "sketch":
                    assert self._fd1 is not None and self._fd2 is not None
                    rows1, rows2 = _sketch_rows(block_ssvd)
                    self._fd1.update(rows1)
                    self._fd2.update(rows2)
                    sws.rotate(
                        self._fd1.leading_directions(eff[0]),
                        self._fd2.leading_directions(eff[1]),
                    )
                a1, a2 = sws.factors
            sws.append(block_ssvd, a1, a2)
        self.timings_.add("initialization", t_init.seconds)

        with Timer() as t_iter:
            err = self._trailing_sweeps(eff)
            self.history_.append(err)
            if self.drift_budget is not None:
                self._watchdog(err, eff)
        self.timings_.add("iteration", t_iter.seconds)

        trace = PhaseTrace(
            phase="stream:update",
            backend=self.config.backend,
            n_workers=1,
            seconds=time.perf_counter() - start,
        )
        trace.annotate_cache(
            hits=self.kernel_stats_.hits_for("stream:proj") - proj_hits0,
            misses=self.kernel_stats_.misses_for("stream:proj") - proj_miss0,
        )
        self.traces_.append(trace)

    def _trailing_sweeps(self, eff: Sequence[int]) -> float:
        """HOOI sweeps over the cached W: refresh modes >= 3 and the core.

        Every quantity touched lives in the tiny ``(J1, J2, …)`` projected
        space; the only T-sized object is the temporal unfolding
        ``(T, J1·J2·…)``, whose Gram-trick SVD costs O(T·J²) — the O(T·I²K)
        sweep work of a refit never happens here.
        """
        sws = self._sws
        assert sws is not None
        w = sws.w_tensor()
        order = len(self.ranks)
        trailing = list(range(2, order))
        mats: dict[int, np.ndarray] = {}
        n_sweeps = self.sweeps_per_update if len(trailing) > 1 else 1
        for _ in range(n_sweeps):
            for n in trailing:
                others = [m for m in trailing if m != n and m in mats]
                z = (
                    multi_mode_product(
                        w, [mats[m] for m in others], others, transpose=True
                    )
                    if others
                    else w
                )
                mats[n] = leading_left_singular_vectors(unfold(z, n), eff[n])
        core = multi_mode_product(
            w, [mats[m] for m in trailing], trailing, transpose=True
        )
        a1, a2 = sws.factors
        self._factors = [a1, a2] + [mats[n] for n in trailing]
        err = core_based_error(sws.norm_squared(), core)
        self.result_ = TuckerResult(
            core=core,
            factors=self._factors,
            elapsed=self.timings_.total,
        )
        return err

    def _watchdog(self, err: float, eff: Sequence[int]) -> None:
        """EWMA error budget: full factor refresh when drift exceeds it."""
        if self._baseline is None or self._ewma is None:
            self._baseline = err
            self._ewma = err
            return
        self._ewma = _EWMA_ALPHA * err + (1.0 - _EWMA_ALPHA) * self._ewma
        budget = self._baseline * (1.0 + float(self.drift_budget))
        if self._ewma <= budget:
            return
        start = time.perf_counter()
        refreshed = self._full_refresh(eff)
        self.watchdog_triggers_ += 1
        self.history_[-1] = refreshed
        self._baseline = refreshed
        self._ewma = refreshed
        trace = PhaseTrace(
            phase="stream:watchdog",
            backend=self.config.backend,
            n_workers=1,
            seconds=time.perf_counter() - start,
        )
        self.traces_.append(trace)

    def _full_refresh(self, eff: Sequence[int]) -> float:
        """Re-derive every factor from the live window (O(window), by budget).

        This is the selective-recompression escape hatch: fresh
        initialization plus full warm sweeps over the live slices, then the
        workspace's projection caches are rebuilt under the new factors and
        (in sketch mode) the frequent-directions sketches are reseeded from
        the live window so evicted history stops influencing refreshes.
        """
        sws = self._sws
        assert sws is not None
        live = sws.slice_svd()
        _, factors = initialize(live, eff)
        outcome = self._pipeline.iterate(live, tuple(eff), factors)
        if outcome.kernel_stats is not None:
            self.kernel_stats_.merge(outcome.kernel_stats)
        sws.recompute(outcome.factors[0], outcome.factors[1])
        if self.update == "sketch" and self._fd1 is not None:
            assert self._fd2 is not None
            fd1 = FrequentDirections(self._fd1.dim, self._fd1.sketch_size)
            fd2 = FrequentDirections(self._fd2.dim, self._fd2.sketch_size)
            rows1, rows2 = _sketch_rows(live)
            fd1.update(rows1)
            fd2.update(rows2)
            self._fd1, self._fd2 = fd1, fd2
        self._factors = outcome.factors
        err = outcome.errors[-1] if outcome.errors else float("nan")
        self.result_ = TuckerResult(
            core=outcome.core,
            factors=outcome.factors,
            elapsed=self.timings_.total,
        )
        return err

    # -- revision ----------------------------------------------------------------
    def revise(self, start_time: int, block: np.ndarray) -> "StreamingDTucker":
        """Overwrite previously ingested timesteps with corrected data.

        Late-arriving corrections are a fact of temporal stores.  The block
        covering timesteps ``[start_time, start_time + T)`` is re-compressed
        and spliced over the stale slices (exact norm bookkeeping via
        per-slice norms), then the factors are refreshed.  No other
        historical data is touched.  With a sliding window, ``start_time``
        indexes into the *live window* (0 = oldest retained step); in
        sketch mode the frequent-directions summaries keep the superseded
        slices' energy until the next watchdog refresh.

        Parameters
        ----------
        start_time:
            First timestep (last-mode index) to overwrite.
        block:
            Corrected data; shape must match the ingested tensor on every
            mode but the last, and fit inside the current extent.

        Returns
        -------
        StreamingDTucker
            ``self``, updated.
        """
        self._require_fitted()
        x = as_tensor(block, min_order=len(self.ranks), name="block")
        accumulated = self.shape_
        if x.shape[:-1] != accumulated[:-1]:
            raise ShapeError(
                f"block shape {x.shape} incompatible with accumulated "
                f"shape {accumulated} (all modes but the last must match)"
            )
        t0 = int(start_time)
        if not (0 <= t0 and t0 + x.shape[-1] <= accumulated[-1]):
            raise ShapeError(
                f"timesteps [{t0}, {t0 + x.shape[-1]}) outside the ingested "
                f"extent {accumulated[-1]}"
            )
        rank = self.slice_svd_.rank
        with Timer() as t_approx:
            block_ssvd = compress_source(
                BlockSource([x]),
                rank,
                config=self.config,
                engine=self.engine,
                rng=self._rng,
            )
        self.timings_.add("approximation", t_approx.seconds)
        # Slices per timestep = product of the intermediate mode sizes.
        per_step = int(np.prod(accumulated[2:-1], dtype=np.int64)) if (
            len(accumulated) > 3
        ) else 1

        if self.update == "refit":
            assert self._ssvd is not None
            self._ssvd = self._ssvd.replace(t0 * per_step, block_ssvd)
            ranks = self._effective_ranks(self._ssvd.shape)
            assert self._factors is not None
            with Timer() as t_iter:
                outcome = self._pipeline.iterate(
                    self._ssvd, ranks, [a.copy() for a in self._factors]
                )
            self.timings_.add("iteration", t_iter.seconds)
            if outcome.kernel_stats is not None:
                self.kernel_stats_.merge(outcome.kernel_stats)
            self._factors = outcome.factors
            self.result_ = TuckerResult(
                core=outcome.core,
                factors=outcome.factors,
                elapsed=self.timings_.total,
            )
            self.history_.append(
                outcome.errors[-1] if outcome.errors else float("nan")
            )
            return self

        assert self._sws is not None
        self._sws.replace(t0 * per_step, block_ssvd)
        eff = self._effective_ranks(self._sws.shape)
        with Timer() as t_iter:
            err = self._trailing_sweeps(eff)
        self.timings_.add("iteration", t_iter.seconds)
        self.history_.append(err)
        return self

    # -- backpressure ingest ------------------------------------------------------
    def ingest_queue(self, *, depth: int = 2) -> IngestQueue:
        """A bounded hand-off feeding :meth:`partial_fit` with backpressure.

        ``put(block)`` blocks once ``depth`` blocks are accepted but not
        yet fitted, so a fast producer can never queue unbounded raw data.
        Fitter exceptions re-raise on the producer's next ``put`` (or on
        ``join``/``close``).  Close the queue (or use it as a context
        manager) to drain and stop the consumer thread; the accumulated
        ``put_wait_seconds`` is folded into this model's telemetry as a
        ``stream:ingest`` trace at close time.
        """
        owner = self

        class _TracingQueue(IngestQueue):
            def close(self) -> None:
                was_closed = self._closed
                super().close()
                if not was_closed:
                    trace = PhaseTrace(
                        phase="stream:ingest",
                        backend=owner.config.backend,
                        n_workers=1,
                        seconds=self.consume_seconds,
                        n_tasks=self.n_done,
                    )
                    trace.annotate_io(wait_seconds=self.put_wait_seconds)
                    owner.traces_.append(trace)

        return _TracingQueue(self.partial_fit, depth=depth)

    # -- persistence --------------------------------------------------------------
    def save(self, path: "str | object", *, overwrite: bool = False):
        """Persist the model as a :class:`~repro.store.ModelStore` directory.

        The standard store payloads (compressed slices, Tucker result,
        config manifest) are written exactly as :meth:`FitPipeline.fit`
        would, so the directory serves queries like any other store.  A
        ``streaming/`` sidecar additionally records the ingest state —
        update mode, window/decay bookkeeping, watchdog EWMA, RNG stream
        position and the frequent-directions sketches — so
        :meth:`load` resumes ingestion exactly where this instance stopped,
        without refitting.

        Returns
        -------
        ModelStore
        """
        self._require_fitted()
        from pathlib import Path

        from ..store.format import _atomic_save_array, _atomic_write_json
        from ..store.store import ModelStore

        store = ModelStore.save(
            path,
            slice_svd=self.slice_svd_,
            result=self.result_,
            config=self.config,
            timings=self.timings_,
            history=self.history_,
            n_iters=self.n_updates_,
            kernel_stats=self.kernel_stats_,
            appends=max(0, self.n_updates_ - 1),
            overwrite=overwrite,
        )
        sdir = Path(store.path) / _STREAM_DIR
        sdir.mkdir(parents=True, exist_ok=True)
        state: dict[str, object] = {
            "format": "repro-streaming-state",
            "version": 1,
            "ranks": [int(r) for r in self.ranks],
            "slice_rank": None if self.slice_rank is None else int(self.slice_rank),
            "sweeps_per_update": int(self.sweeps_per_update),
            "update": self.update,
            "window": None if self.window is None else int(self.window),
            "decay": None if self.decay is None else float(self.decay),
            "drift_budget": (
                None if self.drift_budget is None else float(self.drift_budget)
            ),
            "n_updates": int(self.n_updates_),
            "t_seen": int(self.t_seen_),
            "watchdog_triggers": int(self.watchdog_triggers_),
            "ewma": self._ewma,
            "baseline": self._baseline,
            "rng_state": self._rng.bit_generator.state,
        }
        for name, fd in (("sketch1", self._fd1), ("sketch2", self._fd2)):
            if fd is None:
                continue
            fd_state = fd.state()
            _atomic_save_array(sdir / f"{name}.npy", fd_state.pop("buffer"))
            state[name] = fd_state
        _atomic_write_json(sdir / _STREAM_STATE, state)
        return store

    @classmethod
    def load(
        cls, path: "str | object", *, engine: ExecutionBackend | None = None
    ) -> "StreamingDTucker":
        """Resume a streaming model persisted with :meth:`save`.

        Restores the compressed window, factors, sketches, watchdog state
        and the RNG stream position; for the incremental/sketch modes the
        projection caches are rebuilt once at load time (O(window) — a
        restart cost, not a per-update one), after which :meth:`partial_fit`
        continues with O(block) updates.
        """
        import json
        from pathlib import Path

        from ..store.store import ModelStore

        store = ModelStore(path)
        sdir = Path(store.path) / _STREAM_DIR
        state_path = sdir / _STREAM_STATE
        if not state_path.exists():
            raise StoreFormatError(
                f"store at {store.path} has no {_STREAM_DIR}/ state; it was "
                "not saved by StreamingDTucker.save (use ModelStore directly)"
            )
        with open(state_path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
        if state.get("format") != "repro-streaming-state":
            raise StoreFormatError(
                f"unrecognised streaming state at {state_path}"
            )
        config = store.config
        model = cls(
            [int(r) for r in state["ranks"]],
            slice_rank=state.get("slice_rank"),
            sweeps_per_update=int(state["sweeps_per_update"]),
            config=config,
            engine=engine,
        )
        ssvd = store.load_slice_svd()
        result = store.load_result()
        factors = [np.asarray(a, dtype=float) for a in result.factors]
        model._factors = factors
        model.result_ = TuckerResult(
            core=np.asarray(result.core, dtype=float),
            factors=factors,
            elapsed=result.elapsed,
        )
        if model.update == "refit":
            model._ssvd = ssvd
        else:
            sws = StreamingWorkspace(stats=model.kernel_stats_)
            sws.append(ssvd, factors[0], factors[1])
            model._sws = sws
            for name, attr in (("sketch1", "_fd1"), ("sketch2", "_fd2")):
                meta = state.get(name)
                if meta is None:
                    continue
                buffer = np.load(sdir / f"{name}.npy")
                setattr(
                    model,
                    attr,
                    FrequentDirections.from_state({**meta, "buffer": buffer}),
                )
        model.n_updates_ = int(state["n_updates"])
        model.t_seen_ = int(state.get("t_seen", ssvd.shape[-1]))
        model.watchdog_triggers_ = int(state.get("watchdog_triggers", 0))
        model._ewma = state.get("ewma")
        model._baseline = state.get("baseline")
        fit_meta = store.manifest.get("fit", {})
        model.history_ = [float(e) for e in fit_meta.get("history", [])]
        rng_state = state.get("rng_state")
        if rng_state is not None:
            model._rng.bit_generator.state = rng_state
        return model
