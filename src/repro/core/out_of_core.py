"""Out-of-core approximation phase: compress a tensor stored on disk.

The memory headline of D-Tucker is that everything *after* the
approximation phase fits in ``O((I1+I2+1)·K·L)`` memory.  This module
pushes the same property into the approximation phase itself: a tensor
stored as a ``.npy`` file is memory-mapped and compressed **in slice
batches**, so peak resident memory is ``O(I1·I2·batch + compressed size)``
— the full dense tensor is never resident.  The output is a regular
:class:`~repro.core.slice_svd.SliceSVD`; initialization and iteration run
unchanged.

Limitations: the file must hold a C-contiguous array whose *first* axis is
the slowest-varying (NumPy default).  Slices are Fortran-ordered over the
trailing modes, so batches of consecutive slice indices are *not*
contiguous on disk in general; the memory map handles the gather, reading
only the touched pages.
"""

from __future__ import annotations

import os
from functools import partial
from pathlib import Path

import numpy as np

from ..engine import ExecutionBackend, backend_scope
from ..exceptions import RankError, ShapeError
from ..linalg.rsvd import batched_rsvd, batched_svd_via_gram
from ..tensor.random import default_rng
from ..tensor.slices import slice_count, slice_index_to_multi
from ..validation import check_positive_int
from .config import UNSET, DTuckerConfig, resolve_config
from .slice_svd import SliceSVD

__all__ = ["compress_npy", "batched_slice_view"]


def batched_slice_view(
    tensor: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Materialise slices ``start..stop`` of ``tensor`` as ``(B, I1, I2)``.

    Works on memory-mapped arrays: only the pages backing the requested
    slices are read.  Slice indices follow the library-wide Fortran order
    over modes ``3..N``.
    """
    shape = tensor.shape
    count = slice_count(shape)
    if not 0 <= start < stop <= count:
        raise ShapeError(
            f"slice range [{start}, {stop}) invalid for {count} slices"
        )
    if len(shape) == 2:
        return np.asarray(tensor, dtype=float)[None, :, :]
    out = np.empty((stop - start, shape[0], shape[1]))
    for offset, l in enumerate(range(start, stop)):
        multi = slice_index_to_multi(l, shape)
        out[offset] = tensor[(slice(None), slice(None), *multi)]
    return out


def _compress_batch(
    task: tuple[int, int, np.ndarray | None],
    *,
    path: str,
    rank: int,
    power_iterations: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compress one ``[start, stop)`` slice batch of the file.

    Module-level (and dispatched via :func:`functools.partial`) so the
    process backend can pickle it; each worker memory-maps the file itself,
    so no tensor data crosses process boundaries in either direction except
    the compressed triples.
    """
    start, stop, omega = task
    mmap = np.load(Path(path), mmap_mode="r", allow_pickle=False)
    stack = batched_slice_view(mmap, start, stop)
    norms = np.einsum("lij,lij->l", stack, stack, optimize=True)
    if omega is None:
        u, s, vt = batched_svd_via_gram(stack, rank)
    else:
        u, s, vt = batched_rsvd(
            stack, rank, power_iterations=power_iterations, test_matrix=omega
        )
    return u, s, vt, norms


def compress_npy(
    path: str | os.PathLike,
    rank: int,
    *,
    batch_slices: int = 64,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    rng: int | np.random.Generator | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
) -> SliceSVD:
    """Compress a ``.npy``-stored dense tensor without loading it whole.

    Parameters
    ----------
    path:
        A ``.npy`` file containing an order-``>= 2`` float tensor.
    rank:
        Per-slice truncation rank ``K``.
    batch_slices:
        Slices compressed per round; peak extra memory is
        ``batch_slices · I1 · I2`` doubles *per worker*.
    config:
        Solver configuration (randomized-SVD knobs, seed, execution knobs).
        The small-side Gram path is selected automatically, exactly like
        the in-memory :func:`repro.core.slice_svd.compress`.
    engine:
        Execution backend spec.  Batches are independent file reads, so the
        process backend parallelises both the I/O and the SVDs; each worker
        memory-maps the file itself.
    rng:
        Seed or generator for the randomized path; overrides ``config.seed``.
    oversampling, power_iterations:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    SliceSVD
        Identical (up to RNG stream position) to compressing the loaded
        tensor, including the exact ``‖X‖²``.
    """
    cfg = resolve_config(
        config,
        where="compress_npy",
        oversampling=oversampling,
        power_iterations=power_iterations,
    )
    mmap = np.load(Path(path), mmap_mode="r", allow_pickle=False)
    if mmap.ndim < 2:
        raise ShapeError(f"tensor in {path!s} must have order >= 2")
    k = check_positive_int(rank, name="rank")
    i1, i2 = mmap.shape[:2]
    if k > min(i1, i2):
        raise RankError(f"slice rank {k} exceeds min(I1, I2) = {min(i1, i2)}")
    b = check_positive_int(batch_slices, name="batch_slices")
    count = slice_count(mmap.shape)
    over = max(0, int(cfg.oversampling))
    use_gram = min(i1, i2) <= 2 * (k + over)

    # Pre-draw every batch's test matrix in batch order from one stream —
    # the exact draws the sequential loop would make — so results do not
    # depend on which worker compresses which batch.
    bounds = [(start, min(start + b, count)) for start in range(0, count, b)]
    if use_gram:
        tasks = [(start, stop, None) for start, stop in bounds]
    else:
        gen = default_rng(rng if rng is not None else cfg.seed)
        k_eff = min(k + over, min(i1, i2))
        tasks = [
            (start, stop, gen.standard_normal((i2, k_eff)))
            for start, stop in bounds
        ]
    fn = partial(
        _compress_batch,
        path=str(path),
        rank=k,
        power_iterations=int(cfg.power_iterations),
    )
    with backend_scope(engine, config=cfg) as eng, eng.phase("approximation-ooc"):
        parts = eng.map(fn, tasks)
    slice_norms = np.concatenate([p[3] for p in parts])
    return SliceSVD(
        u=np.concatenate([p[0] for p in parts], axis=0),
        s=np.concatenate([p[1] for p in parts], axis=0),
        vt=np.concatenate([p[2] for p in parts], axis=0),
        shape=tuple(int(d) for d in mmap.shape),
        norm_squared=float(slice_norms.sum()),
        slice_norms_squared=slice_norms,
    )
