"""Out-of-core approximation phase: compress a tensor stored on disk.

The memory headline of D-Tucker is that everything *after* the
approximation phase fits in ``O((I1+I2+1)·K·L)`` memory.  This module
pushes the same property into the approximation phase itself: a tensor
stored as a ``.npy`` file is memory-mapped and compressed **in slice
batches**, so peak resident memory is ``O(I1·I2·batch + compressed size)``
— the full dense tensor is never resident.  The output is a regular
:class:`~repro.core.slice_svd.SliceSVD`; initialization and iteration run
unchanged.

Execution is pipelined: on the serial and thread backends a
:class:`~repro.engine.pipeline.Prefetcher` gathers the *next* batch from
the memory map on a background thread while the current batch is factored
(the compression planner of :mod:`repro.kernels.compress_plan` picks the
per-batch algorithm and reuses one pooled sketch buffer across batches).
The process backend instead ships ``(start, stop, Ω)`` batch descriptors
to workers that memory-map the file themselves — batches parallelise
across processes, which subsumes the IO overlap.

Limitations: the file must hold a C-contiguous array whose *first* axis is
the slowest-varying (NumPy default).  Slices are Fortran-ordered over the
trailing modes, so batches of consecutive slice indices are *not*
contiguous on disk in general; the memory map handles the gather, reading
only the touched pages.
"""

from __future__ import annotations

import os
from functools import partial
from pathlib import Path

import numpy as np

from ..engine import ExecutionBackend, Prefetcher, backend_scope
from ..exceptions import RankError, ShapeError
from ..kernels.buffers import BufferPool
from ..kernels.compress_plan import (
    CompressionPlan,
    execute_plan,
    plan_exact_chunk,
    plan_from_config,
    slab_norms,
)
from ..kernels.stats import KernelStats
from ..linalg.rsvd import batched_rsvd, batched_svd_via_gram
from ..tensor.random import default_rng
from ..tensor.slices import slice_count, slice_index_to_multi
from ..validation import check_positive_int
from .config import UNSET, DTuckerConfig, resolve_config
from .slice_svd import SliceSVD

__all__ = ["compress_npy", "batched_slice_view"]


def batched_slice_view(
    tensor: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Materialise slices ``start..stop`` of ``tensor`` as ``(B, I1, I2)``.

    Works on memory-mapped arrays: only the pages backing the requested
    slices are read.  Slice indices follow the library-wide Fortran order
    over modes ``3..N``.
    """
    shape = tensor.shape
    count = slice_count(shape)
    if not 0 <= start < stop <= count:
        raise ShapeError(
            f"slice range [{start}, {stop}) invalid for {count} slices"
        )
    if len(shape) == 2:
        return np.asarray(tensor, dtype=float)[None, :, :]
    out = np.empty((stop - start, shape[0], shape[1]))
    for offset, l in enumerate(range(start, stop)):
        multi = slice_index_to_multi(l, shape)
        out[offset] = tensor[(slice(None), slice(None), *multi)]
    return out


def _load_batch(path: str, bound: tuple[int, int]) -> np.ndarray:
    """Gather one ``[start, stop)`` slice batch from the file (IO producer)."""
    mmap = np.load(Path(path), mmap_mode="r", allow_pickle=False)
    return batched_slice_view(mmap, bound[0], bound[1])


def _compress_batch(
    task: tuple[int, int, np.ndarray | None],
    *,
    path: str,
    rank: int,
    power_iterations: int,
    method: str = "rsvd",
    precision: str = "float64",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compress one ``[start, stop)`` slice batch of the file.

    Module-level (and dispatched via :func:`functools.partial`) so the
    process backend can pickle it; each worker memory-maps the file itself,
    so no tensor data crosses process boundaries in either direction except
    the compressed triples.
    """
    start, stop, omega = task
    mmap = np.load(Path(path), mmap_mode="r", allow_pickle=False)
    stack = batched_slice_view(mmap, start, stop)
    if precision == "float32":
        stack = np.ascontiguousarray(stack, dtype=np.float32)
    norms = slab_norms(stack)
    if method == "exact":
        u, s, vt, _ = plan_exact_chunk(stack, rank=rank)
    elif method == "gram" or omega is None:
        u, s, vt = batched_svd_via_gram(stack, rank)
    else:
        u, s, vt = batched_rsvd(
            stack, rank, power_iterations=power_iterations, test_matrix=omega
        )
    return u, s, vt, norms


def _draw_omegas(
    plan: CompressionPlan,
    bounds: list[tuple[int, int]],
    i2: int,
    rng: int | np.random.Generator | None,
) -> list[np.ndarray | None]:
    """Pre-draw every batch's test matrix in batch order from one stream.

    These are the exact draws the sequential loop would make, so results
    do not depend on which worker (or pipeline stage) compresses which
    batch.  Non-randomized methods draw nothing.
    """
    if plan.method != "rsvd":
        return [None] * len(bounds)
    gen = default_rng(rng)
    return [gen.standard_normal((i2, plan.k_eff)) for _ in bounds]


def compress_npy(
    path: str | os.PathLike,
    rank: int,
    *,
    batch_slices: int = 64,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    rng: int | np.random.Generator | None = None,
    stats: KernelStats | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
) -> SliceSVD:
    """Compress a ``.npy``-stored dense tensor without loading it whole.

    Parameters
    ----------
    path:
        A ``.npy`` file containing an order-``>= 2`` float tensor.
    rank:
        Per-slice truncation rank ``K``.
    batch_slices:
        Slices compressed per round; peak extra memory is
        ``batch_slices · I1 · I2`` doubles per worker (serial/thread
        backends hold one extra in-flight prefetched batch).
    config:
        Solver configuration (randomized-SVD knobs, ``strategy``,
        ``precision``, seed, execution knobs).  Method selection matches
        the in-memory :func:`repro.core.slice_svd.compress` exactly.
    engine:
        Execution backend spec.  On serial/thread backends batches stream
        through a double-buffered prefetch pipeline (next batch's gather
        read overlaps the current batch's SVD); on the process backend
        batches are independent tasks and each worker memory-maps the file
        itself.
    rng:
        Seed or generator for the randomized path; overrides ``config.seed``.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats` accumulating
        per-batch planner decisions (``plan:<method>``) and test-matrix
        draws (``sketch`` — at most one per batch).
    oversampling, power_iterations:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    SliceSVD
        Identical (up to RNG stream position) to compressing the loaded
        tensor, including the exact ``‖X‖²``.
    """
    cfg = resolve_config(
        config,
        where="compress_npy",
        oversampling=oversampling,
        power_iterations=power_iterations,
    )
    mmap = np.load(Path(path), mmap_mode="r", allow_pickle=False)
    if mmap.ndim < 2:
        raise ShapeError(f"tensor in {path!s} must have order >= 2")
    k = check_positive_int(rank, name="rank")
    i1, i2 = mmap.shape[:2]
    if k > min(i1, i2):
        raise RankError(f"slice rank {k} exceeds min(I1, I2) = {min(i1, i2)}")
    b = check_positive_int(batch_slices, name="batch_slices")
    count = slice_count(mmap.shape)
    shape = tuple(int(d) for d in mmap.shape)
    del mmap  # workers / the prefetcher re-map the file themselves

    plan = plan_from_config(i1, i2, k, cfg)
    # The final batch may be shorter than ``batch_slices`` (and a single
    # short batch covers the whole file when batch_slices > L).
    bounds = [(start, min(start + b, count)) for start in range(0, count, b)]
    omegas = _draw_omegas(plan, bounds, i2, rng if rng is not None else cfg.seed)

    with backend_scope(engine, config=cfg) as eng, eng.phase(
        "approximation-ooc"
    ) as trace:
        if eng.name == "process":
            # Batch descriptors fan out across worker processes; pooled
            # buffers must not be used here (shared-memory uploads are
            # cached by array identity), and each worker re-maps the file.
            tasks = [
                (start, stop, omega)
                for (start, stop), omega in zip(bounds, omegas)
            ]
            fn = partial(
                _compress_batch,
                path=str(path),
                rank=k,
                power_iterations=plan.power_iterations,
                method=plan.method,
                precision=cfg.precision,
            )
            parts = eng.map(fn, tasks)
            if stats is not None:
                for omega in omegas:
                    stats.record_miss(f"plan:{plan.method}")
                    if omega is not None:
                        stats.record_miss("sketch")
        else:
            # Double-buffered pipeline: the background thread gathers batch
            # b+1 from the memory map while batch b is factored; one pooled
            # sketch buffer is reused across same-shape batches.
            pool = BufferPool()
            parts = []
            with Prefetcher(partial(_load_batch, str(path)), bounds) as pf:
                for stack, omega in zip(pf, omegas):
                    parts.append(
                        execute_plan(
                            eng,
                            stack,
                            k,
                            plan,
                            omega=omega,
                            pool=pool,
                            stats=stats,
                        )
                    )
                trace.annotate_io(
                    produce_seconds=pf.produce_seconds,
                    wait_seconds=pf.wait_seconds,
                )
                trace.annotate_cache(bytes_reused=pool.bytes_reused)
    slice_norms = np.concatenate([p[3] for p in parts])
    return SliceSVD(
        u=np.concatenate([p[0] for p in parts], axis=0),
        s=np.concatenate([p[1] for p in parts], axis=0),
        vt=np.concatenate([p[2] for p in parts], axis=0),
        shape=shape,
        norm_squared=float(slice_norms.sum()),
        slice_norms_squared=slice_norms,
    )
