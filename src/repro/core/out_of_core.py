"""Out-of-core approximation phase: compress a tensor stored on disk.

The memory headline of D-Tucker is that everything *after* the
approximation phase fits in ``O((I1+I2+1)·K·L)`` memory.  This module
pushes the same property into the approximation phase itself: a tensor
stored as a ``.npy`` file is memory-mapped and compressed **in slice
batches**, so peak resident memory is ``O(I1·I2·batch + compressed size)``
— the full dense tensor is never resident.  The output is a regular
:class:`~repro.core.slice_svd.SliceSVD`; initialization and iteration run
unchanged.

:func:`compress_npy` is a thin wrapper over the unified source pipeline:
it adapts the file as an :class:`~repro.core.sources.NpySource` and hands
it to :func:`~repro.core.sources.compress_source`, which supplies the
planner dispatch, the double-buffered IO prefetch (serial/thread
backends), and the ``(start, stop, Ω)`` descriptor fan-out of the process
backend.  The file is opened once per process — batches share one cached
read-only memmap handle (see
:func:`~repro.core.sources.clear_memmap_cache`).

Limitations: the file must hold a C-contiguous array whose *first* axis is
the slowest-varying (NumPy default).  Slices are Fortran-ordered over the
trailing modes, so batches of consecutive slice indices are *not*
contiguous on disk in general; the memory map handles the gather, reading
only the touched pages.
"""

from __future__ import annotations

import os

import numpy as np

from ..engine import ExecutionBackend
from ..kernels.stats import KernelStats
from .config import UNSET, DTuckerConfig, resolve_config
from .slice_svd import SliceSVD
from .sources import NpySource, batched_slice_view, compress_source

__all__ = ["compress_npy", "batched_slice_view"]


def compress_npy(
    path: str | os.PathLike,
    rank: int,
    *,
    batch_slices: int = 64,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    rng: int | np.random.Generator | None = None,
    stats: KernelStats | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
) -> SliceSVD:
    """Compress a ``.npy``-stored dense tensor without loading it whole.

    Equivalent to ``compress_source(NpySource(path), rank, ...)`` — kept
    as a convenience entry point.

    Parameters
    ----------
    path:
        A ``.npy`` file containing an order-``>= 2`` float tensor.
    rank:
        Per-slice truncation rank ``K``.
    batch_slices:
        Slices compressed per round; peak extra memory is
        ``batch_slices · I1 · I2`` doubles per worker (serial/thread
        backends hold one extra in-flight prefetched batch).
    config:
        Solver configuration (randomized-SVD knobs, ``strategy``,
        ``precision``, seed, execution knobs).  Method selection matches
        the in-memory :func:`repro.core.slice_svd.compress` exactly.
    engine:
        Execution backend spec.  On serial/thread backends batches stream
        through a double-buffered prefetch pipeline (next batch's gather
        read overlaps the current batch's SVD); on the process backend
        batches are independent tasks and each worker memory-maps the file
        itself.
    rng:
        Seed or generator for the randomized path; overrides ``config.seed``.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats` accumulating
        per-batch planner decisions (``plan:<method>``) and test-matrix
        draws (``sketch`` — at most one per batch).
    oversampling, power_iterations:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    SliceSVD
        Identical (up to RNG stream position) to compressing the loaded
        tensor, including the exact ``‖X‖²``.
    """
    cfg = resolve_config(
        config,
        where="compress_npy",
        oversampling=oversampling,
        power_iterations=power_iterations,
    )
    return compress_source(
        NpySource(path),
        rank,
        batch_slices=batch_slices,
        config=cfg,
        engine=engine,
        rng=rng,
        stats=stats,
    )
