"""Out-of-core approximation phase: compress a tensor stored on disk.

The memory headline of D-Tucker is that everything *after* the
approximation phase fits in ``O((I1+I2+1)·K·L)`` memory.  This module
pushes the same property into the approximation phase itself: a tensor
stored as a ``.npy`` file is memory-mapped and compressed **in slice
batches**, so peak resident memory is ``O(I1·I2·batch + compressed size)``
— the full dense tensor is never resident.  The output is a regular
:class:`~repro.core.slice_svd.SliceSVD`; initialization and iteration run
unchanged.

Limitations: the file must hold a C-contiguous array whose *first* axis is
the slowest-varying (NumPy default).  Slices are Fortran-ordered over the
trailing modes, so batches of consecutive slice indices are *not*
contiguous on disk in general; the memory map handles the gather, reading
only the touched pages.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..exceptions import RankError, ShapeError
from ..linalg.rsvd import batched_rsvd, batched_svd_via_gram
from ..tensor.random import default_rng
from ..tensor.slices import slice_count, slice_index_to_multi
from ..validation import check_positive_int
from .slice_svd import SliceSVD

__all__ = ["compress_npy", "batched_slice_view"]


def batched_slice_view(
    tensor: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Materialise slices ``start..stop`` of ``tensor`` as ``(B, I1, I2)``.

    Works on memory-mapped arrays: only the pages backing the requested
    slices are read.  Slice indices follow the library-wide Fortran order
    over modes ``3..N``.
    """
    shape = tensor.shape
    count = slice_count(shape)
    if not 0 <= start < stop <= count:
        raise ShapeError(
            f"slice range [{start}, {stop}) invalid for {count} slices"
        )
    if len(shape) == 2:
        return np.asarray(tensor, dtype=float)[None, :, :]
    out = np.empty((stop - start, shape[0], shape[1]))
    for offset, l in enumerate(range(start, stop)):
        multi = slice_index_to_multi(l, shape)
        out[offset] = tensor[(slice(None), slice(None), *multi)]
    return out


def compress_npy(
    path: str | os.PathLike,
    rank: int,
    *,
    batch_slices: int = 64,
    oversampling: int = 10,
    power_iterations: int = 1,
    rng: int | np.random.Generator | None = None,
) -> SliceSVD:
    """Compress a ``.npy``-stored dense tensor without loading it whole.

    Parameters
    ----------
    path:
        A ``.npy`` file containing an order-``>= 2`` float tensor.
    rank:
        Per-slice truncation rank ``K``.
    batch_slices:
        Slices compressed per round; peak extra memory is
        ``batch_slices · I1 · I2`` doubles.
    oversampling, power_iterations, rng:
        Randomized-SVD parameters (the small-side Gram path is selected
        automatically, exactly like the in-memory
        :func:`repro.core.slice_svd.compress`).

    Returns
    -------
    SliceSVD
        Identical (up to RNG stream position) to compressing the loaded
        tensor, including the exact ``‖X‖²``.
    """
    mmap = np.load(Path(path), mmap_mode="r", allow_pickle=False)
    if mmap.ndim < 2:
        raise ShapeError(f"tensor in {path!s} must have order >= 2")
    k = check_positive_int(rank, name="rank")
    i1, i2 = mmap.shape[:2]
    if k > min(i1, i2):
        raise RankError(f"slice rank {k} exceeds min(I1, I2) = {min(i1, i2)}")
    b = check_positive_int(batch_slices, name="batch_slices")
    gen = default_rng(rng)
    count = slice_count(mmap.shape)
    use_gram = min(i1, i2) <= 2 * (k + max(0, int(oversampling)))

    u_parts, s_parts, vt_parts, norm_parts = [], [], [], []
    for start in range(0, count, b):
        stop = min(start + b, count)
        stack = batched_slice_view(mmap, start, stop)
        norm_parts.append(np.einsum("lij,lij->l", stack, stack, optimize=True))
        if use_gram:
            u, s, vt = batched_svd_via_gram(stack, k)
        else:
            u, s, vt = batched_rsvd(
                stack,
                k,
                oversampling=oversampling,
                power_iterations=power_iterations,
                rng=gen,
            )
        u_parts.append(u)
        s_parts.append(s)
        vt_parts.append(vt)
    slice_norms = np.concatenate(norm_parts)
    return SliceSVD(
        u=np.concatenate(u_parts, axis=0),
        s=np.concatenate(s_parts, axis=0),
        vt=np.concatenate(vt_parts, axis=0),
        shape=tuple(int(d) for d in mmap.shape),
        norm_squared=float(slice_norms.sum()),
        slice_norms_squared=slice_norms,
    )
