"""D-Tucker core: the paper's primary contribution.

Public surface:

* :class:`DTucker` / :func:`decompose` — the three-phase solver,
* :class:`DTuckerConfig` — its hyper-parameters,
* :class:`TuckerResult` — the decomposition value object,
* :class:`SliceSVD` / :func:`compress` — the reusable compressed
  representation produced by the approximation phase,
* :func:`initialize` / :func:`als_sweeps` — the individual phases, exposed
  for ablations and research use,
* :class:`StreamingDTucker` — the incremental (temporal-mode) extension,
* :class:`FitLike` — the protocol shared by :class:`TuckerResult` and
  :class:`~repro.baselines.BaselineFit`.
"""

from .config import DTuckerConfig
from .dtucker import DTucker, decompose
from .initialization import initialize, random_initialize
from .iteration import IterationResult, als_sweeps
from .out_of_core import compress_npy
from .protocol import FitLike
from .rank_selection import estimate_error, mode_spectra, suggest_ranks
from .result import TuckerResult
from .slice_svd import SliceSVD, compress
from .streaming import StreamingDTucker

__all__ = [
    "DTuckerConfig",
    "FitLike",
    "DTucker",
    "decompose",
    "initialize",
    "random_initialize",
    "IterationResult",
    "als_sweeps",
    "compress_npy",
    "estimate_error",
    "mode_spectra",
    "suggest_ranks",
    "TuckerResult",
    "SliceSVD",
    "compress",
    "StreamingDTucker",
]
