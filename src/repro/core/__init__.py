"""D-Tucker core: the paper's primary contribution.

Public surface:

* :class:`DTucker` / :func:`decompose` — the three-phase solver,
* :class:`DTuckerConfig` — its hyper-parameters,
* :class:`TuckerResult` — the decomposition value object,
* :class:`SliceSVD` / :func:`compress` — the reusable compressed
  representation produced by the approximation phase,
* :class:`SliceSource` and its adapters (:class:`DenseSource`,
  :class:`NpySource`, :class:`SparseSource`, :class:`BlockSource`) with
  :func:`compress_source` — the pluggable data-source layer every entry
  point reads through,
* :class:`FitPipeline` — the single compress → initialize → iterate
  pipeline behind every fit path,
* :func:`initialize` / :func:`als_sweeps` — the individual phases, exposed
  for ablations and research use,
* :class:`StreamingDTucker` — the incremental (temporal-mode) extension,
* :class:`FitLike` — the protocol shared by :class:`TuckerResult` and
  :class:`~repro.baselines.BaselineFit`.
"""

from .config import DTuckerConfig
from .dtucker import DTucker, decompose
from .fit_pipeline import FitPipeline, PipelineFit
from .initialization import initialize, random_initialize
from .iteration import IterationResult, als_sweeps
from .out_of_core import compress_npy
from .protocol import FitLike
from .rank_selection import estimate_error, mode_spectra, suggest_ranks
from .result import TuckerResult
from .slice_svd import SliceSVD, compress
from .sources import (
    BlockSource,
    DenseSource,
    NpySource,
    SliceSource,
    SparseSource,
    compress_source,
)
from .streaming import StreamingDTucker

__all__ = [
    "DTuckerConfig",
    "FitLike",
    "DTucker",
    "decompose",
    "initialize",
    "random_initialize",
    "IterationResult",
    "als_sweeps",
    "compress_npy",
    "estimate_error",
    "mode_spectra",
    "suggest_ranks",
    "TuckerResult",
    "SliceSVD",
    "compress",
    "SliceSource",
    "DenseSource",
    "NpySource",
    "SparseSource",
    "BlockSource",
    "compress_source",
    "FitPipeline",
    "PipelineFit",
    "StreamingDTucker",
]
