"""The initialization phase: factor matrices straight from the slice SVDs.

Rather than starting ALS from random factors (as plain HOOI does), D-Tucker
derives an excellent starting point directly from the compressed slices:

* ``A(1)`` — the leading left singular vectors of
  ``[U_1 diag(s_1) ⋯ U_L diag(s_L)]``.  Because
  ``unfold(X, 0) = [X_1 ⋯ X_L] ≈ [U_1 S_1 V_1ᵀ ⋯]`` and the ``V_l`` are
  orthonormal, this concatenation has the same column space (and essentially
  the same leading spectrum) as the mode-1 unfolding itself — at a fraction
  of the size.
* ``A(2)`` — identically from ``[V_1 diag(s_1) ⋯ V_L diag(s_L)]``.
* ``A(n), n ≥ 3`` — project every slice through ``A(1), A(2)`` to a
  ``J1×J2`` matrix, reshape the stack into the small tensor
  ``W ∈ R^{J1×J2×I3×…×IN}``, and take the leading left singular vectors of
  ``W``'s mode-``n`` unfolding.

The A1 ablation benchmark measures how many ALS sweeps this saves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg.svd import leading_left_singular_vectors
from ..tensor.products import multi_mode_product
from ..tensor.unfold import unfold
from ..validation import check_ranks
from ._ops import w_tensor
from .slice_svd import SliceSVD

__all__ = ["initialize", "initialize_from_factors", "random_initialize"]


def _scaled_left_blocks(ssvd: SliceSVD) -> np.ndarray:
    """``[U_1 diag(s_1) ⋯ U_L diag(s_L)]`` as an ``(I1, K·L)`` matrix."""
    us = ssvd.u * ssvd.s[:, None, :]  # (L, I1, K)
    return us.transpose(1, 2, 0).reshape(ssvd.slice_shape[0], -1)


def _scaled_right_blocks(ssvd: SliceSVD) -> np.ndarray:
    """``[V_1 diag(s_1) ⋯ V_L diag(s_L)]`` as an ``(I2, K·L)`` matrix."""
    vs = np.swapaxes(ssvd.vt, 1, 2) * ssvd.s[:, None, :]  # (L, I2, K)
    return vs.transpose(1, 2, 0).reshape(ssvd.slice_shape[1], -1)


def initialize(
    ssvd: SliceSVD, ranks: int | Sequence[int]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Compute SVD-based initial factors and core from compressed slices.

    Parameters
    ----------
    ssvd:
        Output of the approximation phase.
    ranks:
        Target Tucker ranks ``(J_1, …, J_N)``.

    Returns
    -------
    tuple
        ``(core, factors)``; factors are column-orthonormal, the core is the
        projection of the compressed tensor onto them.
    """
    rank_tuple = check_ranks(ranks, ssvd.shape)
    a1 = leading_left_singular_vectors(_scaled_left_blocks(ssvd), rank_tuple[0])
    a2 = leading_left_singular_vectors(_scaled_right_blocks(ssvd), rank_tuple[1])
    return initialize_from_factors(ssvd, ranks, a1, a2)


def initialize_from_factors(
    ssvd: SliceSVD,
    ranks: int | Sequence[int],
    a1: np.ndarray,
    a2: np.ndarray,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Finish initialization from externally supplied slice-plane factors.

    Runs the second half of :func:`initialize` — the ``W`` projection, the
    higher-mode factors and the core — starting from given
    column-orthonormal ``A(1)``/``A(2)``.  The serving layer's dyadic range
    index uses this to feed factors recombined from cached segment-tree
    nodes into the standard pipeline; :func:`initialize` itself delegates
    here, so both entry points share the exact operation order.
    """
    rank_tuple = check_ranks(ranks, ssvd.shape)
    factors: list[np.ndarray] = [np.asarray(a1), np.asarray(a2)]
    w = w_tensor(ssvd, factors[0], factors[1])
    for n in range(2, len(rank_tuple)):
        factors.append(leading_left_singular_vectors(unfold(w, n), rank_tuple[n]))
    if len(rank_tuple) > 2:
        core = multi_mode_product(
            w,
            factors[2:],
            modes=list(range(2, len(rank_tuple))),
            transpose=True,
        )
    else:
        core = w
    return core, factors


def random_initialize(
    ssvd: SliceSVD,
    ranks: int | Sequence[int],
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Random orthonormal initial factors (the ablation baseline).

    The returned core is the projection of the compressed tensor onto the
    random factors, so downstream code can treat both initializers alike.
    """
    from ..tensor.random import default_rng, random_orthonormal

    rank_tuple = check_ranks(ranks, ssvd.shape)
    gen = default_rng(rng)
    factors = [
        random_orthonormal(i, j, gen) for i, j in zip(ssvd.shape, rank_tuple)
    ]
    w = w_tensor(ssvd, factors[0], factors[1])
    if len(rank_tuple) > 2:
        core = multi_mode_product(
            w,
            factors[2:],
            modes=list(range(2, len(rank_tuple))),
            transpose=True,
        )
    else:
        core = w
    return core, factors
