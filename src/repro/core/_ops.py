"""Internal compressed-domain TTM kernels shared by the init/iteration phases.

Everything here computes pieces of TTM chains ``X ×_k A(k)ᵀ`` directly from a
:class:`~repro.core.slice_svd.SliceSVD`, exploiting that

* the mode-1 unfolding of ``X`` is ``[X_1 … X_L]`` — so contracting mode 2
  with ``A(2)`` touches each slice independently:
  ``U_l diag(s_l) (V_lᵀ A(2))`` costs ``O((I1+I2)·K·J)`` per slice instead of
  ``O(I1·I2·J)``;
* modes ``3..N`` act only on the slice index, so once each slice is reduced
  to a small matrix the remaining contractions run on a tensor whose first
  two modes are already rank-sized.

All functions return *dense small* tensors shaped like the original tensor
with the contracted modes replaced by ranks; no intermediate ever has more
than ``max(I1, I2) · Π J`` entries.
"""

from __future__ import annotations

import numpy as np

from ..engine import ExecutionBackend, chunked, concat_chunks
from ..kernels.contractions import (
    mode1_chunk,
    mode2_chunk,
    project_left_chunk,
    project_right_chunk,
    stack_to_tensor,
    w_chunk,
)
from .slice_svd import SliceSVD

__all__ = [
    "project_left",
    "project_right",
    "w_tensor",
    "mode1_partial",
    "mode2_partial",
]


def project_left(ssvd: SliceSVD, a1: np.ndarray) -> np.ndarray:
    """Per-slice products ``A(1)ᵀ U_l`` stacked as ``(L, J1, K)``."""
    return project_left_chunk(ssvd.u, a1=a1)


def project_right(ssvd: SliceSVD, a2: np.ndarray) -> np.ndarray:
    """Per-slice products ``V_lᵀ A(2)`` stacked as ``(L, K, J2)``."""
    return project_right_chunk(ssvd.vt, a2=a2)


# The chunk kernels live in :mod:`repro.kernels.contractions` (the single
# home shared with the cached workspace path); the historical underscore
# names remain importable for callers pickling them into process backends.
_w_chunk = w_chunk
_mode1_chunk = mode1_chunk
_mode2_chunk = mode2_chunk
_stack_to_tensor = stack_to_tensor


def _dispatch(
    engine: ExecutionBackend | None,
    kernel,
    ssvd: SliceSVD,
    broadcast: dict[str, np.ndarray],
) -> np.ndarray:
    """Run a per-slice contraction kernel through ``engine`` (inline if None)."""
    if engine is None:
        return kernel(ssvd.u, ssvd.s, ssvd.vt, **broadcast)
    return chunked(
        engine,
        kernel,
        ssvd.num_slices,
        slabs=(ssvd.u, ssvd.s, ssvd.vt),
        broadcast=broadcast,
        reduce=concat_chunks,
    )


def w_tensor(
    ssvd: SliceSVD,
    a1: np.ndarray,
    a2: np.ndarray,
    *,
    engine: ExecutionBackend | None = None,
) -> np.ndarray:
    """The doubly-projected tensor ``W = X̃ ×_1 A(1)ᵀ ×_2 A(2)ᵀ``.

    Computed slice by slice as ``W_l = (A(1)ᵀU_l) diag(s_l) (V_lᵀA(2))`` and
    reshaped to ``(J1, J2, I3, …, IN)``.  With ``engine`` given, the slice
    loop fans out as engine chunks over the SVD-triple slabs.
    """
    w = _dispatch(engine, _w_chunk, ssvd, {"a1": a1, "a2": a2})
    return _stack_to_tensor(w, ssvd.shape[2:])


def mode1_partial(
    ssvd: SliceSVD,
    a2: np.ndarray,
    *,
    engine: ExecutionBackend | None = None,
) -> np.ndarray:
    """``X̃ ×_2 A(2)ᵀ`` as a tensor of shape ``(I1, J2, I3, …, IN)``.

    Used when updating the mode-1 factor: mode 1 stays unprojected, every
    other mode is (later) contracted.
    """
    m = _dispatch(engine, _mode1_chunk, ssvd, {"a2": a2})
    return _stack_to_tensor(m, ssvd.shape[2:])


def mode2_partial(
    ssvd: SliceSVD,
    a1: np.ndarray,
    *,
    engine: ExecutionBackend | None = None,
) -> np.ndarray:
    """``X̃ ×_1 A(1)ᵀ`` as a tensor of shape ``(J1, I2, I3, …, IN)``."""
    m = _dispatch(engine, _mode2_chunk, ssvd, {"a1": a1})
    return _stack_to_tensor(m, ssvd.shape[2:])
