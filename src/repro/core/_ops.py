"""Internal compressed-domain TTM kernels shared by the init/iteration phases.

Everything here computes pieces of TTM chains ``X ×_k A(k)ᵀ`` directly from a
:class:`~repro.core.slice_svd.SliceSVD`, exploiting that

* the mode-1 unfolding of ``X`` is ``[X_1 … X_L]`` — so contracting mode 2
  with ``A(2)`` touches each slice independently:
  ``U_l diag(s_l) (V_lᵀ A(2))`` costs ``O((I1+I2)·K·J)`` per slice instead of
  ``O(I1·I2·J)``;
* modes ``3..N`` act only on the slice index, so once each slice is reduced
  to a small matrix the remaining contractions run on a tensor whose first
  two modes are already rank-sized.

All functions return *dense small* tensors shaped like the original tensor
with the contracted modes replaced by ranks; no intermediate ever has more
than ``max(I1, I2) · Π J`` entries.
"""

from __future__ import annotations

import numpy as np

from ..engine import ExecutionBackend, chunked, concat_chunks
from .slice_svd import SliceSVD

__all__ = [
    "project_left",
    "project_right",
    "w_tensor",
    "mode1_partial",
    "mode2_partial",
]


def project_left(ssvd: SliceSVD, a1: np.ndarray) -> np.ndarray:
    """Per-slice products ``A(1)ᵀ U_l`` stacked as ``(L, J1, K)``."""
    return np.einsum("lik,ia->lak", ssvd.u, a1, optimize=True)


def project_right(ssvd: SliceSVD, a2: np.ndarray) -> np.ndarray:
    """Per-slice products ``V_lᵀ A(2)`` stacked as ``(L, K, J2)``."""
    return np.einsum("lki,ib->lkb", ssvd.vt, a2, optimize=True)


# -- chunk kernels (module level so the process backend can pickle them) ----
# Each computes one slice-range of the corresponding contraction; every
# output element depends on a single slice ``l``, so chunked execution is
# exactly equivalent to the one-shot einsum.

def _w_chunk(
    u: np.ndarray, s: np.ndarray, vt: np.ndarray, *, a1: np.ndarray, a2: np.ndarray
) -> np.ndarray:
    au = np.einsum("lik,ia->lak", u, a1, optimize=True)
    av = np.einsum("lki,ib->lkb", vt, a2, optimize=True)
    return np.einsum("lak,lk,lkb->lab", au, s, av, optimize=True)


def _mode1_chunk(
    u: np.ndarray, s: np.ndarray, vt: np.ndarray, *, a2: np.ndarray
) -> np.ndarray:
    av = np.einsum("lki,ib->lkb", vt, a2, optimize=True)
    return np.einsum("lik,lk,lkb->lib", u, s, av, optimize=True)


def _mode2_chunk(
    u: np.ndarray, s: np.ndarray, vt: np.ndarray, *, a1: np.ndarray
) -> np.ndarray:
    au = np.einsum("lik,ia->lak", u, a1, optimize=True)
    return np.einsum("lak,lk,lki->lai", au, s, vt, optimize=True)


def _dispatch(
    engine: ExecutionBackend | None,
    kernel,
    ssvd: SliceSVD,
    broadcast: dict[str, np.ndarray],
) -> np.ndarray:
    """Run a per-slice contraction kernel through ``engine`` (inline if None)."""
    if engine is None:
        return kernel(ssvd.u, ssvd.s, ssvd.vt, **broadcast)
    return chunked(
        engine,
        kernel,
        ssvd.num_slices,
        slabs=(ssvd.u, ssvd.s, ssvd.vt),
        broadcast=broadcast,
        reduce=concat_chunks,
    )


def _stack_to_tensor(stack: np.ndarray, trailing: tuple[int, ...]) -> np.ndarray:
    """Reshape an ``(L, a, b)`` slice stack to a ``(a, b, *trailing)`` tensor.

    The slice index is Fortran-ordered over the trailing modes, matching
    :func:`repro.tensor.slices.to_slices`.
    """
    moved = np.moveaxis(stack, 0, 2)  # (a, b, L)
    shape = stack.shape[1:3] + trailing
    return moved.reshape(shape, order="F")


def w_tensor(
    ssvd: SliceSVD,
    a1: np.ndarray,
    a2: np.ndarray,
    *,
    engine: ExecutionBackend | None = None,
) -> np.ndarray:
    """The doubly-projected tensor ``W = X̃ ×_1 A(1)ᵀ ×_2 A(2)ᵀ``.

    Computed slice by slice as ``W_l = (A(1)ᵀU_l) diag(s_l) (V_lᵀA(2))`` and
    reshaped to ``(J1, J2, I3, …, IN)``.  With ``engine`` given, the slice
    loop fans out as engine chunks over the SVD-triple slabs.
    """
    w = _dispatch(engine, _w_chunk, ssvd, {"a1": a1, "a2": a2})
    return _stack_to_tensor(w, ssvd.shape[2:])


def mode1_partial(
    ssvd: SliceSVD,
    a2: np.ndarray,
    *,
    engine: ExecutionBackend | None = None,
) -> np.ndarray:
    """``X̃ ×_2 A(2)ᵀ`` as a tensor of shape ``(I1, J2, I3, …, IN)``.

    Used when updating the mode-1 factor: mode 1 stays unprojected, every
    other mode is (later) contracted.
    """
    m = _dispatch(engine, _mode1_chunk, ssvd, {"a2": a2})
    return _stack_to_tensor(m, ssvd.shape[2:])


def mode2_partial(
    ssvd: SliceSVD,
    a1: np.ndarray,
    *,
    engine: ExecutionBackend | None = None,
) -> np.ndarray:
    """``X̃ ×_1 A(1)ᵀ`` as a tensor of shape ``(J1, I2, I3, …, IN)``."""
    m = _dispatch(engine, _mode2_chunk, ssvd, {"a1": a1})
    return _stack_to_tensor(m, ssvd.shape[2:])
