"""The :class:`DTucker` estimator — the paper's headline algorithm, end to end.

``DTucker(ranks).fit(X)`` runs the three phases

1. **approximation** — compress ``X`` into per-slice randomized SVDs
   (:mod:`repro.core.slice_svd`),
2. **initialization** — derive starting factors from the compressed slices
   (:mod:`repro.core.initialization`),
3. **iteration** — ALS sweeps entirely in the compressed domain
   (:mod:`repro.core.iteration`),

records per-phase wall-clock timings, and exposes the reusable compressed
representation.  ``refit(new_ranks)`` answers further decomposition requests
from the compressed slices alone — the memory-efficiency story of the paper.

Slice-mode selection
--------------------
D-Tucker keeps the first two modes as the slice plane.  Real tensors do not
always arrive with their two largest modes first, so ``slice_modes`` accepts
either an explicit pair or ``"largest"``; internally the tensor is
transposed so the chosen pair leads, and the result is transposed back
before being returned.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from ..engine import ExecutionBackend
from ..exceptions import NotFittedError, RankError, ShapeError
from ..metrics.timing import PhaseTimings
from ..validation import as_tensor, check_ranks
from .config import UNSET, DTuckerConfig, resolve_config
from .fit_pipeline import FitPipeline, PipelineFit
from .result import TuckerResult
from .sources import DenseSource, NpySource

__all__ = ["DTucker", "decompose"]


def _resolve_slice_modes(
    slice_modes: tuple[int, int] | str, shape: tuple[int, ...]
) -> tuple[int, int]:
    """Validate/choose the two modes that span each slice."""
    order = len(shape)
    if isinstance(slice_modes, str):
        if slice_modes != "largest":
            raise ShapeError(
                f"slice_modes must be a pair of modes or 'largest', got {slice_modes!r}"
            )
        by_size = sorted(range(order), key=lambda n: (-shape[n], n))
        m1, m2 = sorted(by_size[:2])
        return m1, m2
    try:
        m1, m2 = (int(m) for m in slice_modes)
    except (TypeError, ValueError) as exc:
        raise ShapeError(f"slice_modes must be a pair of modes, got {slice_modes!r}") from exc
    if m1 == m2 or not (0 <= m1 < order and 0 <= m2 < order):
        raise ShapeError(
            f"slice_modes must be two distinct modes in [0, {order}), got {slice_modes}"
        )
    return m1, m2


class DTucker:
    """Fast, memory-efficient Tucker decomposition of a dense tensor.

    Parameters
    ----------
    ranks:
        Target Tucker ranks — one per mode, or a single integer for all.
    slice_rank:
        Per-slice compression rank ``K`` for the approximation phase.
        Defaults to ``max`` of the two slice-mode ranks, the paper's choice.
    slice_modes:
        The two modes spanning each slice matrix: an explicit pair or
        ``"largest"`` (default ``(0, 1)``, the paper's layout).
    init:
        ``"svd"`` (paper) or ``"random"`` (ablation baseline).
    seed:
        Seed for all randomness; overrides ``config.seed`` when not ``None``.
    config:
        A :class:`~repro.core.config.DTuckerConfig` carrying every solver
        knob — the uniform call surface shared by all entry points.
    engine:
        A live :class:`~repro.engine.ExecutionBackend` to dispatch the
        per-slice/per-mode hot paths on.  The instance is reused across
        ``fit``/``refit`` calls and never closed by this class, so one pool
        can serve many models.  ``None`` resolves a backend per fit from
        ``config``/environment.
    backend, n_workers, chunk_size:
        Conveniences overriding the corresponding ``config`` fields —
        ``DTucker(r, backend="thread")`` is
        ``DTucker(r, config=DTuckerConfig(backend="thread"))``.
    oversampling, power_iterations, max_iters, tol, exact_slice_svd, verbose:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Attributes (after ``fit``)
    --------------------------
    result_ : TuckerResult
        The decomposition, in the *original* mode order, with ``elapsed``
        and ``trace_`` stamped.
    slice_svd_ : SliceSVD
        Reusable compressed representation (in slice-permuted mode order).
    timings_ : PhaseTimings
        Wall-clock seconds per phase.
    trace_ : list of PhaseTrace
        Structured execution traces from the engine (task counts per
        worker, chunk sizes, peak RSS, kernel-cache hit/miss counts) —
        printable via :func:`repro.engine.format_traces`.
    kernel_stats_ : KernelStats
        Sweep-workspace cache accounting for the iteration phase (hits,
        misses, buffer bytes reused, ``W`` evaluations per sweep).
    history_ : list of float
        Estimated reconstruction error after each ALS sweep.
    converged_ : bool
    n_iters_ : int
    permutation_ : tuple of int
        Mode permutation applied internally (identity when
        ``slice_modes == (0, 1)``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DTucker
    >>> x = np.random.default_rng(0).standard_normal((30, 20, 15))
    >>> model = DTucker(ranks=(5, 5, 5), seed=0).fit(x)
    >>> model.result_.ranks
    (5, 5, 5)
    """

    def __init__(
        self,
        ranks: int | Sequence[int],
        *,
        slice_rank: int | None = None,
        slice_modes: tuple[int, int] | str = (0, 1),
        init: str = "svd",
        seed: int | None = None,
        config: DTuckerConfig | None = None,
        engine: ExecutionBackend | None = None,
        backend: str | None = None,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        oversampling: object = UNSET,
        power_iterations: object = UNSET,
        max_iters: object = UNSET,
        tol: object = UNSET,
        exact_slice_svd: object = UNSET,
        verbose: object = UNSET,
    ) -> None:
        self.ranks = ranks
        self.slice_rank = slice_rank
        self.slice_modes = slice_modes
        if init not in ("svd", "random"):
            raise ShapeError(f"init must be 'svd' or 'random', got {init!r}")
        self.init = init
        cfg = resolve_config(
            config,
            where="DTucker",
            oversampling=oversampling,
            power_iterations=power_iterations,
            max_iters=max_iters,
            tol=tol,
            exact_slice_svd=exact_slice_svd,
            verbose=verbose,
        )
        if seed is not None:
            cfg = replace(cfg, seed=seed)
        self.config = cfg.with_overrides(
            backend=backend, n_workers=n_workers, chunk_size=chunk_size
        )
        self.engine = engine
        self._fitted = False

    # -- internal helpers ----------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                "this DTucker instance is not fitted yet; call fit(tensor) first"
            )

    def _permuted_ranks(self, rank_tuple: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(rank_tuple[p] for p in self.permutation_)

    def _pipeline(self, ranks: tuple[int, ...]) -> FitPipeline:
        """The unified pipeline, parameterised with this model's knobs."""
        return FitPipeline(
            ranks,
            slice_rank=self.slice_rank,
            init=self.init,
            config=self.config,
            engine=self.engine,
        )

    def _store_fit(self, fit: PipelineFit) -> None:
        """Unpack a :class:`PipelineFit` into the fitted attributes."""
        self.slice_svd_ = fit.slice_svd
        self.timings_ = fit.timings
        self.trace_ = fit.traces
        self.kernel_stats_ = fit.kernel_stats
        self.history_ = fit.history
        self.converged_ = fit.converged
        self.n_iters_ = fit.n_iters
        self._fitted = True

    # -- public API ------------------------------------------------------------
    def fit(self, tensor: np.ndarray) -> "DTucker":
        """Run all three phases on ``tensor`` and store the results."""
        x = as_tensor(tensor, min_order=2, name="tensor")
        rank_tuple = check_ranks(self.ranks, x.shape)
        m1, m2 = _resolve_slice_modes(self.slice_modes, x.shape)
        rest = [n for n in range(x.ndim) if n not in (m1, m2)]
        self.permutation_ = tuple([m1, m2] + rest)
        inverse = tuple(int(i) for i in np.argsort(self.permutation_))

        permuted = np.transpose(x, self.permutation_)
        permuted_ranks = self._permuted_ranks(rank_tuple)
        fit = self._pipeline(permuted_ranks).fit(DenseSource(permuted))
        self._store_fit(fit)
        self.result_ = fit.result.permute_modes(inverse)
        return self

    def fit_from_file(
        self, path: "str | object", *, batch_slices: int = 64
    ) -> "DTucker":
        """Fit from a ``.npy`` file without loading the tensor into memory.

        The approximation phase runs out of core
        (:func:`repro.core.out_of_core.compress_npy`, memory-mapped slice
        batches); initialization and iteration run on the compressed
        representation as usual.  Peak resident memory is bounded by the
        compressed size plus one slice batch — see benchmark A6.

        Restrictions: ``slice_modes`` must be the default ``(0, 1)``
        (permuting would require materialising the tensor), and
        ``exact_slice_svd`` is not supported on this path.

        Parameters
        ----------
        path:
            Path to a ``.npy`` file holding an order-``>= 2`` tensor.
        batch_slices:
            Slices compressed per round.

        Returns
        -------
        DTucker
            ``self``, fitted (same attributes as :meth:`fit`).
        """
        if self.slice_modes != (0, 1):
            raise ShapeError(
                "fit_from_file requires slice_modes=(0, 1); reorder the "
                "stored tensor instead"
            )
        if self.config.exact_slice_svd:
            raise ShapeError("fit_from_file does not support exact_slice_svd")

        source = NpySource(path)
        rank_tuple = check_ranks(self.ranks, source.shape)
        fit = self._pipeline(rank_tuple).fit(source, batch_slices=batch_slices)
        self.permutation_ = tuple(range(fit.slice_svd.order))
        self._store_fit(fit)
        self.result_ = fit.result
        return self

    def refit(
        self,
        ranks: int | Sequence[int] | None = None,
        *,
        config: DTuckerConfig | None = None,
        max_iters: object = UNSET,
        tol: object = UNSET,
    ) -> TuckerResult:
        """Answer a new decomposition request from the compressed slices.

        No pass over the original tensor happens: initialization and
        iteration re-run on the stored :class:`SliceSVD`.  The new slice-mode
        ranks must not exceed the stored compression rank ``K``.

        Parameters
        ----------
        ranks:
            New target ranks (defaults to the ranks used at ``fit`` time).
        config:
            Optional configuration override for this request (defaults to
            the model's own config).
        max_iters, tol:
            .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

        Returns
        -------
        TuckerResult
            A fresh result in the original mode order; ``self.result_`` is
            left untouched.
        """
        self._require_fitted()
        cfg = resolve_config(
            config if config is not None else self.config,
            where="DTucker.refit",
            max_iters=max_iters,
            tol=tol,
        )
        shape = tuple(
            self.slice_svd_.shape[i]
            for i in np.argsort(self.permutation_)
        )
        rank_tuple = check_ranks(
            self.ranks if ranks is None else ranks, shape
        )
        permuted_ranks = self._permuted_ranks(rank_tuple)
        needed = min(
            max(permuted_ranks[0], permuted_ranks[1]),
            min(self.slice_svd_.slice_shape),
        )
        if needed > self.slice_svd_.rank:
            raise RankError(
                f"refit ranks {rank_tuple} need slice rank {needed} but only "
                f"{self.slice_svd_.rank} was stored; fit again with a larger "
                "slice_rank"
            )
        permuted_result, _, _ = self._pipeline(permuted_ranks).refit(
            self.slice_svd_, permuted_ranks, config=cfg
        )
        inverse = tuple(int(i) for i in np.argsort(self.permutation_))
        return permuted_result.permute_modes(inverse)

    # -- persistence -----------------------------------------------------------
    def save(self, path: "str | object", *, overwrite: bool = False) -> "object":
        """Persist this fitted model as a :class:`~repro.store.ModelStore`.

        Everything a fresh process needs to serve queries is written: the
        compressed slices (stored orientation), the result (original mode
        order), the mode permutation, the full config and the fit metadata.
        ``ModelStore.open()`` on the path then answers reconstructions and
        time-range queries without refitting; :meth:`load` restores an
        equivalent estimator.

        Parameters
        ----------
        path:
            Store directory to create.
        overwrite:
            Allow replacing an existing store at ``path``.

        Returns
        -------
        repro.store.ModelStore
            A handle on the written store.
        """
        self._require_fitted()
        # Imported lazily: repro.store builds on the core modules.
        from ..store import ModelStore

        return ModelStore.save(
            path,
            slice_svd=self.slice_svd_,
            result=self.result_,
            config=self.config,
            permutation=self.permutation_,
            timings=self.timings_,
            history=self.history_,
            converged=self.converged_,
            n_iters=self.n_iters_,
            kernel_stats=self.kernel_stats_,
            overwrite=overwrite,
        )

    @classmethod
    def load(cls, path: "str | object") -> "DTucker":
        """Restore a fitted estimator from a :meth:`save` store directory.

        The returned model answers :meth:`refit`, :meth:`reconstruct` and
        :attr:`compression_ratio_` exactly as the original did — without
        the original tensor and without re-running compression.  Execution
        traces are not persisted, so ``trace_`` comes back empty.
        """
        from ..store import ModelStore

        store = ModelStore(path)
        manifest = store.manifest
        perm = store.permutation
        model = cls(
            ranks=store.ranks,
            slice_rank=store.slice_rank,
            config=store.config,
        )
        model.permutation_ = perm
        model.slice_svd_ = store.load_slice_svd()
        model.result_ = store.load_result()
        fit_meta = manifest.get("fit", {})
        timings = PhaseTimings()
        for name, seconds in fit_meta.get("timings", {}).items():
            timings.add(name, float(seconds))
        model.timings_ = timings
        model.trace_ = []
        model.kernel_stats_ = None
        model.history_ = [float(e) for e in fit_meta.get("history", [])]
        model.converged_ = bool(fit_meta.get("converged", False))
        model.n_iters_ = int(fit_meta.get("n_iters", 0))
        model._fitted = True
        return model

    # -- conveniences ----------------------------------------------------------
    @property
    def compression_ratio_(self) -> float:
        """Dense-tensor bytes divided by compressed-slice bytes."""
        self._require_fitted()
        dense = float(
            np.prod(self.slice_svd_.shape, dtype=np.int64) * self.slice_svd_.u.itemsize
        )
        return dense / float(self.slice_svd_.nbytes)

    def reconstruct(self) -> np.ndarray:
        """Dense approximation from the fitted result."""
        self._require_fitted()
        return self.result_.reconstruct()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self._fitted else "unfitted"
        return f"DTucker(ranks={self.ranks!r}, {state})"


def decompose(
    tensor: np.ndarray, ranks: int | Sequence[int], **kwargs: object
) -> DTucker:
    """Functional one-liner: ``decompose(X, ranks)`` → fitted :class:`DTucker`.

    All keyword arguments are forwarded to the :class:`DTucker` constructor.
    """
    return DTucker(ranks, **kwargs).fit(tensor)  # type: ignore[arg-type]
