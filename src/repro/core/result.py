"""The :class:`TuckerResult` value object returned by every solver.

A Tucker decomposition is a core tensor plus one column-orthonormal factor
matrix per mode.  The class is intentionally dumb — no solver state — so all
algorithms in :mod:`repro.core` and :mod:`repro.baselines` can share it and
the experiment harness can treat methods uniformly.  It satisfies the
:class:`~repro.core.protocol.FitLike` protocol (``core``, ``factors``,
``error``, ``elapsed``, ``trace_``): producing solvers stamp the total
wall-clock time and the engine's per-phase traces onto the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import ShapeError
from ..metrics.memory import total_nbytes
from ..tensor.norms import fit_score, reconstruction_error
from ..tensor.products import tucker_to_tensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import PhaseTrace

__all__ = ["TuckerResult"]


@dataclass
class TuckerResult:
    """A rank-``(J_1, …, J_N)`` Tucker decomposition.

    Attributes
    ----------
    core:
        Core tensor ``G`` of shape ``(J_1, …, J_N)``.
    factors:
        Factor matrices ``A(n)`` of shape ``(I_n, J_n)``; conventionally
        column-orthonormal (every solver in this library guarantees it).
    elapsed:
        Total wall-clock seconds of the producing fit (``0.0`` for results
        assembled by hand).
    trace_:
        Per-phase :class:`~repro.engine.PhaseTrace` records from the
        execution engine (empty for hand-assembled results).
    """

    core: np.ndarray
    factors: list[np.ndarray] = field(default_factory=list)
    elapsed: float = 0.0
    trace_: "list[PhaseTrace]" = field(default_factory=list)

    def __post_init__(self) -> None:
        self.core = np.asarray(self.core, dtype=float)
        self.factors = [np.asarray(a, dtype=float) for a in self.factors]
        if len(self.factors) != self.core.ndim:
            raise ShapeError(
                f"core of order {self.core.ndim} needs {self.core.ndim} "
                f"factors, got {len(self.factors)}"
            )
        for n, a in enumerate(self.factors):
            if a.ndim != 2:
                raise ShapeError(f"factors[{n}] must be 2-D, got shape {a.shape}")
            if a.shape[1] != self.core.shape[n]:
                raise ShapeError(
                    f"factors[{n}] has {a.shape[1]} columns but core mode {n} "
                    f"has dimensionality {self.core.shape[n]}"
                )

    @property
    def order(self) -> int:
        """Number of modes ``N``."""
        return self.core.ndim

    @property
    def ranks(self) -> tuple[int, ...]:
        """Tucker ranks ``(J_1, …, J_N)``."""
        return self.core.shape

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape ``(I_1, …, I_N)`` of the tensor this result approximates."""
        return tuple(a.shape[0] for a in self.factors)

    @property
    def nbytes(self) -> int:
        """Bytes held by the core and the factor matrices."""
        return int(self.core.nbytes) + total_nbytes(self.factors)

    def reconstruct(self) -> np.ndarray:
        """Materialise the dense approximation ``G ×_1 A(1) ⋯ ×_N A(N)``."""
        return tucker_to_tensor(self.core, self.factors)

    def error(self, reference: np.ndarray) -> float:
        """Paper-style error ``||X - X̂||_F² / ||X||_F²`` against ``reference``."""
        return reconstruction_error(reference, self.reconstruct())

    def fit(self, reference: np.ndarray) -> float:
        """Tensor-Toolbox fit ``1 - ||X - X̂||_F / ||X||_F``."""
        return fit_score(reference, self.reconstruct())

    def compression_ratio(self) -> float:
        """Dense-tensor bytes divided by this result's bytes."""
        dense = float(np.prod(self.shape, dtype=np.int64)) * self.core.itemsize
        return dense / float(self.nbytes)

    # -- persistence ---------------------------------------------------------
    def to_dir(self, path: "str | object") -> "object":
        """Write this result as a memory-mappable payload directory.

        The inverse of :meth:`from_dir`; see
        :func:`repro.store.write_tucker_dir` for the layout.  Returns the
        directory path written.
        """
        from ..store.format import write_tucker_dir

        return write_tucker_dir(self, path)

    @classmethod
    def from_dir(cls, path: "str | object", *, mmap: bool = False) -> "TuckerResult":
        """Load a result written by :meth:`to_dir` (optionally memory-mapped)."""
        from ..store.format import read_tucker_dir

        return read_tucker_dir(path, mmap=mmap)

    def permute_modes(self, perm: Sequence[int]) -> "TuckerResult":
        """Result for the mode-permuted tensor ``np.transpose(X, perm)``.

        If ``self`` approximates ``X`` then the returned object approximates
        ``np.transpose(X, perm)``: factors are re-ordered and the core is
        transposed accordingly.  Used by :class:`repro.core.dtucker.DTucker`
        to undo its internal slice-mode permutation.
        """
        p = [int(i) for i in perm]
        if sorted(p) != list(range(self.order)):
            raise ShapeError(
                f"perm must be a permutation of 0..{self.order - 1}, got {perm}"
            )
        return TuckerResult(
            core=np.transpose(self.core, p),
            factors=[self.factors[i] for i in p],
            elapsed=self.elapsed,
            trace_=list(self.trace_),
        )

    def truncate(self, ranks: Sequence[int]) -> "TuckerResult":
        """Cheap rank reduction: keep the leading factor columns/core slices.

        This is *not* the optimal lower-rank approximation (use
        :meth:`repro.core.dtucker.DTucker.refit` for that) — but for
        solvers whose factors are ordered by singular value it is a good,
        instantaneous zoom-out that needs no data access at all.

        Parameters
        ----------
        ranks:
            New ranks, one per mode, each ``<=`` the current rank.

        Returns
        -------
        TuckerResult
            A new result with fresh (copied) arrays.
        """
        new_ranks = [int(r) for r in ranks]
        if len(new_ranks) != self.order:
            raise ShapeError(
                f"expected {self.order} ranks, got {len(new_ranks)}"
            )
        for n, (r, j) in enumerate(zip(new_ranks, self.ranks)):
            if not 1 <= r <= j:
                raise ShapeError(
                    f"ranks[{n}]={r} must be in [1, {j}] (current rank)"
                )
        core = self.core[tuple(slice(0, r) for r in new_ranks)].copy()
        factors = [
            a[:, :r].copy() for a, r in zip(self.factors, new_ranks)
        ]
        return TuckerResult(core=core, factors=factors)

    def copy(self) -> "TuckerResult":
        """Deep copy (fresh arrays)."""
        return TuckerResult(
            core=self.core.copy(),
            factors=[a.copy() for a in self.factors],
            elapsed=self.elapsed,
            trace_=list(self.trace_),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TuckerResult(shape={self.shape}, ranks={self.ranks}, "
            f"nbytes={self.nbytes})"
        )
