"""The single fit pipeline: compress → initialize → iterate, any source.

Every solver entry point — :meth:`DTucker.fit <repro.core.dtucker.DTucker.fit>`
(in-memory), :meth:`~repro.core.dtucker.DTucker.fit_from_file` (out-of-core),
:func:`~repro.core.sparse_dtucker.sparse_dtucker` (COO) and
:class:`~repro.core.streaming.StreamingDTucker` (temporal blocks) — is the
same three-phase algorithm over a different data source.  :class:`FitPipeline`
is that algorithm, written once: it drives :func:`~repro.core.sources
.compress_source` over any :class:`~repro.core.sources.SliceSource`, derives
starting factors, and owns the library's one and only
:func:`~repro.core.iteration.als_sweeps` call site (:meth:`FitPipeline.iterate`
— warm restarts, refits and streaming updates all go through it).

The entry points keep their historical signatures and semantics; they now
only adapt their inputs into a source and unpack the :class:`PipelineFit`
this module returns.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..engine import ExecutionBackend, backend_scope
from ..engine.trace import PhaseTrace
from ..exceptions import RankError, ShapeError
from ..kernels.stats import KernelStats
from ..kernels.workspace import SweepWorkspace
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.random import default_rng
from ..validation import check_ranks
from .config import DTuckerConfig
from .initialization import initialize, random_initialize
from .iteration import IterationResult, als_sweeps
from .result import TuckerResult
from .slice_svd import SliceSVD
from .sources import SliceSource, compress_source

__all__ = ["FitPipeline", "PipelineFit", "resolve_slice_rank"]

logger = logging.getLogger("repro.core.dtucker")


def resolve_slice_rank(
    shape: Sequence[int],
    j1: int,
    j2: int,
    slice_rank: int | None,
    *,
    strict: bool = True,
) -> int:
    """Resolve the per-slice compression rank ``K`` for a fit.

    The paper's choice is ``K = max(J1, J2)``; when one slice side is even
    smaller than that, ``K = min(I1, I2)`` makes the compression lossless,
    so the clamp never loses information.  ``strict=True`` (the one-shot
    solvers) rejects an explicit ``slice_rank`` below that floor;
    ``strict=False`` (streaming/sparse, historically lenient) accepts it.
    """
    i1, i2 = int(shape[0]), int(shape[1])
    needed = min(max(int(j1), int(j2)), min(i1, i2))
    if slice_rank is None:
        return needed
    k = int(slice_rank)
    if not strict:
        # Lenient callers pass K through untouched: an oversized explicit
        # rank then fails in compress_source with its uniform bound error.
        return k
    if k < needed:
        raise RankError(
            f"slice_rank={k} must be at least {needed} for ranks "
            f"({int(j1)}, {int(j2)}) on shape {tuple(int(d) for d in shape)}"
        )
    return min(k, min(i1, i2))


@dataclass
class PipelineFit:
    """Everything one :meth:`FitPipeline.fit` produced, ready to unpack.

    ``result`` is in the *source's* mode order — callers that permuted
    their tensor (``slice_modes``) permute it back themselves.
    """

    result: TuckerResult
    slice_svd: SliceSVD
    timings: PhaseTimings
    traces: list[PhaseTrace]
    kernel_stats: KernelStats | None
    history: list[float] = field(default_factory=list)
    converged: bool = False
    n_iters: int = 0


class FitPipeline:
    """Compress → initialize → iterate over any :class:`SliceSource`.

    Parameters
    ----------
    ranks:
        Target Tucker ranks in the *source's* mode order, one per mode.
    slice_rank:
        Per-slice compression rank ``K`` (default ``max(ranks[0], ranks[1])``
        clamped to ``min(I1, I2)``).
    init:
        ``"svd"`` (paper) or ``"random"`` (ablation baseline).
    config:
        Solver configuration shared by all three phases.
    engine:
        Optional live :class:`~repro.engine.ExecutionBackend`, reused and
        never closed; ``None`` resolves per call from ``config``/environment.
    strict_slice_rank:
        ``True`` (the one-shot dense solvers) rejects an explicit
        ``slice_rank`` below the rank floor; ``False`` (sparse,
        historically lenient) accepts any positive value.

    Notes
    -----
    One :class:`numpy.random.Generator` threads through the whole fit
    (compression sketches first, then a random init if requested), so a
    fit is reproducible from ``config.seed`` alone regardless of source.
    """

    def __init__(
        self,
        ranks: Sequence[int],
        *,
        slice_rank: int | None = None,
        init: str = "svd",
        config: DTuckerConfig | None = None,
        engine: ExecutionBackend | None = None,
        strict_slice_rank: bool = True,
    ) -> None:
        self.ranks = tuple(int(r) for r in ranks)
        self.slice_rank = slice_rank
        if init not in ("svd", "random"):
            raise ShapeError(f"init must be 'svd' or 'random', got {init!r}")
        self.init = init
        self.config = config if config is not None else DTuckerConfig()
        self.engine = engine
        self.strict_slice_rank = strict_slice_rank

    def _maybe_shard(self, source: SliceSource) -> SliceSource:
        """Wrap ``source`` per ``config.shards`` (no-op at 1/None/sharded).

        The wrap partitions the temporal extent into contiguous shards whose
        compression runs shard-local on the process backend; see
        ``docs/distributed.md``.  Sources already sharded pass through so an
        explicit manifest keeps its member boundaries.
        """
        n = self.config.shards
        if n is None or int(n) <= 1:
            return source
        from ..distributed import ShardedSource

        if isinstance(source, ShardedSource):
            return source
        return ShardedSource.partition(source, int(n))

    # -- stages --------------------------------------------------------------
    def compress(
        self,
        source: SliceSource,
        *,
        batch_slices: int | None = None,
        rng: "int | np.random.Generator | None" = None,
        stats: KernelStats | None = None,
        engine: "ExecutionBackend | str | None" = None,
    ) -> SliceSVD:
        """Approximation stage: compress ``source`` at the resolved ``K``."""
        source = self._maybe_shard(source)
        k = resolve_slice_rank(
            source.shape,
            self.ranks[0],
            self.ranks[1],
            self.slice_rank,
            strict=self.strict_slice_rank,
        )
        return compress_source(
            source,
            k,
            batch_slices=batch_slices,
            config=self.config,
            engine=engine if engine is not None else self.engine,
            rng=rng,
            stats=stats,
        )

    def iterate(
        self,
        ssvd: SliceSVD,
        rank_tuple: Sequence[int],
        factors: list[np.ndarray],
        *,
        config: DTuckerConfig | None = None,
        engine: "ExecutionBackend | str | None" = None,
        workspace: SweepWorkspace | None = None,
    ) -> IterationResult:
        """Iteration stage — the library's single ``als_sweeps`` call site."""
        return als_sweeps(
            ssvd,
            tuple(int(r) for r in rank_tuple),
            factors,
            config=config if config is not None else self.config,
            engine=engine if engine is not None else self.engine,
            workspace=workspace,
        )

    # -- composition ---------------------------------------------------------
    def fit(
        self,
        source: SliceSource,
        *,
        batch_slices: int | None = None,
        rng: "int | np.random.Generator | None" = None,
        save: "str | object | None" = None,
        overwrite: bool = False,
    ) -> PipelineFit:
        """Run all three phases on ``source`` and bundle the results.

        With ``save=`` the finished fit is additionally persisted as a
        :class:`~repro.store.ModelStore` directory at that path (identity
        mode permutation — the source's order *is* the stored order);
        ``overwrite`` allows replacing an existing store.
        """
        source = self._maybe_shard(source)
        shape = tuple(int(d) for d in source.shape)
        rank_tuple = check_ranks(self.ranks, shape)
        k = resolve_slice_rank(
            shape,
            rank_tuple[0],
            rank_tuple[1],
            self.slice_rank,
            strict=self.strict_slice_rank,
        )
        gen = default_rng(rng if rng is not None else self.config.seed)
        timings = PhaseTimings()
        approx_stats = KernelStats()

        with backend_scope(self.engine, config=self.config) as eng:
            trace_start = len(eng.traces)
            with Timer() as t_approx:
                ssvd = compress_source(
                    source,
                    k,
                    batch_slices=batch_slices,
                    config=self.config,
                    engine=eng,
                    rng=gen,
                    stats=approx_stats,
                )
            timings.add("approximation", t_approx.seconds)
            if self.config.verbose:
                logger.info(
                    "approximation: %d slices of %s compressed to rank %d (%.4fs)",
                    ssvd.num_slices, ssvd.slice_shape, ssvd.rank, t_approx.seconds,
                )

            with Timer() as t_init:
                if self.init == "svd":
                    _, factors = initialize(ssvd, rank_tuple)
                else:
                    _, factors = random_initialize(ssvd, rank_tuple, gen)
            timings.add("initialization", t_init.seconds)

            with Timer() as t_iter:
                outcome = self.iterate(ssvd, rank_tuple, factors, engine=eng)
            timings.add("iteration", t_iter.seconds)
            if self.config.verbose:
                logger.info(
                    "iteration: %d sweeps, converged=%s, est. error %.4e (%.4fs)",
                    outcome.n_iters, outcome.converged,
                    outcome.errors[-1] if outcome.errors else float("nan"),
                    t_iter.seconds,
                )
                if outcome.kernel_stats is not None:
                    logger.info("iteration: %s", outcome.kernel_stats.summary())
            traces = list(eng.traces[trace_start:])

        stats = outcome.kernel_stats
        if stats is None:
            stats = approx_stats
        else:
            stats.merge(approx_stats)
        result = TuckerResult(
            core=outcome.core,
            factors=outcome.factors,
            elapsed=timings.total,
            trace_=traces,
        )
        fit = PipelineFit(
            result=result,
            slice_svd=ssvd,
            timings=timings,
            traces=traces,
            kernel_stats=stats,
            history=outcome.errors,
            converged=outcome.converged,
            n_iters=outcome.n_iters,
        )
        if save is not None:
            # Imported lazily: repro.store builds on this module.
            from ..store import ModelStore

            ModelStore.save_fit(
                save, fit, config=self.config, overwrite=overwrite
            )
        return fit

    def refit(
        self,
        ssvd: SliceSVD,
        rank_tuple: Sequence[int],
        *,
        config: DTuckerConfig | None = None,
        initial_factors: "Sequence[np.ndarray] | None" = None,
    ) -> tuple[TuckerResult, IterationResult, list[PhaseTrace]]:
        """Initialization + iteration on an existing compression.

        Answers a new decomposition request from the stored slices alone —
        no pass over the original tensor.  Returns the result (in the
        compression's mode order), the raw iteration outcome, and the
        engine traces of this request.

        ``initial_factors`` skips the built-in :func:`initialize` call and
        starts the ALS sweeps from the given column-orthonormal factors —
        the serving layer passes factors recombined from its dyadic range
        index (exact) or a cached warm start here.
        """
        cfg = config if config is not None else self.config
        with Timer() as t, backend_scope(self.engine, config=cfg) as eng:
            trace_start = len(eng.traces)
            if initial_factors is None:
                _, factors = initialize(ssvd, tuple(int(r) for r in rank_tuple))
            else:
                factors = list(initial_factors)
            outcome = self.iterate(
                ssvd, rank_tuple, factors, config=cfg, engine=eng
            )
            traces = list(eng.traces[trace_start:])
        result = TuckerResult(
            core=outcome.core,
            factors=outcome.factors,
            elapsed=t.seconds,
            trace_=traces,
        )
        return result, outcome, traces
