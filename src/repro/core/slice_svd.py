"""The approximation phase: per-slice randomized SVD compression.

:class:`SliceSVD` is D-Tucker's compressed tensor representation.  A dense
order-``N`` tensor ``X ∈ R^{I1×…×IN}`` is viewed as ``L = I3⋯IN`` slice
matrices ``X_l ∈ R^{I1×I2}`` (see :mod:`repro.tensor.slices`) and each slice
is replaced by a rank-``K`` truncated SVD ``X_l ≈ U_l diag(s_l) V_lᵀ``.

Storage drops from ``I1·I2·L`` numbers to ``(I1+I2+1)·K·L`` — the memory
headline of the paper — and, crucially, both the initialization and the
iteration phase can run *entirely* on the triples ``(U_l, s_l, V_l)``
because the mode-1/mode-2 unfoldings of ``X`` are block-concatenations of
slices and the higher-mode structure lives in the slice index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import ExecutionBackend
from ..exceptions import RankError, ShapeError
from ..kernels.stats import KernelStats
from ..metrics.memory import array_nbytes
from ..tensor.norms import relative_error
from ..tensor.slices import from_slices, slice_count
from ..validation import check_positive_int
from .config import UNSET, DTuckerConfig, resolve_config

__all__ = ["SliceSVD", "compress"]


@dataclass
class SliceSVD:
    """Compressed slice representation of a dense tensor.

    Attributes
    ----------
    u:
        Left factors, shape ``(L, I1, K)``.
    s:
        Singular values, shape ``(L, K)`` (non-negative, descending per slice).
    vt:
        Right factors (transposed), shape ``(L, K, I2)``.
    shape:
        Full shape of the original tensor.
    norm_squared:
        Exact ``||X||_F²`` of the original tensor, retained so the iteration
        phase can estimate reconstruction errors without ever touching ``X``
        again.
    slice_norms_squared:
        Optional exact per-slice ``||X_l||_F²`` of shape ``(L,)``.  When
        present (every compressor in this library provides it), slice
        ranges can be *replaced* with exact norm bookkeeping — see
        :meth:`replace`.
    """

    u: np.ndarray
    s: np.ndarray
    vt: np.ndarray
    shape: tuple[int, ...]
    norm_squared: float
    slice_norms_squared: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.u = np.asarray(self.u, dtype=float)
        self.s = np.asarray(self.s, dtype=float)
        self.vt = np.asarray(self.vt, dtype=float)
        self.shape = tuple(int(d) for d in self.shape)
        if self.u.ndim != 3 or self.s.ndim != 2 or self.vt.ndim != 3:
            raise ShapeError(
                "SliceSVD arrays must have shapes (L, I1, K), (L, K), (L, K, I2); "
                f"got {self.u.shape}, {self.s.shape}, {self.vt.shape}"
            )
        l, i1, k = self.u.shape
        if self.s.shape != (l, k) or self.vt.shape[:2] != (l, k):
            raise ShapeError(
                f"inconsistent SliceSVD arrays: u {self.u.shape}, "
                f"s {self.s.shape}, vt {self.vt.shape}"
            )
        expected_l = slice_count(self.shape)
        if l != expected_l:
            raise ShapeError(
                f"{l} slices inconsistent with tensor shape {self.shape} "
                f"(expected {expected_l})"
            )
        if (i1, self.vt.shape[2]) != self.shape[:2]:
            raise ShapeError(
                f"slice dims ({i1}, {self.vt.shape[2]}) do not match "
                f"tensor shape {self.shape}"
            )
        if float(self.norm_squared) < 0.0:
            raise ShapeError("norm_squared must be non-negative")
        if self.slice_norms_squared is not None:
            norms = np.asarray(self.slice_norms_squared, dtype=float)
            if norms.shape != (l,):
                raise ShapeError(
                    f"slice_norms_squared must have shape ({l},), got {norms.shape}"
                )
            if (norms < 0).any():
                raise ShapeError("slice_norms_squared must be non-negative")
            total = float(norms.sum())
            scale = max(self.norm_squared, total, 1.0)
            if abs(total - self.norm_squared) > 1e-6 * scale:
                raise ShapeError(
                    f"slice_norms_squared sum {total!r} inconsistent with "
                    f"norm_squared {self.norm_squared!r}"
                )
            self.slice_norms_squared = norms

    # -- basic geometry ----------------------------------------------------
    @property
    def num_slices(self) -> int:
        """Number of slices ``L``."""
        return self.u.shape[0]

    @property
    def rank(self) -> int:
        """Per-slice compression rank ``K``."""
        return self.u.shape[2]

    @property
    def slice_shape(self) -> tuple[int, int]:
        """Shape ``(I1, I2)`` of every slice."""
        return self.u.shape[1], self.vt.shape[2]

    @property
    def order(self) -> int:
        """Order ``N`` of the original tensor."""
        return len(self.shape)

    @property
    def nbytes(self) -> int:
        """Bytes of the compressed representation."""
        return array_nbytes(self.u, self.s, self.vt)

    @property
    def compression_ratio(self) -> float:
        """Dense-tensor bytes divided by the compressed bytes.

        Computed from shapes alone, so store manifests and ``repro
        inspect`` can report it without loading payloads.
        """
        dense = float(np.prod(self.shape, dtype=np.int64)) * self.u.itemsize
        return dense / float(self.nbytes)

    # -- persistence ---------------------------------------------------------
    def to_dir(self, path: "str | object") -> "object":
        """Write this representation as a memory-mappable payload directory.

        The inverse of :meth:`from_dir`; see
        :func:`repro.store.write_slice_svd_dir` for the layout.  Returns the
        directory path written.
        """
        from ..store.format import write_slice_svd_dir

        return write_slice_svd_dir(self, path)

    @classmethod
    def from_dir(cls, path: "str | object", *, mmap: bool = False) -> "SliceSVD":
        """Load a representation written by :meth:`to_dir`.

        With ``mmap=True`` the arrays are read-only memory maps — pages are
        only read when touched, and one mapping can serve many threads.
        """
        from ..store.format import read_slice_svd_dir

        return read_slice_svd_dir(path, mmap=mmap)

    # -- reconstruction -----------------------------------------------------
    def reconstruct_slices(self) -> np.ndarray:
        """Dense slice stack ``(L, I1, I2)`` from the stored SVD triples."""
        return self.u @ (self.s[:, :, None] * self.vt)

    def reconstruct(self) -> np.ndarray:
        """Dense tensor of ``self.shape`` (for evaluation, not solving)."""
        stack = np.moveaxis(self.reconstruct_slices(), 0, 2)
        return from_slices(stack, self.shape)

    def approx_norm_squared(self) -> float:
        """``||X̃||_F²`` of the compressed approximation: ``Σ_l Σ_k s_lk²``."""
        return float(np.sum(self.s**2))

    def compression_error(self, reference: np.ndarray) -> float:
        """Relative error of the compression itself vs the original tensor."""
        return relative_error(reference, self.reconstruct()) ** 2

    # -- transformations ----------------------------------------------------
    def truncate(self, rank: int) -> "SliceSVD":
        """A new representation with the leading ``rank <= K`` triples."""
        r = check_positive_int(rank, name="rank")
        if r > self.rank:
            raise RankError(f"cannot truncate rank {self.rank} to {r}")
        norms = self.slice_norms_squared
        return SliceSVD(
            u=self.u[:, :, :r].copy(),
            s=self.s[:, :r].copy(),
            vt=self.vt[:, :r, :].copy(),
            shape=self.shape,
            norm_squared=self.norm_squared,
            slice_norms_squared=None if norms is None else norms.copy(),
        )

    def append(self, other: "SliceSVD") -> "SliceSVD":
        """Concatenate ``other`` along the *last* tensor mode (streaming).

        Because the slice index runs in Fortran order over modes ``3..N``,
        the last mode varies slowest — so new data appended along the last
        mode corresponds exactly to new slices appended at the end.  All
        other mode dimensionalities and the slice rank must match.
        """
        if other.slice_shape != self.slice_shape or other.rank != self.rank:
            raise ShapeError(
                f"cannot append SliceSVD with slice shape {other.slice_shape} "
                f"rank {other.rank} to one with {self.slice_shape} rank {self.rank}"
            )
        if self.order != other.order or self.shape[:-1] != other.shape[:-1]:
            raise ShapeError(
                f"append requires equal shapes except the last mode; "
                f"got {self.shape} and {other.shape}"
            )
        new_shape = self.shape[:-1] + (self.shape[-1] + other.shape[-1],)
        if self.slice_norms_squared is not None and other.slice_norms_squared is not None:
            norms = np.concatenate(
                [self.slice_norms_squared, other.slice_norms_squared]
            )
        else:
            norms = None
        return SliceSVD(
            u=np.concatenate([self.u, other.u], axis=0),
            s=np.concatenate([self.s, other.s], axis=0),
            vt=np.concatenate([self.vt, other.vt], axis=0),
            shape=new_shape,
            norm_squared=self.norm_squared + other.norm_squared,
            slice_norms_squared=norms,
        )

    def replace(self, start: int, block: "SliceSVD") -> "SliceSVD":
        """Replace the contiguous slice range starting at ``start`` by ``block``.

        The use case is late-arriving data corrections in a temporal store:
        a revised block is re-compressed and spliced over the stale slices.
        Exact norm bookkeeping requires per-slice norms on *both* operands
        (all compressors in this library provide them).

        Parameters
        ----------
        start:
            First slice index to overwrite (``0 <= start`` and
            ``start + block.num_slices <= L``).
        block:
            Replacement slices: same slice shape and rank; its ``shape``
            beyond the slice plane is ignored (only the count matters).

        Returns
        -------
        SliceSVD
            A new representation with the range replaced and ``norm_squared``
            updated exactly; ``self`` is unchanged.
        """
        if block.slice_shape != self.slice_shape or block.rank != self.rank:
            raise ShapeError(
                f"cannot splice slice shape {block.slice_shape} rank "
                f"{block.rank} into {self.slice_shape} rank {self.rank}"
            )
        if self.slice_norms_squared is None or block.slice_norms_squared is None:
            raise ShapeError(
                "replace requires per-slice norms on both operands; "
                "re-compress with a current version of this library"
            )
        lo = int(start)
        hi = lo + block.num_slices
        if not 0 <= lo < hi <= self.num_slices:
            raise ShapeError(
                f"slice range [{lo}, {hi}) out of bounds for {self.num_slices} slices"
            )
        u = self.u.copy()
        s = self.s.copy()
        vt = self.vt.copy()
        norms = self.slice_norms_squared.copy()
        u[lo:hi] = block.u
        s[lo:hi] = block.s
        vt[lo:hi] = block.vt
        removed = float(norms[lo:hi].sum())
        norms[lo:hi] = block.slice_norms_squared
        return SliceSVD(
            u=u,
            s=s,
            vt=vt,
            shape=self.shape,
            norm_squared=self.norm_squared - removed + block.norm_squared,
            slice_norms_squared=norms,
        )


def compress(
    tensor: np.ndarray,
    rank: int,
    *,
    config: DTuckerConfig | None = None,
    engine: ExecutionBackend | str | None = None,
    rng: int | np.random.Generator | None = None,
    chunk_size: int | None = None,
    stats: KernelStats | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
    exact: object = UNSET,
) -> SliceSVD:
    """Run the approximation phase: compress ``tensor`` into a :class:`SliceSVD`.

    Parameters
    ----------
    tensor:
        Dense order-``N >= 2`` tensor.
    rank:
        Per-slice truncation rank ``K`` (D-Tucker uses ``max(J1, J2)``).
    config:
        Solver configuration; supplies ``oversampling``,
        ``power_iterations``, ``exact_slice_svd``, ``strategy``,
        ``precision``, ``seed`` and the execution knobs (``backend``,
        ``n_workers``, ``chunk_size``).
    engine:
        Execution backend spec — an
        :class:`~repro.engine.ExecutionBackend` instance (reused, not
        closed), a backend name, or ``None`` to resolve from ``config``
        and the environment.
    rng:
        Seed or generator for the randomized path; overrides
        ``config.seed`` when given.
    chunk_size:
        Explicit engine chunk-size override.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats` accumulating the
        planner decision (``plan:<method>``) and test-matrix draws
        (``sketch``) of this call.
    oversampling, power_iterations, exact:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Notes
    -----
    Equivalent to ``compress_source(DenseSource(tensor), rank, ...)`` —
    kept as a convenience entry point.  The source serves the tensor as a
    strided slice-stack view and the pipeline's planner picks the method
    (``exact``/``gram``/``rsvd``) exactly as earlier releases did, so with
    the default ``strategy="rsvd"``/``precision="float64"`` results are
    bit-identical to them.

    Returns
    -------
    SliceSVD
        The compressed representation, including the exact ``||X||_F²``.
    """
    cfg = resolve_config(
        config,
        where="compress",
        oversampling=oversampling,
        power_iterations=power_iterations,
        exact_slice_svd=exact,
    )
    # Imported lazily: sources.py needs SliceSVD from this module.
    from .sources import DenseSource, compress_source

    return compress_source(
        DenseSource(tensor),
        rank,
        config=cfg,
        engine=engine,
        rng=rng,
        chunk_size=chunk_size,
        stats=stats,
    )
