"""Uniform runner for (method × dataset) experiment grids.

All evaluation figures are produced by the same machinery: a method registry
mapping names to adapters with a common signature, and
:func:`run_method` / :func:`run_grid` producing :class:`ExperimentRecord`
rows with wall-clock phases, reconstruction error, and the bytes of the
representation each method must *store* to answer a decomposition request
(the paper's memory metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from ..baselines import (
    hosvd,
    mach_tucker,
    rtd,
    st_hosvd,
    tucker_als,
    tucker_ts,
    tucker_ttmts,
)
from ..core.config import DTuckerConfig
from ..core.dtucker import DTucker
from ..core.result import TuckerResult
from ..datasets.registry import load_dataset
from ..exceptions import DatasetError
from ..metrics.memory import tensor_nbytes
from ..metrics.timing import PhaseTimings
from ..tensor.norms import reconstruction_error
from ..validation import as_tensor, check_ranks

__all__ = [
    "ExperimentRecord",
    "METHOD_NAMES",
    "run_method",
    "run_grid",
]


@dataclass
class ExperimentRecord:
    """One (method, tensor) measurement.

    Attributes
    ----------
    method:
        Method registry name.
    dataset:
        Dataset name (or ``"custom"`` for ad-hoc tensors).
    shape, ranks:
        Problem geometry.
    phases:
        Wall-clock seconds per phase, method-specific names.
    total_seconds:
        Sum of the phases.
    error:
        Reconstruction error ``||X-X̂||²/||X||²`` (``nan`` when skipped).
    stored_nbytes:
        Bytes of the representation the method must keep to answer the
        request: the raw tensor for from-scratch methods, the compressed
        slices for D-Tucker, sketches for Tucker-ts/ttmts, samples for MACH.
    result_nbytes:
        Bytes of the produced Tucker model.
    n_iters, converged:
        Iteration metadata (0 / True for one-pass methods).
    extras:
        Method-specific scalars.
    """

    method: str
    dataset: str
    shape: tuple[int, ...]
    ranks: tuple[int, ...]
    phases: dict[str, float]
    total_seconds: float
    error: float
    stored_nbytes: int
    result_nbytes: int
    n_iters: int
    converged: bool
    extras: dict[str, float] = field(default_factory=dict)


@dataclass
class _MethodOutput:
    result: TuckerResult
    timings: PhaseTimings
    n_iters: int
    converged: bool
    stored_nbytes: int
    extras: dict[str, float]


_Runner = Callable[..., _MethodOutput]


def _run_dtucker(
    x: np.ndarray, ranks: Sequence[int], config: DTuckerConfig, **kw: object
) -> _MethodOutput:
    model = DTucker(ranks, config=config, **kw).fit(x)  # type: ignore[arg-type]
    return _MethodOutput(
        result=model.result_,
        timings=model.timings_,
        n_iters=model.n_iters_,
        converged=model.converged_,
        stored_nbytes=model.slice_svd_.nbytes,
        extras={"compression_ratio": model.compression_ratio_},
    )


def _wrap_baseline(fn: Callable[..., object], *, stores_tensor: bool) -> _Runner:
    # Every solver entry point takes config= now, so the adapter is a
    # one-liner — no per-method signature sniffing.
    def runner(
        x: np.ndarray, ranks: Sequence[int], config: DTuckerConfig, **kw: object
    ) -> _MethodOutput:
        fit = fn(x, ranks, config=config, **kw)
        stored = int(fit.extras.get("stored_nbytes", 0))  # type: ignore[union-attr]
        if stores_tensor or stored == 0:
            stored = tensor_nbytes(x.shape)
        return _MethodOutput(
            result=fit.result,  # type: ignore[union-attr]
            timings=fit.timings,  # type: ignore[union-attr]
            n_iters=fit.n_iters,  # type: ignore[union-attr]
            converged=fit.converged,  # type: ignore[union-attr]
            stored_nbytes=stored,
            extras=dict(fit.extras),  # type: ignore[union-attr]
        )

    return runner


_METHODS: dict[str, _Runner] = {
    "dtucker": _run_dtucker,
    "tucker_als": _wrap_baseline(tucker_als, stores_tensor=True),
    "hosvd": _wrap_baseline(hosvd, stores_tensor=True),
    "st_hosvd": _wrap_baseline(st_hosvd, stores_tensor=True),
    "mach": _wrap_baseline(mach_tucker, stores_tensor=False),
    "rtd": _wrap_baseline(rtd, stores_tensor=True),
    "tucker_ts": _wrap_baseline(tucker_ts, stores_tensor=False),
    "tucker_ttmts": _wrap_baseline(tucker_ttmts, stores_tensor=False),
}

METHOD_NAMES: tuple[str, ...] = tuple(sorted(_METHODS))


def run_method(
    method: str,
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    dataset: str = "custom",
    seed: int = 0,
    config: DTuckerConfig | None = None,
    compute_error: bool = True,
    **kwargs: object,
) -> ExperimentRecord:
    """Run one method on one tensor and collect a full measurement row.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    dataset:
        Label stored in the record.
    seed:
        Randomness seed forwarded to the method (fills ``config.seed``
        when the config does not pin one).
    config:
        Solver configuration forwarded verbatim to every method — the one
        place to select ``backend``/``n_workers`` for a whole grid.
    compute_error:
        Skip the (dense) reconstruction when ``False`` — useful when only
        timing very large problems.
    kwargs:
        Method-specific overrides (e.g. ``keep_probability`` for MACH).

    Returns
    -------
    ExperimentRecord
    """
    if method not in _METHODS:
        raise DatasetError(
            f"unknown method {method!r}; available: {', '.join(METHOD_NAMES)}"
        )
    x = as_tensor(tensor, min_order=2, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    cfg = config if config is not None else DTuckerConfig()
    if cfg.seed is None:
        cfg = replace(cfg, seed=int(seed))
    out = _METHODS[method](x, rank_tuple, cfg, **kwargs)
    error = (
        reconstruction_error(x, out.result.reconstruct())
        if compute_error
        else float("nan")
    )
    return ExperimentRecord(
        method=method,
        dataset=dataset,
        shape=x.shape,
        ranks=rank_tuple,
        phases=dict(out.timings.phases),
        total_seconds=out.timings.total,
        error=error,
        stored_nbytes=out.stored_nbytes,
        result_nbytes=out.result.nbytes,
        n_iters=out.n_iters,
        converged=out.converged,
        extras=out.extras,
    )


def run_grid(
    dataset_names: Sequence[str],
    methods: Sequence[str],
    *,
    scale: str = "small",
    seed: int = 0,
    config: DTuckerConfig | None = None,
    compute_error: bool = True,
    method_kwargs: Mapping[str, Mapping[str, object]] | None = None,
) -> list[ExperimentRecord]:
    """Run every method on every named dataset.

    Parameters
    ----------
    dataset_names:
        Registry names (see :func:`repro.datasets.list_datasets`).
    methods:
        Method registry names.
    scale:
        Dataset scale.
    seed:
        Seed for dataset generation and methods.
    config:
        Solver configuration shared by every cell of the grid (backend
        selection, randomized-SVD knobs, sweep budget).
    compute_error:
        As in :func:`run_method`.
    method_kwargs:
        Optional per-method keyword overrides,
        e.g. ``{"mach": {"keep_probability": 0.2}}``.

    Returns
    -------
    list of ExperimentRecord
        Ordered dataset-major, then method.
    """
    overrides = dict(method_kwargs or {})
    records = []
    for name in dataset_names:
        data = load_dataset(name, scale, seed=seed)
        for method in methods:
            records.append(
                run_method(
                    method,
                    data.tensor,
                    data.ranks,
                    dataset=name,
                    seed=seed,
                    config=config,
                    compute_error=compute_error,
                    **overrides.get(method, {}),
                )
            )
    return records
