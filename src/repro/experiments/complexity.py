"""Analytic cost models — the complexity-comparison table (experiment T1).

The ICDE paper's analysis section tabulates asymptotic time and space costs
per method.  These functions evaluate concrete *flop/number estimates* of
the leading terms for a given problem geometry, derived from what each of
this library's implementations actually computes:

============  =========================================  =====================
method        time (leading terms)                        working space
============  =========================================  =====================
dtucker       approx ``I1·I2·L·K`` + per sweep            ``(I1+I2+1)·K·L``
              ``(I1+I2)·K·J·L + J²·(ΠI/max(I1,I2))``      (compressed slices)
tucker_als    per sweep, per mode ``J·ΠI``                ``ΠI`` (raw tensor)
hosvd         per mode ``min(I_n, Π_{k≠n}I_k)·ΠI``        ``ΠI``
rtd           per mode ``(J+p)·Π current dims``           ``ΠI``
mach          HOOI cost on the sampled tensor             ``p·ΠI`` entries
tucker_ts     sketch ``N·ΠI``; per sweep ``s1·Σ J_n``     sketches ``s1·ΣI+s2``
tucker_ttmts  sketch ``N·ΠI``; per sweep ``s1·ΠJ``        sketches
============  =========================================  =====================

``L = Π_{k≥3} I_k``, ``K = max(J1, J2)``, ``p`` = oversampling/keep rate.
These are *models*, not measurements; benchmark T1 prints them side by side
with measured times to show the model ordering matches reality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DatasetError
from ..metrics.memory import (
    mach_nbytes,
    sketch_nbytes,
    slice_svd_nbytes,
    tensor_nbytes,
)
from ..validation import check_ranks

__all__ = ["time_estimate", "space_estimate", "COMPLEXITY_METHODS"]

COMPLEXITY_METHODS = (
    "dtucker",
    "tucker_als",
    "hosvd",
    "rtd",
    "mach",
    "tucker_ts",
    "tucker_ttmts",
)


def _geometry(shape: Sequence[int], ranks: int | Sequence[int]) -> tuple:
    dims = tuple(int(s) for s in shape)
    rank_tuple = check_ranks(ranks, dims)
    total = int(np.prod(dims, dtype=np.int64))
    l = int(np.prod(dims[2:], dtype=np.int64)) if len(dims) > 2 else 1
    k = max(rank_tuple[0], rank_tuple[1]) if len(dims) >= 2 else rank_tuple[0]
    return dims, rank_tuple, total, l, k


def time_estimate(
    method: str,
    shape: Sequence[int],
    ranks: int | Sequence[int],
    *,
    n_iters: int = 10,
    oversampling: int = 10,
    keep_probability: float = 0.1,
    sketch_factor: int = 10,
) -> float:
    """Leading-term flop estimate for ``method`` on the given geometry.

    Parameters mirror the per-method knobs the harness exposes; the return
    value is a unitless flop count usable for *ordering* methods, not for
    predicting seconds.
    """
    dims, rank_tuple, total, l, k = _geometry(shape, ranks)
    n = len(dims)
    j = max(rank_tuple)
    if method == "dtucker":
        approx = float(dims[0]) * dims[1] * l * (k + oversampling)
        per_sweep = (dims[0] + dims[1]) * k * j * l + j * j * (
            total / max(dims[0], dims[1])
        )
        return approx + n_iters * n * per_sweep
    if method == "tucker_als":
        return float(n_iters) * n * j * total
    if method == "hosvd":
        return float(
            sum(min(dims[m], total // dims[m]) * total for m in range(n))
        )
    if method == "rtd":
        cost = 0.0
        current = list(dims)
        for m in sorted(range(n), key=lambda i: -dims[i]):
            cost += (rank_tuple[m] + oversampling) * float(
                np.prod(current, dtype=np.float64)
            )
            current[m] = rank_tuple[m]
        return cost
    if method == "mach":
        return float(keep_probability) * n_iters * n * j * total + total
    if method in ("tucker_ts", "tucker_ttmts"):
        total_rank = int(np.prod(rank_tuple, dtype=np.int64))
        secondary = max(total_rank // r for r in rank_tuple)
        s1 = sketch_factor * secondary
        s2 = sketch_factor * total_rank
        sketch = float(n + 1) * total
        if method == "tucker_ts":
            per_sweep = s1 * sum(rank_tuple) ** 2 + s2 * total_rank
        else:
            per_sweep = s1 * total_rank + s2 * total_rank
        return sketch + n_iters * per_sweep
    raise DatasetError(
        f"unknown method {method!r}; available: {', '.join(COMPLEXITY_METHODS)}"
    )


def space_estimate(
    method: str,
    shape: Sequence[int],
    ranks: int | Sequence[int],
    *,
    keep_probability: float = 0.1,
    sketch_factor: int = 10,
) -> int:
    """Bytes of the representation ``method`` must store (float64).

    Matches the accounting used by the memory benchmark F2.
    """
    dims, rank_tuple, _, _, k = _geometry(shape, ranks)
    if method == "dtucker":
        return slice_svd_nbytes(dims, k)
    if method in ("tucker_als", "hosvd", "rtd"):
        return tensor_nbytes(dims)
    if method == "mach":
        return mach_nbytes(dims, keep_probability)
    if method in ("tucker_ts", "tucker_ttmts"):
        total_rank = int(np.prod(rank_tuple, dtype=np.int64))
        secondary = max(total_rank // r for r in rank_tuple)
        return sketch_nbytes(
            dims, rank_tuple, (sketch_factor * secondary, sketch_factor * total_rank)
        )
    raise DatasetError(
        f"unknown method {method!r}; available: {', '.join(COMPLEXITY_METHODS)}"
    )
