"""Experiment harness: method registry, grid runner, reports, cost models."""

from .complexity import COMPLEXITY_METHODS, space_estimate, time_estimate
from .harness import METHOD_NAMES, ExperimentRecord, run_grid, run_method
from .report import (
    format_records,
    format_series,
    format_table,
    pivot,
    speedup_over,
    storage_ratio_over,
)

__all__ = [
    "COMPLEXITY_METHODS",
    "space_estimate",
    "time_estimate",
    "METHOD_NAMES",
    "ExperimentRecord",
    "run_grid",
    "run_method",
    "format_records",
    "format_series",
    "format_table",
    "pivot",
    "speedup_over",
    "storage_ratio_over",
]
