"""Plain-text report formatting for experiment records.

The benchmarks print the same row/series structure the paper's tables and
figures report; these helpers render :class:`~repro.experiments.harness.
ExperimentRecord` lists as aligned text tables and compute the headline
ratios (speedup over the best competitor, storage ratio, …).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .harness import ExperimentRecord

__all__ = [
    "format_table",
    "format_records",
    "pivot",
    "speedup_over",
    "storage_ratio_over",
    "format_series",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _human_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def format_records(records: Sequence[ExperimentRecord]) -> str:
    """Standard comparison table: one row per (dataset, method)."""
    headers = [
        "dataset", "method", "shape", "time(s)", "error", "stored", "iters",
    ]
    rows = [
        [
            r.dataset,
            r.method,
            "x".join(str(d) for d in r.shape),
            f"{r.total_seconds:.4f}",
            f"{r.error:.5f}",
            _human_bytes(r.stored_nbytes),
            r.n_iters,
        ]
        for r in records
    ]
    return format_table(headers, rows)


def pivot(
    records: Sequence[ExperimentRecord],
    value: Callable[[ExperimentRecord], float],
) -> dict[str, dict[str, float]]:
    """Nest records as ``{dataset: {method: value(record)}}``."""
    table: dict[str, dict[str, float]] = {}
    for r in records:
        table.setdefault(r.dataset, {})[r.method] = value(r)
    return table


def speedup_over(
    records: Sequence[ExperimentRecord], *, method: str = "dtucker"
) -> dict[str, dict[str, float]]:
    """Per dataset, every competitor's time divided by ``method``'s time."""
    times = pivot(records, lambda r: r.total_seconds)
    out: dict[str, dict[str, float]] = {}
    for dataset, by_method in times.items():
        if method not in by_method:
            continue
        base = by_method[method]
        out[dataset] = {
            m: (t / base if base > 0 else float("inf"))
            for m, t in by_method.items()
            if m != method
        }
    return out


def storage_ratio_over(
    records: Sequence[ExperimentRecord], *, method: str = "dtucker"
) -> dict[str, dict[str, float]]:
    """Per dataset, every competitor's stored bytes divided by ``method``'s."""
    stores = pivot(records, lambda r: float(r.stored_nbytes))
    out: dict[str, dict[str, float]] = {}
    for dataset, by_method in stores.items():
        if method not in by_method:
            continue
        base = by_method[method]
        out[dataset] = {
            m: (b / base if base > 0 else float("inf"))
            for m, b in by_method.items()
            if m != method
        }
    return out


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    fmt: str = "{:.4f}",
) -> str:
    """Render figure-style series (one column per method) as a text table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [fmt.format(series[name][i]) for name in series])
    return format_table(headers, rows)
