"""Pluggable array-namespace facade: one device/namespace abstraction.

Every compute layer (``linalg/``, ``tensor/``, ``kernels/``,
``core/iteration``) dispatches its array operations through an
:class:`ArrayModule` — a thin facade over a concrete array namespace
(NumPy, torch, CuPy, or any array-API-standard namespace such as
``array_api_strict``).  The contract has three parts:

* **Bit-identity for NumPy.**  :class:`NumpyModule` methods are *literal*
  delegations to the exact NumPy calls the pre-facade code ran
  (``np.linalg.svd``, ``np.einsum(..., optimize=True)``,
  ``np.dot(a, b, out=out)``, …).  Dispatching a NumPy array through the
  facade therefore executes the identical BLAS/LAPACK kernels and
  produces bit-identical results — the property the default
  ``device="cpu"`` path is pinned to.
* **Lazy discovery.**  Non-NumPy namespaces are optional extras: nothing
  here imports torch/CuPy at module load.  :func:`probe_namespaces`
  reports what is importable; :func:`resolve_device` materialises a
  module only when a caller actually asks for one and raises
  :class:`~repro.exceptions.BackendError` with an actionable message
  otherwise.
* **Capability adaptation.**  Namespaces differ (torch has no
  ``out=``-einsum, the array-API standard has no ``einsum``/``kron`` and
  forbids negative-step slicing).  The generic :class:`ArrayModule`
  implements the missing pieces from standard building blocks
  (``matmul``/``reshape``/``permute``), so compute code written against
  the facade runs unchanged on every namespace.  The ``caps`` mapping
  records what is native vs. emulated for introspection.

Dispatch is *by input*: :func:`array_module_of` maps array types to
modules (a torch tensor selects the torch module for its device, a CuPy
array the CuPy module, everything else NumPy), so threading a device
through the stack means converting the inputs once (``to_device``) — the
kernels then follow the arrays.

Transfers
---------
``to_device`` / ``from_device`` are the only host↔device crossing points.
They are deliberately explicit so callers can account for them: the
kernels record ``xfer:h2d`` / ``xfer:d2h`` events with bytes moved on
:class:`~repro.kernels.stats.KernelStats`, surfaced per phase on
:class:`~repro.engine.trace.PhaseTrace`.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

import numpy as np

from ..exceptions import BackendError

__all__ = [
    "ArrayModule",
    "NumpyModule",
    "NUMPY",
    "DEVICE_NAMES",
    "ENV_DEVICE",
    "array_module_of",
    "get_module",
    "probe_namespaces",
    "resolve_device",
]

#: Environment variable consulted by ``device="auto"`` resolution.
ENV_DEVICE = "REPRO_DEVICE"

#: Specs accepted by ``device=`` arguments.  ``"cpu"`` is NumPy;
#: ``"cuda"`` picks the first available CUDA namespace (torch, then CuPy);
#: the explicit namespace names exist for tests and CPU-only torch runs.
DEVICE_NAMES: tuple[str, ...] = (
    "auto",
    "cpu",
    "cuda",
    "numpy",
    "torch",
    "torch-cuda",
    "cupy",
    "array-api-strict",
)


def _flat_positions(xp_arange, idx, n_cols: int):
    """Row-major flat positions of ``(idx[j], j)`` pairs in an ``(m, r)`` matrix."""
    return idx * n_cols + xp_arange(n_cols)


class ArrayModule:
    """Facade over one array namespace bound to one device.

    The base class implements the full surface against the array-API
    standard plus generic emulations for the non-standard operations the
    library needs (``einsum``, ``kron``, Fortran-order reshape, flat
    gathers, ``out=`` targets).  Subclasses override with native calls.

    Parameters
    ----------
    name:
        Identifier (``"numpy"``, ``"torch"``, ``"torch-cuda"``, ``"cupy"``,
        ``"array-api-strict"``) — also the ``device=`` spec that selects it.
    xp:
        The namespace module.
    device:
        Physical device label: ``"cpu"`` or ``"cuda"``.
    """

    def __init__(self, name: str, xp: Any, device: str = "cpu") -> None:
        self.name = str(name)
        self.xp = xp
        self.device = str(device)
        #: Native-vs-emulated capability report (introspection only).
        self.caps: dict[str, bool] = {
            "native_einsum": hasattr(xp, "einsum"),
            "native_kron": hasattr(xp, "kron"),
            "native_out": False,
            "order_reshape": False,
            "fancy_index": False,
        }

    # -- identity ----------------------------------------------------------
    @property
    def is_numpy(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayModule({self.name!r}, device={self.device!r})"

    # -- dtype plumbing ----------------------------------------------------
    def dtype(self, spec: Any) -> Any:
        """The namespace dtype object for a NumPy dtype / dtype name."""
        return getattr(self.xp, np.dtype(spec).name)

    def np_dtype(self, arr: Any) -> np.dtype:
        """The NumPy dtype corresponding to ``arr``'s namespace dtype."""
        try:
            return np.dtype(str(arr.dtype))
        except TypeError:
            return np.asarray(self.from_device(arr[..., :0])).dtype

    def finfo_eps(self, arr: Any) -> float:
        return float(self.xp.finfo(arr.dtype).eps)

    def nbytes(self, arr: Any) -> int:
        """Bytes held by ``arr`` (shape × itemsize of the mapped dtype)."""
        n = 1
        for d in arr.shape:
            n *= int(d)
        return n * self.np_dtype(arr).itemsize

    # -- transfers ---------------------------------------------------------
    def to_device(self, arr: Any, dtype: Any = None) -> Any:
        """Move a host (NumPy) array into this namespace/device."""
        host = np.ascontiguousarray(arr)
        return self.xp.asarray(
            host, dtype=self.dtype(dtype if dtype is not None else host.dtype)
        )

    def from_device(self, arr: Any) -> np.ndarray:
        """Move a namespace array back to a host NumPy array (independent copy)."""
        try:
            out = np.from_dlpack(arr)
        except (AttributeError, TypeError, RuntimeError, BufferError):
            out = np.asarray(arr)
        return np.array(out, copy=True)

    def synchronize(self) -> None:
        """Wait for outstanding asynchronous device work (no-op on CPU)."""

    # -- creation ----------------------------------------------------------
    def asarray(self, arr: Any, dtype: Any = None) -> Any:
        if dtype is None:
            return self.xp.asarray(arr)
        return self.xp.asarray(arr, dtype=self.dtype(dtype))

    def empty(self, shape: Sequence[int], dtype: Any = np.float64) -> Any:
        return self.xp.empty(tuple(int(d) for d in shape), dtype=self.dtype(dtype))

    def zeros(self, shape: Sequence[int], dtype: Any = np.float64) -> Any:
        return self.xp.zeros(tuple(int(d) for d in shape), dtype=self.dtype(dtype))

    def eye(self, n: int, dtype: Any = np.float64) -> Any:
        return self.xp.eye(int(n), dtype=self.dtype(dtype))

    def arange(self, n: int) -> Any:
        return self.xp.arange(int(n))

    def standard_normal(self, shape: Sequence[int], dtype: Any, rng) -> Any:
        """Gaussian draw — always from the *host* generator, then uploaded.

        Drawing on the host keeps the sketch identical across namespaces,
        which is what makes a torch fit reproduce the NumPy fit to
        round-off instead of to a different random draw.
        """
        host = rng.standard_normal(tuple(int(d) for d in shape))
        return self.to_device(host.astype(np.dtype(dtype), copy=False))

    # -- shaping -----------------------------------------------------------
    def reshape(self, arr: Any, shape: Sequence[int], order: str = "C") -> Any:
        shape = tuple(int(d) for d in shape)
        if order == "C":
            return self.xp.reshape(arr, shape)
        # Fortran-order reshape from C-order primitives:
        # ravel_F(x) == ravel_C(x.T), so reshape_F(x, s) == reshape_C(x.T, s[::-1]).T
        rev = tuple(range(arr.ndim - 1, -1, -1))
        flipped = self.xp.permute_dims(arr, rev)
        # Resolve a single -1 entry against the total size.
        if -1 in shape:
            total = 1
            for d in arr.shape:
                total *= int(d)
            known = 1
            for d in shape:
                if d != -1:
                    known *= d
            shape = tuple(total // known if d == -1 else d for d in shape)
        out = self.xp.reshape(flipped, tuple(reversed(shape)))
        return self.xp.permute_dims(out, tuple(range(len(shape) - 1, -1, -1)))

    def moveaxis(self, arr: Any, src: int, dst: int) -> Any:
        perm = list(range(arr.ndim))
        perm.insert(dst, perm.pop(src))
        return self.xp.permute_dims(arr, tuple(perm))

    def swapaxes(self, arr: Any, a: int, b: int) -> Any:
        perm = list(range(arr.ndim))
        perm[a], perm[b] = perm[b], perm[a]
        return self.xp.permute_dims(arr, tuple(perm))

    def mT(self, arr: Any) -> Any:
        """Transpose the trailing two axes (matrix transpose, batch-safe)."""
        return self.swapaxes(arr, -1, -2)

    def concatenate(self, arrays: Sequence[Any], axis: int = 0, out: Any = None) -> Any:
        res = self.xp.concat(tuple(arrays), axis=axis)
        if out is None:
            return res
        out[...] = res
        return out

    def stack(self, arrays: Sequence[Any], axis: int = 0) -> Any:
        return self.xp.stack(tuple(arrays), axis=axis)

    def ascontiguousarray(self, arr: Any) -> Any:
        return arr

    def flip(self, arr: Any, axis: int) -> Any:
        return self.xp.flip(arr, axis=axis)

    def diagonal(self, arr: Any) -> Any:
        """Main diagonal of a 2-D matrix."""
        m = min(int(arr.shape[0]), int(arr.shape[1]))
        idx = self.arange(m)
        return self.take_flat(arr, idx * int(arr.shape[1]) + idx)

    def take_flat(self, arr: Any, flat_idx: Any) -> Any:
        """Gather ``arr.ravel()[flat_idx]`` (row-major flattening)."""
        return self.xp.take(self.xp.reshape(arr, (-1,)), flat_idx)

    # -- elementwise / reductions ------------------------------------------
    def abs(self, arr: Any) -> Any:
        return self.xp.abs(arr)

    def sign(self, arr: Any) -> Any:
        return self.xp.sign(arr)

    def sqrt(self, arr: Any) -> Any:
        return self.xp.sqrt(arr)

    def maximum(self, a: Any, b: Any) -> Any:
        return self.xp.maximum(self.asarray(a), self.asarray(b))

    def clip_min(self, arr: Any, lo: float) -> Any:
        return self.xp.maximum(arr, self.xp.asarray(lo, dtype=arr.dtype))

    def where(self, cond: Any, a: Any, b: Any) -> Any:
        return self.xp.where(cond, a, b)

    def argmax(self, arr: Any, axis: int) -> Any:
        return self.xp.argmax(arr, axis=axis)

    def all_finite(self, arr: Any) -> bool:
        return bool(self.xp.all(self.xp.isfinite(arr)))

    def array_equal(self, a: Any, b: Any) -> bool:
        if tuple(a.shape) != tuple(b.shape):
            return False
        return bool(self.xp.all(a == b))

    def sum_float64(self, arr: Any) -> float:
        """Sum every element, accumulating in the namespace's float64."""
        return float(self.xp.sum(self.astype(arr, np.float64)))

    def astype(self, arr: Any, dtype: Any) -> Any:
        return self.xp.astype(arr, self.dtype(dtype))

    def vector_norm(self, arr: Any) -> float:
        """Euclidean norm of a flattened array."""
        flat = self.astype(self.xp.reshape(arr, (-1,)), np.float64)
        return float(self.xp.sqrt(self.xp.sum(flat * flat)))

    def vdot_float64(self, arr: Any) -> float:
        """``ravel(x) @ ravel(x)`` with float64 accumulation."""
        flat = self.astype(self.xp.reshape(arr, (-1,)), np.float64)
        return float(self.xp.sum(flat * flat))

    # -- linear algebra ----------------------------------------------------
    def matmul(self, a: Any, b: Any) -> Any:
        return self.xp.matmul(a, b)

    def gemm_into(self, a: Any, b: Any, out: Any) -> Any:
        out[...] = self.xp.matmul(a, b)
        return out

    def tensordot(self, a: Any, b: Any, axes) -> Any:
        return self.xp.tensordot(a, b, axes=axes)

    def svd(self, a: Any, full_matrices: bool = False):
        res = self.xp.linalg.svd(a, full_matrices=full_matrices)
        # The array-API returns a (U, S, Vh) namedtuple; normalise to a tuple.
        return res[0], res[1], res[2]

    def qr(self, a: Any):
        res = self.xp.linalg.qr(a)
        return res[0], res[1]

    def eigh(self, a: Any):
        res = self.xp.linalg.eigh(a)
        return res[0], res[1]

    def cholesky(self, a: Any) -> Any:
        return self.xp.linalg.cholesky(a)

    def solve(self, a: Any, b: Any) -> Any:
        return self.xp.linalg.solve(a, b)

    def pinv(self, a: Any) -> Any:
        return self.xp.linalg.pinv(a)

    def kron(self, a: Any, b: Any) -> Any:
        if self.caps["native_kron"]:
            return self.xp.kron(a, b)
        (m, n), (p, q) = a.shape, b.shape
        out = a[:, None, :, None] * b[None, :, None, :]
        return self.xp.reshape(out, (int(m) * int(p), int(n) * int(q)))

    # -- einsum ------------------------------------------------------------
    def einsum(self, subscripts: str, *operands: Any, out: Any = None) -> Any:
        if self.caps["native_einsum"]:
            res = self.xp.einsum(subscripts, *operands)
        else:
            res = _einsum_generic(self, subscripts, *operands)
        if out is None:
            return res
        out[...] = res
        return out

    def einsum_float64(self, subscripts: str, *operands: Any) -> Any:
        """Einsum with inputs upcast to float64 (norm accumulation)."""
        ops = [self.astype(op, np.float64) for op in operands]
        return self.einsum(subscripts, *ops)


class NumpyModule(ArrayModule):
    """The default module: literal NumPy delegations (bit-identity anchor).

    Every method body is exactly the NumPy expression the pre-facade code
    ran, so routing NumPy arrays through the facade executes identical
    kernels — nothing about the default path changes, to the last bit.
    """

    def __init__(self) -> None:
        super().__init__("numpy", np, "cpu")
        self.caps.update(
            native_einsum=True, native_kron=True, native_out=True,
            order_reshape=True, fancy_index=True,
        )

    @property
    def is_numpy(self) -> bool:
        return True

    # -- dtype/transfers: all no-ops on the host ---------------------------
    def dtype(self, spec: Any) -> np.dtype:
        return np.dtype(spec)

    def np_dtype(self, arr: Any) -> np.dtype:
        return arr.dtype

    def nbytes(self, arr: Any) -> int:
        return int(arr.nbytes)

    def to_device(self, arr: Any, dtype: Any = None) -> np.ndarray:
        if dtype is None:
            return np.asarray(arr)
        return np.asarray(arr, dtype=dtype)

    def from_device(self, arr: Any) -> np.ndarray:
        return np.asarray(arr)

    def asarray(self, arr: Any, dtype: Any = None) -> np.ndarray:
        if dtype is None:
            return np.asarray(arr)
        return np.asarray(arr, dtype=dtype)

    def standard_normal(self, shape: Sequence[int], dtype: Any, rng) -> np.ndarray:
        return rng.standard_normal(tuple(int(d) for d in shape)).astype(
            np.dtype(dtype), copy=False
        )

    # -- creation / shaping ------------------------------------------------
    def empty(self, shape: Sequence[int], dtype: Any = np.float64) -> np.ndarray:
        return np.empty(tuple(int(d) for d in shape), dtype=dtype)

    def zeros(self, shape: Sequence[int], dtype: Any = np.float64) -> np.ndarray:
        return np.zeros(tuple(int(d) for d in shape), dtype=dtype)

    def eye(self, n: int, dtype: Any = np.float64) -> np.ndarray:
        return np.eye(int(n), dtype=dtype)

    def arange(self, n: int) -> np.ndarray:
        return np.arange(int(n))

    def reshape(self, arr: Any, shape: Sequence[int], order: str = "C") -> np.ndarray:
        return np.reshape(arr, tuple(int(d) for d in shape), order=order)

    def moveaxis(self, arr: Any, src: int, dst: int) -> np.ndarray:
        return np.moveaxis(arr, src, dst)

    def swapaxes(self, arr: Any, a: int, b: int) -> np.ndarray:
        return np.swapaxes(arr, a, b)

    def concatenate(self, arrays: Sequence[Any], axis: int = 0, out: Any = None) -> np.ndarray:
        if out is None:
            return np.concatenate(arrays, axis=axis)
        return np.concatenate(arrays, axis=axis, out=out)

    def stack(self, arrays: Sequence[Any], axis: int = 0) -> np.ndarray:
        return np.stack(arrays, axis=axis)

    def ascontiguousarray(self, arr: Any) -> np.ndarray:
        return np.ascontiguousarray(arr)

    def flip(self, arr: Any, axis: int) -> np.ndarray:
        return np.flip(arr, axis=axis)

    def diagonal(self, arr: Any) -> np.ndarray:
        return np.diagonal(arr)

    def take_flat(self, arr: Any, flat_idx: Any) -> np.ndarray:
        return np.take(arr, flat_idx)

    # -- elementwise / reductions ------------------------------------------
    def maximum(self, a: Any, b: Any) -> np.ndarray:
        return np.maximum(a, b)

    def clip_min(self, arr: Any, lo: float) -> np.ndarray:
        return np.clip(arr, lo, None)

    def argmax(self, arr: Any, axis: int) -> np.ndarray:
        return np.argmax(arr, axis=axis)

    def all_finite(self, arr: Any) -> bool:
        return bool(np.isfinite(arr).all())

    def array_equal(self, a: Any, b: Any) -> bool:
        return bool(np.array_equal(a, b))

    def astype(self, arr: Any, dtype: Any) -> np.ndarray:
        return np.asarray(arr, dtype=dtype)

    def vector_norm(self, arr: Any) -> float:
        return float(np.linalg.norm(np.ravel(arr)))

    def vdot_float64(self, arr: Any) -> float:
        flat = np.ravel(arr)
        if flat.dtype == np.float64:
            return float(flat @ flat)
        return float(np.einsum("i,i->", flat, flat, dtype=np.float64))

    def sum_float64(self, arr: Any) -> float:
        return float(np.sum(arr, dtype=np.float64))

    # -- linear algebra ----------------------------------------------------
    def matmul(self, a: Any, b: Any) -> np.ndarray:
        return np.matmul(a, b)

    def gemm_into(self, a: Any, b: Any, out: Any) -> np.ndarray:
        return np.dot(a, b, out=out)

    def tensordot(self, a: Any, b: Any, axes) -> np.ndarray:
        return np.tensordot(a, b, axes=axes)

    def svd(self, a: Any, full_matrices: bool = False):
        return np.linalg.svd(a, full_matrices=full_matrices)

    def qr(self, a: Any):
        return np.linalg.qr(a)

    def eigh(self, a: Any):
        return np.linalg.eigh(a)

    def cholesky(self, a: Any) -> np.ndarray:
        return np.linalg.cholesky(a)

    def solve(self, a: Any, b: Any) -> np.ndarray:
        return np.linalg.solve(a, b)

    def pinv(self, a: Any) -> np.ndarray:
        return np.linalg.pinv(a)

    def kron(self, a: Any, b: Any) -> np.ndarray:
        return np.kron(a, b)

    def einsum(self, subscripts: str, *operands: Any, out: Any = None) -> np.ndarray:
        if out is None:
            return np.einsum(subscripts, *operands, optimize=True)
        return np.einsum(subscripts, *operands, optimize=True, out=out)

    def einsum_float64(self, subscripts: str, *operands: Any) -> np.ndarray:
        return np.einsum(subscripts, *operands, optimize=True, dtype=np.float64)


class TorchModule(ArrayModule):
    """torch namespace bound to one device (``"cpu"`` or ``"cuda"``)."""

    def __init__(self, torch: Any, device: str = "cpu") -> None:
        name = "torch" if device == "cpu" else "torch-cuda"
        super().__init__(name, torch, device)
        self.caps.update(native_einsum=True, native_kron=True, fancy_index=True)
        self._dtype_map = {
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
            np.dtype(np.int64): torch.int64,
            np.dtype(np.int32): torch.int32,
        }
        self._np_map = {v: k for k, v in self._dtype_map.items()}

    def dtype(self, spec: Any) -> Any:
        return self._dtype_map[np.dtype(spec)]

    def np_dtype(self, arr: Any) -> np.dtype:
        return self._np_map[arr.dtype]

    def nbytes(self, arr: Any) -> int:
        return int(arr.element_size() * arr.nelement())

    def to_device(self, arr: Any, dtype: Any = None) -> Any:
        host = np.ascontiguousarray(arr)
        t = self.xp.as_tensor(host, device=self.device)
        if dtype is not None:
            t = t.to(self.dtype(dtype))
        # ``as_tensor`` aliases host memory on CPU; clone so device arrays
        # never share mutable storage with the caller's NumPy buffers.
        return t.clone() if self.device == "cpu" else t

    def from_device(self, arr: Any) -> np.ndarray:
        return np.array(arr.detach().cpu().numpy(), copy=True)

    def synchronize(self) -> None:
        if self.device == "cuda":  # pragma: no cover - requires a GPU
            self.xp.cuda.synchronize()

    def asarray(self, arr: Any, dtype: Any = None) -> Any:
        t = self.xp.as_tensor(arr, device=self.device)
        return t if dtype is None else t.to(self.dtype(dtype))

    def empty(self, shape: Sequence[int], dtype: Any = np.float64) -> Any:
        return self.xp.empty(
            tuple(int(d) for d in shape), dtype=self.dtype(dtype), device=self.device
        )

    def zeros(self, shape: Sequence[int], dtype: Any = np.float64) -> Any:
        return self.xp.zeros(
            tuple(int(d) for d in shape), dtype=self.dtype(dtype), device=self.device
        )

    def eye(self, n: int, dtype: Any = np.float64) -> Any:
        return self.xp.eye(int(n), dtype=self.dtype(dtype), device=self.device)

    def arange(self, n: int) -> Any:
        return self.xp.arange(int(n), device=self.device)

    def reshape(self, arr: Any, shape: Sequence[int], order: str = "C") -> Any:
        shape = tuple(int(d) for d in shape)
        if order == "C":
            return arr.reshape(shape)
        rev = arr.permute(tuple(range(arr.ndim - 1, -1, -1)))
        if -1 in shape:
            total = arr.nelement()
            known = 1
            for d in shape:
                if d != -1:
                    known *= d
            shape = tuple(total // known if d == -1 else d for d in shape)
        return rev.reshape(tuple(reversed(shape))).permute(
            tuple(range(len(shape) - 1, -1, -1))
        )

    def moveaxis(self, arr: Any, src: int, dst: int) -> Any:
        return self.xp.movedim(arr, src, dst)

    def swapaxes(self, arr: Any, a: int, b: int) -> Any:
        return self.xp.transpose(arr, a, b)

    def concatenate(self, arrays: Sequence[Any], axis: int = 0, out: Any = None) -> Any:
        if out is None:
            return self.xp.cat(tuple(arrays), dim=axis)
        return self.xp.cat(tuple(arrays), dim=axis, out=out)

    def stack(self, arrays: Sequence[Any], axis: int = 0) -> Any:
        return self.xp.stack(tuple(arrays), dim=axis)

    def ascontiguousarray(self, arr: Any) -> Any:
        return arr.contiguous()

    def flip(self, arr: Any, axis: int) -> Any:
        return self.xp.flip(arr, dims=(axis,))

    def diagonal(self, arr: Any) -> Any:
        return self.xp.diagonal(arr)

    def take_flat(self, arr: Any, flat_idx: Any) -> Any:
        return self.xp.take(arr, flat_idx)

    def clip_min(self, arr: Any, lo: float) -> Any:
        return self.xp.clamp(arr, min=lo)

    def argmax(self, arr: Any, axis: int) -> Any:
        return self.xp.argmax(arr, dim=axis)

    def all_finite(self, arr: Any) -> bool:
        return bool(self.xp.isfinite(arr).all())

    def array_equal(self, a: Any, b: Any) -> bool:
        return bool(self.xp.equal(a, b))

    def astype(self, arr: Any, dtype: Any) -> Any:
        return arr.to(self.dtype(dtype))

    def sum_float64(self, arr: Any) -> float:
        return float(self.xp.sum(arr.to(self.xp.float64)))

    def vector_norm(self, arr: Any) -> float:
        return float(self.xp.linalg.vector_norm(arr.reshape(-1).to(self.xp.float64)))

    def vdot_float64(self, arr: Any) -> float:
        flat = arr.reshape(-1).to(self.xp.float64)
        return float(flat @ flat)

    def tensordot(self, a: Any, b: Any, axes) -> Any:
        return self.xp.tensordot(a, b, dims=axes)

    def svd(self, a: Any, full_matrices: bool = False):
        u, s, vh = self.xp.linalg.svd(a, full_matrices=full_matrices)
        return u, s, vh

    def einsum(self, subscripts: str, *operands: Any, out: Any = None) -> Any:
        res = self.xp.einsum(subscripts, *operands)
        if out is None:
            return res
        out.copy_(res)
        return out

    def einsum_float64(self, subscripts: str, *operands: Any) -> Any:
        ops = [op.to(self.xp.float64) for op in operands]
        return self.xp.einsum(subscripts, *ops)


class CupyModule(ArrayModule):
    """CuPy namespace (always CUDA).  NumPy-compatible API surface."""

    def __init__(self, cupy: Any) -> None:  # pragma: no cover - requires a GPU
        super().__init__("cupy", cupy, "cuda")
        self.caps.update(
            native_einsum=True, native_kron=True, native_out=True,
            order_reshape=True, fancy_index=True,
        )

    # CuPy mirrors the NumPy API, so the generic base-class paths that
    # assume the array-API standard are replaced with NumPy-style calls.
    def dtype(self, spec: Any) -> np.dtype:  # pragma: no cover - requires a GPU
        return np.dtype(spec)

    def np_dtype(self, arr: Any) -> np.dtype:  # pragma: no cover
        return np.dtype(arr.dtype)

    def to_device(self, arr: Any, dtype: Any = None) -> Any:  # pragma: no cover
        host = np.ascontiguousarray(arr)
        return self.xp.asarray(host if dtype is None else host.astype(dtype, copy=False))

    def from_device(self, arr: Any) -> np.ndarray:  # pragma: no cover
        return self.xp.asnumpy(arr)

    def synchronize(self) -> None:  # pragma: no cover
        self.xp.cuda.get_current_stream().synchronize()

    def reshape(self, arr: Any, shape: Sequence[int], order: str = "C") -> Any:  # pragma: no cover
        return self.xp.reshape(arr, tuple(int(d) for d in shape), order=order)

    def moveaxis(self, arr: Any, src: int, dst: int) -> Any:  # pragma: no cover
        return self.xp.moveaxis(arr, src, dst)

    def swapaxes(self, arr: Any, a: int, b: int) -> Any:  # pragma: no cover
        return self.xp.swapaxes(arr, a, b)

    def concatenate(self, arrays: Sequence[Any], axis: int = 0, out: Any = None) -> Any:  # pragma: no cover
        if out is None:
            return self.xp.concatenate(arrays, axis=axis)
        return self.xp.concatenate(arrays, axis=axis, out=out)

    def flip(self, arr: Any, axis: int) -> Any:  # pragma: no cover
        return self.xp.flip(arr, axis=axis)

    def diagonal(self, arr: Any) -> Any:  # pragma: no cover
        return self.xp.diagonal(arr)

    def take_flat(self, arr: Any, flat_idx: Any) -> Any:  # pragma: no cover
        return self.xp.take(arr, flat_idx)

    def clip_min(self, arr: Any, lo: float) -> Any:  # pragma: no cover
        return self.xp.clip(arr, lo, None)

    def astype(self, arr: Any, dtype: Any) -> Any:  # pragma: no cover
        return arr.astype(dtype, copy=False)

    def gemm_into(self, a: Any, b: Any, out: Any) -> Any:  # pragma: no cover
        return self.xp.dot(a, b, out=out)

    def einsum(self, subscripts: str, *operands: Any, out: Any = None) -> Any:  # pragma: no cover
        if out is None:
            return self.xp.einsum(subscripts, *operands)
        return self.xp.einsum(subscripts, *operands, out=out)


# -- generic einsum ----------------------------------------------------------

def _einsum_generic(am: ArrayModule, subscripts: str, *operands: Any) -> Any:
    """Einsum from matmul/permute/reshape for namespaces without a native one.

    Supports the explicit form ``"ab,bc,...->ac"`` with distinct letters per
    operand and no ellipsis — the closed set of expressions this library
    uses.  Operands are contracted pairwise left to right; at each step the
    indices no longer needed (absent from the output and every remaining
    operand) are contracted away through one batched matmul.
    """
    if "->" not in subscripts or "." in subscripts:
        raise BackendError(
            f"generic einsum supports explicit subscripts only, got {subscripts!r}"
        )
    lhs, out_sub = subscripts.replace(" ", "").split("->")
    subs = lhs.split(",")
    if len(subs) != len(operands):
        raise BackendError(
            f"einsum got {len(operands)} operands for {len(subs)} subscripts"
        )
    for s in subs:
        if len(set(s)) != len(s):
            raise BackendError(
                f"generic einsum requires distinct letters per operand, got {s!r}"
            )

    def dim_of(sub: str, arr: Any, letter: str) -> int:
        return int(arr.shape[sub.index(letter)])

    def sum_away(sub: str, arr: Any, keep: set) -> tuple[str, Any]:
        """Sum out letters of ``arr`` not needed downstream."""
        drop = [c for c in sub if c not in keep]
        for c in drop:
            axis = sub.index(c)
            arr = am.xp.sum(arr, axis=axis)
            sub = sub[:axis] + sub[axis + 1:]
        return sub, arr

    def permute_to(sub: str, arr: Any, target: str) -> Any:
        perm = tuple(sub.index(c) for c in target)
        if perm == tuple(range(len(sub))):
            return arr
        return am.xp.permute_dims(arr, perm)

    cur_sub, cur = subs[0], operands[0]
    for i in range(1, len(subs)):
        nxt_sub, nxt = subs[i], operands[i]
        later = set("".join(subs[i + 1:])) | set(out_sub)
        keep_cur = later | set(nxt_sub)
        cur_sub, cur = sum_away(cur_sub, cur, keep_cur)
        keep_nxt = later | set(cur_sub)
        nxt_sub, nxt = sum_away(nxt_sub, nxt, keep_nxt)
        shared = [c for c in cur_sub if c in nxt_sub]
        batch = [c for c in shared if c in later]
        contract = [c for c in shared if c not in later]
        a_only = [c for c in cur_sub if c not in shared]
        b_only = [c for c in nxt_sub if c not in shared]
        a = permute_to(cur_sub, cur, "".join(batch + a_only + contract))
        b = permute_to(nxt_sub, nxt, "".join(batch + contract + b_only))
        bdim = [dim_of(cur_sub, cur, c) for c in batch]
        m = 1
        for c in a_only:
            m *= dim_of(cur_sub, cur, c)
        k = 1
        for c in contract:
            k *= dim_of(cur_sub, cur, c)
        n = 1
        for c in b_only:
            n *= dim_of(nxt_sub, nxt, c)
        bprod = 1
        for d in bdim:
            bprod *= d
        a2 = am.xp.reshape(a, (bprod, m, k))
        b2 = am.xp.reshape(b, (bprod, k, n))
        res = am.xp.matmul(a2, b2)
        new_sub = "".join(batch + a_only + b_only)
        new_shape = tuple(
            bdim
            + [dim_of(cur_sub, cur, c) for c in a_only]
            + [dim_of(nxt_sub, nxt, c) for c in b_only]
        )
        cur = am.xp.reshape(res, new_shape if new_shape else ())
        cur_sub = new_sub
    cur_sub, cur = sum_away(cur_sub, cur, set(out_sub))
    return permute_to(cur_sub, cur, out_sub)


# -- discovery / resolution --------------------------------------------------

#: The process-wide NumPy module (the default everything dispatches to).
NUMPY = NumpyModule()

_MODULES: dict[str, ArrayModule] = {"numpy": NUMPY, "cpu": NUMPY}
_PROBED: dict[str, bool] | None = None


def _importable(name: str) -> bool:
    import importlib.util

    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):  # pragma: no cover - defensive
        return False


def probe_namespaces(*, refresh: bool = False) -> dict[str, bool]:
    """Which optional namespaces are importable (no imports are performed
    beyond a spec lookup; results are cached per process)."""
    global _PROBED
    if _PROBED is None or refresh:
        _PROBED = {
            "numpy": True,
            "torch": _importable("torch"),
            "cupy": _importable("cupy"),
            "array_api_strict": _importable("array_api_strict"),
        }
    return dict(_PROBED)


def _torch_module(device: str) -> ArrayModule:
    try:
        import torch  # type: ignore[import-not-found]
    except ImportError as exc:
        raise BackendError(
            "device requires torch, which is not installed; install torch or "
            "use device='cpu'"
        ) from exc
    if device == "cuda" and not torch.cuda.is_available():  # pragma: no cover
        raise BackendError(
            "device='torch-cuda' requested but torch reports no CUDA device; "
            "use device='torch' for CPU torch or device='cpu' for NumPy"
        )
    return TorchModule(torch, device)


def _cupy_module() -> ArrayModule:  # pragma: no cover - requires a GPU
    try:
        import cupy  # type: ignore[import-not-found]
    except ImportError as exc:
        raise BackendError(
            "device='cupy' requires CuPy, which is not installed"
        ) from exc
    return CupyModule(cupy)


def _strict_module() -> ArrayModule:
    try:
        import array_api_strict  # type: ignore[import-not-found]
    except ImportError as exc:
        raise BackendError(
            "device='array-api-strict' requires the array-api-strict package"
        ) from exc
    return ArrayModule("array-api-strict", array_api_strict, "cpu")


def get_module(name: str) -> ArrayModule:
    """The :class:`ArrayModule` for an explicit namespace name (cached)."""
    key = str(name).lower().replace("_", "-")
    mod = _MODULES.get(key)
    if mod is not None:
        return mod
    if key == "torch":
        mod = _torch_module("cpu")
    elif key == "torch-cuda":
        mod = _torch_module("cuda")
    elif key == "cupy":
        mod = _cupy_module()  # pragma: no cover - requires a GPU
    elif key == "array-api-strict":
        mod = _strict_module()
    else:
        raise BackendError(
            f"unknown device {name!r}; choose from {', '.join(DEVICE_NAMES)}"
        )
    _MODULES[key] = mod
    return mod


def resolve_device(
    spec: "str | ArrayModule | None" = None, *, config=None
) -> ArrayModule:
    """Resolve a device spec into a live :class:`ArrayModule`.

    ``None``/``"auto"`` falls back to ``config.device`` (when given), then
    the ``REPRO_DEVICE`` environment variable, then ``"cpu"``.  ``"cpu"``
    is NumPy.  ``"cuda"`` picks the first importable CUDA namespace —
    torch with a visible GPU, else CuPy — and raises
    :class:`~repro.exceptions.BackendError` when neither is available.
    Explicit namespace names (``"torch"``, ``"torch-cuda"``, ``"cupy"``,
    ``"array-api-strict"``) select exactly that namespace.
    """
    if isinstance(spec, ArrayModule):
        return spec
    name = spec
    if name is None or name == "auto":
        name = getattr(config, "device", None) if config is not None else None
        if name is None or name == "auto":
            name = os.environ.get(ENV_DEVICE, "").lower() or "cpu"
    name = str(name).lower().replace("_", "-")
    if name == "auto":
        name = "cpu"
    if name == "cuda":
        probed = probe_namespaces()
        errors = []
        if probed["torch"]:  # pragma: no cover - requires a GPU
            try:
                return get_module("torch-cuda")
            except BackendError as exc:
                errors.append(str(exc))
        if probed["cupy"]:  # pragma: no cover - requires a GPU
            try:
                return get_module("cupy")
            except BackendError as exc:
                errors.append(str(exc))
        raise BackendError(
            "device='cuda' requested but no CUDA namespace is available "
            "(install torch with CUDA or CuPy)"
            + (": " + "; ".join(errors) if errors else "")
        )
    return get_module(name)


# -- dispatch by input -------------------------------------------------------

_TYPE_CACHE: dict[type, ArrayModule | None] = {}


def _module_for_type(tp: type) -> ArrayModule | None:
    """The non-NumPy module owning arrays of type ``tp`` (``None`` = NumPy)."""
    root = tp.__module__.partition(".")[0]
    if root == "torch":
        import torch

        return None if not issubclass(tp, torch.Tensor) else _MODULES.get("torch")
    if root == "cupy":  # pragma: no cover - requires a GPU
        return _MODULES.get("cupy")
    if root == "array_api_strict":
        return get_module("array-api-strict")
    return None


def array_module_of(*arrays: Any) -> ArrayModule:
    """The :class:`ArrayModule` owning the given arrays (NumPy by default).

    Dispatch is by array type: a torch tensor selects the torch module
    bound to the tensor's device, a CuPy array the CuPy module, an
    array-API-strict array the strict module; NumPy arrays, scalars,
    lists, and everything else select :data:`NUMPY`.  Mixing namespaces in
    one call selects the first non-NumPy one (device arrays dominate).
    """
    for arr in arrays:
        tp = type(arr)
        if tp is np.ndarray:
            continue
        cached = _TYPE_CACHE.get(tp)
        if cached is None and tp not in _TYPE_CACHE:
            root = tp.__module__.partition(".")[0]
            if root == "torch":
                dev = getattr(getattr(arr, "device", None), "type", "cpu")
                cached = get_module("torch" if dev == "cpu" else "torch-cuda")
                _TYPE_CACHE[tp] = cached
                return cached
            if root == "cupy":  # pragma: no cover - requires a GPU
                cached = get_module("cupy")
            elif root == "array_api_strict":
                cached = get_module("array-api-strict")
            else:
                cached = None
            _TYPE_CACHE[tp] = cached
        if cached is not None:
            if cached.name.startswith("torch"):
                dev = getattr(getattr(arr, "device", None), "type", "cpu")
                return get_module("torch" if dev == "cpu" else "torch-cuda")
            return cached
    return NUMPY
