"""Double-buffered IO prefetch for batch-at-a-time pipelines.

The out-of-core approximation phase alternates two very different
workloads: a gather-read of the next slice batch from a memory-mapped file
(IO-bound, mostly outside the GIL) and the batched SVD of the current
batch (CPU/BLAS-bound).  Running them strictly in sequence leaves one
resource idle at all times.  :class:`Prefetcher` overlaps them with a
single background thread that always stays one item ahead of the consumer
— classic double buffering — and accounts for how much IO time was
actually hidden, which :meth:`repro.engine.trace.PhaseTrace.annotate_io`
surfaces in ``--trace`` output.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterator, Sequence

__all__ = ["IngestQueue", "Prefetcher"]


class Prefetcher:
    """Iterate ``producer(item)`` results one step ahead of the consumer.

    Producing item ``i+1`` starts as soon as item ``i`` has been handed to
    the consumer, so the producer (an IO gather) runs concurrently with
    whatever the consumer does between iterations (an SVD).  Results are
    yielded strictly in item order; an exception raised by the producer
    propagates to the consumer at the corresponding iteration.

    Parameters
    ----------
    producer:
        Callable invoked once per item on the background thread.
    items:
        The work list (materialised up front; pipelines here are batch
        descriptors, never large data).
    depth:
        How many items to run ahead of the consumer (default 1 — double
        buffering; at most ``depth`` results are alive at once, which
        bounds peak memory to ``depth + 1`` batches).
    max_depth:
        Upper bound for *adaptive* depth growth.  When the consumer blocks
        on an unfinished prefetch (the IO is slower than the compute it
        should hide), the lookahead is deepened one step at a time up to
        this bound, trading bounded extra batch memory for more overlap on
        bursty or high-latency storage.  ``None`` (default) disables
        growth — the pipeline behaves exactly as a fixed-``depth``
        prefetcher.

    Attributes
    ----------
    wait_seconds:
        Time the consumer spent blocked on an unfinished prefetch — the IO
        that compute did *not* hide.
    produce_seconds:
        Total time spent inside ``producer`` calls — the IO that ran,
        overlapped or not.
    depth_grown:
        How many adaptive depth increments occurred (0 when ``max_depth``
        is ``None`` or the IO kept up).
    """

    def __init__(
        self,
        producer: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        depth: int = 1,
        max_depth: int | None = None,
    ) -> None:
        if int(depth) < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if max_depth is not None and int(max_depth) < int(depth):
            raise ValueError(
                f"max_depth must be >= depth ({depth}), got {max_depth}"
            )
        self._producer = producer
        self._items = list(items)
        self._depth = int(depth)
        self._max_depth = None if max_depth is None else int(max_depth)
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-prefetch"
        )
        self._futures: deque[Future[Any]] = deque()
        self._started = False
        self.wait_seconds = 0.0
        self.produce_seconds = 0.0
        self.depth_grown = 0

    def __len__(self) -> int:
        return len(self._items)

    def _run(self, item: Any) -> Any:
        start = time.perf_counter()
        try:
            return self._producer(item)
        finally:
            self.produce_seconds += time.perf_counter() - start

    def __iter__(self) -> Iterator[Any]:
        if self._started:
            raise RuntimeError("a Prefetcher can only be iterated once")
        self._started = True
        n = len(self._items)
        head = min(self._depth, n)
        for i in range(head):
            self._futures.append(self._pool.submit(self._run, self._items[i]))
        next_item = head
        for _ in range(n):
            fut = self._futures.popleft()
            # The consumer is about to block on IO that compute failed to
            # hide; deepen the lookahead (within the memory budget) so the
            # producer can run further ahead next time.
            if (
                self._max_depth is not None
                and self._depth < self._max_depth
                and not fut.done()
            ):
                self._depth += 1
                self.depth_grown += 1
                if next_item < n:
                    self._futures.append(
                        self._pool.submit(self._run, self._items[next_item])
                    )
                    next_item += 1
            # Keep the pipeline full *before* blocking on the front future:
            # the single worker runs submissions in order, so the next
            # item's IO proceeds while the consumer works on this result.
            if next_item < n:
                self._futures.append(
                    self._pool.submit(self._run, self._items[next_item])
                )
                next_item += 1
            start = time.perf_counter()
            result = fut.result()
            self.wait_seconds += time.perf_counter() - start
            yield result

    def close(self) -> None:
        """Cancel pending work and release the background thread."""
        while self._futures:
            self._futures.popleft().cancel()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _Close:
    """Sentinel telling the consumer thread to drain and exit."""


class IngestQueue:
    """Bounded hand-off between a block producer and a streaming fitter.

    Where :class:`Prefetcher` pulls a *known* work list ahead of a
    consumer, the ingest queue is push-based: producers :meth:`put` blocks
    as they arrive and a single consumer thread applies ``consumer`` (the
    fitter) to each, strictly in arrival order.  The queue depth is
    bounded, and ``put`` *blocks* when the fitter falls behind —
    backpressure, so an eager producer can never pile up unbounded
    uncompressed blocks in memory.

    An exception raised by the fitter is captured, the queue stops
    accepting work, and the exception re-raises on the next :meth:`put` or
    on :meth:`join` — mirroring how :class:`Prefetcher` propagates producer
    failures at the consuming call site.

    Parameters
    ----------
    consumer:
        Callable invoked once per block on the consumer thread.
    depth:
        Maximum queued (accepted but not yet fitted) blocks; ``put`` blocks
        once the queue holds this many.

    Attributes
    ----------
    put_wait_seconds:
        Total time producers spent blocked in :meth:`put` — the
        backpressure actually applied.
    consume_seconds:
        Total time inside ``consumer`` calls.
    n_put, n_done:
        Blocks accepted / blocks fitted so far.
    """

    def __init__(self, consumer: Callable[[Any], Any], *, depth: int = 2) -> None:
        if int(depth) < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self._consumer = consumer
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=int(depth))
        self._error: BaseException | None = None
        self._closed = False
        self.put_wait_seconds = 0.0
        self.consume_seconds = 0.0
        self.n_put = 0
        self.n_done = 0
        self._thread = threading.Thread(
            target=self._drain, name="repro-ingest", daemon=True
        )
        self._thread.start()

    @property
    def depth(self) -> int:
        """The configured backpressure bound."""
        return self._queue.maxsize

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _Close:
                    return
                if self._error is None:
                    start = time.perf_counter()
                    try:
                        self._consumer(item)
                        self.n_done += 1
                    except BaseException as exc:  # noqa: BLE001 - re-raised on put/join
                        self._error = exc
                    finally:
                        self.consume_seconds += time.perf_counter() - start
            finally:
                self._queue.task_done()

    def _check_error(self) -> None:
        if self._error is not None:
            exc, self._error = self._error, None
            self._closed = True
            raise exc

    def put(self, block: Any) -> None:
        """Enqueue a block, blocking while the fitter is ``depth`` behind."""
        if self._closed:
            raise RuntimeError("IngestQueue is closed")
        self._check_error()
        start = time.perf_counter()
        self._queue.put(block)
        self.put_wait_seconds += time.perf_counter() - start
        self.n_put += 1

    def join(self) -> None:
        """Block until every accepted block has been fitted (or failed)."""
        self._queue.join()
        self._check_error()

    def close(self) -> None:
        """Drain remaining work, stop the consumer thread, surface errors."""
        if not self._closed:
            self._closed = True
            self._queue.put(_Close)
            self._thread.join()
        self._check_error()

    def __enter__(self) -> "IngestQueue":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is None:
            self.close()
        else:
            # Already unwinding: stop the thread but let the original
            # exception propagate instead of masking it with a queued one.
            self._closed = True
            self._queue.put(_Close)
            self._thread.join()
