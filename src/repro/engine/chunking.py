"""Chunk planning for the ``chunked`` map-reduce primitive.

Every hot path in this library iterates over ``L`` independent items (slice
matrices, slice batches, modes).  The engine splits that index range into
contiguous ``[start, stop)`` chunks and dispatches one task per chunk, so
the planning policy in one place decides the parallel granularity of the
whole system.
"""

from __future__ import annotations

from ..exceptions import ShapeError

__all__ = ["plan_chunks"]


def plan_chunks(
    n_items: int, n_workers: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into contiguous ``[start, stop)`` chunks.

    Parameters
    ----------
    n_items:
        Number of independent items (``>= 0``).
    n_workers:
        Worker count the plan should saturate when ``chunk_size`` is not
        given: the range is split into ``min(n_workers, n_items)`` nearly
        equal chunks, so a serial backend gets exactly one chunk (and hence
        the exact same single batched BLAS call as the unchunked code).
    chunk_size:
        Explicit chunk length; the final chunk may be shorter.  ``None``
        selects the worker-count policy above.

    Returns
    -------
    list of (start, stop)
        Ordered, non-overlapping, covering ``range(n_items)`` exactly;
        empty when ``n_items == 0``.  No chunk is ever empty.
    """
    n = int(n_items)
    if n < 0:
        raise ShapeError(f"n_items must be >= 0, got {n_items}")
    if n == 0:
        return []
    w = int(n_workers)
    if w < 1:
        raise ShapeError(f"n_workers must be >= 1, got {n_workers}")
    if chunk_size is None:
        parts = min(w, n)
        base, extra = divmod(n, parts)
        plan = []
        start = 0
        for i in range(parts):
            stop = start + base + (1 if i < extra else 0)
            plan.append((start, stop))
            start = stop
        return plan
    c = int(chunk_size)
    if c < 1:
        raise ShapeError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(start, min(start + c, n)) for start in range(0, n, c)]
