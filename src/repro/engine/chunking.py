"""Chunk planning for the ``chunked`` map-reduce primitive.

Every hot path in this library iterates over ``L`` independent items (slice
matrices, slice batches, modes).  The engine splits that index range into
contiguous ``[start, stop)`` chunks and dispatches one task per chunk, so
the planning policy in one place decides the parallel granularity of the
whole system.

Two policies live here:

* :func:`plan_chunks` — the **static** policy: one chunk per worker.  With
  a cost model the boundaries balance the per-chunk cost sums instead of
  the per-chunk item counts, so a worker holding the heavy slices gets
  fewer of them.
* :func:`plan_dynamic_chunks` — the **dynamic** policy: oversplit into
  several (cost-balanced) chunks per worker.  The backends submit all
  chunks to their persistent pool up front; free workers pull the next
  chunk as they finish, which absorbs both cost-model error and machine
  noise the way a work-stealing queue does.

Both policies produce ordered, non-overlapping chunks covering the range
exactly, so task *outputs* are bit-identical under any plan — only the
work distribution changes.
"""

from __future__ import annotations

import logging

import numpy as np

from ..exceptions import ShapeError
from .cost import as_cost_array

__all__ = ["plan_chunks", "plan_dynamic_chunks", "chunk_costs"]

logger = logging.getLogger("repro.engine")

#: Chunks-per-worker target of the dynamic policy.  Large enough that the
#: tail chunk is a small fraction of one worker's share (worst-case idle
#: time ~= 1/OVERSPLIT of a worker period), small enough that per-task
#: dispatch overhead stays negligible for the slab sizes the solvers ship.
OVERSPLIT = 4


def _balanced_bounds(
    costs: np.ndarray, parts: int
) -> list[tuple[int, int]]:
    """Split ``range(len(costs))`` into ``parts`` contiguous cost-balanced chunks.

    Greedy prefix walk: each chunk accumulates items until its cost reaches
    the average of the *remaining* cost over the *remaining* chunks, while
    always leaving at least one item per unmade chunk.  Every chunk is
    non-empty, the heaviest-chunk excess is bounded by one item's cost, and
    a uniform cost model reproduces the equal-count ``divmod`` split of
    :func:`plan_chunks` exactly.
    """
    n = int(costs.shape[0])
    plan: list[tuple[int, int]] = []
    start = 0
    remaining = float(costs.sum())
    for part in range(parts):
        chunks_left = parts - part
        if chunks_left == 1:
            plan.append((start, n))
            break
        target = remaining / chunks_left
        stop = start
        acc = 0.0
        # Cap so every later chunk can still receive one item.
        cap = n - (chunks_left - 1)
        while stop < cap and (acc < target or stop == start):
            acc += float(costs[stop])
            stop += 1
        plan.append((start, stop))
        remaining -= acc
        start = stop
    return plan


def chunk_costs(
    plan: list[tuple[int, int]], costs: np.ndarray
) -> np.ndarray:
    """Total cost per planned chunk (used for heaviest-first ordering)."""
    prefix = np.concatenate(([0.0], np.cumsum(np.asarray(costs, dtype=float))))
    return np.array([prefix[stop] - prefix[start] for start, stop in plan])


def _validated(n_items: int, n_workers: int) -> tuple[int, int]:
    n = int(n_items)
    if n < 0:
        raise ShapeError(f"n_items must be >= 0, got {n_items}")
    w = int(n_workers)
    if w < 1:
        raise ShapeError(f"n_workers must be >= 1, got {n_workers}")
    return n, w


def plan_chunks(
    n_items: int,
    n_workers: int,
    chunk_size: int | None = None,
    *,
    costs: "np.ndarray | None" = None,
) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into contiguous ``[start, stop)`` chunks.

    Parameters
    ----------
    n_items:
        Number of independent items (``>= 0``).
    n_workers:
        Worker count the plan should saturate when ``chunk_size`` is not
        given: the range is split into ``min(n_workers, n_items)`` chunks —
        nearly equal item counts without a cost model, nearly equal cost
        sums with one — so a serial backend gets exactly one chunk (and
        hence the exact same single batched BLAS call as the unchunked
        code).
    chunk_size:
        Explicit chunk length; the final chunk may be shorter.  ``None``
        selects the worker-count policy above.  An explicit size overrides
        the cost model (the caller pinned the granularity); when it yields
        fewer chunks than workers the undersubscription is logged, since
        the surplus workers will sit idle for the whole dispatch.
    costs:
        Optional per-item cost weights (see :mod:`repro.engine.cost`);
        ignored when ``chunk_size`` is given.

    Returns
    -------
    list of (start, stop)
        Ordered, non-overlapping, covering ``range(n_items)`` exactly;
        empty when ``n_items == 0``.  No chunk is ever empty.
    """
    n, w = _validated(n_items, n_workers)
    if n == 0:
        return []
    if chunk_size is None:
        parts = min(w, n)
        c = as_cost_array(costs, n)
        if c is not None and parts > 1:
            return _balanced_bounds(c, parts)
        base, extra = divmod(n, parts)
        plan = []
        start = 0
        for i in range(parts):
            stop = start + base + (1 if i < extra else 0)
            plan.append((start, stop))
            start = stop
        return plan
    size = int(chunk_size)
    if size < 1:
        raise ShapeError(f"chunk_size must be >= 1, got {chunk_size}")
    plan = [(start, min(start + size, n)) for start in range(0, n, size)]
    if len(plan) < w:
        logger.warning(
            "chunk_size=%d yields %d chunk(s) for %d items but the backend "
            "has %d workers; %d worker(s) will idle — lower chunk_size or "
            "let the engine plan (chunk_size=None)",
            size, len(plan), n, w, w - len(plan),
        )
    return plan


def plan_dynamic_chunks(
    n_items: int,
    n_workers: int,
    *,
    costs: "np.ndarray | None" = None,
    chunk_size: int | None = None,
    oversplit: int = OVERSPLIT,
) -> list[tuple[int, int]]:
    """Oversplit plan for dynamic (queue-drained) execution.

    The range is split into up to ``n_workers * oversplit`` chunks — cost
    balanced when a model is available — so the pool queue always holds
    spare tasks for whichever worker finishes first.  The effective chunk
    size is therefore auto-tuned from the item count, the worker count and
    the cost distribution; an explicit ``chunk_size`` pins the granularity
    instead (same contract as :func:`plan_chunks`).

    A single-worker backend degrades to one chunk, reproducing the static
    serial plan (and its single batched BLAS call) exactly.
    """
    n, w = _validated(n_items, n_workers)
    if n == 0:
        return []
    if chunk_size is not None:
        return plan_chunks(n, w, chunk_size)
    if w == 1:
        return [(0, n)]
    parts = min(n, w * max(1, int(oversplit)))
    c = as_cost_array(costs, n)
    if c is not None and parts > 1:
        return _balanced_bounds(c, parts)
    base, extra = divmod(n, parts)
    plan = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        plan.append((start, stop))
        start = stop
    return plan
