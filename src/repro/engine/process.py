"""The process backend: chunk fan-out over workers, inputs as shared memory.

Worker processes sidestep the GIL and any BLAS-threading interplay
entirely, at the price of inter-process data movement.  The backend keeps
that price low with two mechanisms:

* **Shared-memory slabs** — slab arrays (the slice triples ``U``/``s``/
  ``Vt``, the slice stack being compressed) are copied once into
  :class:`multiprocessing.shared_memory.SharedMemory` segments and cached
  for the lifetime of the backend, keyed by array identity.  Tasks ship
  only ``(segment name, shape, dtype, start, stop)`` descriptors; workers
  attach and compute on zero-copy views.  An ALS run that dispatches
  dozens of per-mode contractions per sweep therefore uploads its triples
  exactly once.
* **A persistent pool** — workers are forked once (``fork`` start method
  where available, ``spawn`` elsewhere) and reused across all chunk maps.

Kernels must be module-level functions (or ``functools.partial`` of them)
and must return fresh arrays, never views into the shared slabs — the view
memory is unmapped when the task ends.

Dynamic scheduling works exactly as on the thread backend: the pool's
shared task queue is the work-stealing mechanism, the backend measures
per-task busy time, queue wait, and steal counts.  Queue wait crosses the
process boundary, so it is measured with ``time.time()`` (comparable
between processes on one machine) rather than ``perf_counter`` (per-process
epoch); busy time stays on ``perf_counter`` since it is taken inside one
process.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from .base import ChunkKernel, ExecutionBackend
from .cost import CostModel

__all__ = ["ProcessBackend"]

#: Descriptor of one shared slab: (segment name, shape, dtype string).
_SlabDescr = tuple[str, tuple[int, ...], str]


def _chunk_worker(
    kernel: ChunkKernel,
    descrs: Sequence[_SlabDescr],
    bounds: tuple[int, int],
    broadcast: dict[str, Any],
    submitted: float,
) -> tuple[int, float, float, Any]:
    """Attach the shared slabs, run one chunk, detach. Runs in the worker."""
    begin = time.time()
    t0 = time.perf_counter()
    start, stop = bounds
    segments = []
    views = []
    try:
        for name, shape, dtype in descrs:
            seg = shared_memory.SharedMemory(name=name)
            segments.append(seg)
            views.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)[start:stop])
        result = kernel(*views, **broadcast)
    finally:
        del views
        for seg in segments:
            seg.close()
    return os.getpid(), begin - submitted, time.perf_counter() - t0, result


def _task_worker(
    fn: Callable[[Any], Any], item: Any, submitted: float
) -> tuple[int, float, float, Any]:
    """Run one generic task in the worker, tagging the result with the pid."""
    begin = time.time()
    t0 = time.perf_counter()
    out = fn(item)
    return os.getpid(), begin - submitted, time.perf_counter() - t0, out


class ProcessBackend(ExecutionBackend):
    """Run chunks on a persistent process pool with shared-memory inputs."""

    name = "process"

    def __init__(
        self,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        schedule: str = "auto",
    ) -> None:
        super().__init__(n_workers=n_workers, chunk_size=chunk_size, schedule=schedule)
        self._pool: ProcessPoolExecutor | None = None
        # id(array) -> (array, segment, descriptor).  The array reference
        # both prevents the id from being recycled and keeps the cache
        # valid for the backend's lifetime.
        self._slabs: dict[int, tuple[np.ndarray, shared_memory.SharedMemory, _SlabDescr]] = {}

    # -- lifecycle ---------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers, mp_context=ctx)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for _, segment, _ in self._slabs.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
        self._slabs.clear()

    # -- shared-memory slabs -----------------------------------------------
    def _share(self, array: np.ndarray) -> _SlabDescr:
        """Publish ``array`` as a shared slab (cached by array identity)."""
        key = id(array)
        cached = self._slabs.get(key)
        if cached is not None:
            return cached[2]
        contiguous = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=contiguous.nbytes)
        np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)[...] = contiguous
        descr: _SlabDescr = (segment.name, contiguous.shape, contiguous.dtype.str)
        self._slabs[key] = (array, segment, descr)
        return descr

    def _tally_steals(self, workers: Sequence[str], n_tasks: int) -> None:
        """Steals = tasks pulled beyond each worker's first in this dispatch."""
        if n_tasks > 1:
            self._record_dispatch(None, steals=n_tasks - len(set(workers)))

    # -- execution ---------------------------------------------------------
    def run_chunks(
        self,
        kernel: ChunkKernel,
        plan: Sequence[tuple[int, int]],
        slabs: Sequence[np.ndarray],
        broadcast: dict[str, Any],
    ) -> list[Any]:
        if len(plan) <= 1:
            # One chunk: skip the upload/round-trip and run inline.
            results = []
            for start, stop in plan:
                t0 = time.perf_counter()
                results.append(kernel(*(s[start:stop] for s in slabs), **broadcast))
                self._record_task(
                    f"pid:{os.getpid()}",
                    stop - start,
                    busy_seconds=time.perf_counter() - t0,
                )
            return results
        descrs = [self._share(s) for s in slabs]
        pool = self._ensure_pool()
        futures = [
            pool.submit(_chunk_worker, kernel, descrs, bounds, broadcast, time.time())
            for bounds in plan
        ]
        results = []
        workers = []
        for future, (start, stop) in zip(futures, plan):
            pid, wait, busy, out = future.result()
            worker = f"pid:{pid}"
            workers.append(worker)
            self._record_task(
                worker, stop - start, busy_seconds=busy, wait_seconds=max(0.0, wait)
            )
            results.append(out)
        self._tally_steals(workers, len(plan))
        return results

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        costs: "CostModel | Sequence[float] | None" = None,
        schedule: str | None = None,
    ) -> list[Any]:
        if len(items) <= 1:
            results = []
            for item in items:
                t0 = time.perf_counter()
                results.append(fn(item))
                self._record_task(
                    f"pid:{os.getpid()}", 1, busy_seconds=time.perf_counter() - t0
                )
            return results
        order = self._map_order(len(items), costs, schedule)
        indices = order if order is not None else range(len(items))
        pool = self._ensure_pool()
        futures = {
            idx: pool.submit(_task_worker, fn, items[idx], time.time())
            for idx in indices
        }
        results: list[Any] = [None] * len(items)
        workers = []
        for idx, future in futures.items():
            pid, wait, busy, out = future.result()
            worker = f"pid:{pid}"
            workers.append(worker)
            self._record_task(worker, 1, busy_seconds=busy, wait_seconds=max(0.0, wait))
            results[idx] = out
        self._tally_steals(workers, len(items))
        return results
