"""The thread backend: chunk fan-out over a pool, BLAS team capped.

NumPy releases the GIL inside BLAS/LAPACK calls, so batched matmuls, QRs
and SVDs on independent chunks genuinely run concurrently from Python
threads — with zero serialization cost, since workers operate on views of
the caller's arrays.

The subtlety is *thread oversubscription*: if OpenBLAS/MKL also runs a
``T``-thread team inside every call, ``W`` concurrent workers ask for
``W × T`` cores and the machine thrashes.  While a parallel section is in
flight the backend therefore caps the BLAS team to
``max(1, T // n_workers)`` via :mod:`repro.engine.blas` (a no-op when no
control knob is found — see ``docs/backends.md``).

Dynamic scheduling needs no extra machinery here: all chunks of a dispatch
are submitted to the persistent pool up front, and
:class:`~concurrent.futures.ThreadPoolExecutor`'s shared FIFO queue *is*
the work-stealing mechanism — whichever worker finishes its chunk pulls
the next one.  The backend just measures it: per-task busy time, the time
each task sat queued, and how many tasks a worker pulled beyond its first
(reported as steals on the active :class:`~repro.engine.trace.PhaseTrace`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from .base import ChunkKernel, ExecutionBackend
from .blas import current_blas_threads, limit_blas_threads
from .cost import CostModel

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Run chunks on a persistent :class:`ThreadPoolExecutor`."""

    name = "thread"

    def __init__(
        self,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        schedule: str = "auto",
    ) -> None:
        super().__init__(n_workers=n_workers, chunk_size=chunk_size, schedule=schedule)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-engine"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _blas_cap(self) -> int:
        team = current_blas_threads()
        if team is None:
            return 1
        return max(1, team // self.n_workers)

    def _tally_steals(self, workers: Sequence[str], n_tasks: int) -> None:
        """Steals = tasks pulled beyond each worker's first in this dispatch."""
        if n_tasks > 1:
            self._record_dispatch(None, steals=n_tasks - len(set(workers)))

    def run_chunks(
        self,
        kernel: ChunkKernel,
        plan: Sequence[tuple[int, int]],
        slabs: Sequence[np.ndarray],
        broadcast: dict[str, Any],
    ) -> list[Any]:
        if len(plan) <= 1:
            # One chunk: no parallelism to coordinate — run inline and keep
            # the full BLAS team.
            results = []
            for start, stop in plan:
                t0 = time.perf_counter()
                results.append(kernel(*(s[start:stop] for s in slabs), **broadcast))
                self._record_task(
                    threading.current_thread().name,
                    stop - start,
                    busy_seconds=time.perf_counter() - t0,
                )
            return results

        def task(bounds: tuple[int, int], submitted: float) -> tuple[str, float, float, Any]:
            begin = time.perf_counter()
            start, stop = bounds
            out = kernel(*(s[start:stop] for s in slabs), **broadcast)
            return (
                threading.current_thread().name,
                begin - submitted,
                time.perf_counter() - begin,
                out,
            )

        pool = self._ensure_pool()
        with limit_blas_threads(self._blas_cap()):
            futures = [
                pool.submit(task, bounds, time.perf_counter()) for bounds in plan
            ]
            results = []
            workers = []
            for future, (start, stop) in zip(futures, plan):
                worker, wait, busy, out = future.result()
                workers.append(worker)
                self._record_task(
                    worker, stop - start, busy_seconds=busy, wait_seconds=wait
                )
                results.append(out)
        self._tally_steals(workers, len(plan))
        return results

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        costs: "CostModel | Sequence[float] | None" = None,
        schedule: str | None = None,
    ) -> list[Any]:
        if len(items) <= 1:
            results = []
            for item in items:
                t0 = time.perf_counter()
                results.append(fn(item))
                self._record_task(
                    threading.current_thread().name,
                    1,
                    busy_seconds=time.perf_counter() - t0,
                )
            return results

        def task(item: Any, submitted: float) -> tuple[str, float, float, Any]:
            begin = time.perf_counter()
            out = fn(item)
            return (
                threading.current_thread().name,
                begin - submitted,
                time.perf_counter() - begin,
                out,
            )

        order = self._map_order(len(items), costs, schedule)
        indices = order if order is not None else range(len(items))
        pool = self._ensure_pool()
        with limit_blas_threads(self._blas_cap()):
            futures = {
                idx: pool.submit(task, items[idx], time.perf_counter())
                for idx in indices
            }
            results: list[Any] = [None] * len(items)
            workers = []
            for idx, future in futures.items():
                worker, wait, busy, out = future.result()
                workers.append(worker)
                self._record_task(worker, 1, busy_seconds=busy, wait_seconds=wait)
                results[idx] = out
        self._tally_steals(workers, len(items))
        return results
