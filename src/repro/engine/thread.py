"""The thread backend: chunk fan-out over a pool, BLAS team capped.

NumPy releases the GIL inside BLAS/LAPACK calls, so batched matmuls, QRs
and SVDs on independent chunks genuinely run concurrently from Python
threads — with zero serialization cost, since workers operate on views of
the caller's arrays.

The subtlety is *thread oversubscription*: if OpenBLAS/MKL also runs a
``T``-thread team inside every call, ``W`` concurrent workers ask for
``W × T`` cores and the machine thrashes.  While a parallel section is in
flight the backend therefore caps the BLAS team to
``max(1, T // n_workers)`` via :mod:`repro.engine.blas` (a no-op when no
control knob is found — see ``docs/backends.md``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from .base import ChunkKernel, ExecutionBackend
from .blas import blas_thread_controls, limit_blas_threads

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Run chunks on a persistent :class:`ThreadPoolExecutor`."""

    name = "thread"

    def __init__(self, n_workers: int | None = None, chunk_size: int | None = None) -> None:
        super().__init__(n_workers=n_workers, chunk_size=chunk_size)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-engine"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _blas_cap(self) -> int:
        controls = blas_thread_controls()
        if controls is None:
            return 1
        getter, _ = controls
        return max(1, int(getter()) // self.n_workers)

    def run_chunks(
        self,
        kernel: ChunkKernel,
        plan: Sequence[tuple[int, int]],
        slabs: Sequence[np.ndarray],
        broadcast: dict[str, Any],
    ) -> list[Any]:
        if len(plan) <= 1:
            # One chunk: no parallelism to coordinate — run inline and keep
            # the full BLAS team.
            results = []
            for start, stop in plan:
                results.append(kernel(*(s[start:stop] for s in slabs), **broadcast))
                self._record_task(threading.current_thread().name, stop - start)
            return results

        def task(bounds: tuple[int, int]) -> tuple[str, Any]:
            start, stop = bounds
            out = kernel(*(s[start:stop] for s in slabs), **broadcast)
            return threading.current_thread().name, out

        pool = self._ensure_pool()
        with limit_blas_threads(self._blas_cap()):
            futures = [pool.submit(task, bounds) for bounds in plan]
            results = []
            for future, (start, stop) in zip(futures, plan):
                worker, out = future.result()
                self._record_task(worker, stop - start)
                results.append(out)
        return results

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        if len(items) <= 1:
            results = []
            for item in items:
                results.append(fn(item))
                self._record_task(threading.current_thread().name, 1)
            return results

        def task(item: Any) -> tuple[str, Any]:
            return threading.current_thread().name, fn(item)

        pool = self._ensure_pool()
        with limit_blas_threads(self._blas_cap()):
            futures = [pool.submit(task, item) for item in items]
            results = []
            for future in futures:
                worker, out = future.result()
                self._record_task(worker, 1)
                results.append(out)
        return results
