"""The serial backend: the reference executor every other backend must match.

With the default one-chunk plan, dispatching through :class:`SerialBackend`
performs *exactly* the same NumPy calls as the original unchunked code —
same batched BLAS invocations on the same contiguous views — so results are
bit-identical to the pre-engine implementation.  The parity tests pin the
parallel backends against this one.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .base import ChunkKernel, ExecutionBackend

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Run every chunk inline on the calling thread."""

    name = "serial"

    def __init__(self, n_workers: int | None = None, chunk_size: int | None = None) -> None:
        # A serial backend has exactly one worker regardless of the
        # requested count, so the default chunk plan is a single chunk.
        super().__init__(n_workers=1, chunk_size=chunk_size)

    def run_chunks(
        self,
        kernel: ChunkKernel,
        plan: Sequence[tuple[int, int]],
        slabs: Sequence[np.ndarray],
        broadcast: dict[str, Any],
    ) -> list[Any]:
        results = []
        for start, stop in plan:
            results.append(kernel(*(s[start:stop] for s in slabs), **broadcast))
            self._record_task("main", stop - start)
        return results

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        results = []
        for item in items:
            results.append(fn(item))
            self._record_task("main", 1)
        return results
