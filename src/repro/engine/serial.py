"""The serial backend: the reference executor every other backend must match.

With the default one-chunk plan, dispatching through :class:`SerialBackend`
performs *exactly* the same NumPy calls as the original unchunked code —
same batched BLAS invocations on the same contiguous views — so results are
bit-identical to the pre-engine implementation.  The parity tests pin the
parallel backends against this one.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

import numpy as np

from .base import ChunkKernel, ExecutionBackend
from .cost import CostModel

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Run every chunk inline on the calling thread."""

    name = "serial"

    def __init__(
        self,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        schedule: str = "auto",
    ) -> None:
        # A serial backend has exactly one worker regardless of the
        # requested count, so any schedule resolves static and the default
        # chunk plan is a single chunk.
        super().__init__(n_workers=1, chunk_size=chunk_size, schedule=schedule)

    def run_chunks(
        self,
        kernel: ChunkKernel,
        plan: Sequence[tuple[int, int]],
        slabs: Sequence[np.ndarray],
        broadcast: dict[str, Any],
    ) -> list[Any]:
        results = []
        for start, stop in plan:
            t0 = time.perf_counter()
            results.append(kernel(*(s[start:stop] for s in slabs), **broadcast))
            self._record_task(
                "main", stop - start, busy_seconds=time.perf_counter() - t0
            )
        return results

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        costs: "CostModel | Sequence[float] | None" = None,
        schedule: str | None = None,
    ) -> list[Any]:
        # One worker: costs/schedule cannot change anything — run in order.
        results = []
        for item in items:
            t0 = time.perf_counter()
            results.append(fn(item))
            self._record_task("main", 1, busy_seconds=time.perf_counter() - t0)
        return results
