"""The execution-backend interface and the ``chunked`` map-reduce primitive.

D-Tucker's hot loops share one shape: ``L`` independent items (slice
matrices in the approximation phase, slice blocks of the ``(L, ·, ·)``
triples in every per-mode contraction of the iteration phase, slice
batches in the out-of-core path).  A backend executes such work as ordered
chunk tasks:

* :class:`SerialBackend` runs every chunk inline (one chunk by default, so
  the computation is *exactly* the seed code path, bit for bit);
* :class:`~repro.engine.thread.ThreadBackend` fans chunks over a thread
  pool while capping the BLAS thread team to avoid oversubscription;
* :class:`~repro.engine.process.ProcessBackend` fans chunks over worker
  processes, publishing the input arrays once as shared-memory slabs.

Solvers never talk to pools directly — they call :func:`chunked` (stacked
array inputs, ordered concat reduce) or :meth:`ExecutionBackend.map`
(arbitrary picklable tasks, e.g. file-batch descriptors) and wrap each
algorithm phase in :meth:`ExecutionBackend.phase` so a structured
:class:`~repro.engine.trace.PhaseTrace` is emitted per phase.
"""

from __future__ import annotations

import abc
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .chunking import plan_chunks
from .trace import PhaseTrace, peak_rss_bytes

__all__ = ["ExecutionBackend", "chunked", "concat_chunks"]

#: A chunk kernel: positional slab chunks in, array (or tuple of arrays) out.
ChunkKernel = Callable[..., Any]


class ExecutionBackend(abc.ABC):
    """Common interface of the serial/thread/process execution backends.

    Subclasses implement :meth:`run_chunks` (slab-chunk fan-out) and
    :meth:`map` (generic ordered task map).  The base class owns worker
    accounting, phase tracing, and context-manager lifecycle; backends that
    hold pools or shared memory release them in :meth:`close`.
    """

    #: Registry name, e.g. ``"serial"``; set by each subclass.
    name: str = "base"

    def __init__(self, n_workers: int | None = None, chunk_size: int | None = None) -> None:
        import os

        from ..exceptions import ShapeError

        workers = int(n_workers) if n_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise ShapeError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size is not None and int(chunk_size) < 1:
            raise ShapeError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_workers = workers
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self.traces: list[PhaseTrace] = []
        self._active_trace: PhaseTrace | None = None

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release pools/shared memory; the backend is reusable after close."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- tracing -----------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseTrace]:
        """Group all work dispatched inside the block under one trace."""
        trace = PhaseTrace(phase=name, backend=self.name, n_workers=self.n_workers)
        previous = self._active_trace
        self._active_trace = trace
        start = time.perf_counter()
        try:
            yield trace
        finally:
            trace.seconds += time.perf_counter() - start
            trace.peak_rss_bytes = peak_rss_bytes()
            self._active_trace = previous
            self.traces.append(trace)

    def _record_task(self, worker_id: str, chunk_size: int) -> None:
        if self._active_trace is not None:
            self._active_trace.record_task(worker_id, chunk_size)

    # -- execution ---------------------------------------------------------
    @abc.abstractmethod
    def run_chunks(
        self,
        kernel: ChunkKernel,
        plan: Sequence[tuple[int, int]],
        slabs: Sequence[np.ndarray],
        broadcast: dict[str, Any],
    ) -> list[Any]:
        """Run ``kernel(*slab[start:stop] …, **broadcast)`` per planned chunk.

        ``slabs`` are arrays indexed along axis 0 by the item index; every
        kernel invocation receives the corresponding row-chunk of each slab
        (a view for in-process backends, a shared-memory view for the
        process backend).  Results are returned in plan order and must be
        fresh arrays (no views into the inputs) so the process backend can
        ship them back safely.
        """

    @abc.abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Ordered map of an arbitrary task function over items.

        For the process backend ``fn`` and every item must be picklable
        (module-level functions, ``functools.partial`` of them, plain data).
        Used by workloads whose inputs are not slab arrays — e.g. the
        out-of-core path maps over ``(start, stop, Ω)`` file-batch
        descriptors and each worker memory-maps the file itself.
        """


def chunked(
    engine: ExecutionBackend,
    kernel: ChunkKernel,
    n_items: int,
    *,
    slabs: Sequence[np.ndarray] = (),
    broadcast: dict[str, Any] | None = None,
    chunk_size: int | None = None,
    reduce: Callable[[list[Any]], Any] | None = None,
) -> Any:
    """The map-reduce primitive behind every engine-dispatched hot path.

    Splits ``range(n_items)`` into chunks (``chunk_size`` argument, else the
    engine's configured chunk size, else one chunk per worker), maps
    ``kernel`` over the chunks via the engine, and reduces the ordered
    chunk results with ``reduce`` (default: return the list).

    Parameters
    ----------
    engine:
        Backend to dispatch on.
    kernel:
        Module-level function ``kernel(*slab_chunks, **broadcast)``;
        must return fresh arrays (see :meth:`ExecutionBackend.run_chunks`).
    n_items:
        Length of the item axis (axis 0 of every slab).
    slabs:
        Arrays sliced per chunk along axis 0.
    broadcast:
        Small keyword arguments shipped whole to every chunk (factor
        matrices, test matrices, scalars).
    chunk_size:
        Explicit chunk length override.
    reduce:
        Reduction over the ordered chunk results; use
        :func:`concat_chunks` for stacked array outputs.
    """
    size = chunk_size if chunk_size is not None else engine.chunk_size
    plan = plan_chunks(n_items, engine.n_workers, size)
    results = engine.run_chunks(kernel, plan, tuple(slabs), dict(broadcast or {}))
    return reduce(results) if reduce is not None else results


def concat_chunks(parts: list[Any]) -> Any:
    """Ordered concat reduce: stitch per-chunk outputs back along axis 0.

    Accepts a list of arrays (concatenated directly) or a list of equal-length
    tuples of arrays (concatenated position-wise, for kernels returning
    several outputs such as ``(U, s, Vt, norms)``).
    """
    if not parts:
        raise ValueError("concat_chunks requires at least one chunk result")
    if isinstance(parts[0], tuple):
        return tuple(
            np.concatenate([p[i] for p in parts], axis=0)
            for i in range(len(parts[0]))
        )
    return np.concatenate(parts, axis=0)
