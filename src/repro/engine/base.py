"""The execution-backend interface and the ``chunked`` map-reduce primitive.

D-Tucker's hot loops share one shape: ``L`` independent items (slice
matrices in the approximation phase, slice blocks of the ``(L, ·, ·)``
triples in every per-mode contraction of the iteration phase, slice
batches in the out-of-core path).  A backend executes such work as ordered
chunk tasks:

* :class:`SerialBackend` runs every chunk inline (one chunk by default, so
  the computation is *exactly* the seed code path, bit for bit);
* :class:`~repro.engine.thread.ThreadBackend` fans chunks over a thread
  pool while capping the BLAS thread team to avoid oversubscription;
* :class:`~repro.engine.process.ProcessBackend` fans chunks over worker
  processes, publishing the input arrays once as shared-memory slabs.

Solvers never talk to pools directly — they call :func:`chunked` (stacked
array inputs, ordered concat reduce) or :meth:`ExecutionBackend.map`
(arbitrary picklable tasks, e.g. file-batch descriptors) and wrap each
algorithm phase in :meth:`ExecutionBackend.phase` so a structured
:class:`~repro.engine.trace.PhaseTrace` is emitted per phase.
"""

from __future__ import annotations

import abc
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .chunking import chunk_costs, plan_chunks, plan_dynamic_chunks
from .cost import CostModel, as_cost_array
from .trace import PhaseTrace, peak_rss_bytes

__all__ = [
    "ExecutionBackend",
    "chunked",
    "concat_chunks",
    "resolve_schedule",
    "SCHEDULE_NAMES",
]

#: A chunk kernel: positional slab chunks in, array (or tuple of arrays) out.
ChunkKernel = Callable[..., Any]

#: Scheduling policies accepted by ``schedule=`` arguments.
SCHEDULE_NAMES: tuple[str, ...] = ("auto", "static", "dynamic")


def resolve_schedule(schedule: str | None, n_workers: int, n_items: int) -> str:
    """Resolve a schedule spec into ``"static"`` or ``"dynamic"``.

    ``"auto"`` (and ``None``) picks dynamic exactly when it can help: more
    than one worker to race, and more items than workers so the range can
    be oversplit.  A serial backend therefore always resolves static and
    keeps its single-chunk (bit-identical, single-BLAS-call) plan.
    """
    if schedule in ("static", "dynamic"):
        return schedule
    if schedule not in (None, "auto"):
        from ..exceptions import BackendError

        raise BackendError(
            f"schedule must be one of {', '.join(SCHEDULE_NAMES)}, got {schedule!r}"
        )
    return "dynamic" if int(n_workers) > 1 and int(n_items) > int(n_workers) else "static"


class ExecutionBackend(abc.ABC):
    """Common interface of the serial/thread/process execution backends.

    Subclasses implement :meth:`run_chunks` (slab-chunk fan-out) and
    :meth:`map` (generic ordered task map).  The base class owns worker
    accounting, phase tracing, and context-manager lifecycle; backends that
    hold pools or shared memory release them in :meth:`close`.
    """

    #: Registry name, e.g. ``"serial"``; set by each subclass.
    name: str = "base"

    def __init__(
        self,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        schedule: str = "auto",
    ) -> None:
        import os

        from ..exceptions import BackendError, ShapeError

        workers = int(n_workers) if n_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise ShapeError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size is not None and int(chunk_size) < 1:
            raise ShapeError(f"chunk_size must be >= 1, got {chunk_size}")
        if schedule not in SCHEDULE_NAMES:
            raise BackendError(
                f"schedule must be one of {', '.join(SCHEDULE_NAMES)}, "
                f"got {schedule!r}"
            )
        self.n_workers = workers
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self.schedule = schedule
        self.traces: list[PhaseTrace] = []
        self._active_trace: PhaseTrace | None = None

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release pools/shared memory; the backend is reusable after close."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- tracing -----------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseTrace]:
        """Group all work dispatched inside the block under one trace."""
        trace = PhaseTrace(phase=name, backend=self.name, n_workers=self.n_workers)
        previous = self._active_trace
        self._active_trace = trace
        start = time.perf_counter()
        try:
            yield trace
        finally:
            trace.seconds += time.perf_counter() - start
            trace.peak_rss_bytes = peak_rss_bytes()
            self._active_trace = previous
            self.traces.append(trace)

    def _record_task(
        self,
        worker_id: str,
        chunk_size: int,
        *,
        busy_seconds: float = 0.0,
        wait_seconds: float = 0.0,
    ) -> None:
        if self._active_trace is not None:
            self._active_trace.record_task(
                worker_id,
                chunk_size,
                busy_seconds=busy_seconds,
                wait_seconds=wait_seconds,
            )

    def _record_dispatch(self, schedule: str | None = None, *, steals: int = 0) -> None:
        if self._active_trace is not None:
            self._active_trace.record_dispatch(schedule, steals=steals)

    # -- execution ---------------------------------------------------------
    @abc.abstractmethod
    def run_chunks(
        self,
        kernel: ChunkKernel,
        plan: Sequence[tuple[int, int]],
        slabs: Sequence[np.ndarray],
        broadcast: dict[str, Any],
    ) -> list[Any]:
        """Run ``kernel(*slab[start:stop] …, **broadcast)`` per planned chunk.

        ``slabs`` are arrays indexed along axis 0 by the item index; every
        kernel invocation receives the corresponding row-chunk of each slab
        (a view for in-process backends, a shared-memory view for the
        process backend).  Results are returned in plan order and must be
        fresh arrays (no views into the inputs) so the process backend can
        ship them back safely.
        """

    @abc.abstractmethod
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        costs: "CostModel | Sequence[float] | None" = None,
        schedule: str | None = None,
    ) -> list[Any]:
        """Ordered map of an arbitrary task function over items.

        For the process backend ``fn`` and every item must be picklable
        (module-level functions, ``functools.partial`` of them, plain data).
        Used by workloads whose inputs are not slab arrays — e.g. the
        out-of-core path maps over ``(start, stop, Ω)`` file-batch
        descriptors and each worker memory-maps the file itself.

        ``costs`` are optional per-item weights: under a dynamic schedule
        parallel backends submit the heaviest items first (longest
        processing time first), so the pool queue drains into a balanced
        finish.  Results are always returned in item order regardless.
        """

    def _map_order(
        self,
        n_items: int,
        costs: "CostModel | Sequence[float] | None",
        schedule: str | None,
    ) -> "list[int] | None":
        """Cost-descending submission order for a dynamic map, or ``None``.

        Shared by the parallel backends; ``None`` means submit in item
        order (no cost model, a static schedule, or nothing to reorder).
        """
        if resolve_schedule(schedule or self.schedule, self.n_workers, n_items) != "dynamic":
            return None
        arr = as_cost_array(costs, n_items)
        if arr is None or n_items < 3:
            return None
        return list(np.argsort(-arr, kind="stable"))


def chunked(
    engine: ExecutionBackend,
    kernel: ChunkKernel,
    n_items: int,
    *,
    slabs: Sequence[np.ndarray] = (),
    broadcast: dict[str, Any] | None = None,
    chunk_size: int | None = None,
    reduce: Callable[[list[Any]], Any] | None = None,
    costs: "CostModel | Sequence[float] | None" = None,
    schedule: str | None = None,
) -> Any:
    """The map-reduce primitive behind every engine-dispatched hot path.

    Splits ``range(n_items)`` into chunks (``chunk_size`` argument, else the
    engine's configured chunk size, else the scheduling policy below), maps
    ``kernel`` over the chunks via the engine, and reduces the ordered
    chunk results with ``reduce`` (default: return the list).

    Scheduling: the resolved policy (``schedule`` argument, else the
    engine's configured policy) decides the plan.  ``static`` makes one
    chunk per worker — cost-balanced boundaries when ``costs`` are given.
    ``dynamic`` oversplits the range (see
    :func:`~repro.engine.chunking.plan_dynamic_chunks`) and submits the
    heaviest chunks first; the persistent pools hand queued chunks to
    whichever worker frees up, so load balances at run time even when the
    cost model is wrong.  Either way chunk *outputs* are bit-identical —
    every kernel is per-item — so the policy is purely a performance knob.

    Parameters
    ----------
    engine:
        Backend to dispatch on.
    kernel:
        Module-level function ``kernel(*slab_chunks, **broadcast)``;
        must return fresh arrays (see :meth:`ExecutionBackend.run_chunks`).
    n_items:
        Length of the item axis (axis 0 of every slab).
    slabs:
        Arrays sliced per chunk along axis 0.
    broadcast:
        Small keyword arguments shipped whole to every chunk (factor
        matrices, test matrices, scalars).
    chunk_size:
        Explicit chunk length override (pins granularity under both
        policies).
    reduce:
        Reduction over the ordered chunk results; use
        :func:`concat_chunks` for stacked array outputs.
    costs:
        Optional per-item cost weights (a :class:`~repro.engine.cost
        .CostModel` or array-like) from the layer that knows the work
        distribution.
    schedule:
        ``"static"`` / ``"dynamic"`` / ``"auto"`` override of the engine's
        configured policy.
    """
    size = chunk_size if chunk_size is not None else engine.chunk_size
    cost_arr = as_cost_array(costs, n_items)
    resolved = resolve_schedule(
        schedule if schedule is not None else engine.schedule,
        engine.n_workers,
        n_items,
    )
    if resolved == "dynamic":
        plan = plan_dynamic_chunks(
            n_items, engine.n_workers, costs=cost_arr, chunk_size=size
        )
    else:
        plan = plan_chunks(n_items, engine.n_workers, size, costs=cost_arr)
    if len(plan) > 1:
        engine._record_dispatch(resolved)
    order: list[int] | None = None
    submitted = plan
    if resolved == "dynamic" and cost_arr is not None and len(plan) > 2:
        # Longest-processing-time-first submission: the queue then drains
        # into the tightest greedy finish.  Results are re-ordered below,
        # so the reduce still sees chunks in range order.
        weights = chunk_costs(plan, cost_arr)
        order = list(np.argsort(-weights, kind="stable"))
        submitted = [plan[i] for i in order]
    results = engine.run_chunks(kernel, submitted, tuple(slabs), dict(broadcast or {}))
    if order is not None:
        unscrambled: list[Any] = [None] * len(plan)
        for pos, idx in enumerate(order):
            unscrambled[idx] = results[pos]
        results = unscrambled
    return reduce(results) if reduce is not None else results


def concat_chunks(parts: list[Any]) -> Any:
    """Ordered concat reduce: stitch per-chunk outputs back along axis 0.

    Accepts a list of arrays (concatenated directly) or a list of equal-length
    tuples of arrays (concatenated position-wise, for kernels returning
    several outputs such as ``(U, s, Vt, norms)``).
    """
    if not parts:
        raise ValueError("concat_chunks requires at least one chunk result")
    if isinstance(parts[0], tuple):
        return tuple(
            np.concatenate([p[i] for p in parts], axis=0)
            for i in range(len(parts[0]))
        )
    return np.concatenate(parts, axis=0)
