"""Pluggable parallel execution engine for the D-Tucker hot paths.

Public surface:

* :class:`ExecutionBackend` — the backend interface,
* :class:`SerialBackend` / :class:`ThreadBackend` / :class:`ProcessBackend`
  — the three implementations,
* :func:`chunked` / :func:`concat_chunks` — the map-reduce primitive the
  solvers dispatch per-slice and per-mode work through,
* :func:`resolve_backend` / :func:`backend_scope` — turn a backend spec
  (name, instance, config, ``REPRO_BACKEND`` env) into a live backend,
* :class:`PhaseTrace` / :func:`format_traces` — structured per-phase
  execution traces attached to results,
* :func:`plan_chunks` — the chunking policy.

Backend selection
-----------------
Everything accepts a *backend spec*: an :class:`ExecutionBackend` instance
(used as-is), a registry name (``"serial"``, ``"thread"``, ``"process"``),
or ``None``/``"auto"``.  ``auto`` resolves to the ``REPRO_BACKEND``
environment variable when set, else ``serial`` — so an entire test suite or
deployment can be switched to a parallel engine without touching code.
Worker count resolves from the explicit argument, then
``DTuckerConfig.n_workers``, then ``REPRO_WORKERS``, then the CPU count.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from ..exceptions import BackendError
from .array_api import (
    DEVICE_NAMES,
    ENV_DEVICE,
    NUMPY,
    ArrayModule,
    NumpyModule,
    array_module_of,
    get_module,
    probe_namespaces,
    resolve_device,
)
from .base import (
    SCHEDULE_NAMES,
    ExecutionBackend,
    chunked,
    concat_chunks,
    resolve_schedule,
)
from .chunking import OVERSPLIT, chunk_costs, plan_chunks, plan_dynamic_chunks
from .cost import (
    ArrayCost,
    CommCost,
    CostModel,
    UniformCost,
    as_cost_array,
    combine_costs,
)
from .pipeline import IngestQueue, Prefetcher
from .process import ProcessBackend
from .serial import SerialBackend
from .thread import ThreadBackend
from .trace import PhaseTrace, format_traces, peak_rss_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.config import DTuckerConfig

__all__ = [
    "ArrayModule",
    "NumpyModule",
    "NUMPY",
    "DEVICE_NAMES",
    "array_module_of",
    "get_module",
    "probe_namespaces",
    "resolve_device",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "IngestQueue",
    "Prefetcher",
    "PhaseTrace",
    "BACKEND_NAMES",
    "SCHEDULE_NAMES",
    "OVERSPLIT",
    "CostModel",
    "UniformCost",
    "ArrayCost",
    "CommCost",
    "as_cost_array",
    "combine_costs",
    "chunk_costs",
    "chunked",
    "concat_chunks",
    "plan_chunks",
    "plan_dynamic_chunks",
    "resolve_backend",
    "resolve_schedule",
    "backend_scope",
    "format_traces",
    "peak_rss_bytes",
]

_REGISTRY: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

#: Names accepted by ``backend=`` arguments (besides ``"auto"``/instances).
BACKEND_NAMES: tuple[str, ...] = tuple(sorted(_REGISTRY))

#: Environment variables consulted by ``"auto"`` resolution.
ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"
ENV_SCHEDULE = "REPRO_SCHEDULE"


def _env_workers() -> int | None:
    raw = os.environ.get(ENV_WORKERS)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise BackendError(f"{ENV_WORKERS}={raw!r} is not an integer") from exc


def _env_schedule() -> str | None:
    raw = os.environ.get(ENV_SCHEDULE)
    if not raw:
        return None
    value = raw.lower()
    if value not in SCHEDULE_NAMES:
        raise BackendError(
            f"{ENV_SCHEDULE}={raw!r} is not one of {', '.join(SCHEDULE_NAMES)}"
        )
    return value


def resolve_backend(
    spec: "ExecutionBackend | str | None" = None,
    *,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    schedule: str | None = None,
    config: "DTuckerConfig | None" = None,
) -> ExecutionBackend:
    """Resolve a backend spec into a live :class:`ExecutionBackend`.

    Parameters
    ----------
    spec:
        An instance (returned unchanged — worker/chunk arguments are then
        ignored), a registry name, ``"auto"``, or ``None`` (falls back to
        ``config.backend``, then ``"auto"``).
    n_workers, chunk_size:
        Explicit overrides; default from ``config`` then the environment.
    schedule:
        Scheduling policy override (``"static"``/``"dynamic"``/``"auto"``);
        defaults from ``config.schedule``, then ``REPRO_SCHEDULE``, then
        ``"auto"``.
    config:
        Optional :class:`~repro.core.config.DTuckerConfig` supplying
        defaults for all four knobs.

    Raises
    ------
    BackendError
        On an unknown backend name or schedule.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    name = spec if spec is not None else (config.backend if config is not None else "auto")
    if not isinstance(name, str):
        raise BackendError(
            f"backend must be an ExecutionBackend instance or a name, got {name!r}"
        )
    name = name.lower()
    if name == "auto":
        name = os.environ.get(ENV_BACKEND, "serial").lower() or "serial"
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)} "
            f"(or 'auto', or pass an ExecutionBackend instance)"
        )
    if n_workers is None and config is not None:
        n_workers = config.n_workers
    if n_workers is None:
        n_workers = _env_workers()
    if chunk_size is None and config is not None:
        chunk_size = config.chunk_size
    if schedule is None and config is not None:
        schedule = getattr(config, "schedule", None)
        if schedule == "auto":
            # "auto" in the config defers to the environment override.
            schedule = _env_schedule() or "auto"
    if schedule is None:
        schedule = _env_schedule() or "auto"
    return _REGISTRY[name](
        n_workers=n_workers, chunk_size=chunk_size, schedule=schedule
    )


@contextmanager
def backend_scope(
    spec: "ExecutionBackend | str | None" = None,
    *,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    schedule: str | None = None,
    config: "DTuckerConfig | None" = None,
) -> Iterator[ExecutionBackend]:
    """Context manager around :func:`resolve_backend` with ownership rules.

    Backends *created* here (from a name/config) are closed on exit;
    caller-supplied instances are left running, so users can share one
    pool across many fits.
    """
    backend = resolve_backend(
        spec,
        n_workers=n_workers,
        chunk_size=chunk_size,
        schedule=schedule,
        config=config,
    )
    owned = not isinstance(spec, ExecutionBackend)
    try:
        yield backend
    finally:
        if owned:
            backend.close()
