"""BLAS coordination helpers: thread-count control and ``out=`` GEMMs.

Thread control
--------------
The thread backend runs several NumPy batched-BLAS calls concurrently.  If
the underlying BLAS (OpenBLAS/MKL) also spawns its own thread team per
call, the machine oversubscribes and the "parallel" run is *slower* than
serial.  When ``threadpoolctl`` is installed it is preferred — it knows
every BLAS/OpenMP runtime loaded in the process, not just the first one
found.  Otherwise this module falls back to its minimal re-implementation:
locate the loaded BLAS shared library via :mod:`ctypes` and flip its
``*_set_num_threads`` knob around parallel sections.  Every probe is
wrapped defensively — when neither path finds a control knob the context
manager is a documented no-op and the thread backend still works (just
without the coordination win).

Preallocated-output GEMMs
-------------------------
:func:`gemm_into` and :func:`einsum_into` are the allocation-free halves of
``np.dot`` / ``np.einsum``: the same computation, written into a buffer the
caller owns.  The sweep-level kernel layer (:mod:`repro.kernels`) routes
its shape-stationary hot-path products through these so steady-state ALS
sweeps stop paying the allocator.  Both are bit-identical to their
allocating counterparts — NumPy dispatches the identical kernel either way
— which is what lets the workspace path stay exactly reproducible.
"""

from __future__ import annotations

import ctypes
import glob
import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "blas_thread_controls",
    "limit_blas_threads",
    "current_blas_threads",
    "gemm_into",
    "einsum_into",
]


def gemm_into(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Matrix product ``a @ b`` written into preallocated ``out``.

    For NumPy operands ``out`` must be C-contiguous with the result's
    exact shape and dtype (``np.dot`` enforces this); the values are
    bit-identical to ``np.dot(a, b)`` — the same BLAS call runs, only the
    destination differs.  Operands from another array namespace dispatch
    to that namespace's GEMM (``cupy.dot(out=)``, or matmul + copy for
    namespaces without a native ``out=``).  Returns ``out``.
    """
    if type(a) is np.ndarray and type(b) is np.ndarray:
        return np.dot(a, b, out=out)
    from .array_api import array_module_of

    am = array_module_of(a, b)
    if am.is_numpy:
        return np.dot(a, b, out=out)
    return am.gemm_into(a, b, out)


def einsum_into(subscripts: str, *operands: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Optimized einsum written into preallocated ``out`` (returned)."""
    if all(type(op) is np.ndarray for op in operands):
        return np.einsum(subscripts, *operands, optimize=True, out=out)
    from .array_api import array_module_of

    am = array_module_of(*operands)
    if am.is_numpy:
        return np.einsum(subscripts, *operands, optimize=True, out=out)
    return am.einsum(subscripts, *operands, out=out)

_SETTERS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    # NumPy >= 1.26 wheels vendor scipy-openblas, which prefixes every
    # exported symbol — without these names the probe misses the only BLAS
    # actually loaded and thread control silently degrades to a no-op.
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "MKL_Set_Num_Threads",
    "bli_thread_set_num_threads",
)
_GETTERS = (
    "openblas_get_num_threads",
    "openblas_get_num_threads64_",
    "scipy_openblas_get_num_threads",
    "scipy_openblas_get_num_threads64_",
    "mkl_get_max_threads",
    "bli_thread_get_num_threads",
)

_CONTROLS: tuple | None | bool = False  # False = not probed yet

_THREADPOOLCTL: object | None | bool = False  # False = not probed yet


def _threadpoolctl():
    """The ``threadpoolctl`` module when importable and usable, else ``None``.

    Probed once per process (including the negative result).  Anything that
    looks broken — missing module, missing ``threadpool_limits`` attribute —
    degrades to ``None`` so the ctypes fallback takes over.
    """
    global _THREADPOOLCTL
    if _THREADPOOLCTL is not False:
        return _THREADPOOLCTL
    try:
        import threadpoolctl  # type: ignore[import-not-found]

        if not hasattr(threadpoolctl, "threadpool_limits"):
            raise AttributeError("threadpool_limits missing")
        _THREADPOOLCTL = threadpoolctl
    except Exception:
        _THREADPOOLCTL = None
    return _THREADPOOLCTL


def _candidate_libraries() -> list[ctypes.CDLL]:
    """Handles that might expose BLAS thread controls.

    The main process handle sees globally loaded symbols; NumPy/SciPy wheel
    layouts additionally vendor the BLAS under ``*.libs`` directories, and
    ``dlopen``-ing the same file again returns the already-loaded instance.
    """
    handles = []
    try:
        handles.append(ctypes.CDLL(None))
    except OSError:  # pragma: no cover - exotic platforms
        pass
    try:
        import numpy

        roots = [os.path.dirname(os.path.dirname(numpy.__file__))]
    except Exception:  # pragma: no cover - numpy always present here
        roots = []
    for root in roots:
        for pattern in ("*libs/libopenblas*", "*libs/libscipy_openblas*", "*libs/libmkl_rt*"):
            for path in sorted(glob.glob(os.path.join(root, pattern))):
                try:
                    handles.append(ctypes.CDLL(path))
                except OSError:  # pragma: no cover - unloadable stub
                    continue
    return handles


def blas_thread_controls():
    """``(getter, setter)`` ctypes functions, or ``None`` when unavailable.

    The probe runs once per process and is cached, including the negative
    result.
    """
    global _CONTROLS
    if _CONTROLS is not False:
        return _CONTROLS
    for lib in _candidate_libraries():
        for get_name, set_name in zip(_GETTERS, _SETTERS):
            getter = getattr(lib, get_name, None)
            setter = getattr(lib, set_name, None)
            if getter is None or setter is None:
                continue
            try:
                getter.restype = ctypes.c_int
                setter.argtypes = [ctypes.c_int]
                current = int(getter())
                if current < 1:  # pragma: no cover - defensive
                    continue
                _CONTROLS = (getter, setter)
                return _CONTROLS
            except Exception:  # pragma: no cover - defensive
                continue
    _CONTROLS = None
    return None


def current_blas_threads() -> int | None:
    """The BLAS thread-team size, or ``None`` when it cannot be observed.

    Prefers ``threadpoolctl`` (reports every loaded BLAS; the max is the
    oversubscription-relevant number), falls back to the ctypes getter.
    """
    tpc = _threadpoolctl()
    if tpc is not None:
        try:
            sizes = [
                int(info["num_threads"])
                for info in tpc.threadpool_info()
                if info.get("user_api") == "blas"
            ]
            if sizes:
                return max(sizes)
        except Exception:  # pragma: no cover - defensive
            pass
    controls = blas_thread_controls()
    if controls is None:
        return None
    getter, _ = controls
    return int(getter())


@contextmanager
def limit_blas_threads(n_threads: int) -> Iterator[bool]:
    """Cap the BLAS thread team inside the block; restore on exit.

    Prefers ``threadpoolctl`` when installed (its ``threadpool_limits``
    caps every BLAS runtime loaded in the process), else falls back to the
    ctypes probe.  Yields ``True`` when a control knob was found and
    applied, ``False`` when the block ran as a no-op (unknown BLAS, no
    threadpoolctl) — callers never need to branch, but tests and
    diagnostics can report which case occurred.  No-op-safe on both paths:
    entering and exiting never raises, whatever is (or is not) installed.
    """
    target = max(1, int(n_threads))
    tpc = _threadpoolctl()
    if tpc is not None:
        try:
            with tpc.threadpool_limits(limits=target, user_api="blas"):
                yield True
            return
        except Exception:  # pragma: no cover - broken installs fall through
            pass
    controls = blas_thread_controls()
    if controls is None:
        yield False
        return
    getter, setter = controls
    previous = int(getter())
    if previous == target:
        yield True
        return
    setter(target)
    try:
        yield True
    finally:
        setter(previous)
