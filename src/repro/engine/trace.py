"""Structured execution traces emitted by every backend.

A :class:`PhaseTrace` records what one algorithm phase (approximation /
initialization / iteration) actually *did* on the execution engine: wall
time, how many chunk tasks ran, how the tasks were distributed over
workers, the chunk sizes used, and the peak resident set size observed at
the end of the phase.  The benchmark harness uses these to attribute
speedups per phase instead of guessing from totals, and
``python -m repro decompose --trace`` prints them for ad-hoc runs.
"""

from __future__ import annotations

import resource
import sys
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["PhaseTrace", "peak_rss_bytes", "format_traces"]


def peak_rss_bytes(*, include_children: bool = True) -> int:
    """Peak resident set size of this process (and, optionally, children).

    Uses ``getrusage`` so no third-party dependency is needed.  On Linux
    ``ru_maxrss`` is in KiB; on macOS it is in bytes.
    """
    unit = 1 if sys.platform == "darwin" else 1024
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if include_children:
        peak = max(peak, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return int(peak) * unit


@dataclass
class PhaseTrace:
    """Execution record of one phase on one backend.

    Attributes
    ----------
    phase:
        Phase label (``"approximation"``, ``"iteration"``, …).
    backend:
        Backend name (``"serial"``, ``"thread"``, ``"process"``).
    n_workers:
        Worker count the backend was configured with.
    seconds:
        Wall-clock seconds spent inside the phase.
    n_tasks:
        Total chunk tasks dispatched during the phase.
    tasks_per_worker:
        Mapping of worker id (thread name or pid) to tasks executed.
    chunk_sizes:
        Distinct chunk sizes used, in first-seen order.
    peak_rss_bytes:
        Peak resident set size (self and child processes) observed when the
        phase closed.  Cumulative per process, so attribute growth, not
        absolute values, to a phase.
    cache_hits, cache_misses:
        Kernel-cache lookups served from / missed by the sweep workspace
        during the phase (iteration phase only; zero elsewhere).  See
        :class:`repro.kernels.stats.KernelStats`.
    bytes_reused:
        Bytes written into preallocated workspace buffers instead of fresh
        allocations during the phase.
    io_seconds:
        Time spent inside prefetch IO producers during the phase (the
        out-of-core gather reads), overlapped with compute or not.  See
        :class:`repro.engine.pipeline.Prefetcher`.
    io_wait_seconds:
        Time the consumer actually *blocked* on prefetch IO — the part of
        ``io_seconds`` that compute failed to hide.
    """

    phase: str
    backend: str
    n_workers: int
    seconds: float = 0.0
    n_tasks: int = 0
    tasks_per_worker: dict[str, int] = field(default_factory=dict)
    chunk_sizes: list[int] = field(default_factory=list)
    peak_rss_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bytes_reused: int = 0
    io_seconds: float = 0.0
    io_wait_seconds: float = 0.0

    def record_task(self, worker_id: str, chunk_size: int) -> None:
        """Tally one executed chunk task."""
        self.n_tasks += 1
        key = str(worker_id)
        self.tasks_per_worker[key] = self.tasks_per_worker.get(key, 0) + 1
        if int(chunk_size) not in self.chunk_sizes:
            self.chunk_sizes.append(int(chunk_size))

    def annotate_cache(
        self, *, hits: int = 0, misses: int = 0, bytes_reused: int = 0
    ) -> None:
        """Accumulate kernel-cache counters into this trace."""
        self.cache_hits += int(hits)
        self.cache_misses += int(misses)
        self.bytes_reused += int(bytes_reused)

    def annotate_io(
        self, *, produce_seconds: float = 0.0, wait_seconds: float = 0.0
    ) -> None:
        """Accumulate prefetch-pipeline IO counters into this trace."""
        self.io_seconds += float(produce_seconds)
        self.io_wait_seconds += float(wait_seconds)

    def summary(self) -> str:
        """One-line human-readable summary."""
        workers = len(self.tasks_per_worker)
        chunks = ",".join(str(c) for c in self.chunk_sizes) or "-"
        line = (
            f"{self.phase}: {self.seconds:.4f}s backend={self.backend} "
            f"tasks={self.n_tasks} workers={workers}/{self.n_workers} "
            f"chunks=[{chunks}] peak_rss={self.peak_rss_bytes / 2**20:.1f}MiB"
        )
        if self.cache_hits or self.cache_misses or self.bytes_reused:
            line += (
                f" cache={self.cache_hits}h/{self.cache_misses}m"
                f" reuse={self.bytes_reused / 2**20:.1f}MiB"
            )
        if self.io_seconds or self.io_wait_seconds:
            line += (
                f" io={self.io_seconds:.4f}s"
                f" io_wait={self.io_wait_seconds:.4f}s"
            )
        return line


def format_traces(traces: Iterable[PhaseTrace]) -> str:
    """Multi-line report of a trace list, one phase per line."""
    lines = [t.summary() for t in traces]
    return "\n".join(lines) if lines else "(no traces recorded)"
