"""Structured execution traces emitted by every backend.

A :class:`PhaseTrace` records what one algorithm phase (approximation /
initialization / iteration) actually *did* on the execution engine: wall
time, how many chunk tasks ran, how the tasks were distributed over
workers, the chunk sizes used, and the peak resident set size observed at
the end of the phase.  The benchmark harness uses these to attribute
speedups per phase instead of guessing from totals, and
``python -m repro decompose --trace`` prints them for ad-hoc runs.
"""

from __future__ import annotations

import resource
import sys
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["PhaseTrace", "peak_rss_bytes", "format_traces"]


def peak_rss_bytes(*, include_children: bool = True) -> int:
    """Peak resident set size of this process (and, optionally, children).

    Uses ``getrusage`` so no third-party dependency is needed.  On Linux
    ``ru_maxrss`` is in KiB; on macOS it is in bytes.
    """
    unit = 1 if sys.platform == "darwin" else 1024
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if include_children:
        peak = max(peak, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return int(peak) * unit


@dataclass
class PhaseTrace:
    """Execution record of one phase on one backend.

    Attributes
    ----------
    phase:
        Phase label (``"approximation"``, ``"iteration"``, …).
    backend:
        Backend name (``"serial"``, ``"thread"``, ``"process"``).
    n_workers:
        Worker count the backend was configured with.
    seconds:
        Wall-clock seconds spent inside the phase.
    n_tasks:
        Total chunk tasks dispatched during the phase.
    tasks_per_worker:
        Mapping of worker id (thread name or pid) to tasks executed.
    chunk_sizes:
        Distinct chunk sizes used, in first-seen order.
    peak_rss_bytes:
        Peak resident set size (self and child processes) observed when the
        phase closed.  Cumulative per process, so attribute growth, not
        absolute values, to a phase.
    cache_hits, cache_misses:
        Kernel-cache lookups served from / missed by the sweep workspace
        during the phase (iteration phase only; zero elsewhere).  See
        :class:`repro.kernels.stats.KernelStats`.
    bytes_reused:
        Bytes written into preallocated workspace buffers instead of fresh
        allocations during the phase.
    io_seconds:
        Time spent inside prefetch IO producers during the phase (the
        out-of-core gather reads), overlapped with compute or not.  See
        :class:`repro.engine.pipeline.Prefetcher`.
    io_wait_seconds:
        Time the consumer actually *blocked* on prefetch IO — the part of
        ``io_seconds`` that compute failed to hide.
    schedules:
        Distinct scheduling policies the phase's dispatches resolved to
        (``"static"`` / ``"dynamic"``), in first-seen order.
    busy_seconds_per_worker:
        Mapping of worker id to time spent *inside* chunk kernels.  The
        spread of these values is the load balance:
        :meth:`imbalance_ratio` is their max/mean.
    queue_wait_seconds:
        Total time tasks sat between submission and execution start,
        summed over tasks.  High values with an idle-worker imbalance mean
        chunks were too coarse; high values with all workers busy just
        measure healthy queue depth.
    steals:
        Tasks a worker pulled from the shared queue *beyond its first* in a
        dynamic dispatch — the work-stealing events that rebalanced the
        oversplit plan.  Zero for static dispatches (one chunk per worker).
    h2d_bytes, d2h_bytes:
        Bytes moved host→device / device→host during the phase (the
        ``xfer:h2d`` / ``xfer:d2h`` kernel counters).  Zero on the pure
        NumPy path, where no transfers exist.
    device:
        Array namespace the phase computed on (``"numpy"``, ``"torch"``,
        ``"torch-cuda"``, ``"cupy"``, …).
    comm_bytes:
        Bytes that crossed a shard boundary during the phase (the
        ``comm:*`` kernel counters): shipped factor products, broadcast
        sketches/factors.  Zero for non-distributed runs — raw slabs never
        count here because they never cross shards.
    reduce_rounds:
        Coordinator combine rounds executed during the phase (one per
        factor-update gather in a distributed sweep, one per shard-local
        compression gather).
    """

    phase: str
    backend: str
    n_workers: int
    seconds: float = 0.0
    n_tasks: int = 0
    tasks_per_worker: dict[str, int] = field(default_factory=dict)
    chunk_sizes: list[int] = field(default_factory=list)
    peak_rss_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bytes_reused: int = 0
    io_seconds: float = 0.0
    io_wait_seconds: float = 0.0
    schedules: list[str] = field(default_factory=list)
    busy_seconds_per_worker: dict[str, float] = field(default_factory=dict)
    queue_wait_seconds: float = 0.0
    steals: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    device: str = "numpy"
    comm_bytes: int = 0
    reduce_rounds: int = 0

    def record_task(
        self,
        worker_id: str,
        chunk_size: int,
        *,
        busy_seconds: float = 0.0,
        wait_seconds: float = 0.0,
    ) -> None:
        """Tally one executed chunk task (and its scheduling telemetry)."""
        self.n_tasks += 1
        key = str(worker_id)
        self.tasks_per_worker[key] = self.tasks_per_worker.get(key, 0) + 1
        if int(chunk_size) not in self.chunk_sizes:
            self.chunk_sizes.append(int(chunk_size))
        if busy_seconds:
            self.busy_seconds_per_worker[key] = (
                self.busy_seconds_per_worker.get(key, 0.0) + float(busy_seconds)
            )
        if wait_seconds > 0.0:
            self.queue_wait_seconds += float(wait_seconds)

    def record_dispatch(
        self, schedule: str | None = None, *, steals: int = 0
    ) -> None:
        """Tally one ``chunked``/``map`` dispatch's scheduling outcome."""
        if schedule is not None and schedule not in self.schedules:
            self.schedules.append(schedule)
        self.steals += int(steals)

    def imbalance_ratio(self) -> float:
        """Max/mean worker busy time — 1.0 is perfect balance.

        Falls back to the task-count distribution when busy times were not
        recorded (synthetic traces), and to 1.0 when fewer than two workers
        reported work.
        """
        values = [v for v in self.busy_seconds_per_worker.values() if v > 0.0]
        if len(values) < 2:
            values = [float(v) for v in self.tasks_per_worker.values()]
        if len(values) < 2:
            return 1.0
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0.0 else 1.0

    def annotate_cache(
        self, *, hits: int = 0, misses: int = 0, bytes_reused: int = 0
    ) -> None:
        """Accumulate kernel-cache counters into this trace."""
        self.cache_hits += int(hits)
        self.cache_misses += int(misses)
        self.bytes_reused += int(bytes_reused)

    def annotate_io(
        self, *, produce_seconds: float = 0.0, wait_seconds: float = 0.0
    ) -> None:
        """Accumulate prefetch-pipeline IO counters into this trace."""
        self.io_seconds += float(produce_seconds)
        self.io_wait_seconds += float(wait_seconds)

    def annotate_xfer(
        self, *, h2d_bytes: int = 0, d2h_bytes: int = 0, device: str | None = None
    ) -> None:
        """Accumulate host↔device transfer counters into this trace."""
        self.h2d_bytes += int(h2d_bytes)
        self.d2h_bytes += int(d2h_bytes)
        if device is not None:
            self.device = str(device)

    def annotate_comm(
        self, *, comm_bytes: int = 0, reduce_rounds: int = 0
    ) -> None:
        """Accumulate cross-shard communication counters into this trace."""
        self.comm_bytes += int(comm_bytes)
        self.reduce_rounds += int(reduce_rounds)

    def summary(self) -> str:
        """One-line human-readable summary."""
        workers = len(self.tasks_per_worker)
        chunks = ",".join(str(c) for c in self.chunk_sizes) or "-"
        line = (
            f"{self.phase}: {self.seconds:.4f}s backend={self.backend} "
            f"tasks={self.n_tasks} workers={workers}/{self.n_workers} "
            f"chunks=[{chunks}] peak_rss={self.peak_rss_bytes / 2**20:.1f}MiB"
        )
        if self.cache_hits or self.cache_misses or self.bytes_reused:
            line += (
                f" cache={self.cache_hits}h/{self.cache_misses}m"
                f" reuse={self.bytes_reused / 2**20:.1f}MiB"
            )
        if self.io_seconds or self.io_wait_seconds:
            line += (
                f" io={self.io_seconds:.4f}s"
                f" io_wait={self.io_wait_seconds:.4f}s"
            )
        if self.schedules:
            line += f" sched={','.join(self.schedules)}"
        if self.busy_seconds_per_worker:
            line += f" imbalance={self.imbalance_ratio():.2f}"
        if self.steals:
            line += f" steals={self.steals}"
        if self.queue_wait_seconds:
            line += f" qwait={self.queue_wait_seconds:.4f}s"
        if self.h2d_bytes or self.d2h_bytes or self.device != "numpy":
            line += (
                f" device={self.device}"
                f" xfer={self.h2d_bytes / 2**20:.1f}MiB>"
                f"/{self.d2h_bytes / 2**20:.1f}MiB<"
            )
        if self.comm_bytes or self.reduce_rounds:
            line += (
                f" comm={self.comm_bytes / 2**20:.1f}MiB"
                f" reduces={self.reduce_rounds}"
            )
        return line


def format_traces(traces: Iterable[PhaseTrace]) -> str:
    """Multi-line report of a trace list, one phase per line."""
    lines = [t.summary() for t in traces]
    return "\n".join(lines) if lines else "(no traces recorded)"
