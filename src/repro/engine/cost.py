"""Per-item cost models for cost-aware chunk scheduling.

The engine's chunk planner historically split every item range into
equal-count chunks — correct, but oblivious to how unevenly the work is
distributed over items.  After the adaptive-compression and unified-source
redesigns the per-item work is genuinely heterogeneous: sparse slices vary
in nnz, block sources mix resident and memory-mapped slabs, and the
compression planner picks different algorithms per slab shape.  A
:class:`CostModel` lets the layer that *knows* the distribution hand the
scheduler per-item cost estimates; :func:`repro.engine.chunking.plan_chunks`
then balances chunk boundaries over the cost prefix sums, and the dynamic
executor orders its oversplit queue heaviest-first.

Costs are **relative weights**, not wall-clock predictions: only ratios
between items matter, so flop counts, nnz, or byte counts all work
unscaled.  Mixing sources of different units in one model is the caller's
responsibility (see :func:`combine_costs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "CostModel",
    "UniformCost",
    "ArrayCost",
    "CommCost",
    "as_cost_array",
    "combine_costs",
]


@runtime_checkable
class CostModel(Protocol):
    """Anything that can estimate per-item costs for a work range.

    Implementations return a non-negative float array of length
    ``n_items``; entry ``i`` is the relative cost of item ``i``.  The
    scheduler treats the values as weights — only their ratios matter.
    """

    def item_costs(self, n_items: int) -> np.ndarray: ...


@dataclass(frozen=True)
class UniformCost:
    """Every item costs the same ``weight`` (the no-information model).

    Cost-balanced planning over a uniform model reproduces the historical
    equal-count split exactly; the weight's magnitude only matters when the
    model is combined with a non-uniform one (e.g. a flop base cost plus a
    per-item IO surcharge).
    """

    weight: float = 1.0

    def item_costs(self, n_items: int) -> np.ndarray:
        return np.full(int(n_items), float(self.weight))


@dataclass(frozen=True)
class ArrayCost:
    """Explicit per-item costs, e.g. nnz per sparse slice.

    The array is validated lazily against the requested length so one model
    can be built once per source and reused for any sub-range via
    :meth:`slice`.
    """

    costs: np.ndarray

    def item_costs(self, n_items: int) -> np.ndarray:
        c = np.asarray(self.costs, dtype=float)
        if c.ndim != 1 or c.shape[0] != int(n_items):
            raise ShapeError(
                f"cost model covers {c.shape} items, scheduler asked for {n_items}"
            )
        return c

    def slice(self, start: int, stop: int) -> "ArrayCost":
        """The model restricted to items ``start..stop`` (for batch fan-out)."""
        return ArrayCost(np.asarray(self.costs, dtype=float)[int(start):int(stop)])


@dataclass(frozen=True)
class CommCost:
    """Per-item communication surcharge in compute-flop units.

    ``bytes_per_item`` is how many bytes item ``i`` ships across a shard
    boundary (factor products, broadcast sketches — never raw slabs);
    ``flops_per_byte`` converts a shipped byte into the scheduler's
    flop-unit scale so a communication model composes with a flop-count
    compute model via :func:`combine_costs`.  The distributed coordinator
    builds one per shard fan-out so ``schedule="auto"`` balances shards by
    compute *plus* comm cost, not compute alone.
    """

    bytes_per_item: np.ndarray
    flops_per_byte: float = 1.0

    def item_costs(self, n_items: int) -> np.ndarray:
        b = np.asarray(self.bytes_per_item, dtype=float)
        if b.ndim == 0:
            b = np.full(int(n_items), float(b))
        if b.ndim != 1 or b.shape[0] != int(n_items):
            raise ShapeError(
                f"comm model covers {b.shape} items, scheduler asked for {n_items}"
            )
        return b * float(self.flops_per_byte)


def as_cost_array(
    costs: "CostModel | np.ndarray | list | None", n_items: int
) -> np.ndarray | None:
    """Normalise a cost spec into a validated float array (or ``None``).

    Accepts ``None`` (no model — equal-count planning), a
    :class:`CostModel`, or a raw array-like of per-item weights.  Raises
    :class:`~repro.exceptions.ShapeError` on length mismatch, negative or
    non-finite entries; an all-zero model degrades to ``None`` (no
    information) rather than producing degenerate partitions.
    """
    if costs is None:
        return None
    n = int(n_items)
    if isinstance(costs, CostModel) and not isinstance(costs, (np.ndarray, list, tuple)):
        arr = np.asarray(costs.item_costs(n), dtype=float)
    else:
        arr = np.asarray(costs, dtype=float)
    if arr.ndim != 1 or arr.shape[0] != n:
        raise ShapeError(
            f"costs must be a 1-D array of length {n}, got shape {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ShapeError("costs contain non-finite entries")
    if (arr < 0).any():
        raise ShapeError("costs must be non-negative")
    if not arr.any():
        return None
    return arr


def combine_costs(
    compute: np.ndarray | None, io: np.ndarray | None, *, io_weight: float = 1.0
) -> np.ndarray | None:
    """Fold an IO cost component into a compute cost model.

    Both arrays must already share a unit (the caller scales ``io`` by
    ``io_weight`` to express how expensive a byte read is relative to one
    compute flop-unit).  Either side may be ``None``.
    """
    if io is None:
        return compute
    scaled = np.asarray(io, dtype=float) * float(io_weight)
    if compute is None:
        return scaled
    return np.asarray(compute, dtype=float) + scaled
