"""The read side of the model store: one mapped model, many readers.

A :class:`ServedModel` is what :meth:`repro.store.ModelStore.open` returns:
the store's payloads memory-mapped **once**, plus query methods designed to
be called concurrently from many reader threads:

* :meth:`~ServedModel.reconstruct` — materialise an arbitrary sub-tensor
  from the Tucker factors (never from raw data);
* :meth:`~ServedModel.query_time_range` — answer a time-range query by
  recombining the stored per-slice SVDs of the range into a *local* Tucker
  decomposition, Zoom-Tucker style: initialization + a few compressed-domain
  ALS sweeps on the slice group, **no re-compression and no pass over the
  original tensor**;
* :meth:`~ServedModel.refit` — a full-extent decomposition request at new
  ranks, served from the mapped slices alone.

Thread model
------------
The mapped arrays are read-only and shared.  Every query that needs the
execution engine resolves a backend *per reader thread* (kept in a
``threading.local`` and reused across that thread's queries), so concurrent
readers never share mutable engine state; all solver phases are
deterministic, so concurrent answers are bit-identical to serial ones.
Per-query telemetry (kind, wall seconds, slices touched, serving thread)
accumulates in a lock-protected :class:`ServingStats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.config import DTuckerConfig
from ..core.fit_pipeline import FitPipeline
from ..core.result import TuckerResult
from ..core.slice_svd import SliceSVD
from ..engine import ExecutionBackend, resolve_backend
from ..exceptions import StoreError
from ..tensor.products import tucker_to_tensor
from ..validation import check_ranks

__all__ = ["ServedModel", "ServingStats", "QueryRecord"]


@dataclass(frozen=True)
class QueryRecord:
    """Telemetry of one served query.

    Attributes
    ----------
    kind:
        ``"time_range"``, ``"reconstruct"`` or ``"refit"``.
    seconds:
        Wall-clock time spent answering.
    items:
        Work volume: slices recombined (time range / refit) or cells
        materialised (reconstruct).
    thread:
        Name of the reader thread that was served.
    """

    kind: str
    seconds: float
    items: int
    thread: str


@dataclass
class ServingStats:
    """Lock-protected accumulator of per-query telemetry."""

    records: list[QueryRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, kind: str, seconds: float, items: int) -> None:
        entry = QueryRecord(
            kind=kind,
            seconds=float(seconds),
            items=int(items),
            thread=threading.current_thread().name,
        )
        with self._lock:
            self.records.append(entry)

    @property
    def n_queries(self) -> int:
        with self._lock:
            return len(self.records)

    def by_kind(self) -> dict[str, int]:
        """Query counts per kind."""
        with self._lock:
            counts: dict[str, int] = {}
            for r in self.records:
                counts[r.kind] = counts.get(r.kind, 0) + 1
            return counts

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return float(sum(r.seconds for r in self.records))

    def summary(self) -> str:
        """One line: ``queries=7 (time_range=4 reconstruct=3) threads=2 total=0.12s``."""
        with self._lock:
            counts: dict[str, int] = {}
            threads = set()
            total = 0.0
            for r in self.records:
                counts[r.kind] = counts.get(r.kind, 0) + 1
                threads.add(r.thread)
                total += r.seconds
        kinds = " ".join(f"{k}={n}" for k, n in sorted(counts.items()))
        return (
            f"queries={sum(counts.values())}"
            + (f" ({kinds})" if kinds else "")
            + f" threads={len(threads)} total={total:.4f}s"
        )


class _PerThreadEngines:
    """One execution backend per reader thread, resolved lazily.

    Engines are mutable (trace accumulation, pools), so sharing one across
    concurrent queries would race; one per thread keeps queries isolated
    while still amortising pool start-up across a thread's queries.  A
    caller-supplied :class:`~repro.engine.ExecutionBackend` is used as-is
    (and never closed) — appropriate when the caller serialises queries.
    """

    def __init__(
        self, config: DTuckerConfig, shared: ExecutionBackend | None = None
    ) -> None:
        self._config = config
        self._shared = shared
        self._local = threading.local()
        self._owned: list[ExecutionBackend] = []
        self._lock = threading.Lock()
        self._closed = False

    def get(self) -> ExecutionBackend:
        if self._closed:
            raise StoreError("this ServedModel is closed")
        if self._shared is not None:
            return self._shared
        engine = getattr(self._local, "engine", None)
        if engine is None:
            engine = resolve_backend(config=self._config)
            self._local.engine = engine
            with self._lock:
                if self._closed:
                    engine.close()
                    raise StoreError("this ServedModel is closed")
                self._owned.append(engine)
        return engine

    def close(self) -> None:
        with self._lock:
            self._closed = True
            engines, self._owned = self._owned, []
        for engine in engines:
            engine.close()


class ServedModel:
    """A stored model, memory-mapped once and shared by concurrent readers.

    Construct via :meth:`repro.store.ModelStore.open`.  All attributes are
    read-only; all query methods are safe to call from many threads at
    once and return bit-identical answers to serial calls.

    Attributes
    ----------
    manifest:
        The validated store manifest (a plain dict).
    slice_svd:
        The compressed slice representation, in the store's (slice-mode
        permuted) orientation, backed by the mapped payloads.
    result:
        The fitted :class:`~repro.core.result.TuckerResult`, in the
        *original* mode order.
    config:
        The :class:`~repro.core.config.DTuckerConfig` the model was fitted
        with (queries reuse it unless overridden per call).
    stats:
        Per-query :class:`ServingStats` telemetry.
    """

    def __init__(
        self,
        *,
        manifest: dict,
        slice_svd: SliceSVD,
        result: TuckerResult,
        config: DTuckerConfig,
        engine: ExecutionBackend | None = None,
    ) -> None:
        self.manifest = manifest
        self.slice_svd = slice_svd
        self.result = result
        self.config = config
        self.permutation = tuple(int(i) for i in manifest["permutation"])
        self.stats = ServingStats()
        self._engines = _PerThreadEngines(config, shared=engine)

    # -- geometry ------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Tensor shape in the *original* mode order."""
        stored = self.slice_svd.shape
        out = [0] * len(stored)
        for i, p in enumerate(self.permutation):
            out[p] = stored[i]
        return tuple(out)

    @property
    def stored_shape(self) -> tuple[int, ...]:
        """Tensor shape in the store's (permuted) orientation."""
        return self.slice_svd.shape

    @property
    def ranks(self) -> tuple[int, ...]:
        """Fitted Tucker ranks in the original mode order."""
        return self.result.ranks

    @property
    def slice_rank(self) -> int:
        """Stored per-slice compression rank ``K``."""
        return self.slice_svd.rank

    @property
    def estimated_error(self) -> float:
        """The fit's final estimated reconstruction error (``nan`` if unknown)."""
        history = self.manifest.get("fit", {}).get("history", [])
        return float(history[-1]) if history else float("nan")

    @property
    def nbytes(self) -> int:
        """Total payload bytes, from the manifest (payloads stay unloaded)."""
        return int(
            sum(int(e["nbytes"]) for e in self.manifest["payloads"].values())
        )

    # -- time geometry -------------------------------------------------------
    def _slices_per_step(self) -> int:
        stored = self.slice_svd.shape
        if len(stored) < 3:
            raise StoreError(
                "time-range queries need an order >= 3 tensor; this store "
                f"holds shape {stored}"
            )
        return int(np.prod(stored[2:-1], dtype=np.int64)) if len(stored) > 3 else 1

    def _require_temporal_last(self, what: str) -> None:
        n = len(self.permutation)
        if self.permutation[-1] != n - 1:
            raise StoreError(
                f"{what} requires the temporal (last) mode to survive the "
                f"slice-mode permutation; this store permuted modes "
                f"{self.permutation} — refit with slice_modes keeping the "
                "last mode last"
            )

    def slice_range(self, t0: int, t1: int) -> SliceSVD:
        """The compressed slice group of timesteps ``[t0, t1)`` (zero copy).

        Returns a :class:`~repro.core.slice_svd.SliceSVD` whose arrays are
        views into the mapped payloads, with exact norm bookkeeping from
        the stored per-slice norms.
        """
        self._require_temporal_last("slice_range")
        stored = self.slice_svd.shape
        lo_t, hi_t = int(t0), int(t1)
        if not 0 <= lo_t < hi_t <= stored[-1]:
            raise StoreError(
                f"time range [{lo_t}, {hi_t}) outside the stored extent "
                f"{stored[-1]}"
            )
        per_step = self._slices_per_step()
        lo, hi = lo_t * per_step, hi_t * per_step
        norms = self.slice_svd.slice_norms_squared
        range_norms = None if norms is None else norms[lo:hi]
        if range_norms is not None:
            norm_squared = float(np.sum(range_norms))
        else:
            norm_squared = float(np.sum(self.slice_svd.s[lo:hi] ** 2))
        return SliceSVD(
            u=self.slice_svd.u[lo:hi],
            s=self.slice_svd.s[lo:hi],
            vt=self.slice_svd.vt[lo:hi],
            shape=stored[:-1] + (hi_t - lo_t,),
            norm_squared=norm_squared,
            slice_norms_squared=range_norms,
        )

    # -- queries -------------------------------------------------------------
    def reconstruct(
        self,
        index_ranges: "Sequence[tuple[int, int] | None] | None" = None,
    ) -> np.ndarray:
        """Materialise a dense sub-tensor from the Tucker factors.

        Parameters
        ----------
        index_ranges:
            One ``(start, stop)`` half-open range per mode — in the
            *original* mode order — or ``None`` for a mode's full extent
            (``None`` overall materialises the whole approximation).  Only
            ``prod(stop - start) · prod(ranks)`` work is done: factor rows
            outside the ranges are never touched.

        Returns
        -------
        numpy.ndarray
            The dense approximation of the requested block.
        """
        t0 = time.perf_counter()
        shape = self.shape
        if index_ranges is None:
            ranges: list[tuple[int, int]] = [(0, d) for d in shape]
        else:
            if len(index_ranges) != len(shape):
                raise StoreError(
                    f"expected {len(shape)} index ranges, got {len(index_ranges)}"
                )
            ranges = []
            for n, (r, d) in enumerate(zip(index_ranges, shape)):
                if r is None:
                    ranges.append((0, d))
                    continue
                lo, hi = int(r[0]), int(r[1])
                if not 0 <= lo < hi <= d:
                    raise StoreError(
                        f"index range [{lo}, {hi}) invalid for mode {n} "
                        f"of extent {d}"
                    )
                ranges.append((lo, hi))
        factors = [
            a[lo:hi] for a, (lo, hi) in zip(self.result.factors, ranges)
        ]
        block = tucker_to_tensor(self.result.core, factors)
        self.stats.record(
            "reconstruct", time.perf_counter() - t0, int(block.size)
        )
        return block

    def query_time_range(
        self,
        t0: int,
        t1: int,
        *,
        ranks: "int | Sequence[int] | None" = None,
        config: DTuckerConfig | None = None,
    ) -> TuckerResult:
        """Tucker-decompose timesteps ``[t0, t1)`` without refitting.

        The Zoom-Tucker recombination: the stored per-slice SVDs of the
        range *are* the approximation phase of the sub-tensor, so only
        initialization and a few compressed-domain ALS sweeps run — on
        views of the mapped payloads, never on raw data.

        Parameters
        ----------
        t0, t1:
            Half-open timestep range along the last (temporal) mode.
        ranks:
            Target ranks for the local decomposition, in the original mode
            order (default: the fitted ranks, with the temporal rank
            clipped to the range length).
        config:
            Optional per-query solver override (sweep budget, tolerance,
            backend); defaults to the stored fit configuration.

        Returns
        -------
        TuckerResult
            Local decomposition of the sub-tensor, in the original mode
            order.
        """
        started = time.perf_counter()
        local = self.slice_range(t0, t1)
        cfg = config if config is not None else self.config

        # Resolve ranks: user ranks arrive in original order; the pipeline
        # wants the stored orientation.
        if ranks is None:
            original = list(self.ranks)
            original[-1] = min(original[-1], int(t1) - int(t0))
        else:
            original = list(
                check_ranks(
                    ranks,
                    self.shape[:-1] + (int(t1) - int(t0),),
                )
            )
        stored_ranks = tuple(original[p] for p in self.permutation)
        stored_ranks = check_ranks(stored_ranks, local.shape)

        pipeline = FitPipeline(
            stored_ranks, config=cfg, engine=self._engines.get()
        )
        result, _, _ = pipeline.refit(local, stored_ranks, config=cfg)
        inverse = tuple(int(i) for i in np.argsort(self.permutation))
        answer = result.permute_modes(inverse)
        self.stats.record(
            "time_range", time.perf_counter() - started, local.num_slices
        )
        return answer

    def refit(
        self,
        ranks: "int | Sequence[int]",
        *,
        config: DTuckerConfig | None = None,
    ) -> TuckerResult:
        """Full-extent decomposition at new ranks from the mapped slices.

        The serving twin of :meth:`repro.core.dtucker.DTucker.refit`: no
        pass over the original tensor, only initialization + iteration on
        the stored representation.  Ranks are in the original mode order.
        """
        started = time.perf_counter()
        cfg = config if config is not None else self.config
        original = check_ranks(ranks, self.shape)
        stored_ranks = tuple(original[p] for p in self.permutation)
        pipeline = FitPipeline(
            stored_ranks, config=cfg, engine=self._engines.get()
        )
        result, _, _ = pipeline.refit(self.slice_svd, stored_ranks, config=cfg)
        inverse = tuple(int(i) for i in np.argsort(self.permutation))
        answer = result.permute_modes(inverse)
        self.stats.record(
            "refit", time.perf_counter() - started, self.slice_svd.num_slices
        )
        return answer

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release per-thread engines (mapped arrays stay valid until GC)."""
        self._engines.close()

    def __enter__(self) -> "ServedModel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServedModel(shape={self.shape}, ranks={self.ranks}, "
            f"slice_rank={self.slice_rank}, queries={self.stats.n_queries})"
        )
