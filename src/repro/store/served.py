"""The read side of the model store: one mapped model, many readers.

A :class:`ServedModel` is what :meth:`repro.store.ModelStore.open` returns:
the store's payloads memory-mapped **once**, plus query methods designed to
be called concurrently from many reader threads:

* :meth:`~ServedModel.reconstruct` — materialise an arbitrary sub-tensor
  from the Tucker factors (never from raw data);
* :meth:`~ServedModel.query_time_range` — answer a time-range query by
  recombining the stored per-slice SVDs of the range into a *local* Tucker
  decomposition, Zoom-Tucker style: initialization + a few compressed-domain
  ALS sweeps on the slice group, **no re-compression and no pass over the
  original tensor**;
* :meth:`~ServedModel.refit` — a full-extent decomposition request at new
  ranks, served from the mapped slices alone.

Thread model
------------
The mapped arrays are read-only and shared.  Every query that needs the
execution engine resolves a backend *per reader thread* (kept in a
``threading.local`` and reused across that thread's queries), so concurrent
readers never share mutable engine state; all solver phases are
deterministic, so concurrent answers are bit-identical to serial ones.
Per-query telemetry (kind, wall seconds, slices touched, serving thread)
accumulates in a lock-protected :class:`ServingStats`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.config import DTuckerConfig
from ..core.fit_pipeline import FitPipeline
from ..core.initialization import initialize_from_factors
from ..core.result import TuckerResult
from ..core.slice_svd import SliceSVD
from ..engine import ExecutionBackend, resolve_backend
from ..engine.array_api import resolve_device
from ..engine.blas import current_blas_threads, limit_blas_threads
from ..exceptions import StoreError
from ..kernels.stats import KernelStats
from ..linalg.svd import leading_left_singular_vectors
from ..tensor.products import tucker_to_tensor
from ..validation import check_ranks
from .range_index import RangeIndex

__all__ = ["ServedModel", "ServingStats", "QueryRecord"]

#: Default capacity of the per-model LRU result/warm-start cache.
DEFAULT_CACHE_SIZE = 32


def _config_fingerprint(config: DTuckerConfig) -> str:
    """Stable fingerprint of a solver configuration (cache-key component)."""
    payload = json.dumps(asdict(config), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class QueryRecord:
    """Telemetry of one served query.

    Attributes
    ----------
    kind:
        ``"time_range"``, ``"reconstruct"``, ``"refit"`` or
        ``"query_many"`` (the batch envelope; its member queries record
        individually too).
    seconds:
        Wall-clock time spent answering.
    items:
        Work volume: slices recombined (time range / refit), cells
        materialised (reconstruct) or ranges answered (query_many).
    thread:
        Name of the reader thread that was served.
    cache:
        Result-cache outcome for time-range queries: ``"hit"`` (answer
        served from the LRU cache), ``"miss"`` (computed cold),
        ``"warm"`` (computed, but ALS started from a cached overlapping
        query's factors) or ``"-"`` for kinds the cache does not apply to.
    """

    kind: str
    seconds: float
    items: int
    thread: str
    cache: str = "-"


@dataclass
class ServingStats:
    """Lock-protected accumulator of per-query telemetry.

    Every mutation happens under ``_lock``, so :meth:`record` and
    :meth:`count` are safe to call from any number of reader threads; the
    read accessors take the same lock and return consistent snapshots.
    Cache counters live in a :class:`~repro.kernels.stats.KernelStats`
    under the names ``"result"`` (LRU result cache), ``"warm"``
    (warm-started computations) and ``"node"`` (range-index node lookups).
    """

    records: list[QueryRecord] = field(default_factory=list)
    counters: KernelStats = field(default_factory=KernelStats)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(
        self, kind: str, seconds: float, items: int, *, cache: str = "-"
    ) -> None:
        entry = QueryRecord(
            kind=kind,
            seconds=float(seconds),
            items=int(items),
            thread=threading.current_thread().name,
            cache=str(cache),
        )
        with self._lock:
            self.records.append(entry)
            if entry.cache == "hit":
                self.counters.record_hit("result")
            elif entry.cache in ("miss", "warm"):
                self.counters.record_miss("result")
            if entry.cache == "warm":
                self.counters.record_hit("warm")

    def count(self, name: str, hit: bool) -> None:
        """Record one auxiliary-cache lookup (e.g. a range-index node)."""
        with self._lock:
            self.counters.record(name, hit=hit)

    @property
    def n_queries(self) -> int:
        with self._lock:
            return len(self.records)

    @property
    def cache_hits(self) -> int:
        """Time-range answers served straight from the LRU result cache."""
        with self._lock:
            return self.counters.hits_for("result")

    @property
    def cache_misses(self) -> int:
        """Time-range answers that had to be computed (cold or warm)."""
        with self._lock:
            return self.counters.misses_for("result")

    @property
    def warm_starts(self) -> int:
        """Computed answers that reused a cached overlapping query's factors."""
        with self._lock:
            return self.counters.hits_for("warm")

    def by_kind(self) -> dict[str, int]:
        """Query counts per kind."""
        with self._lock:
            counts: dict[str, int] = {}
            for r in self.records:
                counts[r.kind] = counts.get(r.kind, 0) + 1
            return counts

    def by_cache(self) -> dict[str, int]:
        """Query counts per result-cache outcome (``"-"`` = not applicable)."""
        with self._lock:
            counts: dict[str, int] = {}
            for r in self.records:
                counts[r.cache] = counts.get(r.cache, 0) + 1
            return counts

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return float(sum(r.seconds for r in self.records))

    def summary(self) -> str:
        """One line of telemetry, e.g.::

            queries=7 (time_range=4 reconstruct=3) threads=2 total=0.12s \
cache=2h/2m/1w nodes=5h/3m
        """
        with self._lock:
            counts: dict[str, int] = {}
            threads = set()
            total = 0.0
            for r in self.records:
                counts[r.kind] = counts.get(r.kind, 0) + 1
                threads.add(r.thread)
                total += r.seconds
            hits = self.counters.hits_for("result")
            misses = self.counters.misses_for("result")
            warm = self.counters.hits_for("warm")
            node_hits = self.counters.hits_for("node")
            node_misses = self.counters.misses_for("node")
        kinds = " ".join(f"{k}={n}" for k, n in sorted(counts.items()))
        line = (
            f"queries={sum(counts.values())}"
            + (f" ({kinds})" if kinds else "")
            + f" threads={len(threads)} total={total:.4f}s"
        )
        if hits or misses:
            line += f" cache={hits}h/{misses}m"
            if warm:
                line += f"/{warm}w"
        if node_hits or node_misses:
            line += f" nodes={node_hits}h/{node_misses}m"
        return line


@dataclass(frozen=True)
class _CacheEntry:
    """One LRU slot: the exact answer plus warm-start material.

    ``factors12`` are the converged slice-plane factors in the *stored*
    orientation — their shapes depend only on ``(I1, I2)`` and the target
    ranks, never on the time range, which is what makes them reusable as
    ALS warm starts for overlapping queries at the same ranks/config.
    """

    result: TuckerResult
    t0: int
    t1: int
    tail: tuple
    factors12: tuple[np.ndarray, np.ndarray]


class _QueryCache:
    """Bounded, thread-safe LRU over exact time-range query keys.

    A key is ``(t0, t1, stored_ranks, config_fingerprint)``; an exact hit
    returns the previously computed :class:`TuckerResult` unchanged
    (bit-identical by construction).  :meth:`find_warm` additionally scans
    for an entry at the same ranks/config whose range overlaps at least
    half of the request — its factors seed ALS instead of the range-index
    recombination.  ``capacity=0`` disables the cache entirely.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, int(capacity))
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> "_CacheEntry | None":
        if self.capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple, entry: _CacheEntry) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def find_warm(self, t0: int, t1: int, tail: tuple) -> "_CacheEntry | None":
        if self.capacity == 0:
            return None
        span = t1 - t0
        best: "_CacheEntry | None" = None
        best_overlap = 0
        with self._lock:
            # Most recently used first; require >= half-range overlap.
            for entry in reversed(self._entries.values()):
                if entry.tail != tail:
                    continue
                overlap = min(t1, entry.t1) - max(t0, entry.t0)
                if 2 * overlap >= span and overlap > best_overlap:
                    best, best_overlap = entry, overlap
        return best

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class _PerThreadEngines:
    """One execution backend per reader thread, resolved lazily.

    Engines are mutable (trace accumulation, pools), so sharing one across
    concurrent queries would race; one per thread keeps queries isolated
    while still amortising pool start-up across a thread's queries.  A
    caller-supplied :class:`~repro.engine.ExecutionBackend` is used as-is
    (and never closed) — appropriate when the caller serialises queries.

    BLAS budgeting: with N reader threads each driving its own engine, a
    BLAS that spawns a full thread team per call oversubscribes the
    machine N-fold — the cause of the concurrent-slower-than-serial
    regression this layer fixes.  :meth:`blas_share` splits the baseline
    team size across the engines whose owner threads are still alive, and
    queries cap their BLAS calls to that share.
    """

    def __init__(
        self, config: DTuckerConfig, shared: ExecutionBackend | None = None
    ) -> None:
        self._config = config
        self._shared = shared
        self._local = threading.local()
        self._owned: list[ExecutionBackend] = []
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False
        # Baseline team size, observed before any query lowers it.
        self._base_blas = current_blas_threads()

    def check_open(self) -> None:
        if self._closed:
            raise StoreError("this ServedModel is closed")

    def get(self) -> ExecutionBackend:
        self.check_open()
        if self._shared is not None:
            return self._shared
        engine = getattr(self._local, "engine", None)
        if engine is None:
            engine = resolve_backend(config=self._config)
            self._local.engine = engine
            with self._lock:
                if self._closed:
                    engine.close()
                    raise StoreError("this ServedModel is closed")
                self._owned.append(engine)
                self._threads.append(threading.current_thread())
        return engine

    def n_live(self) -> int:
        """Engines whose owner thread is still alive (>= 1)."""
        if self._shared is not None:
            return 1
        with self._lock:
            live = sum(1 for t in self._threads if t.is_alive())
        return max(1, live)

    def blas_share(self) -> "int | None":
        """Per-engine BLAS thread budget, or ``None`` when unobservable.

        The baseline team is divided across live reader engines and never
        raised above the currently effective limit (so a batch-level cap
        composes with per-query caps instead of fighting it).
        """
        current = current_blas_threads()
        if current is None:
            return None
        base = self._base_blas if self._base_blas is not None else current
        return min(current, max(1, base // self.n_live()))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            engines, self._owned = self._owned, []
            self._threads = []
        for engine in engines:
            engine.close()


class ServedModel:
    """A stored model, memory-mapped once and shared by concurrent readers.

    Construct via :meth:`repro.store.ModelStore.open`.  All attributes are
    read-only; all query methods are safe to call from many threads at
    once and return bit-identical answers to serial calls.

    Attributes
    ----------
    manifest:
        The validated store manifest (a plain dict).
    slice_svd:
        The compressed slice representation, in the store's (slice-mode
        permuted) orientation, backed by the mapped payloads.
    result:
        The fitted :class:`~repro.core.result.TuckerResult`, in the
        *original* mode order.
    config:
        The :class:`~repro.core.config.DTuckerConfig` the model was fitted
        with (queries reuse it unless overridden per call).
    stats:
        Per-query :class:`ServingStats` telemetry (query records plus
        result-cache / warm-start / index-node counters).

    Parameters
    ----------
    index_nodes, index_min_span:
        Pre-merged dyadic node bases loaded from the store's persisted
        ``index/`` payload (and the ``min_span`` it was built with).  When
        absent the same segment tree is built lazily in memory on first
        use — node bases are deterministic functions of the slice
        payloads, so lazily computed and persisted nodes are bit-identical
        and queries answer the same either way.
    cache_size:
        Capacity of the LRU result/warm-start cache (0 disables it).
    warm_start:
        Allow overlapping cached queries at the same ranks/config to seed
        ALS.  Exact repeats are always answered bit-identically from the
        cache; warm-started answers converge from a different (better)
        starting point and are flagged in the telemetry.
    use_index:
        ``False`` disables node reuse entirely (every query recombines its
        range from the raw slice payloads through the same dyadic
        arithmetic) — the honest "cold" baseline for benchmarks.
    """

    def __init__(
        self,
        *,
        manifest: dict,
        slice_svd: SliceSVD,
        result: TuckerResult,
        config: DTuckerConfig,
        engine: ExecutionBackend | None = None,
        index_nodes: "Mapping[tuple[int, int], tuple[np.ndarray, np.ndarray]] | None" = None,
        index_min_span: "int | None" = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        warm_start: bool = True,
        use_index: bool = True,
    ) -> None:
        self.manifest = manifest
        self.slice_svd = slice_svd
        self.result = result
        self.config = config
        self.permutation = tuple(int(i) for i in manifest["permutation"])
        self.stats = ServingStats()
        self._engines = _PerThreadEngines(config, shared=engine)
        self._use_index = bool(use_index)
        self._index_nodes = dict(index_nodes) if (index_nodes and use_index) else None
        self._index_min_span = index_min_span
        self._index: RangeIndex | None = None
        self._index_lock = threading.Lock()
        self._warm_start = bool(warm_start)
        self._cache = _QueryCache(cache_size)

    @property
    def cache_size(self) -> int:
        """Capacity of the LRU result cache (0 = disabled)."""
        return self._cache.capacity

    @property
    def cached_queries(self) -> int:
        """Entries currently held by the LRU result cache."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached result (the range index is unaffected)."""
        self._cache.clear()

    def _range_index(self) -> RangeIndex:
        """The dyadic range index, created lazily on first range query."""
        index = self._index
        if index is not None:
            return index
        with self._index_lock:
            if self._index is None:
                self._require_temporal_last("query_time_range")
                self._index = RangeIndex(
                    self.slice_svd,
                    self._slices_per_step(),
                    min_span=self._index_min_span,
                    nodes=self._index_nodes,
                    memoize=self._use_index,
                    counter=lambda hit: self.stats.count("node", hit),
                )
            return self._index

    # -- geometry ------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Tensor shape in the *original* mode order."""
        stored = self.slice_svd.shape
        out = [0] * len(stored)
        for i, p in enumerate(self.permutation):
            out[p] = stored[i]
        return tuple(out)

    @property
    def stored_shape(self) -> tuple[int, ...]:
        """Tensor shape in the store's (permuted) orientation."""
        return self.slice_svd.shape

    @property
    def ranks(self) -> tuple[int, ...]:
        """Fitted Tucker ranks in the original mode order."""
        return self.result.ranks

    @property
    def slice_rank(self) -> int:
        """Stored per-slice compression rank ``K``."""
        return self.slice_svd.rank

    @property
    def estimated_error(self) -> float:
        """The fit's final estimated reconstruction error (``nan`` if unknown)."""
        history = self.manifest.get("fit", {}).get("history", [])
        return float(history[-1]) if history else float("nan")

    @property
    def nbytes(self) -> int:
        """Total payload bytes, from the manifest (payloads stay unloaded)."""
        return int(
            sum(int(e["nbytes"]) for e in self.manifest["payloads"].values())
        )

    # -- time geometry -------------------------------------------------------
    def _slices_per_step(self) -> int:
        stored = self.slice_svd.shape
        if len(stored) < 3:
            raise StoreError(
                "time-range queries need an order >= 3 tensor; this store "
                f"holds shape {stored}"
            )
        return int(np.prod(stored[2:-1], dtype=np.int64)) if len(stored) > 3 else 1

    def _require_temporal_last(self, what: str) -> None:
        n = len(self.permutation)
        if self.permutation[-1] != n - 1:
            raise StoreError(
                f"{what} requires the temporal (last) mode to survive the "
                f"slice-mode permutation; this store permuted modes "
                f"{self.permutation} — refit with slice_modes keeping the "
                "last mode last"
            )

    def slice_range(self, t0: int, t1: int) -> SliceSVD:
        """The compressed slice group of timesteps ``[t0, t1)`` (zero copy).

        Returns a :class:`~repro.core.slice_svd.SliceSVD` whose arrays are
        views into the mapped payloads, with exact norm bookkeeping from
        the stored per-slice norms.
        """
        self._require_temporal_last("slice_range")
        stored = self.slice_svd.shape
        lo_t, hi_t = int(t0), int(t1)
        if not 0 <= lo_t < hi_t <= stored[-1]:
            raise StoreError(
                f"time range [{lo_t}, {hi_t}) outside the stored extent "
                f"{stored[-1]}"
            )
        per_step = self._slices_per_step()
        lo, hi = lo_t * per_step, hi_t * per_step
        norms = self.slice_svd.slice_norms_squared
        range_norms = None if norms is None else norms[lo:hi]
        if range_norms is not None:
            norm_squared = float(np.sum(range_norms))
        else:
            norm_squared = float(np.sum(self.slice_svd.s[lo:hi] ** 2))
        return SliceSVD(
            u=self.slice_svd.u[lo:hi],
            s=self.slice_svd.s[lo:hi],
            vt=self.slice_svd.vt[lo:hi],
            shape=stored[:-1] + (hi_t - lo_t,),
            norm_squared=norm_squared,
            slice_norms_squared=range_norms,
        )

    # -- queries -------------------------------------------------------------
    def reconstruct(
        self,
        index_ranges: "Sequence[tuple[int, int] | None] | None" = None,
    ) -> np.ndarray:
        """Materialise a dense sub-tensor from the Tucker factors.

        Parameters
        ----------
        index_ranges:
            One ``(start, stop)`` half-open range per mode — in the
            *original* mode order — or ``None`` for a mode's full extent
            (``None`` overall materialises the whole approximation).  Only
            ``prod(stop - start) · prod(ranks)`` work is done: factor rows
            outside the ranges are never touched.

        Returns
        -------
        numpy.ndarray
            The dense approximation of the requested block.
        """
        t0 = time.perf_counter()
        shape = self.shape
        if index_ranges is None:
            ranges: list[tuple[int, int]] = [(0, d) for d in shape]
        else:
            if len(index_ranges) != len(shape):
                raise StoreError(
                    f"expected {len(shape)} index ranges, got {len(index_ranges)}"
                )
            ranges = []
            for n, (r, d) in enumerate(zip(index_ranges, shape)):
                if r is None:
                    ranges.append((0, d))
                    continue
                lo, hi = int(r[0]), int(r[1])
                if not 0 <= lo < hi <= d:
                    raise StoreError(
                        f"index range [{lo}, {hi}) invalid for mode {n} "
                        f"of extent {d}"
                    )
                ranges.append((lo, hi))
        factors = [
            a[lo:hi] for a, (lo, hi) in zip(self.result.factors, ranges)
        ]
        block = tucker_to_tensor(self.result.core, factors)
        self.stats.record(
            "reconstruct", time.perf_counter() - t0, int(block.size)
        )
        return block

    def query_time_range(
        self,
        t0: int,
        t1: int,
        *,
        ranks: "int | Sequence[int] | None" = None,
        config: DTuckerConfig | None = None,
    ) -> TuckerResult:
        """Tucker-decompose timesteps ``[t0, t1)`` without refitting.

        The Zoom-Tucker recombination: the stored per-slice SVDs of the
        range *are* the approximation phase of the sub-tensor, so only
        initialization and a few compressed-domain ALS sweeps run — on
        views of the mapped payloads, never on raw data.

        Parameters
        ----------
        t0, t1:
            Half-open timestep range along the last (temporal) mode.
        ranks:
            Target ranks for the local decomposition, in the original mode
            order (default: the fitted ranks, with the temporal rank
            clipped to the range length).
        config:
            Optional per-query solver override (sweep budget, tolerance,
            backend); defaults to the stored fit configuration.

        Returns
        -------
        TuckerResult
            Local decomposition of the sub-tensor, in the original mode
            order.

        Notes
        -----
        The range's slice-plane factors are recombined through the dyadic
        range index — the cover of ``[t0, t1)`` by O(log T) segment-tree
        nodes whose cached bases are exact width-reduced reformulations of
        the raw stacked blocks — so the per-query recombination cost is
        logarithmic, not linear, in the range length.  An exact repeat of
        a previous query (same range, ranks and config) is answered
        bit-identically from the LRU result cache; a sufficiently
        overlapping previous query may instead seed ALS (``warm`` in the
        telemetry) unless the model was opened with ``warm_start=False``.
        """
        started = time.perf_counter()
        self._engines.check_open()
        lo_t, hi_t = int(t0), int(t1)
        local = self.slice_range(lo_t, hi_t)
        cfg = config if config is not None else self.config

        # Resolve ranks: user ranks arrive in original order; the pipeline
        # wants the stored orientation.
        if ranks is None:
            original = list(self.ranks)
            original[-1] = min(original[-1], hi_t - lo_t)
        else:
            original = list(
                check_ranks(
                    ranks,
                    self.shape[:-1] + (hi_t - lo_t,),
                )
            )
        stored_ranks = tuple(original[p] for p in self.permutation)
        stored_ranks = check_ranks(stored_ranks, local.shape)

        tail = (stored_ranks, _config_fingerprint(cfg))
        key = (lo_t, hi_t) + tail
        entry = self._cache.get(key)
        if entry is not None:
            self.stats.record(
                "time_range",
                time.perf_counter() - started,
                local.num_slices,
                cache="hit",
            )
            return entry.result

        warm = self._cache.find_warm(lo_t, hi_t, tail) if self._warm_start else None
        if warm is not None:
            a1, a2 = warm.factors12
            cache_tag = "warm"
        else:
            blocks1, blocks2 = self._range_index().range_blocks(lo_t, hi_t)
            am = resolve_device(None, config=cfg)
            if am.is_numpy:
                a1 = leading_left_singular_vectors(
                    np.concatenate(blocks1, axis=1), stored_ranks[0]
                )
                a2 = leading_left_singular_vectors(
                    np.concatenate(blocks2, axis=1), stored_ranks[1]
                )
            else:
                # Device-resident recombination: the concatenated node
                # bases are factored on the configured namespace, and only
                # the two small factor matrices come back to the host (the
                # downstream ALS re-uploads the slice views itself).
                a1 = am.from_device(
                    leading_left_singular_vectors(
                        am.to_device(np.concatenate(blocks1, axis=1)),
                        stored_ranks[0],
                    )
                )
                a2 = am.from_device(
                    leading_left_singular_vectors(
                        am.to_device(np.concatenate(blocks2, axis=1)),
                        stored_ranks[1],
                    )
                )
            cache_tag = "miss"
        _, init_factors = initialize_from_factors(local, stored_ranks, a1, a2)

        pipeline = FitPipeline(
            stored_ranks, config=cfg, engine=self._engines.get()
        )
        share = self._engines.blas_share()
        blas_cap = nullcontext() if share is None else limit_blas_threads(share)
        with blas_cap:
            result, outcome, _ = pipeline.refit(
                local, stored_ranks, config=cfg, initial_factors=init_factors
            )
        inverse = tuple(int(i) for i in np.argsort(self.permutation))
        answer = result.permute_modes(inverse)
        self._cache.put(
            key,
            _CacheEntry(
                result=answer,
                t0=lo_t,
                t1=hi_t,
                tail=tail,
                factors12=(outcome.factors[0], outcome.factors[1]),
            ),
        )
        self.stats.record(
            "time_range",
            time.perf_counter() - started,
            local.num_slices,
            cache=cache_tag,
        )
        return answer

    def query_many(
        self,
        ranges: "Sequence[tuple[int, int]]",
        *,
        ranks: "int | Sequence[int] | None" = None,
        config: DTuckerConfig | None = None,
        max_workers: "int | None" = None,
    ) -> list[TuckerResult]:
        """Answer a batch of time-range queries, sharing work across them.

        Amortisation over :meth:`query_time_range` in a loop: every index
        node any of the ranges touches is materialised exactly once up
        front (single-flight, instead of reader threads racing to compute
        shared nodes), duplicate ranges are answered once, and the member
        queries then run on a reader pool whose BLAS calls are capped to a
        fair share of the machine so N readers never oversubscribe it.

        Parameters
        ----------
        ranges:
            ``(t0, t1)`` half-open timestep ranges; duplicates allowed.
        ranks, config:
            As for :meth:`query_time_range`, applied to every member.
        max_workers:
            Reader threads (default: ``min(len(distinct ranges), cpus)``).

        Returns
        -------
        list[TuckerResult]
            One answer per requested range, in request order; duplicate
            ranges share one answer object.
        """
        started = time.perf_counter()
        self._engines.check_open()
        parsed = [(int(a), int(b)) for a, b in ranges]
        if not parsed:
            return []
        for a, b in parsed:  # fail fast before any threads start
            self.slice_range(a, b)
        distinct = list(dict.fromkeys(parsed))
        if self._use_index:
            self._range_index().prewarm(distinct)
        if max_workers is None:
            workers = min(len(distinct), os.cpu_count() or 1)
        else:
            workers = min(int(max_workers), len(distinct))
        workers = max(1, workers)
        if workers == 1:
            answers = {
                r: self.query_time_range(r[0], r[1], ranks=ranks, config=config)
                for r in distinct
            }
        else:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            ) as pool:
                futures = {
                    r: pool.submit(
                        self.query_time_range,
                        r[0],
                        r[1],
                        ranks=ranks,
                        config=config,
                    )
                    for r in distinct
                }
                answers = {r: f.result() for r, f in futures.items()}
        self.stats.record(
            "query_many", time.perf_counter() - started, len(parsed)
        )
        return [answers[r] for r in parsed]

    def refit(
        self,
        ranks: "int | Sequence[int]",
        *,
        config: DTuckerConfig | None = None,
    ) -> TuckerResult:
        """Full-extent decomposition at new ranks from the mapped slices.

        The serving twin of :meth:`repro.core.dtucker.DTucker.refit`: no
        pass over the original tensor, only initialization + iteration on
        the stored representation.  Ranks are in the original mode order.
        """
        started = time.perf_counter()
        cfg = config if config is not None else self.config
        original = check_ranks(ranks, self.shape)
        stored_ranks = tuple(original[p] for p in self.permutation)
        pipeline = FitPipeline(
            stored_ranks, config=cfg, engine=self._engines.get()
        )
        share = self._engines.blas_share()
        blas_cap = nullcontext() if share is None else limit_blas_threads(share)
        with blas_cap:
            result, _, _ = pipeline.refit(
                self.slice_svd, stored_ranks, config=cfg
            )
        inverse = tuple(int(i) for i in np.argsort(self.permutation))
        answer = result.permute_modes(inverse)
        self.stats.record(
            "refit", time.perf_counter() - started, self.slice_svd.num_slices
        )
        return answer

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release per-thread engines (mapped arrays stay valid until GC)."""
        self._engines.close()

    def __enter__(self) -> "ServedModel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServedModel(shape={self.shape}, ranks={self.ranks}, "
            f"slice_rank={self.slice_rank}, queries={self.stats.n_queries})"
        )
