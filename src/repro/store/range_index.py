"""Dyadic range index: a segment tree of pre-merged slice-group SVD bases.

A served time-range query ``[t0, t1)`` needs the leading left singular
vectors of the range's stacked scaled blocks — mode-1 blocks
``U_l · diag(s_l)`` and mode-2 blocks ``V_l · diag(s_l)`` for every slice
``l`` in the range.  Recomputing that from the raw per-slice SVDs costs
O(t1 − t0) per query.  This module trades that for O(log T): the temporal
axis is covered by a segment tree of aligned power-of-two *nodes*, each
node caching an exact width-reduced basis of its segment's stacked
blocks, so any query range decomposes into at most ``2·log2(T)`` canonical
segments whose cached bases are recombined by one small stacked SVD.

Exactness
---------
A node's basis is ``P = U · diag(σ)`` from the thin SVD of the horizontal
stack of its children's bases.  Since ``P Pᵀ = B Bᵀ`` for the segment's
raw stacked blocks ``B`` (no truncation happens: the SVD keeps all
``min(rows, width)`` triplets), the Gram matrix any downstream
``leading_left_singular_vectors`` call sees is *identical* whether built
from cached node bases or from the raw blocks.  The spectrum is therefore
preserved exactly; only column count shrinks.  This is what makes serving
with and without the persisted index produce the same factors — the
dyadic decomposition itself (not the caching) is the canonical range
arithmetic, and caching layers never change which operations run.

Determinism
-----------
Node bases are deterministic functions of the slice payloads, so a node
computed lazily in one process is bit-identical to the same node loaded
from a persisted ``index/`` payload written by another (``np.save``
round-trips float64 exactly).  Concurrent readers may race to compute the
same node; both arrive at identical bits and the first write wins.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

import numpy as np

from ..core.slice_svd import SliceSVD
from ..exceptions import StoreFormatError
from ..linalg.svd import sign_fix

__all__ = [
    "dyadic_cover",
    "auto_min_span",
    "merge_scaled_bases",
    "slices_per_step",
    "RangeIndex",
]


def slices_per_step(shape: tuple[int, ...]) -> int:
    """Slices per temporal step for a stored-orientation tensor shape.

    Slices are ordered with the last mode varying slowest, so one step of
    the last (temporal) mode owns a contiguous block of
    ``prod(shape[2:-1])`` slices.
    """
    count = 1
    for dim in shape[2:-1]:
        count *= int(dim)
    return count


def dyadic_cover(t0: int, t1: int) -> list[tuple[int, int]]:
    """Canonical cover of ``[t0, t1)`` by aligned power-of-two segments.

    Greedy left-to-right: at position ``t`` take the largest span ``2^k``
    with ``t % 2^k == 0`` that still fits inside the range.  Yields at most
    ``2·log2(t1 − t0) + 2`` segments, each satisfying the segment-tree
    alignment invariant ``start % span == 0``.
    """
    if not (0 <= t0 < t1):
        raise ValueError(f"need 0 <= t0 < t1, got [{t0}, {t1})")
    segments: list[tuple[int, int]] = []
    t = t0
    while t < t1:
        span = 1
        while t % (span * 2) == 0 and t + span * 2 <= t1:
            span *= 2
        segments.append((t, span))
        t += span
    return segments


def auto_min_span(i1: int, i2: int, rank: int, per_step: int) -> int:
    """Smallest worthwhile node span for the given slice geometry.

    A node basis has at most ``max(i1, i2)`` columns; merging only *pays*
    once the segment's raw stacked width ``rank · per_step · span`` exceeds
    that, so smaller segments are served straight from the raw scaled
    blocks.  Returns the smallest power of two whose stacked width reaches
    ``max(i1, i2)``, never below 2.
    """
    target = max(int(i1), int(i2))
    width = max(1, int(rank) * int(per_step))
    span = 1
    while width * span < target:
        span *= 2
    return max(2, span)


def merge_scaled_bases(blocks: list[np.ndarray]) -> np.ndarray:
    """Exact width-reduced basis of horizontally stacked scaled bases.

    Returns ``U · diag(σ)`` from the thin SVD of ``hstack(blocks)`` with
    the deterministic :func:`sign_fix` column convention.  The result
    spans the same column space with the same Gram matrix as the input
    stack (``P Pᵀ = B Bᵀ``), in at most ``rows`` columns.
    """
    stacked = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=1)
    u, s, _ = np.linalg.svd(stacked, full_matrices=False)
    u, _ = sign_fix(u)
    return np.ascontiguousarray(u * s)


class RangeIndex:
    """Segment tree of pre-merged slice-group bases over the temporal mode.

    Parameters
    ----------
    ssvd:
        The stored-orientation per-slice SVDs (may be memory-mapped).
    per_step:
        Slices per temporal step (``prod(shape[2:-1])``).
    min_span:
        Smallest segment span served from a merged node; shorter cover
        segments use the raw scaled blocks directly.  ``None`` picks
        :func:`auto_min_span` from the slice geometry.  The value is part
        of the range arithmetic (it decides *which* exact reformulation of
        each segment is used), so persisted indexes record it and readers
        must reuse the recorded value.
    nodes:
        Pre-computed node bases, e.g. loaded from a persisted payload.
    memoize:
        Keep lazily computed nodes in memory for reuse across queries.
    counter:
        Optional callable ``counter(hit: bool)`` invoked on every node
        lookup (telemetry).
    """

    def __init__(
        self,
        ssvd: SliceSVD,
        per_step: int,
        *,
        min_span: "int | None" = None,
        nodes: "Mapping[tuple[int, int], tuple[np.ndarray, np.ndarray]] | None" = None,
        memoize: bool = True,
        counter: "Callable[[bool], None] | None" = None,
    ) -> None:
        self._ssvd = ssvd
        self._per_step = int(per_step)
        if self._per_step < 1:
            raise ValueError(f"per_step must be >= 1, got {per_step}")
        self._extent = int(ssvd.shape[-1])
        i1, i2 = int(ssvd.shape[0]), int(ssvd.shape[1])
        if min_span is None:
            min_span = auto_min_span(i1, i2, ssvd.rank, self._per_step)
        self._min_span = int(min_span)
        if self._min_span < 2:
            raise ValueError(f"min_span must be >= 2, got {min_span}")
        self._memoize = bool(memoize)
        self._counter = counter
        self._nodes: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = (
            dict(nodes) if nodes else {}
        )
        self._lock = threading.Lock()

    # -- geometry ------------------------------------------------------------
    @property
    def extent(self) -> int:
        return self._extent

    @property
    def per_step(self) -> int:
        return self._per_step

    @property
    def min_span(self) -> int:
        return self._min_span

    @property
    def n_nodes(self) -> int:
        with self._lock:
            return len(self._nodes)

    def nodes_snapshot(self) -> dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]:
        """A shallow copy of the current node table (for persistence)."""
        with self._lock:
            return dict(self._nodes)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(
                int(p1.nbytes) + int(p2.nbytes) for p1, p2 in self._nodes.values()
            )

    def cover(self, t0: int, t1: int) -> list[tuple[int, int]]:
        """The canonical dyadic cover of ``[t0, t1)`` (bounds-checked)."""
        if not (0 <= int(t0) < int(t1) <= self._extent):
            raise ValueError(
                f"time range [{t0}, {t1}) outside [0, {self._extent})"
            )
        return dyadic_cover(int(t0), int(t1))

    def node_keys(self) -> list[tuple[int, int]]:
        """Every materialisable node key, smallest spans first."""
        keys = []
        span = self._min_span
        while span <= self._extent:
            keys.extend(
                (start, span) for start in range(0, self._extent - span + 1, span)
            )
            span *= 2
        return keys

    # -- bases ---------------------------------------------------------------
    def _leaf(self, start: int, span: int) -> tuple[np.ndarray, np.ndarray]:
        """Raw scaled blocks of segment ``[start, start+span)`` — exact.

        Mode-1 columns are ``U_l · diag(s_l)`` and mode-2 columns are
        ``V_l · diag(s_l)`` for each slice ``l`` of the segment, packed
        slice-major.  No SVD runs here; leaves are the ground truth every
        merged node is an exact reformulation of.
        """
        lo = start * self._per_step
        hi = (start + span) * self._per_step
        u = np.asarray(self._ssvd.u[lo:hi])
        s = np.asarray(self._ssvd.s[lo:hi])
        vt = np.asarray(self._ssvd.vt[lo:hi])
        us = u * s[:, None, :]  # (n, I1, K)
        p1 = us.transpose(1, 0, 2).reshape(us.shape[1], -1)
        vs = np.swapaxes(vt, 1, 2) * s[:, None, :]  # (n, I2, K)
        p2 = vs.transpose(1, 0, 2).reshape(vs.shape[1], -1)
        return np.ascontiguousarray(p1), np.ascontiguousarray(p2)

    def _segment(self, start: int, span: int) -> tuple[np.ndarray, np.ndarray]:
        if span < self._min_span:
            return self._leaf(start, span)
        return self.node(start, span)

    def node(self, start: int, span: int) -> tuple[np.ndarray, np.ndarray]:
        """The merged basis pair of an aligned node, computing it if absent.

        Lookups are counted (hit = served from the node table, miss =
        recursively computed).  With ``memoize=True`` computed nodes are
        retained; a concurrent duplicate computation is benign — both
        threads produce identical bits and ``setdefault`` keeps one.
        """
        key = (int(start), int(span))
        with self._lock:
            cached = self._nodes.get(key)
        if cached is not None:
            if self._counter is not None:
                self._counter(True)
            return cached
        if self._counter is not None:
            self._counter(False)
        half = span // 2
        left = self._segment(start, half)
        right = self._segment(start + half, half)
        pair = (
            merge_scaled_bases([left[0], right[0]]),
            merge_scaled_bases([left[1], right[1]]),
        )
        if self._memoize:
            with self._lock:
                pair = self._nodes.setdefault(key, pair)
        return pair

    def range_blocks(
        self, t0: int, t1: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-segment (mode-1, mode-2) bases covering ``[t0, t1)``.

        Segments at or above ``min_span`` come from merged nodes; shorter
        ones straight from the raw scaled blocks.  Horizontally stacking
        either list reproduces the exact Gram matrix of the range's raw
        stacked blocks.
        """
        blocks1: list[np.ndarray] = []
        blocks2: list[np.ndarray] = []
        for start, span in self.cover(t0, t1):
            p1, p2 = self._segment(start, span)
            blocks1.append(p1)
            blocks2.append(p2)
        return blocks1, blocks2

    def prewarm(self, ranges: "list[tuple[int, int]]") -> int:
        """Materialise every node any of ``ranges`` will touch; returns count.

        Called by batched queries before fanning out to reader threads so
        shared nodes are computed once (single-flight) instead of raced.
        """
        touched = 0
        for t0, t1 in ranges:
            for start, span in self.cover(t0, t1):
                if span >= self._min_span:
                    self.node(start, span)
                    touched += 1
        return touched

    def materialize(self) -> "RangeIndex":
        """Compute every node bottom-up (build-time path); returns self."""
        for start, span in self.node_keys():
            self.node(start, span)
        return self

    # -- construction --------------------------------------------------------
    @classmethod
    def build(
        cls,
        ssvd: SliceSVD,
        per_step: int,
        *,
        min_span: "int | None" = None,
        seed_nodes: "Mapping[tuple[int, int], tuple[np.ndarray, np.ndarray]] | None" = None,
    ) -> "RangeIndex":
        """Fully materialised index for ``ssvd``.

        ``seed_nodes`` lets :meth:`ModelStore.append` extend an existing
        index incrementally: nodes that lie entirely inside the old extent
        are reused verbatim (append only concatenates slices, so their
        segments' payloads are unchanged) and only nodes touching the new
        region are computed.
        """
        index = cls(
            ssvd,
            per_step,
            min_span=min_span,
            nodes=seed_nodes,
            memoize=True,
        )
        return index.materialize()

    def check_compatible(self, ssvd: SliceSVD, per_step: int) -> None:
        """Raise :class:`StoreFormatError` unless geometry matches ``ssvd``."""
        if (
            self._extent != int(ssvd.shape[-1])
            or self._per_step != int(per_step)
        ):
            raise StoreFormatError(
                f"range index geometry (extent={self._extent}, "
                f"per_step={self._per_step}) does not match the store "
                f"(extent={int(ssvd.shape[-1])}, per_step={int(per_step)})"
            )
