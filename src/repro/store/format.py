"""The on-disk model format: manifest JSON plus ``.npy``/``.npz`` payloads.

This module is the single place that knows how compressed models are laid
out on disk.  Three artifact families share the conventions defined here:

* **Single-file archives** (``.npz``) — the portable interchange form of a
  :class:`~repro.core.slice_svd.SliceSVD` or
  :class:`~repro.core.result.TuckerResult`, historically written by
  :mod:`repro.io`.  Archives are compact but cannot be memory-mapped.
* **Payload directories** — the serving form: one ``.npy`` file per array
  plus a small ``meta.json``.  Plain ``.npy`` files memory-map, so a
  :class:`~repro.store.ServedModel` can share one mapping across many
  reader threads without ever loading payloads eagerly.
* **The store manifest** (``manifest.json``) — the durable index of a
  :class:`~repro.store.ModelStore`: format tag + version, tensor geometry,
  target ranks, the full :class:`~repro.core.config.DTuckerConfig`, fit
  metadata (timings, error history, kernel-stats summary), and a byte-exact
  payload table so sizes and compression ratios are reportable without
  touching any payload.

No pickle anywhere: every array round-trips through ``np.save``/``np.load``
with ``allow_pickle=False`` and every scalar through JSON, so artifacts are
safe to read from untrusted sources.

Versioning policy (see ``docs/store.md``): the ``format`` tag never
changes; ``version`` is bumped on layout changes.  Readers accept any
version ``<=`` their own and must raise
:class:`~repro.exceptions.StoreFormatError` — never ``KeyError`` — on
corrupt, foreign, or future-versioned artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..core.result import TuckerResult
from ..core.slice_svd import SliceSVD
from ..exceptions import StoreFormatError

__all__ = [
    "SLICE_SVD_FORMAT",
    "TUCKER_FORMAT",
    "STORE_FORMAT",
    "STORE_VERSION",
    "MANIFEST_NAME",
    "write_slice_svd_archive",
    "read_slice_svd_archive",
    "write_tucker_archive",
    "read_tucker_archive",
    "write_slice_svd_dir",
    "read_slice_svd_dir",
    "write_tucker_dir",
    "read_tucker_dir",
    "write_manifest",
    "read_manifest",
    "payload_entry",
    "RANGE_INDEX_FORMAT",
    "RANGE_INDEX_VERSION",
    "slice_content_fingerprint",
    "write_range_index_dir",
    "read_range_index_dir",
]

#: Format tag of single-file SliceSVD archives (unchanged since v1 so old
#: archives keep loading).
SLICE_SVD_FORMAT = "repro.slice_svd.v1"

#: Format tag of single-file TuckerResult archives.
TUCKER_FORMAT = "repro.tucker.v1"

#: Format tag of SliceSVD payload directories.
SLICE_SVD_DIR_FORMAT = "repro.slice_svd.dir"

#: Format tag of TuckerResult payload directories.
TUCKER_DIR_FORMAT = "repro.tucker.dir"

#: Format tag and current layout version of a model-store manifest.
STORE_FORMAT = "repro.model_store"
STORE_VERSION = 1

#: Format tag and layout version of the optional dyadic range-index payload.
RANGE_INDEX_FORMAT = "repro.range_index"
RANGE_INDEX_VERSION = 1

#: File name of the store manifest inside a store directory.
MANIFEST_NAME = "manifest.json"

#: meta.json name inside payload directories.
META_NAME = "meta.json"


# -- atomic single-file writes ----------------------------------------------

def _atomic_save_array(path: Path, array: np.ndarray) -> Path:
    """Write ``array`` to ``path`` (``.npy``) via a temp file + rename.

    The rename keeps concurrent readers consistent: a ``ServedModel`` that
    already mapped the old file keeps its inode; new opens see the new one.
    """
    # The tmp name keeps the .npy suffix so np.save writes it verbatim.
    tmp = path.with_name(path.stem + ".tmp.npy")
    np.save(tmp, np.ascontiguousarray(array))
    os.replace(tmp, path)
    return path


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> Path:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def _read_json(path: Path, *, what: str) -> dict:
    try:
        raw = path.read_text()
    except FileNotFoundError:
        raise StoreFormatError(f"{what} missing: no file at {path}") from None
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise StoreFormatError(f"{what} at {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise StoreFormatError(f"{what} at {path} must be a JSON object")
    return data


def _require(data: Mapping[str, Any], key: str, *, what: str) -> Any:
    """Fetch ``key`` or raise a typed error (never ``KeyError``)."""
    if key not in data:
        raise StoreFormatError(f"{what} is missing required key {key!r}")
    return data[key]


def _check_format(
    data: Mapping[str, Any], expected: str, *, what: str
) -> None:
    tag = str(data.get("format", ""))
    if tag != expected:
        raise StoreFormatError(
            f"not a {what} (format {tag!r}, expected {expected!r})"
        )


def payload_entry(array: np.ndarray) -> dict:
    """Manifest payload-table entry for one array: shape/dtype/bytes."""
    a = np.asarray(array)
    return {
        "shape": [int(d) for d in a.shape],
        "dtype": str(a.dtype),
        "nbytes": int(a.nbytes),
    }


# -- single-file .npz archives ----------------------------------------------

def _as_archive_path(path: "str | os.PathLike", *, suffix: str = ".npz") -> Path:
    p = Path(path)
    if p.suffix != suffix:
        p = p.with_suffix(p.suffix + suffix)
    return p


def _load_archive(path: "str | os.PathLike", *, what: str):
    """Open an ``.npz`` for reading, mapping corruption to typed errors."""
    p = _as_archive_path(path)
    try:
        return np.load(p, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, OSError) as exc:
        raise StoreFormatError(
            f"cannot read {what} archive {p}: {exc}"
        ) from exc


def _archive_array(data, key: str, *, what: str) -> np.ndarray:
    if key not in data:
        raise StoreFormatError(f"{what} archive is missing key {key!r}")
    return data[key]


def write_slice_svd_archive(
    ssvd: SliceSVD, path: "str | os.PathLike"
) -> Path:
    """Save a :class:`SliceSVD` to a single compressed ``.npz`` archive.

    Returns the path actually written (a ``.npz`` suffix is appended if
    absent).  The archive layout is unchanged since format v1, so files
    written by any release load in any other.
    """
    p = _as_archive_path(path)
    extras = {}
    if ssvd.slice_norms_squared is not None:
        extras["slice_norms_squared"] = ssvd.slice_norms_squared
    np.savez_compressed(
        p,
        format=np.array(SLICE_SVD_FORMAT),
        u=ssvd.u,
        s=ssvd.s,
        vt=ssvd.vt,
        shape=np.array(ssvd.shape, dtype=np.int64),
        norm_squared=np.array(ssvd.norm_squared),
        **extras,
    )
    return p


def read_slice_svd_archive(path: "str | os.PathLike") -> SliceSVD:
    """Load a :class:`SliceSVD` archive written by :func:`write_slice_svd_archive`.

    Raises
    ------
    StoreFormatError
        If the file is not a valid archive, carries a different ``format``
        tag, or is missing any required key.
    """
    with _load_archive(path, what="slice-SVD") as data:
        tag = str(data.get("format", "")) if "format" in data else ""
        if tag != SLICE_SVD_FORMAT:
            raise StoreFormatError(
                f"not a slice-SVD archive (format {tag!r}, "
                f"expected {SLICE_SVD_FORMAT!r})"
            )
        what = "slice-SVD"
        return SliceSVD(
            u=_archive_array(data, "u", what=what),
            s=_archive_array(data, "s", what=what),
            vt=_archive_array(data, "vt", what=what),
            shape=tuple(int(d) for d in _archive_array(data, "shape", what=what)),
            norm_squared=float(_archive_array(data, "norm_squared", what=what)),
            slice_norms_squared=(
                data["slice_norms_squared"]
                if "slice_norms_squared" in data
                else None
            ),
        )


def write_tucker_archive(
    result: TuckerResult, path: "str | os.PathLike"
) -> Path:
    """Save a :class:`TuckerResult` to a single compressed ``.npz`` archive."""
    p = _as_archive_path(path)
    arrays = {f"factor_{n}": f for n, f in enumerate(result.factors)}
    np.savez_compressed(
        p,
        format=np.array(TUCKER_FORMAT),
        core=result.core,
        **arrays,
    )
    return p


def read_tucker_archive(path: "str | os.PathLike") -> TuckerResult:
    """Load a :class:`TuckerResult` archive written by :func:`write_tucker_archive`.

    Raises
    ------
    StoreFormatError
        If the file is not a valid archive, carries a different ``format``
        tag, or is missing the core or any factor.
    """
    with _load_archive(path, what="Tucker") as data:
        tag = str(data.get("format", "")) if "format" in data else ""
        if tag != TUCKER_FORMAT:
            raise StoreFormatError(
                f"not a Tucker archive (format {tag!r}, expected {TUCKER_FORMAT!r})"
            )
        core = _archive_array(data, "core", what="Tucker")
        factors = [
            _archive_array(data, f"factor_{n}", what="Tucker")
            for n in range(core.ndim)
        ]
        return TuckerResult(core=core, factors=factors)


# -- payload directories -----------------------------------------------------

def _load_payload(
    directory: Path, name: str, *, mmap: bool, what: str
) -> np.ndarray:
    path = directory / name
    if not path.exists():
        raise StoreFormatError(f"{what} directory {directory} is missing {name}")
    try:
        return np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    except (ValueError, OSError) as exc:
        raise StoreFormatError(f"cannot read {path}: {exc}") from exc


def write_slice_svd_dir(ssvd: SliceSVD, path: "str | os.PathLike") -> Path:
    """Write a :class:`SliceSVD` as a payload directory (memory-mappable).

    Layout: ``u.npy, s.npy, vt.npy[, slice_norms.npy]`` plus ``meta.json``
    carrying the format tag, tensor shape and exact ``||X||_F²``.  Each
    array lands via an atomic rename so concurrent readers never observe a
    torn file.
    """
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    _atomic_save_array(p / "u.npy", ssvd.u)
    _atomic_save_array(p / "s.npy", ssvd.s)
    _atomic_save_array(p / "vt.npy", ssvd.vt)
    meta: dict[str, Any] = {
        "format": SLICE_SVD_DIR_FORMAT,
        "version": 1,
        "shape": [int(d) for d in ssvd.shape],
        "norm_squared": float(ssvd.norm_squared),
    }
    if ssvd.slice_norms_squared is not None:
        _atomic_save_array(p / "slice_norms.npy", ssvd.slice_norms_squared)
        meta["has_slice_norms"] = True
    _atomic_write_json(p / META_NAME, meta)
    return p


def read_slice_svd_dir(
    path: "str | os.PathLike", *, mmap: bool = False
) -> SliceSVD:
    """Load a :class:`SliceSVD` payload directory, optionally memory-mapped.

    With ``mmap=True`` the returned object's arrays are read-only views of
    the on-disk files — cheap to open, shareable across threads, and pages
    are only read when touched.
    """
    p = Path(path)
    meta = _read_json(p / META_NAME, what="slice-SVD directory meta")
    _check_format(meta, SLICE_SVD_DIR_FORMAT, what="slice-SVD directory")
    what = "slice-SVD"
    norms = None
    if meta.get("has_slice_norms") or (p / "slice_norms.npy").exists():
        norms = _load_payload(p, "slice_norms.npy", mmap=mmap, what=what)
    return SliceSVD(
        u=_load_payload(p, "u.npy", mmap=mmap, what=what),
        s=_load_payload(p, "s.npy", mmap=mmap, what=what),
        vt=_load_payload(p, "vt.npy", mmap=mmap, what=what),
        shape=tuple(int(d) for d in _require(meta, "shape", what=what)),
        norm_squared=float(_require(meta, "norm_squared", what=what)),
        slice_norms_squared=norms,
    )


def write_tucker_dir(result: TuckerResult, path: "str | os.PathLike") -> Path:
    """Write a :class:`TuckerResult` as a payload directory (memory-mappable)."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    _atomic_save_array(p / "core.npy", result.core)
    for n, a in enumerate(result.factors):
        _atomic_save_array(p / f"factor_{n}.npy", a)
    _atomic_write_json(
        p / META_NAME,
        {
            "format": TUCKER_DIR_FORMAT,
            "version": 1,
            "order": int(result.order),
            "elapsed": float(result.elapsed),
        },
    )
    return p


def read_tucker_dir(
    path: "str | os.PathLike", *, mmap: bool = False
) -> TuckerResult:
    """Load a :class:`TuckerResult` payload directory, optionally memory-mapped."""
    p = Path(path)
    meta = _read_json(p / META_NAME, what="Tucker directory meta")
    _check_format(meta, TUCKER_DIR_FORMAT, what="Tucker directory")
    order = int(_require(meta, "order", what="Tucker directory"))
    core = _load_payload(p, "core.npy", mmap=mmap, what="Tucker")
    if core.ndim != order:
        raise StoreFormatError(
            f"Tucker directory {p}: core order {core.ndim} does not match "
            f"meta order {order}"
        )
    factors = [
        _load_payload(p, f"factor_{n}.npy", mmap=mmap, what="Tucker")
        for n in range(order)
    ]
    result = TuckerResult(core=core, factors=factors)
    result.elapsed = float(meta.get("elapsed", 0.0))
    return result


# -- the dyadic range-index payload ------------------------------------------

def slice_content_fingerprint(ssvd: SliceSVD) -> str:
    """Content fingerprint binding a range index to its slice payloads.

    Hashes the stored tensor shape, the slice rank and the full singular-
    value array (the smallest of the three payload arrays; a few KB even
    for large stores).  Any :meth:`ModelStore.append` or re-save changes
    the singular values, so a stale index is detected without hashing the
    multi-MB ``u``/``vt`` payloads.
    """
    digest = hashlib.sha256()
    digest.update(repr(tuple(int(d) for d in ssvd.shape)).encode())
    digest.update(repr(int(ssvd.rank)).encode())
    digest.update(np.ascontiguousarray(np.asarray(ssvd.s)).tobytes())
    return digest.hexdigest()


def write_range_index_dir(
    path: "str | os.PathLike",
    *,
    nodes: Mapping[tuple[int, int], tuple[np.ndarray, np.ndarray]],
    extent: int,
    per_step: int,
    min_span: int,
    fingerprint: str,
) -> Path:
    """Write a dyadic range index as a payload directory.

    Layout: ``p1.npy``/``p2.npy`` hold every node's mode-1/mode-2 scaled
    bases packed column-wise, and ``meta.json`` carries the format tag, the
    index geometry, the content fingerprint of the slice payloads the index
    was built from, and a node table mapping each ``(start, span)`` node to
    its column range in the packed arrays.  Packing all nodes into two
    files keeps opens cheap and lets readers map individual nodes as
    zero-copy column slices.
    """
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    order = sorted(nodes)
    table = []
    lo1 = lo2 = 0
    blocks1, blocks2 = [], []
    for key in order:
        p1, p2 = nodes[key]
        p1 = np.ascontiguousarray(p1, dtype=np.float64)
        p2 = np.ascontiguousarray(p2, dtype=np.float64)
        table.append(
            [int(key[0]), int(key[1]), lo1, lo1 + p1.shape[1], lo2, lo2 + p2.shape[1]]
        )
        lo1 += p1.shape[1]
        lo2 += p2.shape[1]
        blocks1.append(p1)
        blocks2.append(p2)
    packed1 = np.concatenate(blocks1, axis=1) if blocks1 else np.zeros((0, 0))
    packed2 = np.concatenate(blocks2, axis=1) if blocks2 else np.zeros((0, 0))
    _atomic_save_array(p / "p1.npy", packed1)
    _atomic_save_array(p / "p2.npy", packed2)
    _atomic_write_json(
        p / META_NAME,
        {
            "format": RANGE_INDEX_FORMAT,
            "version": RANGE_INDEX_VERSION,
            "extent": int(extent),
            "per_step": int(per_step),
            "min_span": int(min_span),
            "fingerprint": str(fingerprint),
            "nodes": table,
        },
    )
    return p


def read_range_index_dir(path: "str | os.PathLike", *, mmap: bool = True) -> dict:
    """Load and validate a range-index payload directory.

    Returns a dict with the meta scalars (``extent``, ``per_step``,
    ``min_span``, ``fingerprint``) and ``nodes`` — a mapping from
    ``(start, span)`` to ``(p1, p2)`` read-only column views of the packed
    payload files.  Every structural property is checked here (format tag,
    version, node alignment, power-of-two spans, column offsets inside the
    packed arrays) so corrupt or foreign payloads raise
    :class:`StoreFormatError` instead of silently serving wrong bases.
    Staleness against the live slice payloads (fingerprint mismatch) is the
    caller's check — this function only validates internal consistency.
    """
    p = Path(path)
    what = "range index"
    meta = _read_json(p / META_NAME, what="range-index meta")
    _check_format(meta, RANGE_INDEX_FORMAT, what=what)
    version = int(_require(meta, "version", what=what))
    if version > RANGE_INDEX_VERSION:
        raise StoreFormatError(
            f"range index at {p} has layout version {version}; this release "
            f"reads up to version {RANGE_INDEX_VERSION} — upgrade the library"
        )
    extent = int(_require(meta, "extent", what=what))
    per_step = int(_require(meta, "per_step", what=what))
    min_span = int(_require(meta, "min_span", what=what))
    fingerprint = str(_require(meta, "fingerprint", what=what))
    table = _require(meta, "nodes", what=what)
    if extent < 1 or per_step < 1 or min_span < 2 or not isinstance(table, list):
        raise StoreFormatError(f"range index at {p} has corrupt geometry")
    packed1 = _load_payload(p, "p1.npy", mmap=mmap, what=what)
    packed2 = _load_payload(p, "p2.npy", mmap=mmap, what=what)
    if packed1.ndim != 2 or packed2.ndim != 2:
        raise StoreFormatError(f"range index at {p}: payloads must be matrices")
    nodes: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    for entry in table:
        if not (isinstance(entry, list) and len(entry) == 6):
            raise StoreFormatError(f"range index at {p}: malformed node table")
        start, span, a1, b1, a2, b2 = (int(v) for v in entry)
        valid = (
            span >= min_span
            and span & (span - 1) == 0
            and start >= 0
            and start % span == 0
            and start + span <= extent
            and 0 <= a1 <= b1 <= packed1.shape[1]
            and 0 <= a2 <= b2 <= packed2.shape[1]
            and (start, span) not in nodes
        )
        if not valid:
            raise StoreFormatError(
                f"range index at {p}: invalid node entry {entry!r}"
            )
        nodes[(start, span)] = (packed1[:, a1:b1], packed2[:, a2:b2])
    return {
        "extent": extent,
        "per_step": per_step,
        "min_span": min_span,
        "fingerprint": fingerprint,
        "nodes": nodes,
    }


# -- the store manifest ------------------------------------------------------

def write_manifest(directory: "str | os.PathLike", manifest: Mapping[str, Any]) -> Path:
    """Atomically write ``manifest.json`` into a store directory."""
    return _atomic_write_json(Path(directory) / MANIFEST_NAME, manifest)


def read_manifest(directory: "str | os.PathLike") -> dict:
    """Read and validate a store manifest.

    Checks the ``format`` tag, rejects future layout versions, and verifies
    the structural keys every version-1 store carries, so corruption
    surfaces here as a :class:`StoreFormatError` with a precise message —
    not as a ``KeyError`` deep inside the serving layer.
    """
    p = Path(directory)
    if not p.exists():
        raise FileNotFoundError(f"no model store at {p}")
    manifest = _read_json(p / MANIFEST_NAME, what="store manifest")
    _check_format(manifest, STORE_FORMAT, what="model store")
    version = int(_require(manifest, "version", what="store manifest"))
    if version > STORE_VERSION:
        raise StoreFormatError(
            f"store at {p} has layout version {version}; this release reads "
            f"up to version {STORE_VERSION} — upgrade the library"
        )
    for key in ("shape", "ranks", "permutation", "slice_rank", "config", "payloads"):
        _require(manifest, key, what="store manifest")
    shape = manifest["shape"]
    perm = manifest["permutation"]
    if not isinstance(shape, list) or not isinstance(perm, list) or (
        sorted(int(i) for i in perm) != list(range(len(shape)))
    ):
        raise StoreFormatError(
            f"store manifest at {p} has inconsistent shape/permutation: "
            f"{shape!r} / {perm!r}"
        )
    if not isinstance(manifest["payloads"], dict):
        raise StoreFormatError(f"store manifest at {p}: payloads must be a table")
    return manifest
