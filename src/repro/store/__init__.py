"""Persistent compressed-model store and serving layer.

``fit → save → load → query`` without re-compression:

* :class:`ModelStore` — a versioned store directory (``manifest.json`` plus
  memory-mappable ``.npy`` payloads, no pickle anywhere): :meth:`~ModelStore
  .save` persists a fitted model, :meth:`~ModelStore.append` extends it with
  new temporal blocks, and all metadata (shape, ranks, sizes, fit history)
  is served from the manifest alone.
* :class:`ServedModel` — the read side: payloads mapped once, shared by many
  concurrent reader threads; ``reconstruct`` materialises arbitrary
  sub-tensors from the factors, ``query_time_range`` answers Zoom-Tucker
  style time-range queries by recombining stored per-slice SVDs through the
  dyadic :class:`RangeIndex` (with a bounded LRU result/warm-start cache),
  ``query_many`` batches range queries across a BLAS-partitioned reader
  pool, ``refit`` serves full decompositions at new ranks.
* :mod:`repro.store.format` — the one module that knows the on-disk layout:
  ``.npz`` interchange archives (the historical :mod:`repro.io` format) and
  payload directories, all validated into typed
  :class:`~repro.exceptions.StoreFormatError` diagnostics.

See ``docs/store.md`` for the format specification and versioning policy.
"""

from __future__ import annotations

from .format import (
    MANIFEST_NAME,
    RANGE_INDEX_FORMAT,
    RANGE_INDEX_VERSION,
    SLICE_SVD_FORMAT,
    STORE_FORMAT,
    STORE_VERSION,
    TUCKER_FORMAT,
    payload_entry,
    read_manifest,
    read_range_index_dir,
    read_slice_svd_archive,
    read_slice_svd_dir,
    read_tucker_archive,
    read_tucker_dir,
    slice_content_fingerprint,
    write_manifest,
    write_range_index_dir,
    write_slice_svd_archive,
    write_slice_svd_dir,
    write_tucker_archive,
    write_tucker_dir,
)
from .range_index import RangeIndex, auto_min_span, dyadic_cover, merge_scaled_bases
from .served import QueryRecord, ServedModel, ServingStats
from .store import ModelStore

__all__ = [
    "ModelStore",
    "ServedModel",
    "ServingStats",
    "QueryRecord",
    "RangeIndex",
    "dyadic_cover",
    "auto_min_span",
    "merge_scaled_bases",
    "RANGE_INDEX_FORMAT",
    "RANGE_INDEX_VERSION",
    "slice_content_fingerprint",
    "write_range_index_dir",
    "read_range_index_dir",
    "SLICE_SVD_FORMAT",
    "TUCKER_FORMAT",
    "STORE_FORMAT",
    "STORE_VERSION",
    "MANIFEST_NAME",
    "write_slice_svd_archive",
    "read_slice_svd_archive",
    "write_tucker_archive",
    "read_tucker_archive",
    "write_slice_svd_dir",
    "read_slice_svd_dir",
    "write_tucker_dir",
    "read_tucker_dir",
    "write_manifest",
    "read_manifest",
    "payload_entry",
]
