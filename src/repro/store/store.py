"""The :class:`ModelStore`: a versioned on-disk home for fitted models.

A store is a directory::

    store/
      manifest.json        # format tag + version, geometry, config, fit meta,
                           # byte-exact payload table
      slices/              # SliceSVD payload dir (u/s/vt[/slice_norms].npy)
      tucker/              # TuckerResult payload dir (core/factor_n.npy)

``manifest.json`` alone answers every metadata question (shape, ranks,
sizes, compression ratio, fit history) — payloads are only touched by
:meth:`ModelStore.open`, which memory-maps them into a
:class:`~repro.store.served.ServedModel` for concurrent reads — and by
:meth:`ModelStore.append`, which compresses new temporal blocks through the
same :func:`~repro.core.sources.compress_source` path as a fresh fit and
re-runs only initialization + iteration.

Writers go through :func:`repro.store.format` so every file lands via an
atomic rename: readers that already mapped a payload keep their (old) inode,
new opens see the new store.  See ``docs/store.md`` for the format spec and
versioning policy.
"""

from __future__ import annotations

import dataclasses
import shutil
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.config import DTuckerConfig
from ..core.fit_pipeline import FitPipeline, PipelineFit
from ..core.result import TuckerResult
from ..core.slice_svd import SliceSVD
from ..core.sources import BlockSource
from ..engine import ExecutionBackend
from ..exceptions import StoreError, StoreFormatError
from ..kernels.stats import KernelStats
from ..metrics.timing import PhaseTimings
from .format import (
    MANIFEST_NAME,
    META_NAME,
    STORE_FORMAT,
    STORE_VERSION,
    payload_entry,
    read_manifest,
    read_range_index_dir,
    read_slice_svd_dir,
    read_tucker_dir,
    slice_content_fingerprint,
    write_manifest,
    write_range_index_dir,
    write_slice_svd_dir,
    write_tucker_dir,
)
from .range_index import RangeIndex, slices_per_step
from .served import DEFAULT_CACHE_SIZE, ServedModel

__all__ = ["ModelStore"]

#: Payload sub-directory names inside a store.
SLICES_DIR = "slices"
TUCKER_DIR = "tucker"
INDEX_DIR = "index"


def _fit_metadata(
    *,
    timings: PhaseTimings | None,
    history: Sequence[float] | None,
    converged: bool,
    n_iters: int,
    kernel_stats: KernelStats | None,
) -> dict:
    """JSON-ready summary of how the stored model was fitted."""
    meta: dict = {
        "history": [float(e) for e in (history or [])],
        "converged": bool(converged),
        "n_iters": int(n_iters),
    }
    if timings is not None:
        meta["timings"] = {k: float(v) for k, v in timings.phases.items()}
    if kernel_stats is not None:
        meta["kernel_stats"] = kernel_stats.as_dict()
    return meta


def _payload_table(ssvd: SliceSVD, result: TuckerResult) -> dict:
    table = {
        f"{SLICES_DIR}/u.npy": payload_entry(ssvd.u),
        f"{SLICES_DIR}/s.npy": payload_entry(ssvd.s),
        f"{SLICES_DIR}/vt.npy": payload_entry(ssvd.vt),
        f"{TUCKER_DIR}/core.npy": payload_entry(result.core),
    }
    if ssvd.slice_norms_squared is not None:
        table[f"{SLICES_DIR}/slice_norms.npy"] = payload_entry(
            ssvd.slice_norms_squared
        )
    for n, a in enumerate(result.factors):
        table[f"{TUCKER_DIR}/factor_{n}.npy"] = payload_entry(a)
    return table


class ModelStore:
    """Handle on one store directory; cheap to construct, reads lazily.

    Use :meth:`save` to persist a fitted model, :meth:`open` to serve it,
    :meth:`append` to extend it with new temporal data.  All metadata
    properties come from the manifest alone — no payload is loaded.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DTucker
    >>> x = np.random.default_rng(0).standard_normal((12, 10, 8))
    >>> model = DTucker(ranks=(4, 4, 4), seed=0).fit(x)
    >>> import tempfile, pathlib
    >>> with tempfile.TemporaryDirectory() as d:
    ...     store = model.save(pathlib.Path(d) / "m")
    ...     store.ranks
    (4, 4, 4)
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._manifest: dict | None = None

    # -- writing -------------------------------------------------------------
    @classmethod
    def save(
        cls,
        path: "str | Path",
        *,
        slice_svd: SliceSVD,
        result: TuckerResult,
        config: DTuckerConfig | None = None,
        permutation: Sequence[int] | None = None,
        timings: PhaseTimings | None = None,
        history: Sequence[float] | None = None,
        converged: bool = False,
        n_iters: int = 0,
        kernel_stats: KernelStats | None = None,
        appends: int = 0,
        overwrite: bool = False,
        build_index: bool = False,
    ) -> "ModelStore":
        """Persist a fitted model as a store directory.

        Parameters
        ----------
        path:
            Store directory (created; parents too).
        slice_svd:
            The compressed representation, in the *stored* (slice-mode
            permuted) orientation.
        result:
            The fitted decomposition, in the *original* mode order.
        config:
            The :class:`~repro.core.config.DTuckerConfig` of the fit;
            recorded verbatim so queries and appends reuse it.
        permutation:
            Mode permutation mapping original → stored order (identity
            when omitted).
        timings, history, converged, n_iters, kernel_stats:
            Fit metadata for the manifest (all optional).
        appends:
            How many :meth:`append` rounds this model has absorbed.
        overwrite:
            Allow replacing an existing store (payloads land atomically,
            so concurrent readers keep serving the old arrays).
        build_index:
            Also build and persist the dyadic range index (see
            :meth:`build_index`) so every future open serves range
            queries from the pre-merged nodes.  Without it, any index a
            previous store at ``path`` carried is removed — it would be
            stale against the new payloads.

        Returns
        -------
        ModelStore
            A handle on the written store.
        """
        p = Path(path)
        if permutation is None:
            permutation = tuple(range(slice_svd.order))
        perm = [int(i) for i in permutation]
        if sorted(perm) != list(range(slice_svd.order)):
            raise StoreError(
                f"permutation {permutation!r} is not a permutation of the "
                f"{slice_svd.order} tensor modes"
            )
        if (p / MANIFEST_NAME).exists() and not overwrite:
            raise StoreError(
                f"a model store already exists at {p}; pass overwrite=True "
                "to replace it"
            )
        cfg = config if config is not None else DTuckerConfig()
        p.mkdir(parents=True, exist_ok=True)
        write_slice_svd_dir(slice_svd, p / SLICES_DIR)
        write_tucker_dir(result, p / TUCKER_DIR)
        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "shape": [int(d) for d in slice_svd.shape],
            "permutation": perm,
            "ranks": [int(r) for r in result.ranks],
            "slice_rank": int(slice_svd.rank),
            "dtype": str(slice_svd.u.dtype),
            "norm_squared": float(slice_svd.norm_squared),
            "content_fingerprint": slice_content_fingerprint(slice_svd),
            "appends": int(appends),
            "config": dataclasses.asdict(cfg),
            "fit": _fit_metadata(
                timings=timings,
                history=history,
                converged=converged,
                n_iters=n_iters,
                kernel_stats=kernel_stats,
            ),
            "payloads": _payload_table(slice_svd, result),
        }
        write_manifest(p, manifest)
        store = cls(p)
        store._manifest = dict(manifest)
        index_path = p / INDEX_DIR
        if build_index:
            store.build_index()
        elif index_path.exists():
            # Payloads just changed; an index from a previous store at this
            # path would serve stale bases.  Remove rather than risk it.
            shutil.rmtree(index_path)
        return store

    @classmethod
    def save_fit(
        cls,
        path: "str | Path",
        fit: PipelineFit,
        *,
        config: DTuckerConfig | None = None,
        permutation: Sequence[int] | None = None,
        result: TuckerResult | None = None,
        overwrite: bool = False,
        build_index: bool = False,
    ) -> "ModelStore":
        """Persist a :class:`~repro.core.fit_pipeline.PipelineFit` directly.

        ``fit.result`` is in the source's mode order; callers that permuted
        their tensor pass the back-permuted ``result`` plus the
        ``permutation`` they applied (as :meth:`repro.core.dtucker.DTucker
        .save` does).
        """
        return cls.save(
            path,
            slice_svd=fit.slice_svd,
            result=result if result is not None else fit.result,
            config=config,
            permutation=permutation,
            timings=fit.timings,
            history=fit.history,
            converged=fit.converged,
            n_iters=fit.n_iters,
            kernel_stats=fit.kernel_stats,
            overwrite=overwrite,
            build_index=build_index,
        )

    # -- manifest-backed metadata --------------------------------------------
    @property
    def manifest(self) -> dict:
        """The validated manifest (read once, cached; see :meth:`reload`)."""
        if self._manifest is None:
            self._manifest = read_manifest(self.path)
        return self._manifest

    def reload(self) -> "ModelStore":
        """Drop the cached manifest so the next access re-reads disk."""
        self._manifest = None
        return self

    @property
    def exists(self) -> bool:
        """Whether ``path`` currently holds a manifest (no validation)."""
        return (self.path / MANIFEST_NAME).exists()

    @property
    def stored_shape(self) -> tuple[int, ...]:
        """Tensor shape in the stored (slice-mode permuted) orientation."""
        return tuple(int(d) for d in self.manifest["shape"])

    @property
    def permutation(self) -> tuple[int, ...]:
        """Mode permutation mapping original → stored order."""
        return tuple(int(i) for i in self.manifest["permutation"])

    @property
    def shape(self) -> tuple[int, ...]:
        """Tensor shape in the *original* mode order."""
        stored = self.stored_shape
        out = [0] * len(stored)
        for i, p in enumerate(self.permutation):
            out[p] = stored[i]
        return tuple(out)

    @property
    def ranks(self) -> tuple[int, ...]:
        """Fitted Tucker ranks, in the original mode order."""
        return tuple(int(r) for r in self.manifest["ranks"])

    @property
    def slice_rank(self) -> int:
        """Stored per-slice compression rank ``K``."""
        return int(self.manifest["slice_rank"])

    @property
    def config(self) -> DTuckerConfig:
        """The fit's :class:`DTuckerConfig`, reconstructed from the manifest."""
        raw = self.manifest["config"]
        if not isinstance(raw, Mapping):
            raise StoreFormatError(
                f"store manifest at {self.path}: config must be a table"
            )
        try:
            return DTuckerConfig(**dict(raw))
        except TypeError as exc:
            raise StoreFormatError(
                f"store manifest at {self.path} carries an unusable config: {exc}"
            ) from exc

    @property
    def nbytes(self) -> int:
        """Total payload bytes, straight from the manifest table."""
        return int(
            sum(int(e["nbytes"]) for e in self.manifest["payloads"].values())
        )

    @property
    def compression_ratio(self) -> float:
        """Dense-tensor bytes over stored slice-payload bytes (metadata only)."""
        dense = float(np.prod(self.stored_shape, dtype=np.int64)) * np.dtype(
            self.manifest.get("dtype", "float64")
        ).itemsize
        # Count the SVD triples only (u/s/vt) so the ratio matches
        # SliceSVD.compression_ratio and DTucker.compression_ratio_.
        slices = sum(
            int(self.manifest["payloads"][f"{SLICES_DIR}/{name}"]["nbytes"])
            for name in ("u.npy", "s.npy", "vt.npy")
        )
        return dense / float(slices)

    # -- the dyadic range index ----------------------------------------------
    @property
    def has_index(self) -> bool:
        """Whether a persisted range-index payload is present (no validation)."""
        return (self.path / INDEX_DIR / META_NAME).exists()

    @property
    def content_fingerprint(self) -> "str | None":
        """The manifest's slice-payload fingerprint (``None`` on old stores)."""
        fp = self.manifest.get("content_fingerprint")
        return None if fp is None else str(fp)

    def build_index(self, *, min_span: "int | None" = None) -> RangeIndex:
        """Build and persist the dyadic range index for this store.

        Materialises the full segment tree of pre-merged slice-group bases
        (see :mod:`repro.store.range_index`) from the persisted slice
        payloads and writes it under ``index/`` with the payloads' content
        fingerprint, so :meth:`open` can detect staleness.  Rebuilding is
        idempotent; an existing index is replaced atomically.

        Parameters
        ----------
        min_span:
            Smallest node span to materialise (default: auto from the
            slice geometry).  Recorded in the payload; readers reuse it.

        Returns
        -------
        RangeIndex
            The freshly built index (node count / byte size inspectable).
        """
        manifest = self.manifest
        perm = self.permutation
        if perm[-1] != len(perm) - 1:
            raise StoreError(
                "a range index needs the temporal (last) mode to survive "
                f"the slice-mode permutation; this store permuted modes {perm}"
            )
        ssvd = self.load_slice_svd(mmap=True)
        per_step = slices_per_step(ssvd.shape)
        index = RangeIndex.build(ssvd, per_step, min_span=min_span)
        fingerprint = slice_content_fingerprint(ssvd)
        write_range_index_dir(
            self.path / INDEX_DIR,
            nodes=index.nodes_snapshot(),
            extent=index.extent,
            per_step=per_step,
            min_span=index.min_span,
            fingerprint=fingerprint,
        )
        if manifest.get("content_fingerprint") != fingerprint:
            # Stores written before the index era lack the fingerprint;
            # record it so staleness checks work from the manifest too.
            updated = dict(manifest)
            updated["content_fingerprint"] = fingerprint
            write_manifest(self.path, updated)
            self._manifest = updated
        return index

    def drop_index(self) -> "ModelStore":
        """Remove the persisted range index (a no-op when absent)."""
        index_path = self.path / INDEX_DIR
        if index_path.exists():
            shutil.rmtree(index_path)
        return self

    def _load_index_payload(self, ssvd: SliceSVD, *, mmap: bool = True) -> dict:
        """Read the index payload and verify it matches ``ssvd``.

        Raises :class:`StoreFormatError` on corrupt payloads *and* on
        stale ones (geometry or content fingerprint disagreeing with the
        live slice payloads) — a wrong index must never silently serve.
        """
        payload = read_range_index_dir(self.path / INDEX_DIR, mmap=mmap)
        extent = int(ssvd.shape[-1])
        per_step = slices_per_step(ssvd.shape)
        if payload["extent"] != extent or payload["per_step"] != per_step:
            raise StoreFormatError(
                f"range index at {self.path / INDEX_DIR} is stale: it covers "
                f"extent {payload['extent']} (per_step {payload['per_step']}) "
                f"but the store holds extent {extent} (per_step {per_step}); "
                "rebuild with ModelStore.build_index()"
            )
        if payload["fingerprint"] != slice_content_fingerprint(ssvd):
            raise StoreFormatError(
                f"range index at {self.path / INDEX_DIR} is stale: its "
                "content fingerprint does not match the slice payloads; "
                "rebuild with ModelStore.build_index()"
            )
        return payload

    # -- reading -------------------------------------------------------------
    def open(
        self,
        *,
        mmap: bool = True,
        engine: ExecutionBackend | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        warm_start: bool = True,
        use_index: bool = True,
    ) -> ServedModel:
        """Map the payloads and return a :class:`ServedModel`.

        Parameters
        ----------
        mmap:
            Memory-map payloads (default).  ``False`` loads them eagerly —
            useful when the store lives on slow removable media.
        engine:
            Optional shared :class:`~repro.engine.ExecutionBackend` for all
            queries (reused, never closed).  Default: the served model
            resolves one engine *per reader thread* from the stored config.
        cache_size:
            LRU result/warm-start cache capacity (0 disables caching).
        warm_start:
            Let overlapping cached queries seed ALS (telemetry flags them).
        use_index:
            Serve range queries from the persisted dyadic index when
            present (building it lazily in memory otherwise).  ``False``
            recombines every query from the raw slice payloads — same
            arithmetic, no reuse.

        Returns
        -------
        ServedModel

        Raises
        ------
        StoreFormatError
            On corrupt payloads, and on a persisted range index that is
            corrupt, foreign, or stale against the slice payloads.
        """
        manifest = read_manifest(self.path)
        ssvd = read_slice_svd_dir(self.path / SLICES_DIR, mmap=mmap)
        result = read_tucker_dir(self.path / TUCKER_DIR, mmap=mmap)
        stored = tuple(int(d) for d in manifest["shape"])
        if ssvd.shape != stored:
            raise StoreFormatError(
                f"store at {self.path}: slice payloads have shape "
                f"{ssvd.shape} but the manifest says {stored}"
            )
        if len(result.factors) != len(stored):
            raise StoreFormatError(
                f"store at {self.path}: Tucker payloads have order "
                f"{len(result.factors)}, manifest says {len(stored)}"
            )
        raw_cfg = manifest["config"]
        try:
            config = DTuckerConfig(**dict(raw_cfg))
        except TypeError as exc:
            raise StoreFormatError(
                f"store manifest at {self.path} carries an unusable config: {exc}"
            ) from exc
        index_nodes = None
        index_min_span = None
        if self.has_index:
            payload = self._load_index_payload(ssvd, mmap=mmap)
            # min_span is part of the range arithmetic: honour the persisted
            # value even when node reuse is disabled, so indexed and
            # index-free opens of the same store answer bit-identically.
            index_min_span = int(payload["min_span"])
            if use_index:
                index_nodes = payload["nodes"]
        return ServedModel(
            manifest=manifest,
            slice_svd=ssvd,
            result=result,
            config=config,
            engine=engine,
            index_nodes=index_nodes,
            index_min_span=index_min_span,
            cache_size=cache_size,
            warm_start=warm_start,
            use_index=use_index,
        )

    def load_slice_svd(self, *, mmap: bool = False) -> SliceSVD:
        """Load just the compressed slices (stored orientation)."""
        return read_slice_svd_dir(self.path / SLICES_DIR, mmap=mmap)

    def load_result(self, *, mmap: bool = False) -> TuckerResult:
        """Load just the fitted decomposition (original mode order)."""
        return read_tucker_dir(self.path / TUCKER_DIR, mmap=mmap)

    # -- appending -----------------------------------------------------------
    def append(
        self,
        block: np.ndarray,
        *,
        rng: "int | np.random.Generator | None" = None,
        engine: ExecutionBackend | None = None,
    ) -> "ModelStore":
        """Extend the store with a new block along the last (temporal) mode.

        The block (given in the *original* mode order) is compressed through
        the same :func:`~repro.core.sources.compress_source` path as a fresh
        fit — at the stored slice rank, so the new slices concatenate
        exactly — then only initialization + ALS sweeps re-run on the merged
        representation (:meth:`FitPipeline.refit`).  The original tensor is
        never revisited.

        A persisted range index is extended *incrementally*: appending only
        concatenates slices, so every node inside the old extent keeps its
        exact basis and only nodes touching the new region are computed.
        The index is first validated against the pre-append payloads — a
        corrupt or already-stale index raises
        :class:`~repro.exceptions.StoreFormatError` instead of being
        silently carried forward.

        Returns ``self`` with the manifest reloaded; payloads are replaced
        atomically, so an open :class:`ServedModel` keeps serving the
        pre-append arrays.
        """
        manifest = self.manifest
        perm = self.permutation
        if perm[-1] != len(perm) - 1:
            raise StoreError(
                "append requires the temporal (last) mode to survive the "
                f"slice-mode permutation; this store permuted modes {perm}"
            )
        x = np.asarray(block, dtype=float)
        if x.ndim != len(perm):
            raise StoreError(
                f"append block must have order {len(perm)}, got {x.ndim}"
            )
        if tuple(x.shape[:-1]) != self.shape[:-1]:
            raise StoreError(
                f"append block shape {x.shape} must match the stored shape "
                f"{self.shape} on every mode but the last"
            )
        config = self.config
        ranks = self.ranks
        stored_ranks = tuple(ranks[p] for p in perm)
        pipeline = FitPipeline(
            stored_ranks,
            slice_rank=self.slice_rank,
            config=config,
            engine=engine,
            strict_slice_rank=False,
        )
        permuted = np.transpose(x, perm)
        fresh = pipeline.compress(BlockSource([permuted]), rng=rng)
        current = self.load_slice_svd()
        # Validate any persisted index against the *pre-append* payloads
        # (loaded eagerly: save() below replaces the files on disk).
        old_index = None
        if self.has_index:
            old_index = self._load_index_payload(current, mmap=False)
        merged = current.append(fresh)
        result, outcome, _ = pipeline.refit(merged, stored_ranks)
        inverse = tuple(int(i) for i in np.argsort(perm))
        saved = type(self).save(
            self.path,
            slice_svd=merged,
            result=result.permute_modes(inverse),
            config=config,
            permutation=perm,
            history=outcome.errors,
            converged=outcome.converged,
            n_iters=outcome.n_iters,
            kernel_stats=outcome.kernel_stats,
            appends=int(manifest.get("appends", 0)) + 1,
            overwrite=True,
        )
        self._manifest = saved._manifest
        if old_index is not None:
            # Old nodes lie entirely inside the old extent and stay exact;
            # seed them so only nodes touching the new region are computed.
            per_step = slices_per_step(merged.shape)
            index = RangeIndex.build(
                merged,
                per_step,
                min_span=old_index["min_span"],
                seed_nodes=old_index["nodes"],
            )
            write_range_index_dir(
                self.path / INDEX_DIR,
                nodes=index.nodes_snapshot(),
                extent=index.extent,
                per_step=per_step,
                min_span=index.min_span,
                fingerprint=slice_content_fingerprint(merged),
            )
        return self

    # -- reporting -----------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable report (backs ``repro inspect``)."""
        m = self.manifest
        fit = m.get("fit", {})
        history = fit.get("history", [])
        lines = [
            f"model store at {self.path}",
            f"  format        {m['format']} v{m['version']}",
            f"  shape         {self.shape} (stored as {self.stored_shape}, "
            f"permutation {self.permutation})",
            f"  ranks         {self.ranks}  slice_rank {self.slice_rank}  "
            f"dtype {m.get('dtype', '?')}",
            f"  payload bytes {self.nbytes}  compression {self.compression_ratio:.2f}x",
            f"  appends       {int(m.get('appends', 0))}",
        ]
        fp = m.get("content_fingerprint")
        if fp:
            lines.append(f"  fingerprint   {str(fp)[:16]}…")
        if self.has_index:
            try:
                payload = read_range_index_dir(self.path / INDEX_DIR, mmap=True)
                index_bytes = sum(
                    (self.path / INDEX_DIR / name).stat().st_size
                    for name in ("p1.npy", "p2.npy")
                )
                stale = (
                    ""
                    if fp and payload["fingerprint"] == fp
                    else "  [STALE — rebuild with build_index()]"
                )
                lines.append(
                    f"  range index   {len(payload['nodes'])} nodes, "
                    f"min_span {payload['min_span']}, "
                    f"{index_bytes} bytes{stale}"
                )
            except StoreFormatError as exc:
                lines.append(f"  range index   CORRUPT: {exc}")
        else:
            lines.append(
                "  range index   absent (serving builds it lazily in memory; "
                "persist with build_index())"
            )
        if history:
            lines.append(
                f"  fit           error {history[-1]:.6e} after "
                f"{int(fit.get('n_iters', 0))} sweeps "
                f"(converged={bool(fit.get('converged', False))})"
            )
        timings = fit.get("timings")
        if timings:
            phases = " ".join(f"{k}={v:.4f}s" for k, v in timings.items())
            lines.append(f"  timings       {phases}")
        for name in sorted(m["payloads"]):
            e = m["payloads"][name]
            lines.append(
                f"  payload       {name}: shape {tuple(e['shape'])} "
                f"{e['dtype']} ({int(e['nbytes'])} bytes)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "present" if self.exists else "absent"
        return f"ModelStore({str(self.path)!r}, {state})"
