"""Norms and error measures for dense tensors.

The reconstruction-error definition matches the paper family
(D-Tucker / Zoom-Tucker): ``error = ||X - X_hat||_F^2 / ||X||_F^2``.
Fit is the complementary measure used by the Tensor Toolbox:
``fit = 1 - ||X - X_hat||_F / ||X||_F``.
"""

from __future__ import annotations

import numpy as np

from ..engine.array_api import array_module_of
from ..exceptions import ShapeError
from ..validation import as_tensor

__all__ = [
    "frobenius_norm",
    "frobenius_norm_squared",
    "relative_error",
    "reconstruction_error",
    "fit_score",
    "core_based_error",
]


def frobenius_norm(tensor: np.ndarray) -> float:
    """Frobenius norm of a tensor of any order."""
    x = as_tensor(tensor, min_order=1, name="tensor")
    am = array_module_of(x)
    if am.is_numpy:
        return float(np.linalg.norm(x.ravel()))
    return am.vector_norm(x)


def frobenius_norm_squared(tensor: np.ndarray) -> float:
    """Squared Frobenius norm, computed without an intermediate sqrt.

    Always accumulates in float64: a float32 tensor is reduced with a
    float64 accumulator (``np.einsum(..., dtype=np.float64)``), so the
    squared norm does not lose mass to float32 rounding — the same
    precision contract as :func:`repro.kernels.compress_plan.slab_norms`.
    The float64 path is unchanged (``flat @ flat``).
    """
    x = as_tensor(tensor, min_order=1, name="tensor")
    am = array_module_of(x)
    if am.is_numpy:
        flat = x.ravel()
        if flat.dtype == np.float64:
            return float(flat @ flat)
        return float(np.einsum("i,i->", flat, flat, dtype=np.float64))
    return am.vdot_float64(x)


def relative_error(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Relative Frobenius error ``||ref - est||_F / ||ref||_F``.

    Raises
    ------
    ShapeError
        If the two tensors have different shapes or the reference is zero.
    """
    x = as_tensor(reference, min_order=1, name="reference")
    y = as_tensor(estimate, min_order=1, name="estimate")
    if tuple(x.shape) != tuple(y.shape):
        raise ShapeError(
            f"reference {tuple(x.shape)} and estimate {tuple(y.shape)} "
            "must have equal shapes"
        )
    am = array_module_of(x, y)
    if am.is_numpy:
        denom = np.linalg.norm(x.ravel())
        if denom == 0.0:
            raise ShapeError("relative error undefined for a zero reference tensor")
        return float(np.linalg.norm((x - y).ravel()) / denom)
    denom = am.vector_norm(x)
    if denom == 0.0:
        raise ShapeError("relative error undefined for a zero reference tensor")
    return am.vector_norm(x - am.astype(y, am.np_dtype(x))) / denom


def reconstruction_error(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Squared relative error ``||X - X_hat||_F^2 / ||X||_F^2`` (paper metric)."""
    return relative_error(reference, estimate) ** 2


def fit_score(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Tensor-Toolbox style fit, ``1 - ||X - X_hat||_F / ||X||_F``."""
    return 1.0 - relative_error(reference, estimate)


def core_based_error(norm_x_squared: float, core: np.ndarray) -> float:
    """Reconstruction error from the core norm only (orthonormal factors).

    When ``X_hat = G ×_1 A(1) ... ×_N A(N)`` with column-orthonormal factors
    obtained by projecting ``X`` (i.e. ``G = X ×_n A(n)^T``), Pythagoras gives

    .. math:: ||X - X\\_hat||_F^2 = ||X||_F^2 - ||G||_F^2 ,

    so the error is available without reconstructing ``X_hat`` — the
    memory-efficient convergence check used by the iteration phase.

    Parameters
    ----------
    norm_x_squared:
        ``||X||_F^2`` of the original tensor (a scalar retained from input).
    core:
        Current core tensor.

    Returns
    -------
    float
        ``max(0, ||X||^2 - ||G||^2) / ||X||^2`` — clipped at zero because
        floating point can push the difference slightly negative.
    """
    if norm_x_squared <= 0.0:
        raise ShapeError("norm_x_squared must be positive")
    g2 = frobenius_norm_squared(core)
    return float(max(norm_x_squared - g2, 0.0) / norm_x_squared)
