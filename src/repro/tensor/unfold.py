"""Mode-``n`` matricization (unfolding) and its inverse.

This module fixes the library-wide unfolding convention to the one used by
Kolda & Bader, *Tensor Decompositions and Applications* (SIAM Review 2009):
element ``(i_1, ..., i_N)`` of the tensor maps to row ``i_n`` and column

.. math::

    j = \\sum_{k \\ne n} i_k \\prod_{m < k,\\; m \\ne n} I_m

of the unfolding — i.e. among the remaining modes, *lower* modes vary
*fastest* (Fortran order).  Under this convention the fundamental Tucker
identity reads

.. math::

    \\mathcal{Y} = \\mathcal{G} \\times_1 A^{(1)} \\cdots \\times_N A^{(N)}
    \\iff
    Y_{(n)} = A^{(n)} G_{(n)}
        \\left(A^{(N)} \\otimes \\cdots \\otimes A^{(n+1)} \\otimes
              A^{(n-1)} \\otimes \\cdots \\otimes A^{(1)}\\right)^T ,

with the Kronecker factors in *descending* mode order.  The helper
:func:`repro.tensor.products.kron_secondary` produces exactly that product.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.array_api import array_module_of
from ..validation import as_tensor, check_mode

__all__ = ["unfold", "fold", "unfolding_shape", "vectorize", "tensorize"]


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Return the mode-``mode`` matricization of ``tensor``.

    Parameters
    ----------
    tensor:
        An order-``N`` array.
    mode:
        Zero-based mode to bring to the rows.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(I_mode, prod(other modes))`` following the Kolda
        convention (remaining modes in natural order, lowest fastest).

    Examples
    --------
    >>> import numpy as np
    >>> x = np.arange(24).reshape(2, 3, 4)
    >>> unfold(x, 0).shape
    (2, 12)
    """
    x = as_tensor(tensor, min_order=1, name="tensor")
    m = check_mode(mode, x.ndim)
    am = array_module_of(x)
    if am.is_numpy:
        return np.reshape(np.moveaxis(x, m, 0), (x.shape[m], -1), order="F")
    return am.reshape(am.moveaxis(x, m, 0), (int(x.shape[m]), -1), order="F")


def fold(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Invert :func:`unfold`: rebuild a tensor of ``shape`` from a matricization.

    Parameters
    ----------
    matrix:
        Mode-``mode`` unfolding with ``shape[mode]`` rows.
    mode:
        The mode that occupies the rows of ``matrix``.
    shape:
        Full shape of the target tensor.

    Returns
    -------
    numpy.ndarray
        Tensor of the requested shape.

    Raises
    ------
    repro.exceptions.ShapeError
        If the matrix size is inconsistent with ``shape``.
    """
    from ..exceptions import ShapeError

    am = array_module_of(matrix)
    mat = np.asarray(matrix) if am.is_numpy else matrix
    full_shape = tuple(int(s) for s in shape)
    m = check_mode(mode, len(full_shape))
    expected = (full_shape[m], int(np.prod(full_shape)) // full_shape[m])
    if tuple(mat.shape) != expected:
        raise ShapeError(
            f"matrix shape {tuple(mat.shape)} inconsistent with fold target "
            f"{full_shape} at mode {m} (expected {expected})"
        )
    moved = full_shape[m : m + 1] + full_shape[:m] + full_shape[m + 1 :]
    if am.is_numpy:
        return np.moveaxis(mat.reshape(moved, order="F"), 0, m)
    return am.moveaxis(am.reshape(mat, moved, order="F"), 0, m)


def unfolding_shape(shape: Sequence[int], mode: int) -> tuple[int, int]:
    """Shape of the mode-``mode`` unfolding of a tensor with ``shape``.

    Useful for sizing buffers without materialising the unfolding.
    """
    full_shape = tuple(int(s) for s in shape)
    m = check_mode(mode, len(full_shape))
    return full_shape[m], int(np.prod(full_shape)) // full_shape[m]


def vectorize(tensor: np.ndarray) -> np.ndarray:
    """Flatten a tensor to a vector in Fortran order (mode 1 fastest)."""
    am = array_module_of(tensor)
    if am.is_numpy:
        return np.asarray(tensor).reshape(-1, order="F")
    return am.reshape(tensor, (-1,), order="F")


def tensorize(vector: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Invert :func:`vectorize` for the given target ``shape``."""
    from ..exceptions import ShapeError

    am = array_module_of(vector)
    full_shape = tuple(int(s) for s in shape)
    if am.is_numpy:
        v = np.asarray(vector).ravel()
        if v.size != int(np.prod(full_shape)):
            raise ShapeError(
                f"vector of size {v.size} cannot be reshaped to {full_shape}"
            )
        return v.reshape(full_shape, order="F")
    v = am.reshape(vector, (-1,))
    if int(v.shape[0]) != int(np.prod(full_shape)):
        raise ShapeError(
            f"vector of size {int(v.shape[0])} cannot be reshaped to {full_shape}"
        )
    return am.reshape(v, full_shape, order="F")
