"""Slice-matrix views of a dense tensor.

D-Tucker's approximation phase views an order-``N`` tensor
``X ∈ R^{I1×…×IN}`` as ``L = I3·…·IN`` *slice matrices* ``X_l ∈ R^{I1×I2}``:
the first two modes span each slice, all remaining modes are flattened into
the slice index ``l`` (mode 3 fastest, matching the Fortran ordering of the
library-wide unfolding convention).

Two identities make this layout useful (both verified by the test suite):

* ``unfold(X, 0) == hstack([X_1, …, X_L])``
* ``unfold(X, 1) == hstack([X_1.T, …, X_L.T])``

so the mode-1/mode-2 unfoldings of the whole tensor decompose into per-slice
blocks, and any per-slice SVD immediately factors those unfoldings.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ShapeError
from ..validation import as_tensor

__all__ = [
    "slice_count",
    "to_slices",
    "from_slices",
    "iter_slices",
    "slice_index_to_multi",
    "multi_to_slice_index",
]


def slice_count(shape: Sequence[int]) -> int:
    """Number of ``I1×I2`` slices of a tensor with the given ``shape``.

    For order-2 tensors there is exactly one slice (the matrix itself).
    """
    full_shape = tuple(int(s) for s in shape)
    if len(full_shape) < 2:
        raise ShapeError(f"slices require order >= 2, got shape {full_shape}")
    return int(np.prod(full_shape[2:], dtype=np.int64)) if len(full_shape) > 2 else 1


def to_slices(tensor: np.ndarray) -> np.ndarray:
    """Reshape ``tensor`` to a slice stack of shape ``(I1, I2, L)``.

    The result is a view whenever the input is Fortran-compatible along the
    trailing modes; otherwise NumPy copies.

    Parameters
    ----------
    tensor:
        Order-``N >= 2`` array.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(I1, I2, L)`` whose ``[:, :, l]`` is slice ``l``.
    """
    x = as_tensor(tensor, min_order=2, name="tensor")
    i1, i2 = x.shape[:2]
    return x.reshape((i1, i2, -1), order="F")


def from_slices(slices: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Invert :func:`to_slices` for a tensor of the given full ``shape``."""
    s = as_tensor(slices, min_order=2, name="slices")
    full_shape = tuple(int(d) for d in shape)
    if len(full_shape) < 2:
        raise ShapeError(f"target shape must have order >= 2, got {full_shape}")
    expected = (full_shape[0], full_shape[1], slice_count(full_shape))
    stacked = s if s.ndim == 3 else s.reshape(s.shape + (1,))
    if stacked.shape != expected:
        raise ShapeError(
            f"slice stack shape {stacked.shape} inconsistent with target "
            f"{full_shape} (expected {expected})"
        )
    return stacked.reshape(full_shape, order="F")


def iter_slices(tensor: np.ndarray) -> Iterator[np.ndarray]:
    """Yield the ``L`` slice matrices of ``tensor`` in slice-index order."""
    stack = to_slices(tensor)
    for l in range(stack.shape[2]):
        yield stack[:, :, l]


def slice_index_to_multi(l: int, shape: Sequence[int]) -> tuple[int, ...]:
    """Map a flat slice index to the multi-index over modes ``3..N``.

    Parameters
    ----------
    l:
        Flat slice index in ``[0, L)``.
    shape:
        Full tensor shape.

    Returns
    -------
    tuple of int
        Indices ``(i_3, ..., i_N)``; empty for order-2 tensors.
    """
    full_shape = tuple(int(s) for s in shape)
    count = slice_count(full_shape)
    if not 0 <= l < count:
        raise ShapeError(f"slice index {l} out of range [0, {count})")
    trailing = full_shape[2:]
    if not trailing:
        return ()
    return tuple(int(i) for i in np.unravel_index(l, trailing, order="F"))


def multi_to_slice_index(multi: Sequence[int], shape: Sequence[int]) -> int:
    """Inverse of :func:`slice_index_to_multi`."""
    full_shape = tuple(int(s) for s in shape)
    trailing = full_shape[2:]
    if len(multi) != len(trailing):
        raise ShapeError(
            f"multi-index {tuple(multi)} must have {len(trailing)} entries"
        )
    if not trailing:
        return 0
    return int(np.ravel_multi_index(tuple(int(i) for i in multi), trailing, order="F"))
