"""Tensor-matrix products and structured matrix products.

The workhorses are :func:`mode_product` (TTM — tensor-times-matrix along one
mode) and :func:`multi_mode_product` (a TTM chain), plus the Kronecker and
Khatri-Rao helpers whose ordering matches the unfolding convention of
:mod:`repro.tensor.unfold`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..engine.array_api import array_module_of
from ..exceptions import ShapeError
from ..validation import as_tensor, check_matrix, check_mode
__all__ = [
    "mode_product",
    "multi_mode_product",
    "kron_all",
    "kron_secondary",
    "khatri_rao",
    "tucker_to_tensor",
    "gram",
]


def mode_product(
    tensor: np.ndarray,
    matrix: np.ndarray,
    mode: int,
    *,
    transpose: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the ``mode``-mode (TTM) product ``tensor ×_mode matrix``.

    Parameters
    ----------
    tensor:
        Order-``N`` input with shape ``(I_1, ..., I_N)``.
    matrix:
        Matrix of shape ``(R, I_mode)``; with ``transpose=True`` a matrix of
        shape ``(I_mode, R)`` whose transpose is applied (this avoids an
        explicit copy of the transposed matrix at call sites).
    mode:
        Mode along which to multiply.
    transpose:
        Apply ``matrix.T`` instead of ``matrix``.
    out:
        Optional preallocated C-contiguous float64 scratch of shape
        ``(R, I_1, …, I_{mode-1}, I_{mode+1}, …)`` — the contracted mode's
        replacement leading, every other mode in order.  The product is
        written into it via an ``out=`` GEMM (bit-identical to the
        allocating path, which runs the same BLAS call) and the returned
        tensor is a view into ``out``.

    Returns
    -------
    numpy.ndarray
        Tensor of shape ``(I_1, ..., R, ..., I_N)`` with ``R`` at ``mode``.

    Raises
    ------
    ShapeError
        If the matrix column count does not match the mode dimensionality.
    """
    x = as_tensor(tensor, min_order=1, name="tensor")
    a = check_matrix(matrix, name="matrix")
    m = check_mode(mode, x.ndim)
    am = array_module_of(x, a)
    if am.is_numpy:
        op = a.T if transpose else a
        if op.shape[1] != x.shape[m]:
            raise ShapeError(
                f"matrix with {op.shape[1]} columns cannot multiply mode {m} of "
                f"dimensionality {x.shape[m]}"
            )
        # Move the contracted mode to the front, contract, move the result back.
        moved = np.moveaxis(x, m, 0)
        if out is None:
            res = np.tensordot(op, moved, axes=(1, 0))
        else:
            # Same 2-D GEMM tensordot performs internally, targeted at `out`.
            from ..engine.blas import gemm_into

            expected = (op.shape[0],) + moved.shape[1:]
            if out.shape != expected:
                raise ShapeError(
                    f"out buffer shape {out.shape} does not match result shape "
                    f"{expected}"
                )
            flat = moved.reshape(x.shape[m], -1)
            res = gemm_into(op, flat, out.reshape(op.shape[0], -1)).reshape(expected)
        return np.moveaxis(res, 0, m)
    op = am.mT(a) if transpose else a
    if int(op.shape[1]) != int(x.shape[m]):
        raise ShapeError(
            f"matrix with {int(op.shape[1])} columns cannot multiply mode {m} of "
            f"dimensionality {int(x.shape[m])}"
        )
    moved = am.moveaxis(x, m, 0)
    rows = int(op.shape[0])
    expected = (rows,) + tuple(int(d) for d in moved.shape[1:])
    if out is None:
        res = am.tensordot(op, moved, axes=(1, 0))
    else:
        if tuple(out.shape) != expected:
            raise ShapeError(
                f"out buffer shape {tuple(out.shape)} does not match result "
                f"shape {expected}"
            )
        flat = am.reshape(moved, (int(x.shape[m]), -1))
        res = am.reshape(
            am.gemm_into(op, flat, am.reshape(out, (rows, -1))), expected
        )
    return am.moveaxis(res, 0, m)


def multi_mode_product(
    tensor: np.ndarray,
    matrices: Sequence[np.ndarray],
    modes: Sequence[int] | None = None,
    *,
    skip: int | None = None,
    transpose: bool = False,
) -> np.ndarray:
    """Apply a chain of TTM products, smallest-output-first.

    Parameters
    ----------
    tensor:
        Order-``N`` input.
    matrices:
        One matrix per entry of ``modes`` (or one per mode when ``modes`` is
        ``None``, in which case ``matrices`` must have length ``N``).
    modes:
        Modes to contract; defaults to ``range(N)``.
    skip:
        Optional mode to leave untouched (its matrix, if present in
        ``matrices`` indexed by mode, is ignored).  Only meaningful when
        ``modes`` is ``None``; this mirrors the classic HOOI update where
        every factor but one is applied.
    transpose:
        Apply each matrix transposed (the typical projection direction).

    Returns
    -------
    numpy.ndarray
        The fully contracted tensor.

    Notes
    -----
    The contraction order is chosen greedily: at each step the mode whose
    contraction shrinks the *current* intermediate the most is applied
    first.  For projections (tall matrices applied transposed) this is the
    standard trick that keeps TTM-chain intermediates small.  Orders are
    memoized per shape signature by :mod:`repro.kernels.planner`, so
    repeated chains (one per mode per ALS sweep) skip the planning work.
    """
    x = as_tensor(tensor, min_order=1, name="tensor")
    if modes is None:
        mode_list = [m for m in range(x.ndim) if m != skip]
        if len(matrices) == x.ndim:
            mats = [matrices[m] for m in mode_list]
        elif len(matrices) == len(mode_list):
            mats = list(matrices)
        else:
            raise ShapeError(
                f"expected {x.ndim} or {len(mode_list)} matrices, got {len(matrices)}"
            )
    else:
        if skip is not None:
            raise ShapeError("skip is only supported when modes is None")
        mode_list = [check_mode(m, x.ndim) for m in modes]
        if len(set(mode_list)) != len(mode_list):
            raise ShapeError(f"modes must be distinct, got {list(modes)}")
        if len(matrices) != len(mode_list):
            raise ShapeError(
                f"got {len(matrices)} matrices for {len(mode_list)} modes"
            )
        mats = list(matrices)

    # Greedy ordering against the evolving intermediate, memoized on the
    # shape signature.  Imported lazily: the planner is dependency-free but
    # lives in the kernels package, which imports this module at load time.
    from ..kernels.planner import plan_ttm_chain

    order = plan_ttm_chain(
        tuple(int(d) for d in x.shape),
        tuple(tuple(int(d) for d in m.shape) for m in mats),
        tuple(mode_list),
        transpose,
    )
    out = x
    for idx in order:
        out = mode_product(out, mats[idx], mode_list[idx], transpose=transpose)
    return out


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of ``matrices`` in the given (left-to-right) order."""
    mats = [check_matrix(m, name="matrices[i]") for m in matrices]
    if not mats:
        raise ShapeError("kron_all requires at least one matrix")
    am = array_module_of(*mats)
    out = mats[0]
    for m in mats[1:]:
        out = np.kron(out, m) if am.is_numpy else am.kron(out, m)
    return out


def kron_secondary(matrices: Sequence[np.ndarray], skip: int) -> np.ndarray:
    """Kronecker product ``A(N) ⊗ ... ⊗ A(skip+1) ⊗ A(skip-1) ⊗ ... ⊗ A(1)``.

    This descending-mode ordering is the one that pairs with the Kolda
    unfolding used throughout the library (see :mod:`repro.tensor.unfold`).

    Parameters
    ----------
    matrices:
        One matrix per mode (the entry at ``skip`` is ignored).
    skip:
        Mode excluded from the product.
    """
    m = check_mode(skip, len(matrices), name="skip")
    selected = [matrices[k] for k in range(len(matrices) - 1, -1, -1) if k != m]
    return kron_all(selected)


def khatri_rao(matrices: Sequence[np.ndarray], *, reverse: bool = False) -> np.ndarray:
    """Column-wise Khatri-Rao product of matrices sharing a column count.

    Parameters
    ----------
    matrices:
        Matrices ``(I_k, R)`` with a common ``R``.
    reverse:
        Multiply in reversed order (descending mode), matching the CP/ALS
        normal-equation convention for Kolda unfoldings.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(prod I_k, R)``.
    """
    mats = [check_matrix(m, name="matrices[i]") for m in matrices]
    if not mats:
        raise ShapeError("khatri_rao requires at least one matrix")
    cols = {m.shape[1] for m in mats}
    if len(cols) != 1:
        raise ShapeError(f"khatri_rao inputs must share a column count, got {cols}")
    if reverse:
        mats = mats[::-1]
    am = array_module_of(*mats)
    out = mats[0]
    for m in mats[1:]:
        # (a ⊙ b)[:, r] = kron(a[:, r], b[:, r]); einsum keeps it allocation-lean.
        if am.is_numpy:
            out = np.einsum("ir,jr->ijr", out, m).reshape(-1, out.shape[1])
        else:
            out = am.reshape(
                am.einsum("ir,jr->ijr", out, m), (-1, int(out.shape[1]))
            )
    return out


def tucker_to_tensor(core: np.ndarray, factors: Sequence[np.ndarray]) -> np.ndarray:
    """Reconstruct the full tensor ``core ×_1 factors[0] ... ×_N factors[N-1]``.

    Parameters
    ----------
    core:
        Core tensor of shape ``(J_1, ..., J_N)``.
    factors:
        Factor matrices ``(I_n, J_n)``, one per mode.

    Returns
    -------
    numpy.ndarray
        Dense tensor of shape ``(I_1, ..., I_N)``.
    """
    g = as_tensor(core, min_order=1, name="core")
    if len(factors) != g.ndim:
        raise ShapeError(
            f"core of order {g.ndim} needs {g.ndim} factors, got {len(factors)}"
        )
    out = g
    for n, a in enumerate(factors):
        out = mode_product(out, a, n)
    return out


def gram(matrix: np.ndarray) -> np.ndarray:
    """Return the Gram matrix ``matrix.T @ matrix`` (symmetrised)."""
    a = check_matrix(matrix, name="matrix")
    am = array_module_of(a)
    if am.is_numpy:
        g = a.T @ a
        return (g + g.T) / 2.0
    g = am.matmul(am.mT(a), a)
    return (g + am.mT(g)) / 2.0
