"""Random tensors and random Tucker models used by tests and datasets.

All randomness in the library flows through :func:`default_rng` so that every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..validation import check_positive_int, check_ranks
from .products import tucker_to_tensor

__all__ = [
    "default_rng",
    "random_orthonormal",
    "random_tucker",
    "random_tensor",
]


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged, which lets helper
    functions thread one RNG through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_orthonormal(
    rows: int, cols: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample a ``rows × cols`` matrix with orthonormal columns.

    Drawn as the Q factor of a Gaussian matrix, i.e. Haar-distributed on the
    Stiefel manifold.  Requires ``cols <= rows``.
    """
    r = check_positive_int(rows, name="rows")
    c = check_positive_int(cols, name="cols")
    if c > r:
        from ..exceptions import RankError

        raise RankError(f"cannot build {r}x{c} orthonormal columns (cols > rows)")
    gen = default_rng(rng)
    q, _ = np.linalg.qr(gen.standard_normal((r, c)))
    return q


def random_tucker(
    shape: Sequence[int],
    ranks: int | Sequence[int],
    rng: int | np.random.Generator | None = None,
    *,
    core_scale: float = 1.0,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sample a random Tucker model ``(core, factors)``.

    Factors are orthonormal; the core is i.i.d. Gaussian scaled by
    ``core_scale``.

    Returns
    -------
    tuple
        ``(core, factors)`` with ``core.shape == ranks`` and
        ``factors[n].shape == (shape[n], ranks[n])``.
    """
    dims = tuple(int(s) for s in shape)
    rank_tuple = check_ranks(ranks, dims)
    gen = default_rng(rng)
    core = core_scale * gen.standard_normal(rank_tuple)
    factors = [random_orthonormal(i, j, gen) for i, j in zip(dims, rank_tuple)]
    return core, factors


def random_tensor(
    shape: Sequence[int],
    ranks: int | Sequence[int],
    rng: int | np.random.Generator | None = None,
    *,
    noise: float = 0.0,
) -> np.ndarray:
    """Sample a dense tensor with exact Tucker rank ``ranks`` plus noise.

    Parameters
    ----------
    shape:
        Tensor shape.
    ranks:
        Tucker ranks of the noiseless part.
    noise:
        Standard deviation of additive i.i.d. Gaussian noise *relative* to
        the RMS magnitude of the noiseless tensor (``0`` = exact low rank).

    Returns
    -------
    numpy.ndarray
        The noisy tensor.
    """
    gen = default_rng(rng)
    core, factors = random_tucker(shape, ranks, gen)
    x = tucker_to_tensor(core, factors)
    if noise > 0.0:
        rms = float(np.sqrt(np.mean(x**2)))
        x = x + gen.standard_normal(x.shape) * (noise * rms)
    return x
