"""Dense tensor algebra substrate.

This subpackage implements, from scratch, every tensor primitive the library
needs: Kolda-convention matricization, TTM products, Kronecker/Khatri-Rao
helpers, Frobenius metrics, slice-matrix views, and random tensor models.
"""

from .norms import (
    core_based_error,
    fit_score,
    frobenius_norm,
    frobenius_norm_squared,
    reconstruction_error,
    relative_error,
)
from .products import (
    gram,
    khatri_rao,
    kron_all,
    kron_secondary,
    mode_product,
    multi_mode_product,
    tucker_to_tensor,
)
from .random import default_rng, random_orthonormal, random_tensor, random_tucker
from .slices import (
    from_slices,
    iter_slices,
    multi_to_slice_index,
    slice_count,
    slice_index_to_multi,
    to_slices,
)
from .unfold import fold, tensorize, unfold, unfolding_shape, vectorize

__all__ = [
    "core_based_error",
    "fit_score",
    "frobenius_norm",
    "frobenius_norm_squared",
    "reconstruction_error",
    "relative_error",
    "gram",
    "khatri_rao",
    "kron_all",
    "kron_secondary",
    "mode_product",
    "multi_mode_product",
    "tucker_to_tensor",
    "default_rng",
    "random_orthonormal",
    "random_tensor",
    "random_tucker",
    "from_slices",
    "iter_slices",
    "multi_to_slice_index",
    "slice_count",
    "slice_index_to_multi",
    "to_slices",
    "fold",
    "tensorize",
    "unfold",
    "unfolding_shape",
    "vectorize",
]
