"""D-Tucker: fast and memory-efficient Tucker decomposition for dense tensors.

A from-scratch Python reproduction of Jang & Kang, *D-Tucker* (ICDE 2020):
the three-phase solver (:class:`DTucker`), its reusable compressed slice
representation (:class:`SliceSVD`), a streaming extension
(:class:`StreamingDTucker`), six baseline Tucker solvers, dataset
simulators, and the full experiment harness regenerating the paper's
evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import DTucker
>>> x = np.random.default_rng(0).standard_normal((60, 50, 40))
>>> model = DTucker(ranks=(5, 5, 5), seed=0).fit(x)
>>> model.result_.ranks
(5, 5, 5)

See ``examples/`` for realistic scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from .baselines import (
    BaselineFit,
    hosvd,
    mach_tucker,
    rtd,
    st_hosvd,
    tucker_als,
    tucker_ts,
    tucker_ttmts,
)
from .core import (
    BlockSource,
    DenseSource,
    DTucker,
    DTuckerConfig,
    FitLike,
    FitPipeline,
    NpySource,
    PipelineFit,
    SliceSource,
    SliceSVD,
    SparseSource,
    StreamingDTucker,
    TuckerResult,
    als_sweeps,
    compress,
    compress_npy,
    compress_source,
    decompose,
    estimate_error,
    initialize,
    suggest_ranks,
)
from .engine import (
    ExecutionBackend,
    PhaseTrace,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    format_traces,
)
from .analysis import (
    AnomalyReport,
    detect_anomalies,
    factor_cosine_similarity,
    nearest_neighbors,
    residual_scores,
)
from .core.sparse_dtucker import compress_sparse, sparse_dtucker
from .diagnostics import TuckerDiagnostics, check_tucker
from .distributed import ShardCoordinator, ShardedSource, distributed_als_sweeps
from .io import load_slice_svd, load_tucker, save_slice_svd, save_tucker
from .sparse import SparseTensor
from .store import ModelStore, RangeIndex, ServedModel, ServingStats
from .exceptions import (
    BackendError,
    ConvergenceError,
    DatasetError,
    NotFittedError,
    RankError,
    ReproError,
    ShapeError,
    StoreError,
    StoreFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "BaselineFit",
    "hosvd",
    "mach_tucker",
    "rtd",
    "st_hosvd",
    "tucker_als",
    "tucker_ts",
    "tucker_ttmts",
    "DTucker",
    "DTuckerConfig",
    "FitLike",
    "ExecutionBackend",
    "PhaseTrace",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "format_traces",
    "SliceSVD",
    "SliceSource",
    "DenseSource",
    "NpySource",
    "SparseSource",
    "BlockSource",
    "ShardedSource",
    "ShardCoordinator",
    "distributed_als_sweeps",
    "FitPipeline",
    "PipelineFit",
    "StreamingDTucker",
    "TuckerResult",
    "als_sweeps",
    "compress",
    "compress_npy",
    "compress_source",
    "decompose",
    "estimate_error",
    "initialize",
    "suggest_ranks",
    "load_slice_svd",
    "load_tucker",
    "save_slice_svd",
    "save_tucker",
    "ModelStore",
    "RangeIndex",
    "ServedModel",
    "ServingStats",
    "SparseTensor",
    "compress_sparse",
    "sparse_dtucker",
    "AnomalyReport",
    "detect_anomalies",
    "factor_cosine_similarity",
    "nearest_neighbors",
    "residual_scores",
    "TuckerDiagnostics",
    "check_tucker",
    "BackendError",
    "ConvergenceError",
    "DatasetError",
    "NotFittedError",
    "RankError",
    "ReproError",
    "ShapeError",
    "StoreError",
    "StoreFormatError",
    "__version__",
]
