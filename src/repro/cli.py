"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``datasets``
    List the registered dataset simulators and their shapes per scale.
``generate``
    Materialise a dataset to a ``.npy`` file.
``decompose``
    Tucker-decompose a ``.npy`` tensor with any registered method; print
    timings/error and optionally save the result and (for D-Tucker) the
    reusable compressed representation.
``compare``
    Run several methods on one tensor and print the comparison table.
``suggest-ranks``
    Compress a tensor and report the ranks meeting a target error.
``fit``
    Fit D-Tucker and persist the model as a store directory
    (``manifest.json`` + memory-mappable payloads); ``--index`` also
    persists the dyadic range index for accelerated range queries.
``query``
    Answer reconstruction and time-range queries from a saved store —
    no tensor access, no re-compression.  ``--ranges A:B,C:D,...`` batches
    several time-range queries through one shared-index reader pool.
``index``
    Build (or drop) a store's persisted dyadic range index.
``inspect``
    Report a store's manifest: geometry, ranks, sizes, fit history,
    range-index payload.

All commands are plain functions over validated arguments so they are unit
testable without subprocesses; ``main`` only does argument parsing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

__all__ = ["main"]


def _parse_ranks(text: str) -> tuple[int, ...] | int:
    parts = [p for p in text.replace(" ", "").split(",") if p]
    values = tuple(int(p) for p in parts)
    return values[0] if len(values) == 1 else values


def _config_from_args(args: argparse.Namespace) -> "object":
    """Build the :class:`DTuckerConfig` shared by every solver command."""
    from .core.config import DTuckerConfig

    return DTuckerConfig(
        seed=getattr(args, "seed", None),
        backend=getattr(args, "backend", None) or "auto",
        n_workers=getattr(args, "workers", None),
        chunk_size=getattr(args, "chunk_size", None),
        schedule=getattr(args, "schedule", None) or "auto",
        strategy=getattr(args, "strategy", None) or "rsvd",
        precision=getattr(args, "precision", None) or "float64",
        device=getattr(args, "device", None) or "auto",
        shards=getattr(args, "shards", None),
    )


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default=None,
        help="execution backend (default: auto — REPRO_BACKEND env, else serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker count for parallel backends"
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, help="slices per engine task"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "partition the input into this many contiguous temporal shards; "
            "compression then runs shard-local on the process backend and "
            "only small factor products cross shard boundaries (see "
            "docs/distributed.md). Results are identical to the unsharded "
            "fit."
        ),
    )
    parser.add_argument(
        "--schedule",
        choices=("auto", "static", "dynamic"),
        default=None,
        help=(
            "chunk scheduling policy (default: auto — dynamic work-stealing "
            "queue when it can help, else static; REPRO_SCHEDULE env "
            "overrides auto). Results are identical either way."
        ),
    )
    parser.add_argument(
        "--device",
        choices=(
            "auto",
            "cpu",
            "cuda",
            "numpy",
            "torch",
            "torch-cuda",
            "cupy",
            "array-api-strict",
        ),
        default=None,
        help=(
            "array namespace / device for the compute kernels (default: "
            "auto — REPRO_DEVICE env, else cpu). 'cuda' picks the first "
            "available GPU namespace; 'torch'/'cupy' name one explicitly."
        ),
    )


def _add_planner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=("rsvd", "auto", "gram", "exact"),
        default=None,
        help=(
            "slice-SVD algorithm for the approximation phase "
            "(default: rsvd — the historical dispatch; auto selects per "
            "input from a cost model)"
        ),
    )
    parser.add_argument(
        "--precision",
        choices=("float64", "float32"),
        default=None,
        help=(
            "compute dtype of the approximation phase (float32 halves "
            "memory traffic; norms still accumulate in float64)"
        ),
    )


def _load_tensor(path: str) -> np.ndarray:
    """Load a tensor from ``.npy`` or from ``dataset:<name>[:<scale>]``."""
    if path.startswith("dataset:"):
        from .datasets import load_dataset

        _, name, *rest = path.split(":")
        scale = rest[0] if rest else "small"
        return load_dataset(name, scale, seed=0).tensor
    return np.load(Path(path), allow_pickle=False)


def cmd_datasets(_: argparse.Namespace) -> int:
    from .datasets import list_datasets
    from .datasets.registry import get_spec
    from .experiments.report import format_table

    rows = []
    for name in list_datasets():
        spec = get_spec(name)
        for scale, shape in spec.shapes.items():
            rows.append([name, scale, "x".join(map(str, shape)), spec.description])
    print(format_table(["dataset", "scale", "shape", "stands in for"], rows))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from .datasets import load_dataset

    data = load_dataset(args.name, args.scale, seed=args.seed)
    out = Path(args.output)
    np.save(out, data.tensor)
    print(
        f"wrote {data.name} ({args.scale}) shape={data.shape} "
        f"ranks={data.ranks} -> {out}"
    )
    return 0


def cmd_decompose(args: argparse.Namespace) -> int:
    from .experiments.harness import METHOD_NAMES, run_method

    if args.method not in METHOD_NAMES:
        print(
            f"unknown method {args.method!r}; choose from {', '.join(METHOD_NAMES)}",
            file=sys.stderr,
        )
        return 2
    x = _load_tensor(args.tensor)
    ranks = _parse_ranks(args.ranks)
    cfg = _config_from_args(args)

    if args.trace and args.method != "dtucker":
        print(
            "note: --trace is recorded by the dtucker engine only",
            file=sys.stderr,
        )
    if args.method == "dtucker" and (args.output or args.save_compressed or args.trace):
        # Run through the estimator directly so artifacts (and the engine
        # trace) can be surfaced.
        from .core.dtucker import DTucker
        from .engine import format_traces
        from .store import write_slice_svd_archive, write_tucker_archive

        model = DTucker(ranks, config=cfg).fit(x)
        print(f"method=dtucker shape={x.shape} ranks={model.result_.ranks}")
        print(f"timings: {model.timings_.summary()}")
        print(f"error  : {model.result_.error(x):.6f}")
        if args.trace:
            print(format_traces(model.trace_))
            if model.kernel_stats_ is not None:
                print(model.kernel_stats_.summary())
                decisions = model.kernel_stats_.plan_decisions()
                if decisions:
                    picks = " ".join(
                        f"{m}={n}" for m, n in sorted(decisions.items())
                    )
                    print(
                        f"planner: {picks} "
                        f"sketch_draws={model.kernel_stats_.sketch_draws}"
                    )
        if args.output:
            print(f"result -> {write_tucker_archive(model.result_, args.output)}")
        if args.save_compressed:
            print(
                f"compressed slices -> "
                f"{write_slice_svd_archive(model.slice_svd_, args.save_compressed)}"
            )
        return 0

    record = run_method(args.method, x, ranks, seed=args.seed, config=cfg)
    print(f"method={record.method} shape={record.shape} ranks={record.ranks}")
    phases = " ".join(f"{k}={v:.4f}s" for k, v in record.phases.items())
    print(f"timings: {phases} total={record.total_seconds:.4f}s")
    print(f"error  : {record.error:.6f}")
    print(f"stored : {record.stored_nbytes} bytes")
    if args.output:
        # The harness result is not retained; saving via a direct method
        # call would duplicate work, so reject politely.
        print(
            "--output is only supported with --method dtucker", file=sys.stderr
        )
        return 2
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .experiments.harness import METHOD_NAMES, run_method
    from .experiments.report import format_records

    methods = (
        list(METHOD_NAMES)
        if args.methods == "all"
        else [m for m in args.methods.split(",") if m]
    )
    unknown = [m for m in methods if m not in METHOD_NAMES]
    if unknown:
        print(
            f"unknown methods {unknown}; choose from {', '.join(METHOD_NAMES)}",
            file=sys.stderr,
        )
        return 2
    x = _load_tensor(args.tensor)
    ranks = _parse_ranks(args.ranks)
    cfg = _config_from_args(args)
    records = [
        run_method(m, x, ranks, dataset=args.tensor, seed=args.seed, config=cfg)
        for m in methods
    ]
    print(format_records(records))
    return 0


def cmd_compress(args: argparse.Namespace) -> int:
    from .core.sources import NpySource, compress_source
    from .engine import format_traces, resolve_backend
    from .kernels.stats import KernelStats
    from .store import write_slice_svd_archive

    from dataclasses import replace

    cfg = replace(
        _config_from_args(args),
        oversampling=args.oversampling,
        power_iterations=args.power_iterations,
    )
    stats = KernelStats()
    eng = resolve_backend(config=cfg)
    try:
        ssvd = compress_source(
            NpySource(args.tensor),
            args.rank,
            batch_slices=args.batch_slices,
            config=cfg,
            engine=eng,
            rng=args.seed,
            stats=stats,
        )
        traces = list(eng.traces)
    finally:
        eng.close()
    path = write_slice_svd_archive(ssvd, args.output)
    dense = int(np.prod(ssvd.shape, dtype=np.int64)) * 8
    print(f"shape       : {ssvd.shape} ({ssvd.num_slices} slices)")
    print(f"slice rank  : {ssvd.rank}")
    print(
        f"compressed  : {ssvd.nbytes} bytes "
        f"({dense / ssvd.nbytes:.1f}x smaller than dense float64)"
    )
    print(f"archive     : {path}")
    if args.trace:
        print(format_traces(traces))
        decisions = stats.plan_decisions()
        picks = " ".join(f"{m}={n}" for m, n in sorted(decisions.items()))
        print(f"planner     : {picks or '-'} sketch_draws={stats.sketch_draws}")
    return 0


def cmd_suggest_ranks(args: argparse.Namespace) -> int:
    from .core.rank_selection import estimate_error, suggest_ranks
    from .core.slice_svd import compress

    if str(args.tensor).endswith(".npz"):
        # A previously saved SliceSVD archive: no tensor access at all.
        from .store import read_slice_svd_archive

        ssvd = read_slice_svd_archive(args.tensor)
        shape = ssvd.shape
    else:
        x = _load_tensor(args.tensor)
        k = args.slice_rank or max(2, min(x.shape[0], x.shape[1], 32))
        ssvd = compress(x, min(k, min(x.shape[:2])), rng=args.seed)
        shape = x.shape
    ranks = suggest_ranks(ssvd, args.target_error, max_rank=args.max_rank)
    estimated = estimate_error(ssvd, ranks)
    print(f"shape         : {shape}")
    print(f"target error  : {args.target_error}")
    print(f"suggested     : {ranks}")
    print(f"estimated err : {estimated:.6f} (HOSVD-style upper bound)")
    return 0


def _parse_index_ranges(
    text: str, order: int
) -> "list[tuple[int, int] | None]":
    """Parse ``"0:5,:,2:4"`` into per-mode ranges (``:`` = full extent)."""
    from .exceptions import StoreError

    parts = text.split(",")
    if len(parts) != order:
        raise StoreError(
            f"--block needs {order} comma-separated ranges (one per mode), "
            f"got {len(parts)}"
        )
    ranges: "list[tuple[int, int] | None]" = []
    for part in parts:
        p = part.strip()
        if p in ("", ":"):
            ranges.append(None)
            continue
        try:
            lo, hi = p.split(":")
            ranges.append((int(lo), int(hi)))
        except ValueError:
            raise StoreError(
                f"bad range {part!r}: expected start:stop or ':'"
            ) from None
    return ranges


def _parse_time_ranges(text: str) -> "list[tuple[int, int]]":
    """Parse ``"0:24,96:144,..."`` into ``(t0, t1)`` timestep ranges."""
    from .exceptions import StoreError

    ranges: "list[tuple[int, int]]" = []
    for part in text.split(","):
        p = part.strip()
        if not p:
            continue
        try:
            lo, hi = p.split(":")
            ranges.append((int(lo), int(hi)))
        except ValueError:
            raise StoreError(
                f"bad time range {part!r}: expected T0:T1"
            ) from None
    if not ranges:
        raise StoreError("--ranges needs at least one T0:T1 range")
    return ranges


def cmd_fit(args: argparse.Namespace) -> int:
    from .core.dtucker import DTucker

    x = _load_tensor(args.tensor)
    ranks = _parse_ranks(args.ranks)
    cfg = _config_from_args(args)
    model = DTucker(ranks, slice_rank=args.slice_rank, config=cfg).fit(x)
    print(f"fitted shape={x.shape} ranks={model.result_.ranks}")
    print(f"timings: {model.timings_.summary()}")
    print(f"error  : {model.result_.error(x):.6f}")
    if args.save:
        store = model.save(args.save, overwrite=args.overwrite)
        print(f"store  : {store.path} ({store.nbytes} bytes, "
              f"{store.compression_ratio:.2f}x vs dense)")
        if args.index:
            index = store.build_index()
            print(
                f"index  : {index.n_nodes} nodes "
                f"(min_span {index.min_span}, {index.nbytes} bytes)"
            )
    elif args.index:
        print("--index requires --save", file=sys.stderr)
        return 2
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from .store import ModelStore, write_tucker_archive

    chosen = [
        v for v in (args.time_range, args.ranges, args.block) if v is not None
    ]
    if len(chosen) != 1:
        print(
            "error: pass exactly one of --time-range T0:T1, "
            "--ranges A:B,C:D,... or --block",
            file=sys.stderr,
        )
        return 2
    store = ModelStore(args.store)
    with store.open() as served:
        if args.time_range is not None:
            try:
                t0, t1 = (int(v) for v in args.time_range.split(":"))
            except ValueError:
                print(
                    f"error: bad --time-range {args.time_range!r}; "
                    "expected T0:T1",
                    file=sys.stderr,
                )
                return 2
            ranks = _parse_ranks(args.ranks) if args.ranks else None
            local = served.query_time_range(t0, t1, ranks=ranks)
            print(
                f"time range [{t0}, {t1}) -> local Tucker "
                f"ranks={local.ranks} of sub-tensor {local.shape}"
            )
            if args.output:
                print(f"result -> {write_tucker_archive(local, args.output)}")
        elif args.ranges is not None:
            ranges = _parse_time_ranges(args.ranges)
            ranks = _parse_ranks(args.ranks) if args.ranks else None
            answers = served.query_many(
                ranges, ranks=ranks, max_workers=args.readers
            )
            for (t0, t1), local in zip(ranges, answers):
                print(
                    f"time range [{t0}, {t1}) -> local Tucker "
                    f"ranks={local.ranks} of sub-tensor {local.shape}"
                )
            if args.output:
                print(
                    "--output is not supported with batched --ranges; "
                    "query ranges individually with --time-range",
                    file=sys.stderr,
                )
                return 2
        else:
            ranges = _parse_index_ranges(args.block, len(served.shape))
            block = served.reconstruct(ranges)
            print(f"reconstructed block shape={block.shape}")
            if args.output:
                out = Path(args.output)
                np.save(out, block)
                print(f"block -> {out}")
        print(f"serving: {served.stats.summary()}")
        print(
            f"cache  : hits={served.stats.cache_hits} "
            f"misses={served.stats.cache_misses} "
            f"warm_starts={served.stats.warm_starts}"
        )
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    from .store import ModelStore

    store = ModelStore(args.store)
    if args.drop:
        had = store.has_index
        store.drop_index()
        print(f"index dropped at {store.path}" if had else "no index to drop")
        return 0
    index = store.build_index(min_span=args.min_span)
    print(
        f"index  : {index.n_nodes} nodes over extent {index.extent} "
        f"(min_span {index.min_span}, {index.nbytes} bytes) -> "
        f"{store.path / 'index'}"
    )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from .store import ModelStore

    print(ModelStore(args.store).describe())
    return 0


def _stream_blocks(source: str) -> "list[Path]":
    """Resolve the ingest source: a directory of ``.npy`` blocks or ``-``.

    A directory yields its ``*.npy`` files in sorted (lexicographic) order;
    ``-`` reads one block path per line from stdin, in arrival order.
    """
    if source == "-":
        paths = [Path(line.strip()) for line in sys.stdin if line.strip()]
    else:
        root = Path(source)
        if not root.is_dir():
            raise SystemExit(f"error: {source} is not a directory (or '-')")
        paths = sorted(root.glob("*.npy"))
    if not paths:
        raise SystemExit(f"error: no .npy blocks found in {source}")
    return paths


def cmd_stream(args: argparse.Namespace) -> int:
    import time as _time

    from .core.streaming import StreamingDTucker

    cfg = _config_from_args(args)
    model = StreamingDTucker(
        _parse_ranks(args.ranks),
        slice_rank=args.slice_rank,
        sweeps_per_update=args.sweeps,
        config=cfg,
        update=args.update,
        window=args.window,
        decay=args.decay,
        drift_budget=args.drift_budget,
    )
    paths = _stream_blocks(args.blocks)
    print(f"streaming {len(paths)} blocks (update={model.update}"
          + (f", window={model.window}" if model.window else "")
          + (f", decay={model.decay}" if model.decay else "")
          + ")")
    for path in paths:
        block = np.load(path, allow_pickle=False)
        start = _time.perf_counter()
        model.partial_fit(block)
        elapsed = _time.perf_counter() - start
        line = (
            f"  {path.name}: +{block.shape[-1]} steps -> extent "
            f"{model.shape_[-1]} err={model.history_[-1]:.6f} "
            f"{elapsed * 1e3:.1f}ms"
        )
        if model.watchdog_triggers_:
            line += f" watchdog={model.watchdog_triggers_}"
        print(line)
    print(
        f"ingested {model.n_updates_} blocks, {model.t_seen_} steps total; "
        f"final err={model.history_[-1]:.6f}"
    )
    if model.update != "refit":
        stats = model.kernel_stats_
        print(
            "projection reuse: "
            f"{stats.hits_for('stream:proj')} cached rows, "
            f"{stats.misses_for('stream:proj')} computed"
        )
    if args.save:
        store = model.save(args.save, overwrite=args.overwrite)
        print(f"store  : {store.path} ({store.nbytes} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D-Tucker reproduction: Tucker decomposition tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset simulators").set_defaults(
        func=cmd_datasets
    )

    g = sub.add_parser("generate", help="write a dataset tensor to .npy")
    g.add_argument("name")
    g.add_argument("--scale", default="small")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("-o", "--output", required=True)
    g.set_defaults(func=cmd_generate)

    d = sub.add_parser("decompose", help="Tucker-decompose a .npy tensor")
    d.add_argument("tensor", help=".npy file or dataset:<name>[:<scale>]")
    d.add_argument("--ranks", required=True, help="e.g. 10,10,10 or 10")
    d.add_argument("--method", default="dtucker")
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("-o", "--output", help="save TuckerResult (.npz)")
    d.add_argument("--save-compressed", help="save SliceSVD (.npz, dtucker only)")
    d.add_argument(
        "--trace",
        action="store_true",
        help="print the engine's per-phase execution trace (dtucker only)",
    )
    _add_backend_flags(d)
    _add_planner_flags(d)
    d.set_defaults(func=cmd_decompose)

    c = sub.add_parser("compare", help="compare methods on one tensor")
    c.add_argument("tensor", help=".npy file or dataset:<name>[:<scale>]")
    c.add_argument("--ranks", required=True)
    c.add_argument("--methods", default="all", help="comma list or 'all'")
    c.add_argument("--seed", type=int, default=0)
    _add_backend_flags(c)
    c.set_defaults(func=cmd_compare)

    k = sub.add_parser(
        "compress",
        help="out-of-core compression of a .npy tensor into a SliceSVD archive",
    )
    k.add_argument("tensor", help=".npy file (memory-mapped, never fully loaded)")
    k.add_argument("--rank", type=int, required=True)
    k.add_argument("--batch-slices", type=int, default=64)
    k.add_argument("--oversampling", type=int, default=10)
    k.add_argument("--power-iterations", type=int, default=1)
    k.add_argument("--seed", type=int, default=0)
    k.add_argument(
        "--trace",
        action="store_true",
        help="print the execution trace and planner decisions",
    )
    k.add_argument("-o", "--output", required=True, help="SliceSVD archive (.npz)")
    _add_backend_flags(k)
    _add_planner_flags(k)
    k.set_defaults(func=cmd_compress)

    f = sub.add_parser(
        "fit", help="fit D-Tucker and save the model as a store directory"
    )
    f.add_argument("tensor", help=".npy file or dataset:<name>[:<scale>]")
    f.add_argument("--ranks", required=True, help="e.g. 10,10,10 or 10")
    f.add_argument("--slice-rank", type=int, default=None)
    f.add_argument("--seed", type=int, default=0)
    f.add_argument(
        "--save", help="model store directory (manifest + mappable payloads)"
    )
    f.add_argument(
        "--overwrite",
        action="store_true",
        help="replace an existing store at --save",
    )
    f.add_argument(
        "--index",
        action="store_true",
        help="also build and persist the dyadic range index (needs --save)",
    )
    _add_backend_flags(f)
    _add_planner_flags(f)
    f.set_defaults(func=cmd_fit)

    q = sub.add_parser(
        "query", help="answer queries from a saved model store"
    )
    q.add_argument("store", help="model store directory written by 'fit --save'")
    q.add_argument(
        "--time-range",
        help="T0:T1 — local Tucker decomposition of that timestep range",
    )
    q.add_argument(
        "--ranges",
        help="batched time ranges A:B,C:D,... answered together via "
        "query_many (shared index nodes + result cache)",
    )
    q.add_argument(
        "--block",
        help="per-mode start:stop list (':' = full), e.g. '0:5,:,2:4' — "
        "reconstruct that dense block",
    )
    q.add_argument("--ranks", help="override ranks for --time-range/--ranges")
    q.add_argument(
        "--readers",
        type=int,
        default=None,
        help="reader threads for --ranges (default: one per distinct range, "
        "capped at the CPU count)",
    )
    q.add_argument(
        "-o", "--output",
        help="save the answer (.npz Tucker archive or .npy block)",
    )
    q.set_defaults(func=cmd_query)

    x = sub.add_parser(
        "index", help="build or drop a store's persisted range index"
    )
    x.add_argument("store", help="model store directory")
    x.add_argument(
        "--min-span",
        type=int,
        default=None,
        help="smallest indexed node span (power of two; default: auto)",
    )
    x.add_argument(
        "--drop", action="store_true", help="remove the persisted index"
    )
    x.set_defaults(func=cmd_index)

    st = sub.add_parser(
        "stream",
        help="ingest temporal .npy blocks into a streaming Tucker model",
    )
    st.add_argument(
        "blocks",
        help="directory of .npy blocks (sorted order) or '-' for block "
        "paths on stdin, one per line",
    )
    st.add_argument("--ranks", required=True, help="e.g. 10,10,10 or 10")
    st.add_argument("--slice-rank", type=int, default=None)
    st.add_argument("--seed", type=int, default=0)
    st.add_argument("--sweeps", type=int, default=5, help="ALS sweeps per update")
    st.add_argument(
        "--update",
        choices=("refit", "incremental", "sketch"),
        default="incremental",
        help="update mode (default: incremental — O(block) per append; "
        "refit reproduces the historical full-refit behaviour)",
    )
    st.add_argument(
        "--window",
        type=int,
        default=None,
        help="sliding window: keep only the newest N temporal steps",
    )
    st.add_argument(
        "--decay",
        type=float,
        default=None,
        help="exponential down-weighting per temporal step, in (0, 1]",
    )
    st.add_argument(
        "--drift-budget",
        type=float,
        default=None,
        help="relative error-drift budget triggering a full factor refresh",
    )
    st.add_argument(
        "--save", help="persist the model (and resume state) as a store dir"
    )
    st.add_argument(
        "--overwrite",
        action="store_true",
        help="replace an existing store at --save",
    )
    _add_backend_flags(st)
    _add_planner_flags(st)
    st.set_defaults(func=cmd_stream)

    i = sub.add_parser("inspect", help="report a model store's manifest")
    i.add_argument("store", help="model store directory")
    i.set_defaults(func=cmd_inspect)

    s = sub.add_parser("suggest-ranks", help="ranks meeting a target error")
    s.add_argument("tensor", help=".npy file or dataset:<name>[:<scale>]")
    s.add_argument("--target-error", type=float, default=0.01)
    s.add_argument("--slice-rank", type=int, default=None)
    s.add_argument("--max-rank", type=int, default=None)
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(func=cmd_suggest_ranks)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Library errors (bad ranks, unknown datasets, malformed archives) are
    reported on stderr with exit code 1 instead of a traceback; programming
    errors still propagate.
    """
    from .exceptions import ReproError

    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head);
        # not an error from the user's point of view.
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
