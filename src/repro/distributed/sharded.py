"""Shard-aware slice sources: a directory-of-blocks view of one tensor.

A :class:`ShardedSource` is the distributed layer's answer to "the tensor
does not live in one place": it stitches a sequence of *member* sources —
``.npy`` files, zarr/HDF5 groups (when those packages are installed), or
any existing :class:`~repro.core.sources.SliceSource` — into one logical
tensor along the last (temporal) mode.  Because the library's slice index
runs in Fortran order over modes ``3..N``, the last mode varies slowest,
so every member owns a *contiguous run* of slice indices and the
concatenation never materialises.

The source plugs into :func:`~repro.core.sources.compress_source`
unchanged.  Two properties make it the unit of distribution:

* **Shard-local compression.**  On the process backend,
  :meth:`ShardedSource.process_parts` fans out *member descriptors* (a
  path, never a slab): each worker opens its own shard and compresses its
  slices locally, shipping back only the stacked ``[U_lΣ_l]`` /
  ``[Σ_lV_lᵀ]`` factor products — ``(I1+I2+1)·K`` numbers per slice,
  independent of the slab width ``I1·I2``.  The bytes that do cross the
  boundary are tallied as ``comm:*`` counters on the fit's
  :class:`~repro.kernels.stats.KernelStats` and
  :class:`~repro.engine.trace.PhaseTrace`.
* **Shared sketches.**  One Gaussian test matrix is drawn for all members
  (``shared_sketch``), so the compression — and therefore the whole fit —
  is bit-identical to the equivalent single-source fit regardless of how
  the tensor is sharded.

Manifests
---------
A shard directory is described by a ``manifest.json``::

    {"format": "dtucker-shards/v1",
     "members": [{"kind": "npy",  "path": "shard000.npy"},
                 {"kind": "zarr", "path": "t.zarr", "key": "x"},
                 {"kind": "hdf5", "path": "t.h5",   "key": "x"}]}

Relative member paths resolve against the manifest's directory.  ``zarr``
and ``hdf5`` members are gated on their packages at open time
(:class:`~repro.exceptions.BackendError` when missing — nothing is ever
installed on the user's behalf).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from functools import partial
from typing import Any, Sequence

import numpy as np

from ..core.config import DTuckerConfig
from ..core.sources import (
    NpySource,
    SliceSource,
    SliceSourceBase,
    SourceDescriptor,
    batched_slice_view,
)
from ..engine import CommCost, ExecutionBackend, combine_costs
from ..exceptions import BackendError, ShapeError
from ..kernels.compress_plan import (
    CompressionPlan,
    factor_nbytes,
    plan_exact_chunk,
    plan_item_costs,
    slab_norms,
)
from ..kernels.stats import KernelStats
from ..linalg.rsvd import batched_rsvd, batched_svd_via_gram
from ..tensor.slices import slice_count

__all__ = [
    "GroupDescriptor",
    "GroupSource",
    "ShardedDescriptor",
    "ShardedSource",
    "SliceSpanDescriptor",
    "SliceSpanSource",
    "partition_extent",
    "write_manifest",
    "write_npy_shards",
]

#: Name and format tag of the shard-directory manifest file.
MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "dtucker-shards/v1"


def partition_extent(extent: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``extent`` into up to ``n_shards`` contiguous near-equal spans.

    The remainder spreads over the leading spans (``np.array_split``
    semantics), so an uneven extent yields a shorter *trailing* shard —
    the remainder-shard case the parity tests exercise.
    """
    t = int(extent)
    n = max(1, min(int(n_shards), t))
    base, rem = divmod(t, n)
    spans: list[tuple[int, int]] = []
    lo = 0
    for i in range(n):
        hi = lo + base + (1 if i < rem else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


# -- span view over an existing source ---------------------------------------

@dataclass(frozen=True)
class SliceSpanDescriptor:
    """Descriptor of a :class:`SliceSpanSource` (parent recipe + extent)."""

    parent: SourceDescriptor
    t_lo: int
    t_hi: int

    def open(self) -> "SliceSpanSource":
        return SliceSpanSource(self.parent.open(), self.t_lo, self.t_hi)


class SliceSpanSource(SliceSourceBase):
    """A contiguous temporal span ``[t_lo, t_hi)`` of another source.

    Because the last mode varies slowest in the slice order, the span's
    slices are a contiguous run of the parent's — ``read_batch`` is a pure
    index shift, no gather or copy beyond what the parent does.  This is
    how :meth:`ShardedSource.partition` turns one source into shards
    without touching the data.
    """

    def __init__(self, parent: SliceSource, t_lo: int, t_hi: int) -> None:
        shape = tuple(int(d) for d in parent.shape)
        if len(shape) < 3:
            raise ShapeError(
                f"temporal spans need order >= 3, got shape {shape}"
            )
        lo, hi = int(t_lo), int(t_hi)
        if not 0 <= lo < hi <= shape[-1]:
            raise ShapeError(
                f"span [{lo}, {hi}) invalid for temporal extent {shape[-1]}"
            )
        self._parent = parent
        self._t_lo, self._t_hi = lo, hi
        self._shape = shape[:-1] + (hi - lo,)
        self._dtype = parent.dtype
        self._per_step = slice_count(shape) // shape[-1]

    @property
    def resident(self) -> bool:  # type: ignore[override]
        return self._parent.resident

    @property
    def parent(self) -> SliceSource:
        return self._parent

    @property
    def span(self) -> tuple[int, int]:
        return (self._t_lo, self._t_hi)

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        lo, hi = self._check_range(start, stop)
        offset = self._t_lo * self._per_step
        return self._parent.read_batch(offset + lo, offset + hi)

    def descriptor(self) -> SliceSpanDescriptor:
        return SliceSpanDescriptor(
            self._parent.descriptor(), self._t_lo, self._t_hi
        )


# -- zarr / HDF5 group members ----------------------------------------------

@dataclass(frozen=True)
class GroupDescriptor:
    """Descriptor of a :class:`GroupSource` (kind + path + dataset key)."""

    kind: str
    path: str
    key: str | None = None

    def open(self) -> "GroupSource":
        return GroupSource(self.kind, self.path, self.key)


class GroupSource(SliceSourceBase):
    """A tensor stored as a zarr array or an HDF5 dataset.

    Both formats serve scalar multi-index reads, so batches go through the
    per-slice reference gather of :func:`~repro.core.sources
    .batched_slice_view` — only the requested chunks/pages are read.  The
    backing package is imported lazily and its absence raised as
    :class:`~repro.exceptions.BackendError`, keeping manifests that name
    such members loadable only where the format actually is.
    """

    resident = False
    default_batch_slices = 64
    phase_name = "approximation-ooc"

    def __init__(
        self, kind: str, path: "str | os.PathLike", key: str | None = None
    ) -> None:
        if kind not in ("zarr", "hdf5"):
            raise ShapeError(f"unknown group member kind {kind!r}")
        self._kind = kind
        self._path = os.fspath(path)
        self._key = key
        self._handle: Any = None
        array = self._array()
        if array.ndim < 2:
            raise ShapeError(
                f"tensor in {self._path!r} must have order >= 2"
            )
        self._shape = tuple(int(d) for d in array.shape)
        self._dtype = np.dtype(array.dtype)

    def _array(self) -> Any:
        if self._handle is None:
            if self._kind == "zarr":
                try:
                    import zarr
                except ImportError as exc:
                    raise BackendError(
                        "manifest member kind 'zarr' requires the 'zarr' "
                        "package, which is not installed"
                    ) from exc
                node = zarr.open(self._path, mode="r")
                self._handle = node[self._key] if self._key else node
            else:
                try:
                    import h5py
                except ImportError as exc:
                    raise BackendError(
                        "manifest member kind 'hdf5' requires the 'h5py' "
                        "package, which is not installed"
                    ) from exc
                handle = h5py.File(self._path, "r")
                self._handle = handle[self._key] if self._key else handle
        return self._handle

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        lo, hi = self._check_range(start, stop)
        return batched_slice_view(self._array(), lo, hi)

    def descriptor(self) -> GroupDescriptor:
        return GroupDescriptor(self._kind, self._path, self._key)


# -- the sharded source ------------------------------------------------------

def _shard_compress_task(
    task: tuple[SourceDescriptor, int, int, "np.ndarray | None"],
    *,
    rank: int,
    power_iterations: int,
    method: str,
    precision: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compress slices ``[start, stop)`` of one member inside a worker.

    Module-level (dispatched via :func:`functools.partial`) so the process
    backend can pickle it.  The worker re-opens the member from its
    descriptor and reads only its own slab; the return value is the
    stacked factor triple plus per-slice norms — the only bytes that
    travel back to the coordinator.
    """
    descriptor, start, stop, omega = task
    stack = descriptor.open().read_batch(start, stop)
    if precision == "float32":
        stack = np.ascontiguousarray(stack, dtype=np.float32)
    norms = slab_norms(stack)
    if method == "exact":
        u, s, vt, _ = plan_exact_chunk(stack, rank=rank)
    elif method == "gram" or omega is None:
        u, s, vt = batched_svd_via_gram(stack, rank)
    else:
        u, s, vt = batched_rsvd(
            stack, rank, power_iterations=power_iterations, test_matrix=omega
        )
    return u, s, vt, norms


@dataclass(frozen=True)
class ShardedDescriptor:
    """Descriptor of a :class:`ShardedSource` (the member recipes)."""

    members: tuple[SourceDescriptor, ...]

    def open(self) -> "ShardedSource":
        return ShardedSource([m.open() for m in self.members])


class ShardedSource(SliceSourceBase):
    """A virtual concatenation of member sources along the temporal mode.

    Members must agree on every mode but the last; each then owns the
    contiguous run of slice indices its temporal span maps to
    (:attr:`shard_bounds`).  ``shared_sketch`` draws *one* test matrix for
    all members, which makes compression — and hence the whole fit —
    bit-identical to the equivalent single-source fit, however the tensor
    is sharded and on every backend.

    Construct one directly from open sources, from a shard directory via
    :meth:`from_manifest`, or by splitting an existing source with
    :meth:`partition`.
    """

    shared_sketch = True
    phase_name = "approximation-sharded"

    #: Relative scheduling-cost surcharge of a non-resident member's slice
    #: over a resident one (mirrors ``BlockSource.memmap_io_surcharge``).
    io_surcharge: float = 1.0

    def __init__(self, members: Sequence[SliceSource]) -> None:
        members = list(members)
        if not members:
            raise ShapeError("ShardedSource needs at least one member")
        lead = tuple(int(d) for d in members[0].shape[:-1])
        order = len(members[0].shape)
        if order < 3:
            raise ShapeError(
                "sharding splits the temporal mode; members must have "
                f"order >= 3, got shape {tuple(members[0].shape)}"
            )
        for m in members[1:]:
            shape = tuple(int(d) for d in m.shape)
            if len(shape) != order or shape[:-1] != lead:
                raise ShapeError(
                    "all members must agree on every mode but the last; "
                    f"got {lead + (-1,)} and {shape}"
                )
        self._members = tuple(members)
        self._offsets = np.cumsum([0] + [int(m.slice_count) for m in members])
        self._shape = lead + (int(sum(m.shape[-1] for m in members)),)
        self._dtype = members[0].dtype

    # -- construction --------------------------------------------------------
    @classmethod
    def partition(cls, source: SliceSource, n_shards: int) -> "ShardedSource":
        """Split ``source`` into up to ``n_shards`` contiguous temporal spans.

        Pure index arithmetic — every shard is a
        :class:`SliceSpanSource` view, no data moves.  An extent that does
        not divide evenly yields a shorter trailing shard.
        """
        shape = tuple(int(d) for d in source.shape)
        if len(shape) < 3:
            raise ShapeError(
                f"sharding splits the temporal mode; need order >= 3, "
                f"got shape {shape}"
            )
        spans = partition_extent(shape[-1], n_shards)
        return cls([SliceSpanSource(source, lo, hi) for lo, hi in spans])

    @classmethod
    def from_manifest(cls, path: "str | os.PathLike") -> "ShardedSource":
        """Open a shard directory (or its ``manifest.json``) as one source."""
        p = os.fspath(path)
        if os.path.isdir(p):
            p = os.path.join(p, MANIFEST_NAME)
        base = os.path.dirname(os.path.abspath(p))
        with open(p, encoding="utf-8") as handle:
            data = json.load(handle)
        fmt = data.get("format")
        if fmt != MANIFEST_FORMAT:
            raise ShapeError(
                f"unrecognised shard manifest format {fmt!r} in {p!r} "
                f"(expected {MANIFEST_FORMAT!r})"
            )
        members: list[SliceSource] = []
        for entry in data.get("members", []):
            kind = entry.get("kind")
            member_path = os.fspath(entry.get("path", ""))
            if not os.path.isabs(member_path):
                member_path = os.path.join(base, member_path)
            if kind == "npy":
                members.append(NpySource(member_path))
            elif kind in ("zarr", "hdf5"):
                members.append(
                    GroupSource(kind, member_path, entry.get("key"))
                )
            else:
                raise ShapeError(
                    f"unknown member kind {kind!r} in manifest {p!r}"
                )
        if not members:
            raise ShapeError(f"manifest {p!r} lists no members")
        return cls(members)

    # -- geometry ------------------------------------------------------------
    @property
    def members(self) -> tuple[SliceSource, ...]:
        return self._members

    @property
    def shard_bounds(self) -> list[tuple[int, int]]:
        """Member boundaries in slice-index space, one ``(lo, hi)`` each.

        Every member spans whole temporal steps, so these bounds are
        always aligned to temporal-mode boundaries — the alignment the
        distributed sweep coordinator relies on.
        """
        return [
            (int(lo), int(hi))
            for lo, hi in zip(self._offsets[:-1], self._offsets[1:])
        ]

    @property
    def resident(self) -> bool:  # type: ignore[override]
        return all(m.resident for m in self._members)

    def read_batch(self, start: int, stop: int) -> np.ndarray:
        lo, hi = self._check_range(start, stop)
        pieces = []
        for member, offset in zip(self._members, self._offsets[:-1]):
            a = max(lo - int(offset), 0)
            b = min(hi - int(offset), int(member.slice_count))
            if a < b:
                pieces.append(member.read_batch(a, b))
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)

    def descriptor(self) -> ShardedDescriptor:
        return ShardedDescriptor(tuple(m.descriptor() for m in self._members))

    # -- scheduling ----------------------------------------------------------
    def item_costs(
        self, plan: CompressionPlan, start: int, stop: int
    ) -> "np.ndarray | None":
        residency = [m.resident for m in self._members]
        if all(residency) or not any(residency):
            return None
        per_slice = np.empty(self.slice_count)
        for member, offset, res in zip(
            self._members, self._offsets[:-1], residency
        ):
            lo, hi = int(offset), int(offset) + int(member.slice_count)
            per_slice[lo:hi] = 1.0 + (0.0 if res else self.io_surcharge)
        return per_slice[int(start):int(stop)]

    # -- process-backend fan-out ---------------------------------------------
    def process_parts(
        self,
        engine: ExecutionBackend,
        rank: int,
        plan: CompressionPlan,
        bounds: list[tuple[int, int]],
        omegas: list["np.ndarray | None"],
        config: DTuckerConfig,
        *,
        stats: KernelStats | None = None,
        trace: Any | None = None,
    ) -> "list[tuple] | None":
        """Shard-local compression: ship member descriptors, never slabs.

        Each batch bound is cut at member boundaries into ``(descriptor,
        local_lo, local_hi, Ω)`` tasks; workers open their member and
        compress locally.  Per task the coordinator receives
        ``(I1+I2+1)·K`` numbers per slice (plus one norm) and ships at
        most one ``I2×K`` test matrix — both tallied as ``comm:`` counters
        — while the raw ``I1·I2`` slab bytes never cross the boundary.

        Resident members return ``None``: their data already lives in the
        coordinator process, so the inline :func:`~repro.kernels
        .compress_plan.execute_plan` path (whose chunked dispatch uses
        shared-memory uploads) is both faster and byte-identical.
        """
        if all(m.resident for m in self._members):
            return None
        i1, i2 = self._shape[:2]
        descriptors = [m.descriptor() for m in self._members]
        tasks: list[tuple] = []
        sizes: list[int] = []
        for (start, stop), omega in zip(bounds, omegas):
            for descriptor, offset, member in zip(
                descriptors, self._offsets[:-1], self._members
            ):
                a = max(int(start) - int(offset), 0)
                b = min(int(stop) - int(offset), int(member.slice_count))
                if a < b:
                    tasks.append((descriptor, a, b, omega))
                    sizes.append(b - a)
        fn = partial(
            _shard_compress_task,
            rank=rank,
            power_iterations=plan.power_iterations,
            method=plan.method,
            precision=config.precision,
        )
        ship = np.array(
            [
                factor_nbytes(
                    i1, i2, rank, n_slices=n, dtype=plan.compute_dtype
                )
                for n in sizes
            ],
            dtype=float,
        )
        bcast = np.array(
            [
                0 if omega is None else int(omega.nbytes)
                for (_, _, _, omega) in tasks
            ],
            dtype=float,
        )
        compute = (
            np.asarray(sizes, dtype=float)
            * float(plan_item_costs(plan, 1)[0])
        )
        costs = combine_costs(
            compute, CommCost(ship + bcast).item_costs(len(tasks)), io_weight=1.0
        )
        parts = engine.map(fn, tasks, costs=costs)
        if stats is not None:
            for nbytes in ship:
                stats.record_comm("ship", int(nbytes))
            for nbytes in bcast:
                if nbytes:
                    stats.record_comm("bcast", int(nbytes))
        if trace is not None:
            trace.annotate_comm(
                comm_bytes=int(ship.sum() + bcast.sum()), reduce_rounds=1
            )
        return parts


# -- manifest writers --------------------------------------------------------

def write_manifest(
    directory: "str | os.PathLike", members: Sequence[dict]
) -> str:
    """Write a shard ``manifest.json`` listing ``members`` into ``directory``.

    Each member is a dict with ``kind`` (``"npy"``/``"zarr"``/``"hdf5"``),
    ``path`` (relative paths resolve against the directory) and, for group
    kinds, an optional ``key``.  Returns the manifest path.
    """
    os.makedirs(os.fspath(directory), exist_ok=True)
    path = os.path.join(os.fspath(directory), MANIFEST_NAME)
    payload = {"format": MANIFEST_FORMAT, "members": list(members)}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def write_npy_shards(
    directory: "str | os.PathLike", tensor: np.ndarray, n_shards: int
) -> str:
    """Split ``tensor`` along its last mode into ``.npy`` shards + manifest.

    The convenience writer behind the tests and benchmarks: shards are
    near-equal contiguous temporal spans (trailing shard shorter when the
    extent is uneven).  Returns the manifest path, ready for
    :meth:`ShardedSource.from_manifest`.
    """
    x = np.asarray(tensor)
    if x.ndim < 3:
        raise ShapeError(
            f"sharding splits the temporal mode; need order >= 3, "
            f"got shape {x.shape}"
        )
    os.makedirs(os.fspath(directory), exist_ok=True)
    entries = []
    for i, (lo, hi) in enumerate(partition_extent(x.shape[-1], n_shards)):
        name = f"shard{i:03d}.npy"
        np.save(
            os.path.join(os.fspath(directory), name),
            np.ascontiguousarray(x[..., lo:hi]),
        )
        entries.append({"kind": "npy", "path": name})
    return write_manifest(directory, entries)
