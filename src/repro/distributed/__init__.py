"""Distributed sharded fitting: shard-aware sources + a reduce-only coordinator.

The tensor lives as a directory of blocks (``.npy`` files, zarr/HDF5
groups, or any open :class:`~repro.core.sources.SliceSource`);
:class:`ShardedSource` stitches them into one logical tensor along the
temporal mode and :class:`ShardCoordinator` fits it so that only the
stacked ``[U_lΣ_l]``/``[Σ_lV_lᵀ]`` factor products — never raw slabs —
cross a shard boundary.  ``comm:`` counters on
:class:`~repro.kernels.stats.KernelStats` and
:class:`~repro.engine.trace.PhaseTrace` account for every byte that does.
See ``docs/distributed.md``.
"""

from .coordinator import ShardCoordinator, distributed_als_sweeps
from .sharded import (
    GroupDescriptor,
    GroupSource,
    ShardedDescriptor,
    ShardedSource,
    SliceSpanDescriptor,
    SliceSpanSource,
    partition_extent,
    write_manifest,
    write_npy_shards,
)

__all__ = [
    "GroupDescriptor",
    "GroupSource",
    "ShardCoordinator",
    "ShardedDescriptor",
    "ShardedSource",
    "SliceSpanDescriptor",
    "SliceSpanSource",
    "distributed_als_sweeps",
    "partition_extent",
    "write_manifest",
    "write_npy_shards",
]
