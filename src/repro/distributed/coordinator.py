"""The shard coordinator: reduce-only fits over a :class:`ShardedSource`.

Two pieces live here, both built on the invariant that *only small factor
products ever cross a shard boundary*:

* :func:`distributed_als_sweeps` — the HOOI/ALS loop of
  :func:`~repro.core.iteration.als_sweeps`, re-expressed as a sequence of
  shard-local partial contractions plus a coordinator-side reduce.  Each
  shard owns the contiguous slice run of its temporal span
  ``[t_lo, t_hi)``; restricting the last-mode factor to those rows makes
  every per-mode TTM chain (and the core projection) *additive* over
  shards — except the last mode's own update, whose partials concatenate
  along the temporal axis instead.  Per reduce round a shard ships one
  ``J``-sized projected tensor and receives the current factor set:
  ``O((I1+I2+1)·K·J)`` traffic per sweep, independent of the slab width
  ``I1·I2·L``.  The shard fan-out rides
  :meth:`~repro.engine.base.ExecutionBackend.run_chunks`, so on the
  process backend the compressed triples upload into shared memory once
  and are reused by every round of every sweep.
* :class:`ShardCoordinator` — the fit driver: shard-local compression
  (the :meth:`~repro.distributed.sharded.ShardedSource.process_parts`
  descriptor fan-out), coordinator-side :func:`~repro.core.initialization
  .initialize` on the gathered stacked ``[U_lΣ_l]``/``[Σ_lV_lᵀ]``
  products, then distributed sweeps.  Per-shard kernel statistics merge
  into one :class:`~repro.kernels.stats.KernelStats`; the bytes shipped
  and reduce rounds surface as ``comm:`` counters and on the phase's
  :class:`~repro.engine.trace.PhaseTrace`.

Determinism: partials are reduced in shard order, so results are
reproducible run to run and shard-count to shard-count — but partial-sum
reassociation means they match the monolithic sweeps to floating-point
tolerance, not bit for bit.  (The *default* pipeline path — shard-local
compression followed by monolithic sweeps on the gathered triples — stays
bit-identical to the single-source fit; see ``docs/distributed.md``.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import DTuckerConfig
from ..core.fit_pipeline import FitPipeline, PipelineFit, resolve_slice_rank
from ..core.initialization import initialize, random_initialize
from ..core.iteration import IterationResult
from ..core.result import TuckerResult
from ..core.slice_svd import SliceSVD
from ..core.sources import SliceSource, compress_source
from ..engine import ExecutionBackend, backend_scope
from ..exceptions import ConvergenceError, ShapeError
from ..kernels.stats import KernelStats
from ..kernels.workspace import SweepWorkspace
from ..linalg.svd import leading_left_singular_vectors
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.norms import core_based_error
from ..tensor.random import default_rng
from ..tensor.slices import slice_count
from ..tensor.unfold import unfold
from ..validation import check_ranks
from .sharded import ShardedSource

__all__ = ["ShardCoordinator", "distributed_als_sweeps"]


def _shard_sweep_kernel(
    u: np.ndarray,
    s: np.ndarray,
    vt: np.ndarray,
    norms: np.ndarray,
    tindex: np.ndarray,
    *,
    shape: tuple[int, ...],
    factors: "list[np.ndarray]",
    target: "int | None",
) -> np.ndarray:
    """One shard's partial contraction for one reduce round.

    Module-level so the process backend can pickle it.  The slab chunk it
    receives is the shard's run of compressed triples (plus per-slice
    norms and temporal indices); ``tindex`` recovers the temporal span, so
    the kernel can restrict the last-mode factor to the shard's rows.
    Returns a fresh ``J``-sized array — the only bytes shipped back.
    """
    t_lo, t_hi = int(tindex[0]), int(tindex[-1]) + 1
    slice_norms = np.asarray(norms, dtype=float)
    ssvd = SliceSVD(
        u=np.asarray(u),
        s=np.asarray(s),
        vt=np.asarray(vt),
        shape=tuple(shape[:-1]) + (t_hi - t_lo,),
        norm_squared=float(slice_norms.sum()),
        slice_norms_squared=slice_norms,
    )
    ws = SweepWorkspace(ssvd)
    facs = [np.asarray(f) for f in factors]
    facs[-1] = facs[-1][t_lo:t_hi]
    ws.bind_factors(facs)
    if target == 0:
        out = ws.project_trailing(ws.mode1_partial(), tag="z1")
    elif target == 1:
        out = ws.project_trailing(ws.mode2_partial(), tag="z2")
    elif target is None:
        out = ws.project_w_trailing()
    else:
        out = ws.project_w_trailing(skip=int(target))
    return np.ascontiguousarray(out)


def distributed_als_sweeps(
    ssvd: SliceSVD,
    rank_tuple: Sequence[int],
    factors: "Sequence[np.ndarray]",
    *,
    shard_bounds: Sequence[tuple[int, int]],
    config: DTuckerConfig | None = None,
    engine: "ExecutionBackend | str | None" = None,
) -> IterationResult:
    """ALS sweeps as shard-local partials plus coordinator-side reduces.

    ``shard_bounds`` are contiguous slice-index spans (one per shard)
    covering ``[0, L)`` and aligned to temporal-mode boundaries — exactly
    :attr:`~repro.distributed.sharded.ShardedSource.shard_bounds`.  Every
    sweep runs ``order + 1`` reduce rounds (one per factor update plus the
    core); per round each shard ships one projected tensor of
    ``O(∏ J_n)`` numbers and the coordinator broadcasts the current
    factors — never a slab.  Convergence monitoring, tolerances and the
    error history match :func:`~repro.core.iteration.als_sweeps`; the
    reduce reassociates partial sums, so values agree with the monolithic
    loop to floating-point tolerance (deterministically — shards always
    reduce in order).
    """
    cfg = config if config is not None else DTuckerConfig()
    shape = tuple(int(d) for d in ssvd.shape)
    order = len(shape)
    if order < 3:
        raise ShapeError(
            f"distributed sweeps shard the temporal mode; need order >= 3, "
            f"got shape {shape}"
        )
    ranks = check_ranks(rank_tuple, shape)
    count = slice_count(shape)
    per_step = count // shape[-1]
    plan = [(int(lo), int(hi)) for lo, hi in shard_bounds]
    expected = 0
    for lo, hi in plan:
        if lo != expected or hi <= lo:
            raise ShapeError(
                f"shard bounds {plan} must contiguously cover [0, {count})"
            )
        if lo % per_step or hi % per_step:
            raise ShapeError(
                f"shard bound ({lo}, {hi}) not aligned to the temporal "
                f"step of {per_step} slices"
            )
        expected = hi
    if expected != count:
        raise ShapeError(
            f"shard bounds {plan} must contiguously cover [0, {count})"
        )
    if len(factors) != order:
        raise ShapeError(
            f"expected {order} factors, got {len(factors)}"
        )
    facs = [np.ascontiguousarray(f, dtype=float) for f in factors]
    norms = np.ascontiguousarray(ssvd.slice_norms_squared, dtype=float)
    tindex = np.arange(count, dtype=np.int64) // per_step
    slabs = (ssvd.u, ssvd.s, ssvd.vt, norms, tindex)

    stats = KernelStats()
    comm_bytes = 0
    rounds = 0

    errors: list[float] = []
    converged = False
    sweep = 0
    core = None
    with backend_scope(engine, config=cfg) as eng, eng.phase(
        "iteration-distributed"
    ) as tr:

        def reduce_round(target: "int | None") -> np.ndarray:
            """Fan one round out to the shards and reduce the partials."""
            nonlocal comm_bytes, rounds
            broadcast = {"shape": shape, "factors": facs, "target": target}
            outs = eng.run_chunks(_shard_sweep_kernel, plan, slabs, broadcast)
            rounds += 1
            bcast = len(plan) * int(sum(f.nbytes for f in facs))
            stats.record_comm("bcast", bcast)
            shipped = 0
            for out in outs:
                stats.record_comm("ship", int(out.nbytes))
                shipped += int(out.nbytes)
            comm_bytes += bcast + shipped
            if target == order - 1:
                # The temporal mode's own update keeps that axis at full
                # size: shard partials are disjoint runs, so concatenate.
                return np.concatenate(outs, axis=order - 1)
            total = outs[0]
            for out in outs[1:]:
                total = total + out
            return total

        for sweep in range(1, int(cfg.max_iters) + 1):
            z1 = reduce_round(0)
            facs[0] = leading_left_singular_vectors(unfold(z1, 0), ranks[0])
            z2 = reduce_round(1)
            facs[1] = leading_left_singular_vectors(unfold(z2, 1), ranks[1])
            for n in range(2, order):
                zn = reduce_round(n)
                facs[n] = leading_left_singular_vectors(unfold(zn, n), ranks[n])
            core = reduce_round(None)
            err = core_based_error(ssvd.norm_squared, core)
            if not np.isfinite(err):
                raise ConvergenceError(
                    f"non-finite error estimate at sweep {sweep}"
                )
            errors.append(err)
            if len(errors) >= 2 and abs(errors[-2] - errors[-1]) < float(
                cfg.tol
            ):
                converged = True
                break
        tr.annotate_comm(comm_bytes=comm_bytes, reduce_rounds=rounds)

    return IterationResult(
        core=core,
        factors=facs,
        errors=errors,
        converged=converged,
        n_iters=sweep,
        kernel_stats=stats,
    )


class ShardCoordinator:
    """Drive a whole fit over shards, reducing only small factor products.

    The coordinator never touches a raw slab: compression runs shard-local
    through the member-descriptor fan-out, :func:`~repro.core
    .initialization.initialize` consumes the gathered stacked
    ``[U_lΣ_l]``/``[Σ_lV_lᵀ]`` products on the coordinator, and the sweeps
    run through :func:`distributed_als_sweeps`.  Everything else —
    configuration, rank resolution, timings, stats merging — matches
    :meth:`FitPipeline.fit <repro.core.fit_pipeline.FitPipeline.fit>`.

    Parameters
    ----------
    source:
        A :class:`~repro.distributed.sharded.ShardedSource`, or any
        :class:`~repro.core.sources.SliceSource` to be partitioned into
        ``shards`` (default ``config.shards``, else 1) temporal spans.
    ranks, slice_rank, init, config, engine:
        As on :class:`~repro.core.fit_pipeline.FitPipeline`.
    """

    def __init__(
        self,
        source: SliceSource,
        ranks: Sequence[int],
        *,
        slice_rank: int | None = None,
        init: str = "svd",
        config: DTuckerConfig | None = None,
        engine: "ExecutionBackend | str | None" = None,
        shards: int | None = None,
    ) -> None:
        cfg = config if config is not None else DTuckerConfig()
        if not isinstance(source, ShardedSource):
            n = shards if shards is not None else (cfg.shards or 1)
            source = ShardedSource.partition(source, max(1, int(n)))
        self.source = source
        self.pipeline = FitPipeline(
            ranks, slice_rank=slice_rank, init=init, config=cfg, engine=engine
        )

    def compress(self, **kwargs) -> SliceSVD:
        """Shard-local compression of the coordinator's source."""
        return self.pipeline.compress(self.source, **kwargs)

    def fit(
        self,
        *,
        batch_slices: int | None = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> PipelineFit:
        """Compress shard-local, initialize on the reduce, sweep distributed."""
        p = self.pipeline
        cfg = p.config
        shape = tuple(int(d) for d in self.source.shape)
        rank_tuple = check_ranks(p.ranks, shape)
        k = resolve_slice_rank(
            shape, rank_tuple[0], rank_tuple[1], p.slice_rank, strict=True
        )
        gen = default_rng(rng if rng is not None else cfg.seed)
        timings = PhaseTimings()
        approx_stats = KernelStats()

        with backend_scope(p.engine, config=cfg) as eng:
            trace_start = len(eng.traces)
            with Timer() as t_approx:
                ssvd = compress_source(
                    self.source,
                    k,
                    batch_slices=batch_slices,
                    config=cfg,
                    engine=eng,
                    rng=gen,
                    stats=approx_stats,
                )
            timings.add("approximation", t_approx.seconds)

            with Timer() as t_init:
                if p.init == "svd":
                    _, factors = initialize(ssvd, rank_tuple)
                else:
                    _, factors = random_initialize(ssvd, rank_tuple, gen)
            timings.add("initialization", t_init.seconds)

            with Timer() as t_iter:
                outcome = distributed_als_sweeps(
                    ssvd,
                    rank_tuple,
                    factors,
                    shard_bounds=self.source.shard_bounds,
                    config=cfg,
                    engine=eng,
                )
            timings.add("iteration", t_iter.seconds)
            traces = list(eng.traces[trace_start:])

        stats = outcome.kernel_stats
        if stats is None:
            stats = approx_stats
        else:
            stats.merge(approx_stats)
        result = TuckerResult(
            core=outcome.core,
            factors=outcome.factors,
            elapsed=timings.total,
            trace_=traces,
        )
        return PipelineFit(
            result=result,
            slice_svd=ssvd,
            timings=timings,
            traces=traces,
            kernel_stats=stats,
            history=outcome.errors,
            converged=outcome.converged,
            n_iters=outcome.n_iters,
        )
