"""Wall-clock timing utilities for the experiment harness.

A :class:`Timer` measures one block; a :class:`PhaseTimings` accumulates
named phases (approximation / initialization / iteration for D-Tucker) and
formats them for reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "PhaseTimings"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.seconds: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.seconds = time.perf_counter() - self._start


class _PhaseContext:
    """Context manager recording one timed block into a :class:`PhaseTimings`."""

    def __init__(self, timings: "PhaseTimings", name: str) -> None:
        self._timings = timings
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> "_PhaseContext":
        self._timer.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.__exit__(*exc_info)
        self._timings.add(self._name, self._timer.seconds)


@dataclass
class PhaseTimings:
    """Named wall-clock phases of one algorithm run.

    Attributes
    ----------
    phases:
        Mapping of phase name to elapsed seconds, in insertion order.
    """

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Record (or accumulate into) phase ``name``."""
        self.phases[name] = self.phases.get(name, 0.0) + float(seconds)

    def measure(self, name: str) -> "_PhaseContext":
        """Context manager that times a block and records it as ``name``."""
        return _PhaseContext(self, name)

    @property
    def total(self) -> float:
        """Sum of all recorded phases, in seconds."""
        return float(sum(self.phases.values()))

    def __getitem__(self, name: str) -> float:
        return self.phases[name]

    def __contains__(self, name: str) -> bool:
        return name in self.phases

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.phases.items())

    def summary(self) -> str:
        """One-line human-readable summary, e.g. ``approx=0.12s iter=0.48s``."""
        parts = [f"{k}={v:.4f}s" for k, v in self.phases.items()]
        parts.append(f"total={self.total:.4f}s")
        return " ".join(parts)
