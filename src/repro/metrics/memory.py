"""Byte-exact storage accounting for tensors and compressed representations.

The paper's memory figure compares the *stored representation* each method
needs to answer a decomposition request: the raw tensor for from-scratch
methods, slice SVDs for D-Tucker, a sampled tensor for MACH, and sketched
unfoldings for the Tucker-ts family.  These helpers compute those sizes
exactly (in bytes, for a given dtype) from shapes alone, so the memory
benchmark does not need to materialise the large objects.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..validation import check_ranks

__all__ = [
    "array_nbytes",
    "tensor_nbytes",
    "tucker_nbytes",
    "slice_svd_nbytes",
    "mach_nbytes",
    "sketch_nbytes",
    "total_nbytes",
]

_DTYPE_BYTES = {"float64": 8, "float32": 4}


def _itemsize(dtype: str | np.dtype) -> int:
    return int(np.dtype(dtype).itemsize)


def array_nbytes(*arrays: np.ndarray) -> int:
    """Total bytes of the given NumPy arrays."""
    return int(sum(int(a.nbytes) for a in arrays))


def total_nbytes(arrays: Iterable[np.ndarray]) -> int:
    """Total bytes of an iterable of arrays."""
    return int(sum(int(np.asarray(a).nbytes) for a in arrays))


def tensor_nbytes(shape: Sequence[int], dtype: str | np.dtype = "float64") -> int:
    """Bytes needed to store a dense tensor of ``shape``."""
    return int(np.prod([int(s) for s in shape], dtype=np.int64)) * _itemsize(dtype)


def tucker_nbytes(
    shape: Sequence[int],
    ranks: int | Sequence[int],
    dtype: str | np.dtype = "float64",
) -> int:
    """Bytes of a Tucker model ``(core, factors)`` for ``shape`` / ``ranks``."""
    dims = tuple(int(s) for s in shape)
    rank_tuple = check_ranks(ranks, dims)
    item = _itemsize(dtype)
    factors = sum(i * j for i, j in zip(dims, rank_tuple))
    core = int(np.prod(rank_tuple, dtype=np.int64))
    return (factors + core) * item


def slice_svd_nbytes(
    shape: Sequence[int], rank: int, dtype: str | np.dtype = "float64"
) -> int:
    """Bytes of D-Tucker's compressed slice representation.

    For a tensor ``(I1, I2, I3, …, IN)`` compressed at slice rank ``K``,
    the stored arrays are ``U (I1×K×L)``, ``s (K×L)``, ``V (I2×K×L)`` with
    ``L = I3⋯IN`` — i.e. ``(I1 + I2 + 1)·K·L`` numbers.
    """
    dims = tuple(int(s) for s in shape)
    if len(dims) < 2:
        raise ValueError(f"slice storage needs order >= 2, got shape {dims}")
    l = int(np.prod(dims[2:], dtype=np.int64)) if len(dims) > 2 else 1
    return (dims[0] + dims[1] + 1) * int(rank) * l * _itemsize(dtype)


def mach_nbytes(
    shape: Sequence[int], keep_probability: float, dtype: str | np.dtype = "float64"
) -> int:
    """Expected bytes of MACH's sampled tensor stored as COO triples.

    Each kept entry needs its value plus one index per mode (stored here as
    int64 to be conservative).
    """
    dims = tuple(int(s) for s in shape)
    n_entries = int(np.prod(dims, dtype=np.int64)) * float(keep_probability)
    per_entry = _itemsize(dtype) + 8 * len(dims)
    return int(round(n_entries * per_entry))


def sketch_nbytes(
    shape: Sequence[int],
    ranks: int | Sequence[int],
    sketch_dims: tuple[int, int],
    dtype: str | np.dtype = "float64",
) -> int:
    """Bytes of the Tucker-ts preprocessed sketches.

    Tucker-ts stores, per mode ``n``, the sketched unfolding
    ``S1 X_(n)ᵀ ∈ R^{s1 × I_n}``, plus the doubly-sketched vector
    ``S2 vec(X) ∈ R^{s2}``.
    """
    dims = tuple(int(s) for s in shape)
    check_ranks(ranks, dims)
    s1, s2 = (int(s) for s in sketch_dims)
    item = _itemsize(dtype)
    per_mode = sum(s1 * i for i in dims)
    return (per_mode + s2) * item
