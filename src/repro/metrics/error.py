"""Error metrics for Tucker decompositions.

Thin layer over :mod:`repro.tensor.norms` adding a convenience entry point
that accepts either a reconstructed tensor or a ``(core, factors)`` pair.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..tensor.norms import (
    core_based_error,
    fit_score,
    frobenius_norm,
    frobenius_norm_squared,
    reconstruction_error,
    relative_error,
)
from ..tensor.products import tucker_to_tensor

__all__ = [
    "core_based_error",
    "fit_score",
    "frobenius_norm",
    "frobenius_norm_squared",
    "reconstruction_error",
    "relative_error",
    "tucker_reconstruction_error",
]


def tucker_reconstruction_error(
    reference: np.ndarray, core: np.ndarray, factors: Sequence[np.ndarray]
) -> float:
    """Paper-style error ``||X - G ×_n A(n)||_F² / ||X||_F²``.

    Reconstructs the estimate densely; intended for evaluation, not for use
    inside solvers (which use :func:`core_based_error` instead).
    """
    return reconstruction_error(reference, tucker_to_tensor(core, factors))
