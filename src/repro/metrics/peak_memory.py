"""Peak-allocation measurement for solver runs.

The paper's memory claim has two parts: the *stored* representation
(accounted exactly by :mod:`repro.metrics.memory`) and the *intermediate*
data a solver allocates while running.  :func:`measure_peak` captures the
latter with :mod:`tracemalloc`, which since NumPy 1.22 traces array buffers
through the ``np.lib.tracemalloc_domain`` allocator domain — so the figure
includes the tensors and matrices that dominate a solve, not just Python
objects.

Caveats (documented rather than hidden): tracemalloc adds ~2× slowdown, so
never measure time and peak memory in the same run; and allocations made by
BLAS/LAPACK work buffers inside compiled code are invisible — the reported
peak is a faithful lower bound dominated by the NumPy arrays themselves.
"""

from __future__ import annotations

import tracemalloc
from typing import Callable, TypeVar

__all__ = ["measure_peak"]

T = TypeVar("T")


def measure_peak(fn: Callable[[], T]) -> tuple[T, int]:
    """Run ``fn()`` and return ``(result, peak_bytes)``.

    ``peak_bytes`` is the high-water mark of traced allocations *during*
    the call, relative to the baseline at entry (so objects allocated
    before the call do not count).  Nested use is not supported —
    :mod:`tracemalloc` is process-global.

    Examples
    --------
    >>> import numpy as np
    >>> _, peak = measure_peak(lambda: np.zeros(1_000_000))
    >>> peak >= 8_000_000
    True
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, max(int(peak) - int(baseline), 0)
