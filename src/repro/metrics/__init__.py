"""Metrics: reconstruction error, storage accounting, and wall-clock timing."""

from .error import (
    core_based_error,
    fit_score,
    frobenius_norm,
    frobenius_norm_squared,
    reconstruction_error,
    relative_error,
    tucker_reconstruction_error,
)
from .memory import (
    array_nbytes,
    mach_nbytes,
    sketch_nbytes,
    slice_svd_nbytes,
    tensor_nbytes,
    total_nbytes,
    tucker_nbytes,
)
from .peak_memory import measure_peak
from .timing import PhaseTimings, Timer

__all__ = [
    "core_based_error",
    "fit_score",
    "frobenius_norm",
    "frobenius_norm_squared",
    "reconstruction_error",
    "relative_error",
    "tucker_reconstruction_error",
    "array_nbytes",
    "mach_nbytes",
    "sketch_nbytes",
    "slice_svd_nbytes",
    "tensor_nbytes",
    "total_nbytes",
    "tucker_nbytes",
    "measure_peak",
    "PhaseTimings",
    "Timer",
]
