"""Discovery utilities built on Tucker results.

The paper family's motivating applications — anomaly detection and latent
similarity analysis on decomposed tensors — reduce to a handful of
reusable computations on a :class:`~repro.core.result.TuckerResult`:

* per-index **residual scores** along a chosen mode (how much energy the
  low-rank model fails to explain at each timestep/stock/station),
* **anomaly flagging** by z-score thresholding of those scores,
* **factor-space similarity** between entities of one mode (cosine between
  rows of the factor matrix),
* nearest-neighbour retrieval in factor space.

The example scripts use these; they are exported for downstream analysis
code as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.result import TuckerResult
from .exceptions import ShapeError
from .validation import as_tensor, check_mode

__all__ = [
    "residual_scores",
    "AnomalyReport",
    "detect_anomalies",
    "factor_cosine_similarity",
    "nearest_neighbors",
]


def residual_scores(
    tensor: np.ndarray,
    result: TuckerResult,
    mode: int,
    *,
    relative: bool = True,
) -> np.ndarray:
    """Residual energy of the model per index of ``mode``.

    Parameters
    ----------
    tensor:
        The original tensor.
    result:
        A Tucker decomposition of it.
    mode:
        The mode whose indices are scored (e.g. the time mode for
        per-day anomaly scores).
    relative:
        Divide each index's residual energy by its data energy (the paper's
        per-timestep error definition).  Set ``False`` for absolute energy.

    Returns
    -------
    numpy.ndarray
        One non-negative score per index of ``mode``.
    """
    x = as_tensor(tensor, min_order=1, name="tensor")
    if x.shape != result.shape:
        raise ShapeError(
            f"tensor shape {x.shape} does not match result shape {result.shape}"
        )
    m = check_mode(mode, x.ndim)
    axes = tuple(k for k in range(x.ndim) if k != m)
    residual = x - result.reconstruct()
    res_energy = np.sum(residual**2, axis=axes)
    if not relative:
        return res_energy
    data_energy = np.sum(x**2, axis=axes)
    safe = np.where(data_energy > 0, data_energy, 1.0)
    return np.where(data_energy > 0, res_energy / safe, 0.0)


@dataclass
class AnomalyReport:
    """Outcome of :func:`detect_anomalies`.

    Attributes
    ----------
    scores:
        The input scores.
    threshold:
        The applied cut-off (``mean + z·std``).
    indices:
        Indices whose score exceeds the threshold, ascending.
    """

    scores: np.ndarray
    threshold: float
    indices: np.ndarray

    @property
    def count(self) -> int:
        """Number of flagged indices."""
        return int(self.indices.size)

    def top(self, k: int) -> np.ndarray:
        """The ``k`` highest-scoring indices (flagged or not), descending."""
        order = np.argsort(self.scores)[::-1]
        return order[: int(k)]


def detect_anomalies(scores: np.ndarray, *, z: float = 2.0) -> AnomalyReport:
    """Flag indices whose score exceeds ``mean + z·std``.

    The paper's discovery section uses exactly this rule (two standard
    deviations) to surface anomalous time ranges.
    """
    s = np.asarray(scores, dtype=float).ravel()
    if s.size == 0:
        raise ShapeError("scores must be non-empty")
    if not np.isfinite(s).all():
        raise ShapeError("scores contain non-finite values")
    threshold = float(s.mean() + float(z) * s.std())
    return AnomalyReport(
        scores=s, threshold=threshold, indices=np.flatnonzero(s > threshold)
    )


def factor_cosine_similarity(result: TuckerResult, mode: int) -> np.ndarray:
    """Pairwise cosine similarity between the mode's factor rows.

    Each row of ``A(mode)`` is an entity's latent embedding; the returned
    ``(I_mode, I_mode)`` matrix holds cosines in ``[-1, 1]`` (rows with zero
    norm get zero similarity to everything, including themselves).
    """
    m = check_mode(mode, result.order)
    a = result.factors[m]
    norms = np.linalg.norm(a, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    unit = np.where(norms > 0, a / safe, 0.0)
    sim = unit @ unit.T
    return np.clip(sim, -1.0, 1.0)


def nearest_neighbors(
    result: TuckerResult, mode: int, index: int, k: int = 5
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` most similar entities to ``index`` along ``mode``.

    Returns
    -------
    tuple
        ``(indices, cosines)`` sorted by descending similarity, excluding
        ``index`` itself.
    """
    m = check_mode(mode, result.order)
    dim = result.shape[m]
    i = int(index)
    if not 0 <= i < dim:
        raise ShapeError(f"index {index} out of range for mode of size {dim}")
    kk = int(k)
    if kk < 1:
        raise ShapeError(f"k must be >= 1, got {k}")
    sim = factor_cosine_similarity(result, m)[i]
    order = np.argsort(sim)[::-1]
    order = order[order != i][: min(kk, dim - 1)]
    return order, sim[order]
