"""The sweep workspace: cached projections, chain prefixes, scratch reuse.

:class:`SweepWorkspace` owns every compressed-domain contraction of the
iteration phase and makes each one *incremental* across the sweep:

* the per-slice projection stacks ``A(1)ᵀU`` and ``VᵀA(2)`` are cached and
  dirty-tracked on factor versions, so each is computed exactly once per
  factor update — the mode-2 update, the ``W`` build and the next sweep's
  mode-1 partial all share them;
* the doubly-projected tensor ``W`` is cached on the ``(A(1), A(2))``
  version pair, which removes the historical second ``w_tensor`` evaluation
  per sweep (core projection) entirely;
* TTM chains on ``W`` (the ``skip = n`` updates for modes ≥ 3 and the core
  projection) go through a chain-prefix cache keyed on the exact
  ``(mode, factor-version)`` steps applied, so chains that share a planned
  prefix — e.g. the core projection extending the last skip update —
  reuse the intermediate instead of recontracting it;
* the large slice stacks are written into preallocated
  :class:`~repro.kernels.buffers.BufferPool` slots via ``out=`` einsums, so
  steady-state sweeps stop allocating for the hot contractions.

Every cached value is produced by exactly the operations the uncached path
would run on identical inputs, so results are bit-identical to the naive
implementation (:mod:`repro.kernels.naive`) — the property
``tests/test_kernels.py`` pins across backends and tensor orders.

Invalidation rules
------------------
``update_factor(n, a)`` bumps mode ``n``'s version.  Caches consult
versions lazily: ``au`` depends on factor 0, ``av`` on factor 1, ``w`` on
both, and every chain step on the version of the factor it applied.  The
chain cache is cleared whenever ``W`` is rebuilt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..engine import ExecutionBackend
from ..engine.array_api import NUMPY, ArrayModule
from ..exceptions import ShapeError
from ..tensor.products import mode_product
from .buffers import BufferPool
from .contractions import (
    dispatch_slices,
    mode1_from_projection_chunk,
    mode2_from_projection_chunk,
    project_left_chunk,
    project_right_chunk,
    stack_to_tensor,
    w_from_projections_chunk,
)
from .planner import plan_ttm_chain
from .stats import KernelStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.slice_svd import SliceSVD

__all__ = ["StreamingWorkspace", "SweepWorkspace"]

#: Upper bound on cached chain intermediates (cleared with every new ``W``;
#: a sweep produces O(order²) entries, so this is never hit in practice).
_MAX_CHAIN_ENTRIES = 256


class SweepWorkspace:
    """Reusable kernel state for compressed-domain ALS sweeps.

    Parameters
    ----------
    ssvd:
        The compressed tensor the sweeps run on.  A workspace is bound to
        one representation; rebinding to a different ``SliceSVD`` is an
        error (build a fresh workspace instead).
    engine:
        Optional execution backend for the per-slice contractions.  May be
        swapped per phase (``als_sweeps`` installs its resolved backend for
        the duration of the iteration); results do not depend on it.  On a
        non-NumPy ``module`` the engine is forced to ``None``: device slabs
        run inline at slab granularity (chunking host backends would ship
        device arrays across thread/process boundaries for no gain).
    module:
        The :class:`~repro.engine.array_api.ArrayModule` the sweeps compute
        on.  NumPy (the default) is bit-identical to earlier releases; any
        other namespace uploads the slice triples once at construction
        (recorded as ``xfer:h2d`` on :attr:`stats`) and keeps every cached
        projection device-resident.
    compute_dtype:
        Dtype the sweep contractions run in.  The default ``float64``
        matches the stored representation (no cast, no copy); ``float32``
        casts the slice views and every bound factor once, so all cached
        projections and pooled buffers carry float32 end to end (error
        accumulation stays float64 in :mod:`repro.tensor.norms`).

    Attributes
    ----------
    stats:
        :class:`~repro.kernels.stats.KernelStats` accumulated over the
        workspace lifetime (snapshot/delta to attribute per phase).
    pool:
        The :class:`~repro.kernels.buffers.BufferPool` backing the slice
        stacks and chain scratch (allocating on :attr:`module`).
    """

    def __init__(
        self,
        ssvd: "SliceSVD",
        engine: ExecutionBackend | None = None,
        *,
        module: ArrayModule | None = None,
        compute_dtype: "np.dtype | type | None" = None,
    ) -> None:
        self.ssvd = ssvd
        self.module = module if module is not None else NUMPY
        self.compute_dtype = np.dtype(
            np.float64 if compute_dtype is None else compute_dtype
        )
        self.pool = BufferPool(self.module)
        self.stats = KernelStats()
        if self.module.is_numpy:
            self.engine = engine
            # Identity (no copy) for the default float64: SliceSVD stores
            # float64, so the historical path is untouched bit for bit.
            self._u = np.asarray(ssvd.u, dtype=self.compute_dtype)
            self._s = np.asarray(ssvd.s, dtype=self.compute_dtype)
            self._vt = np.asarray(ssvd.vt, dtype=self.compute_dtype)
        else:
            self.engine = None
            am = self.module
            self._u = am.to_device(np.asarray(ssvd.u, dtype=self.compute_dtype))
            self._s = am.to_device(np.asarray(ssvd.s, dtype=self.compute_dtype))
            self._vt = am.to_device(np.asarray(ssvd.vt, dtype=self.compute_dtype))
            itemsize = self.compute_dtype.itemsize
            for host in (ssvd.u, ssvd.s, ssvd.vt):
                self.stats.record_transfer("h2d", host.size * itemsize)
        self._factors: dict[int, np.ndarray] = {}
        self._factors_src: dict[int, np.ndarray] = {}
        self._versions: dict[int, int] = {}
        self._au: np.ndarray | None = None
        self._au_version: int | None = None
        self._av: np.ndarray | None = None
        self._av_version: int | None = None
        self._w: np.ndarray | None = None
        self._w_key: tuple[int, int] | None = None
        self._chain_cache: dict[tuple, np.ndarray] = {}

    # -- factor registry ---------------------------------------------------
    def bind_factors(self, factors: Sequence[np.ndarray]) -> None:
        """Register the current factor set, bumping versions on change.

        A factor numerically identical to the registered one keeps its
        version (so caches warmed by a previous phase — e.g. a streaming
        update's temporal re-initialisation — stay valid); anything else
        invalidates exactly the caches that depend on it.
        """
        if len(factors) != self.ssvd.order:
            raise ShapeError(
                f"expected {self.ssvd.order} factors, got {len(factors)}"
            )
        for n, fac in enumerate(factors):
            current = self._factors_src.get(n)
            if current is not None and (
                current is fac
                or (
                    type(current) is np.ndarray
                    and type(fac) is np.ndarray
                    and np.array_equal(current, fac)
                )
            ):
                continue
            self.update_factor(n, fac)

    def update_factor(self, mode: int, factor: np.ndarray) -> None:
        """Install a new factor for ``mode`` and invalidate dependents.

        Factors are normalised to the workspace's compute dtype and, on a
        device module, uploaded once here (tallied as ``xfer:h2d``); device
        arrays produced by the sweeps themselves are stored as-is.
        """
        prepared = factor
        if type(prepared) is np.ndarray:
            if prepared.dtype != self.compute_dtype:
                prepared = np.asarray(prepared, dtype=self.compute_dtype)
            if not self.module.is_numpy:
                self.stats.record_transfer("h2d", prepared.nbytes)
                prepared = self.module.to_device(prepared)
        self._factors[int(mode)] = prepared
        self._factors_src[int(mode)] = factor
        self._versions[int(mode)] = self._versions.get(int(mode), -1) + 1

    def factor(self, mode: int) -> np.ndarray:
        return self._factors[int(mode)]

    # -- buffer helper -----------------------------------------------------
    def _take(
        self, tag: str, shape: tuple[int, ...], dtype: "np.dtype | None" = None
    ) -> np.ndarray:
        before = self.pool.bytes_reused
        buf = self.pool.take(
            tag, shape, self.compute_dtype if dtype is None else dtype
        )
        self.stats.bytes_reused += self.pool.bytes_reused - before
        return buf

    # -- scheduling costs --------------------------------------------------
    def _slice_costs(self, flops_per_slice: float) -> np.ndarray:
        """Uniform per-slice cost model for one sweep contraction.

        Slices share a shape, so within one dispatch the costs are flat —
        but the *magnitude* matters for the engine's telemetry and for any
        future mixed dispatch: a contraction downstream of a projection
        cache hit carries only its final-einsum flops, while a dirty
        projection's rebuild dispatch carries the projection flops.
        """
        return np.full(self.ssvd.num_slices, max(1.0, float(flops_per_slice)))

    # -- cached projections ------------------------------------------------
    def au(self) -> np.ndarray:
        """Projection stack ``A(1)ᵀU`` of shape ``(L, J1, K)``, cached.

        The stack is a *fresh* array per recompute, never a pooled buffer:
        it is later shipped as an engine slab, and the process backend
        caches shared-memory uploads by array identity — a pooled buffer
        mutated in place would be served stale to the workers.
        """
        version = self._versions[0]
        if self._au is not None and self._au_version == version:
            self.stats.record_hit("au")
            return self._au
        self.stats.record_miss("au")
        ssvd = self.ssvd
        i1, k = int(self._u.shape[1]), int(self._u.shape[2])
        j1 = int(self._factors[0].shape[1])
        self._au = dispatch_slices(
            self.engine, project_left_chunk, ssvd.num_slices,
            (self._u,), {"a1": self._factors[0]},
            costs=self._slice_costs(2.0 * i1 * j1 * k),
        )
        self._au_version = version
        return self._au

    def av(self) -> np.ndarray:
        """Projection stack ``VᵀA(2)`` of shape ``(L, K, J2)``, cached.

        Fresh per recompute for the same slab-identity reason as :meth:`au`.
        """
        version = self._versions[1]
        if self._av is not None and self._av_version == version:
            self.stats.record_hit("av")
            return self._av
        self.stats.record_miss("av")
        ssvd = self.ssvd
        k, i2 = int(self._vt.shape[1]), int(self._vt.shape[2])
        j2 = int(self._factors[1].shape[1])
        self._av = dispatch_slices(
            self.engine, project_right_chunk, ssvd.num_slices,
            (self._vt,), {"a2": self._factors[1]},
            costs=self._slice_costs(2.0 * k * i2 * j2),
        )
        self._av_version = version
        return self._av

    # -- partials and W ----------------------------------------------------
    def mode1_partial(self) -> np.ndarray:
        """``X̃ ×_2 A(2)ᵀ`` of shape ``(I1, J2, I3, …)`` via the cached ``av``."""
        av = self.av()
        ssvd = self.ssvd
        i1 = ssvd.slice_shape[0]
        buf = self._take("m1_stack", (ssvd.num_slices, i1, av.shape[2]))
        stack = dispatch_slices(
            self.engine, mode1_from_projection_chunk, ssvd.num_slices,
            (self._u, self._s, av), {}, out=buf,
            costs=self._slice_costs(2.0 * i1 * self._u.shape[2] * av.shape[2]),
        )
        return stack_to_tensor(stack, ssvd.shape[2:])

    def mode2_partial(self) -> np.ndarray:
        """``X̃ ×_1 A(1)ᵀ`` of shape ``(J1, I2, I3, …)`` via the cached ``au``."""
        au = self.au()
        ssvd = self.ssvd
        i2 = ssvd.slice_shape[1]
        buf = self._take("m2_stack", (ssvd.num_slices, au.shape[1], i2))
        stack = dispatch_slices(
            self.engine, mode2_from_projection_chunk, ssvd.num_slices,
            (au, self._s, self._vt), {}, out=buf,
            costs=self._slice_costs(2.0 * au.shape[1] * au.shape[2] * i2),
        )
        return stack_to_tensor(stack, ssvd.shape[2:])

    def w(self) -> np.ndarray:
        """``W = X̃ ×_1 A(1)ᵀ ×_2 A(2)ᵀ``, cached on the factor-version pair."""
        key = (self._versions[0], self._versions[1])
        if self._w is not None and self._w_key == key:
            self.stats.record_hit("w")
            return self._w
        au = self.au()
        av = self.av()
        self.stats.record_miss("w")
        ssvd = self.ssvd
        buf = self._take("w_stack", (ssvd.num_slices, au.shape[1], av.shape[2]))
        stack = dispatch_slices(
            self.engine, w_from_projections_chunk, ssvd.num_slices,
            (au, self._s, av), {}, out=buf,
            costs=self._slice_costs(
                2.0 * au.shape[1] * au.shape[2] * av.shape[2]
            ),
        )
        # The reshaped tensor is a fresh array, so caching it keeps the
        # stack buffer free for reuse.
        self._w = stack_to_tensor(stack, ssvd.shape[2:])
        self._w_key = key
        self._chain_cache.clear()
        return self._w

    # -- TTM chains --------------------------------------------------------
    def project_w_trailing(self, *, skip: int | None = None) -> np.ndarray:
        """``W`` contracted with ``A(m)ᵀ`` for every mode ``m ≥ 2`` but ``skip``.

        Chains run in the planner's greedy order and walk a prefix cache
        keyed on the exact ``(mode, factor-version)`` steps applied, so the
        ``skip = n`` updates and the final core projection share every
        intermediate their planned orders have in common.
        """
        w = self.w()
        modes = [m for m in range(2, self.ssvd.order) if m != skip]
        if not modes:
            return w
        mats = [self._factors[m] for m in modes]
        order = plan_ttm_chain(
            w.shape, tuple(m.shape for m in mats), tuple(modes), transpose=True
        )
        out = w
        steps: tuple = ()
        for idx in order:
            mode = modes[idx]
            steps = steps + ((mode, self._versions[mode]),)
            cached = self._chain_cache.get(steps)
            if cached is not None:
                self.stats.record_hit("chain")
                out = cached
                continue
            self.stats.record_miss("chain")
            out = mode_product(out, self._factors[mode], mode, transpose=True)
            if len(self._chain_cache) < _MAX_CHAIN_ENTRIES:
                self._chain_cache[steps] = out
        return out

    def project_trailing(
        self, tensor: np.ndarray, *, skip: int | None = None, tag: str | None = None
    ) -> np.ndarray:
        """Contract modes ``2..N-1`` (minus ``skip``) of an arbitrary tensor.

        Used for the mode-1/mode-2 partials, whose base tensor changes
        every sweep (no chain reuse), but which still benefit from the
        memoized plan and — when ``tag`` is given — from pooled ``out=``
        buffers for the per-step GEMMs.  The final result always lands in a
        fresh array so callers may hold it across pool reuse.
        """
        modes = [m for m in range(2, self.ssvd.order) if m != skip]
        if not modes:
            return tensor
        mats = [self._factors[m] for m in modes]
        order = plan_ttm_chain(
            tensor.shape, tuple(m.shape for m in mats), tuple(modes), transpose=True
        )
        out = tensor
        for step, idx in enumerate(order):
            mode = modes[idx]
            buf = None
            if tag is not None and step < len(order) - 1:
                shape = list(out.shape)
                shape[mode] = mats[idx].shape[1]
                moved = [shape[mode]] + shape[:mode] + shape[mode + 1:]
                buf = self._take(f"{tag}:{step}", tuple(moved))
            out = mode_product(
                out, self._factors[mode], mode, transpose=True, out=buf
            )
        return out

    # -- bookkeeping -------------------------------------------------------
    def finish_sweep(self) -> None:
        """Mark one completed sweep (normalises per-sweep stats)."""
        self.stats.sweeps += 1

    def invalidate(self) -> None:
        """Drop every cached value (factors and versions are kept)."""
        self._au = self._av = self._w = None
        self._au_version = self._av_version = self._w_key = None
        self._chain_cache.clear()


class StreamingWorkspace:
    """Projection state carried *across* streaming updates.

    Where :class:`SweepWorkspace` caches within one iteration phase, this
    workspace makes the caches survive ingestion: it owns growable buffers
    holding the accumulated slice triples ``(U_l, s_l, V_lᵀ)`` *and* their
    projections ``A(1)ᵀU_l`` / ``V_lᵀA(2)`` / ``W_l`` under the current
    non-temporal factors.  An arriving block only appends its own rows —
    historical projections are never recomputed, which is what turns a
    streaming update from an O(T) refit into an O(block) step.

    Mutation surface (all amortised O(touched slices), never O(T)):

    * :meth:`append` — add a compressed block's slices, computing the
      projection rows for the *new* slices only;
    * :meth:`evict` — drop the oldest slices (sliding window), advancing a
      start offset and compacting the buffers amortised;
    * :meth:`decay` — fold an exponential down-weight ``γ`` into the stored
      ``Σ_l`` (and the ``Σ``-dependent ``W`` cache and norms);
    * :meth:`rotate` — re-express the cached projections under refreshed
      non-temporal factors via the small rotations ``R = A_oldᵀ A_new``
      (exact when the new factor stays in the old column space — the drift
      watchdog owns the residual);
    * :meth:`replace` — splice corrected slices over a stale range,
      recomputing exactly the affected projection rows.

    Accounting: every reused historical projection row records a
    ``stream:proj`` hit, every computed row a miss — the CI guard asserts
    misses per update stay O(block).  Rotations tally under
    ``stream:rotate``.
    """

    def __init__(self, stats: KernelStats | None = None) -> None:
        self.stats = stats if stats is not None else KernelStats()
        self._start = 0
        self._stop = 0
        self._u: np.ndarray | None = None
        self._s: np.ndarray | None = None
        self._vt: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._au: np.ndarray | None = None
        self._av: np.ndarray | None = None
        self._w: np.ndarray | None = None
        self._a1: np.ndarray | None = None
        self._a2: np.ndarray | None = None
        self._mid_shape: tuple[int, ...] = ()
        self._slice_dims: tuple[int, int] | None = None
        self._rank: int | None = None

    # -- geometry ----------------------------------------------------------
    @property
    def num_slices(self) -> int:
        """Live (windowed) slice count."""
        return self._stop - self._start

    @property
    def per_step(self) -> int:
        """Slices per temporal step (product of the intermediate modes)."""
        out = 1
        for d in self._mid_shape:
            out *= int(d)
        return out

    @property
    def extent(self) -> int:
        """Live temporal extent (timesteps currently represented)."""
        return 0 if self.num_slices == 0 else self.num_slices // self.per_step

    @property
    def shape(self) -> tuple[int, ...]:
        """Full tensor shape of the live window."""
        if self._slice_dims is None:
            raise ShapeError("StreamingWorkspace is empty; append a block first")
        return self._slice_dims + self._mid_shape + (self.extent,)

    @property
    def factors(self) -> tuple[np.ndarray, np.ndarray]:
        """The non-temporal factors the cached projections are valid for."""
        if self._a1 is None or self._a2 is None:
            raise ShapeError("StreamingWorkspace has no bound factors yet")
        return self._a1, self._a2

    # -- buffer plumbing ---------------------------------------------------
    def _reserve(self, extra: int) -> None:
        """Make room for ``extra`` more slices, amortised O(live + extra)."""
        assert self._u is not None
        cap = self._u.shape[0]
        if self._stop + extra <= cap:
            return
        live = self.num_slices
        names = ("_u", "_s", "_vt", "_norms", "_au", "_av", "_w")
        if live + extra > cap // 2:
            new_cap = max(4 * (live + extra), cap)
            for name in names:
                old = getattr(self, name)
                grown = np.empty((new_cap,) + old.shape[1:], dtype=old.dtype)
                grown[:live] = old[self._start : self._stop]
                setattr(self, name, grown)
        else:
            # Plenty of capacity, just a large dead prefix: compact in place.
            for name in names:
                arr = getattr(self, name)
                arr[:live] = arr[self._start : self._stop]
        self._start, self._stop = 0, live

    def _project_rows(
        self, lo: int, hi: int, u: np.ndarray, s: np.ndarray, vt: np.ndarray
    ) -> None:
        """Fill projection rows ``[lo, hi)`` from the given slice triples."""
        assert self._a1 is not None and self._a2 is not None
        au = project_left_chunk(u, a1=self._a1)
        av = project_right_chunk(vt, a2=self._a2)
        self._au[lo:hi] = au
        self._av[lo:hi] = av
        w_from_projections_chunk(au, s, av, out=self._w[lo:hi])

    # -- mutation ----------------------------------------------------------
    def append(self, block: "SliceSVD", a1: np.ndarray, a2: np.ndarray) -> None:
        """Ingest a compressed block: append slices + project only its rows.

        The first call binds the geometry and the non-temporal factors;
        later calls require ``a1``/``a2`` to be the bound factors (use
        :meth:`rotate` to refresh them) and a block matching the bound
        slice shape and rank.
        """
        n_new = block.num_slices
        if block.slice_norms_squared is None:
            raise ShapeError(
                "StreamingWorkspace requires per-slice norms on every block"
            )
        if self._u is None:
            self._slice_dims = block.slice_shape
            self._rank = block.rank
            self._mid_shape = tuple(int(d) for d in block.shape[2:-1])
            i1, i2 = self._slice_dims
            k = self._rank
            j1, j2 = a1.shape[1], a2.shape[1]
            cap = max(4 * n_new, 8)
            self._u = np.empty((cap, i1, k))
            self._s = np.empty((cap, k))
            self._vt = np.empty((cap, k, i2))
            self._norms = np.empty((cap,))
            self._au = np.empty((cap, j1, k))
            self._av = np.empty((cap, k, j2))
            self._w = np.empty((cap, j1, j2))
            self._a1 = np.asarray(a1, dtype=float)
            self._a2 = np.asarray(a2, dtype=float)
        else:
            if block.slice_shape != self._slice_dims or block.rank != self._rank:
                raise ShapeError(
                    f"block slice shape {block.slice_shape} rank {block.rank} "
                    f"does not match bound {self._slice_dims} rank {self._rank}"
                )
            if tuple(int(d) for d in block.shape[2:-1]) != self._mid_shape:
                raise ShapeError(
                    f"block intermediate modes {block.shape[2:-1]} do not "
                    f"match bound {self._mid_shape}"
                )
            if a1 is not self._a1 or a2 is not self._a2:
                raise ShapeError(
                    "append must use the bound non-temporal factors; call "
                    "rotate() to refresh them first"
                )
            self._reserve(n_new)
        lo, hi = self._stop, self._stop + n_new
        self._u[lo:hi] = block.u
        self._s[lo:hi] = block.s
        self._vt[lo:hi] = block.vt
        self._norms[lo:hi] = block.slice_norms_squared
        self._project_rows(lo, hi, block.u, block.s, block.vt)
        self._stop = hi
        # Historical rows reused untouched; only the block's rows computed.
        hits = self.num_slices - n_new
        if hits:
            self.stats.counts.setdefault("stream:proj", [0, 0])[0] += hits
        self.stats.counts.setdefault("stream:proj", [0, 0])[1] += n_new

    def evict(self, n_slices: int) -> None:
        """Drop the ``n_slices`` oldest slices (O(evicted) amortised)."""
        n = int(n_slices)
        if n < 0 or n > self.num_slices:
            raise ShapeError(
                f"cannot evict {n} of {self.num_slices} live slices"
            )
        self._start += n
        if n:
            self.stats.counts.setdefault("stream:evict", [0, 0])[1] += n

    def decay(self, factor: float) -> None:
        """Down-weight all live slices: ``Σ_l ← γ Σ_l`` (norms by ``γ²``)."""
        f = float(factor)
        if not 0.0 < f <= 1.0:
            raise ShapeError(f"decay factor must be in (0, 1], got {factor!r}")
        if f == 1.0 or self._u is None:
            return
        lo, hi = self._start, self._stop
        self._s[lo:hi] *= f
        self._norms[lo:hi] *= f * f
        self._w[lo:hi] *= f

    def rotate(self, a1: np.ndarray, a2: np.ndarray) -> None:
        """Re-express the cached projections under refreshed factors.

        Applies the small rotations ``R1 = A(1)_oldᵀ A(1)_new`` and
        ``R2 = A(2)_oldᵀ A(2)_new`` to every cached row — O(L·J²·K) with
        tiny constants, versus the O(L·I·J·K) full recompute.  Exact when
        the refreshed factors lie in the old column spaces; otherwise the
        residual shows up in the error estimate and the drift watchdog
        triggers a full refresh.
        """
        old1, old2 = self.factors
        new1 = np.asarray(a1, dtype=float)
        new2 = np.asarray(a2, dtype=float)
        if new1.shape != old1.shape or new2.shape != old2.shape:
            raise ShapeError(
                "rotate cannot change factor shapes: "
                f"{old1.shape}/{old2.shape} -> {new1.shape}/{new2.shape}"
            )
        r1 = old1.T @ new1
        r2 = old2.T @ new2
        lo, hi = self._start, self._stop
        self._au[lo:hi] = np.einsum(
            "aj,lak->ljk", r1, self._au[lo:hi], optimize=True
        )
        self._av[lo:hi] = np.einsum(
            "lkb,bj->lkj", self._av[lo:hi], r2, optimize=True
        )
        self._w[lo:hi] = np.einsum(
            "aj,lab,bc->ljc", r1, self._w[lo:hi], r2, optimize=True
        )
        self._a1, self._a2 = new1, new2
        self.stats.counts.setdefault("stream:rotate", [0, 0])[1] += 1

    def replace(self, start: int, block: "SliceSVD") -> None:
        """Splice corrected slices over ``[start, start + L_block)``.

        Recomputes exactly the replaced rows' projections; all other
        cached rows are untouched (revision cost is O(revised block)).
        """
        n = block.num_slices
        lo = self._start + int(start)
        hi = lo + n
        if not self._start <= lo < hi <= self._stop:
            raise ShapeError(
                f"slice range [{int(start)}, {int(start) + n}) out of bounds "
                f"for {self.num_slices} live slices"
            )
        if block.slice_norms_squared is None:
            raise ShapeError("replace requires per-slice norms on the block")
        self._u[lo:hi] = block.u
        self._s[lo:hi] = block.s
        self._vt[lo:hi] = block.vt
        self._norms[lo:hi] = block.slice_norms_squared
        self._project_rows(lo, hi, block.u, block.s, block.vt)
        hits = self.num_slices - n
        if hits:
            self.stats.counts.setdefault("stream:proj", [0, 0])[0] += hits
        self.stats.counts.setdefault("stream:proj", [0, 0])[1] += n

    def recompute(self, a1: np.ndarray, a2: np.ndarray) -> None:
        """Full projection rebuild under new factors (watchdog refresh path).

        O(T) by design — this is the selective re-compression escape hatch,
        not the steady-state path; every row tallies a ``stream:proj`` miss.
        """
        if self._u is None:
            raise ShapeError("StreamingWorkspace is empty; append a block first")
        new1 = np.asarray(a1, dtype=float)
        new2 = np.asarray(a2, dtype=float)
        j1, j2 = new1.shape[1], new2.shape[1]
        k = self._rank
        cap = self._u.shape[0]
        if (j1, k) != self._au.shape[1:] or (j2,) != self._av.shape[2:]:
            self._au = np.empty((cap, j1, k))
            self._av = np.empty((cap, k, j2))
            self._w = np.empty((cap, j1, j2))
        self._a1, self._a2 = new1, new2
        lo, hi = self._start, self._stop
        self._project_rows(lo, hi, self._u[lo:hi], self._s[lo:hi], self._vt[lo:hi])
        self.stats.counts.setdefault("stream:proj", [0, 0])[1] += self.num_slices

    # -- views -------------------------------------------------------------
    def slice_svd(self) -> "SliceSVD":
        """The live window as a :class:`SliceSVD` (zero-copy views).

        The views alias the internal buffers: they are valid until the next
        mutation, which is exactly the within-update lifetime the streaming
        solver needs.
        """
        from ..core.slice_svd import SliceSVD

        lo, hi = self._start, self._stop
        norms = self._norms[lo:hi]
        return SliceSVD(
            u=self._u[lo:hi],
            s=self._s[lo:hi],
            vt=self._vt[lo:hi],
            shape=self.shape,
            norm_squared=float(norms.sum()),
            slice_norms_squared=norms,
        )

    def norm_squared(self) -> float:
        """``‖X̃‖_F²`` of the live (decayed, windowed) window."""
        return float(self._norms[self._start : self._stop].sum())

    def w_tensor(self) -> np.ndarray:
        """The cached doubly-projected tensor ``W ∈ R^{J1×J2×I3×…×T}``."""
        self.stats.record_hit("w")
        return stack_to_tensor(self._w[self._start : self._stop], self.shape[2:])

    def nbytes(self) -> int:
        """Bytes held by the live window (slices + projection caches)."""
        live = self.num_slices
        total = 0
        for arr in (self._u, self._s, self._vt, self._norms,
                    self._au, self._av, self._w):
            if arr is not None and arr.shape[0]:
                total += arr[:1].nbytes * live
        return total
