"""The sweep workspace: cached projections, chain prefixes, scratch reuse.

:class:`SweepWorkspace` owns every compressed-domain contraction of the
iteration phase and makes each one *incremental* across the sweep:

* the per-slice projection stacks ``A(1)ᵀU`` and ``VᵀA(2)`` are cached and
  dirty-tracked on factor versions, so each is computed exactly once per
  factor update — the mode-2 update, the ``W`` build and the next sweep's
  mode-1 partial all share them;
* the doubly-projected tensor ``W`` is cached on the ``(A(1), A(2))``
  version pair, which removes the historical second ``w_tensor`` evaluation
  per sweep (core projection) entirely;
* TTM chains on ``W`` (the ``skip = n`` updates for modes ≥ 3 and the core
  projection) go through a chain-prefix cache keyed on the exact
  ``(mode, factor-version)`` steps applied, so chains that share a planned
  prefix — e.g. the core projection extending the last skip update —
  reuse the intermediate instead of recontracting it;
* the large slice stacks are written into preallocated
  :class:`~repro.kernels.buffers.BufferPool` slots via ``out=`` einsums, so
  steady-state sweeps stop allocating for the hot contractions.

Every cached value is produced by exactly the operations the uncached path
would run on identical inputs, so results are bit-identical to the naive
implementation (:mod:`repro.kernels.naive`) — the property
``tests/test_kernels.py`` pins across backends and tensor orders.

Invalidation rules
------------------
``update_factor(n, a)`` bumps mode ``n``'s version.  Caches consult
versions lazily: ``au`` depends on factor 0, ``av`` on factor 1, ``w`` on
both, and every chain step on the version of the factor it applied.  The
chain cache is cleared whenever ``W`` is rebuilt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..engine import ExecutionBackend
from ..exceptions import ShapeError
from ..tensor.products import mode_product
from .buffers import BufferPool
from .contractions import (
    dispatch_slices,
    mode1_from_projection_chunk,
    mode2_from_projection_chunk,
    project_left_chunk,
    project_right_chunk,
    stack_to_tensor,
    w_from_projections_chunk,
)
from .planner import plan_ttm_chain
from .stats import KernelStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.slice_svd import SliceSVD

__all__ = ["SweepWorkspace"]

#: Upper bound on cached chain intermediates (cleared with every new ``W``;
#: a sweep produces O(order²) entries, so this is never hit in practice).
_MAX_CHAIN_ENTRIES = 256


class SweepWorkspace:
    """Reusable kernel state for compressed-domain ALS sweeps.

    Parameters
    ----------
    ssvd:
        The compressed tensor the sweeps run on.  A workspace is bound to
        one representation; rebinding to a different ``SliceSVD`` is an
        error (build a fresh workspace instead).
    engine:
        Optional execution backend for the per-slice contractions.  May be
        swapped per phase (``als_sweeps`` installs its resolved backend for
        the duration of the iteration); results do not depend on it.

    Attributes
    ----------
    stats:
        :class:`~repro.kernels.stats.KernelStats` accumulated over the
        workspace lifetime (snapshot/delta to attribute per phase).
    pool:
        The :class:`~repro.kernels.buffers.BufferPool` backing the slice
        stacks and chain scratch.
    """

    def __init__(
        self, ssvd: "SliceSVD", engine: ExecutionBackend | None = None
    ) -> None:
        self.ssvd = ssvd
        self.engine = engine
        self.pool = BufferPool()
        self.stats = KernelStats()
        self._factors: dict[int, np.ndarray] = {}
        self._versions: dict[int, int] = {}
        self._au: np.ndarray | None = None
        self._au_version: int | None = None
        self._av: np.ndarray | None = None
        self._av_version: int | None = None
        self._w: np.ndarray | None = None
        self._w_key: tuple[int, int] | None = None
        self._chain_cache: dict[tuple, np.ndarray] = {}

    # -- factor registry ---------------------------------------------------
    def bind_factors(self, factors: Sequence[np.ndarray]) -> None:
        """Register the current factor set, bumping versions on change.

        A factor numerically identical to the registered one keeps its
        version (so caches warmed by a previous phase — e.g. a streaming
        update's temporal re-initialisation — stay valid); anything else
        invalidates exactly the caches that depend on it.
        """
        if len(factors) != self.ssvd.order:
            raise ShapeError(
                f"expected {self.ssvd.order} factors, got {len(factors)}"
            )
        for n, fac in enumerate(factors):
            current = self._factors.get(n)
            if current is not None and (
                current is fac or np.array_equal(current, fac)
            ):
                continue
            self.update_factor(n, fac)

    def update_factor(self, mode: int, factor: np.ndarray) -> None:
        """Install a new factor for ``mode`` and invalidate dependents."""
        self._factors[int(mode)] = factor
        self._versions[int(mode)] = self._versions.get(int(mode), -1) + 1

    def factor(self, mode: int) -> np.ndarray:
        return self._factors[int(mode)]

    # -- buffer helper -----------------------------------------------------
    def _take(self, tag: str, shape: tuple[int, ...]) -> np.ndarray:
        before = self.pool.bytes_reused
        buf = self.pool.take(tag, shape)
        self.stats.bytes_reused += self.pool.bytes_reused - before
        return buf

    # -- scheduling costs --------------------------------------------------
    def _slice_costs(self, flops_per_slice: float) -> np.ndarray:
        """Uniform per-slice cost model for one sweep contraction.

        Slices share a shape, so within one dispatch the costs are flat —
        but the *magnitude* matters for the engine's telemetry and for any
        future mixed dispatch: a contraction downstream of a projection
        cache hit carries only its final-einsum flops, while a dirty
        projection's rebuild dispatch carries the projection flops.
        """
        return np.full(self.ssvd.num_slices, max(1.0, float(flops_per_slice)))

    # -- cached projections ------------------------------------------------
    def au(self) -> np.ndarray:
        """Projection stack ``A(1)ᵀU`` of shape ``(L, J1, K)``, cached.

        The stack is a *fresh* array per recompute, never a pooled buffer:
        it is later shipped as an engine slab, and the process backend
        caches shared-memory uploads by array identity — a pooled buffer
        mutated in place would be served stale to the workers.
        """
        version = self._versions[0]
        if self._au is not None and self._au_version == version:
            self.stats.record_hit("au")
            return self._au
        self.stats.record_miss("au")
        ssvd = self.ssvd
        i1, k = ssvd.u.shape[1], ssvd.u.shape[2]
        j1 = self._factors[0].shape[1]
        self._au = dispatch_slices(
            self.engine, project_left_chunk, ssvd.num_slices,
            (ssvd.u,), {"a1": self._factors[0]},
            costs=self._slice_costs(2.0 * i1 * j1 * k),
        )
        self._au_version = version
        return self._au

    def av(self) -> np.ndarray:
        """Projection stack ``VᵀA(2)`` of shape ``(L, K, J2)``, cached.

        Fresh per recompute for the same slab-identity reason as :meth:`au`.
        """
        version = self._versions[1]
        if self._av is not None and self._av_version == version:
            self.stats.record_hit("av")
            return self._av
        self.stats.record_miss("av")
        ssvd = self.ssvd
        k, i2 = ssvd.vt.shape[1], ssvd.vt.shape[2]
        j2 = self._factors[1].shape[1]
        self._av = dispatch_slices(
            self.engine, project_right_chunk, ssvd.num_slices,
            (ssvd.vt,), {"a2": self._factors[1]},
            costs=self._slice_costs(2.0 * k * i2 * j2),
        )
        self._av_version = version
        return self._av

    # -- partials and W ----------------------------------------------------
    def mode1_partial(self) -> np.ndarray:
        """``X̃ ×_2 A(2)ᵀ`` of shape ``(I1, J2, I3, …)`` via the cached ``av``."""
        av = self.av()
        ssvd = self.ssvd
        i1 = ssvd.slice_shape[0]
        buf = self._take("m1_stack", (ssvd.num_slices, i1, av.shape[2]))
        stack = dispatch_slices(
            self.engine, mode1_from_projection_chunk, ssvd.num_slices,
            (ssvd.u, ssvd.s, av), {}, out=buf,
            costs=self._slice_costs(2.0 * i1 * ssvd.u.shape[2] * av.shape[2]),
        )
        return stack_to_tensor(stack, ssvd.shape[2:])

    def mode2_partial(self) -> np.ndarray:
        """``X̃ ×_1 A(1)ᵀ`` of shape ``(J1, I2, I3, …)`` via the cached ``au``."""
        au = self.au()
        ssvd = self.ssvd
        i2 = ssvd.slice_shape[1]
        buf = self._take("m2_stack", (ssvd.num_slices, au.shape[1], i2))
        stack = dispatch_slices(
            self.engine, mode2_from_projection_chunk, ssvd.num_slices,
            (au, ssvd.s, ssvd.vt), {}, out=buf,
            costs=self._slice_costs(2.0 * au.shape[1] * au.shape[2] * i2),
        )
        return stack_to_tensor(stack, ssvd.shape[2:])

    def w(self) -> np.ndarray:
        """``W = X̃ ×_1 A(1)ᵀ ×_2 A(2)ᵀ``, cached on the factor-version pair."""
        key = (self._versions[0], self._versions[1])
        if self._w is not None and self._w_key == key:
            self.stats.record_hit("w")
            return self._w
        au = self.au()
        av = self.av()
        self.stats.record_miss("w")
        ssvd = self.ssvd
        buf = self._take("w_stack", (ssvd.num_slices, au.shape[1], av.shape[2]))
        stack = dispatch_slices(
            self.engine, w_from_projections_chunk, ssvd.num_slices,
            (au, ssvd.s, av), {}, out=buf,
            costs=self._slice_costs(
                2.0 * au.shape[1] * au.shape[2] * av.shape[2]
            ),
        )
        # The reshaped tensor is a fresh array, so caching it keeps the
        # stack buffer free for reuse.
        self._w = stack_to_tensor(stack, ssvd.shape[2:])
        self._w_key = key
        self._chain_cache.clear()
        return self._w

    # -- TTM chains --------------------------------------------------------
    def project_w_trailing(self, *, skip: int | None = None) -> np.ndarray:
        """``W`` contracted with ``A(m)ᵀ`` for every mode ``m ≥ 2`` but ``skip``.

        Chains run in the planner's greedy order and walk a prefix cache
        keyed on the exact ``(mode, factor-version)`` steps applied, so the
        ``skip = n`` updates and the final core projection share every
        intermediate their planned orders have in common.
        """
        w = self.w()
        modes = [m for m in range(2, self.ssvd.order) if m != skip]
        if not modes:
            return w
        mats = [self._factors[m] for m in modes]
        order = plan_ttm_chain(
            w.shape, tuple(m.shape for m in mats), tuple(modes), transpose=True
        )
        out = w
        steps: tuple = ()
        for idx in order:
            mode = modes[idx]
            steps = steps + ((mode, self._versions[mode]),)
            cached = self._chain_cache.get(steps)
            if cached is not None:
                self.stats.record_hit("chain")
                out = cached
                continue
            self.stats.record_miss("chain")
            out = mode_product(out, self._factors[mode], mode, transpose=True)
            if len(self._chain_cache) < _MAX_CHAIN_ENTRIES:
                self._chain_cache[steps] = out
        return out

    def project_trailing(
        self, tensor: np.ndarray, *, skip: int | None = None, tag: str | None = None
    ) -> np.ndarray:
        """Contract modes ``2..N-1`` (minus ``skip``) of an arbitrary tensor.

        Used for the mode-1/mode-2 partials, whose base tensor changes
        every sweep (no chain reuse), but which still benefit from the
        memoized plan and — when ``tag`` is given — from pooled ``out=``
        buffers for the per-step GEMMs.  The final result always lands in a
        fresh array so callers may hold it across pool reuse.
        """
        modes = [m for m in range(2, self.ssvd.order) if m != skip]
        if not modes:
            return tensor
        mats = [self._factors[m] for m in modes]
        order = plan_ttm_chain(
            tensor.shape, tuple(m.shape for m in mats), tuple(modes), transpose=True
        )
        out = tensor
        for step, idx in enumerate(order):
            mode = modes[idx]
            buf = None
            if tag is not None and step < len(order) - 1:
                shape = list(out.shape)
                shape[mode] = mats[idx].shape[1]
                moved = [shape[mode]] + shape[:mode] + shape[mode + 1:]
                buf = self._take(f"{tag}:{step}", tuple(moved))
            out = mode_product(
                out, self._factors[mode], mode, transpose=True, out=buf
            )
        return out

    # -- bookkeeping -------------------------------------------------------
    def finish_sweep(self) -> None:
        """Mark one completed sweep (normalises per-sweep stats)."""
        self.stats.sweeps += 1

    def invalidate(self) -> None:
        """Drop every cached value (factors and versions are kept)."""
        self._au = self._av = self._w = None
        self._au_version = self._av_version = self._w_key = None
        self._chain_cache.clear()
