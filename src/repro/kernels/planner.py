"""Memoized TTM-chain planning.

A TTM chain (``tensor ×_{m ∈ modes} A_m``) admits many contraction orders;
the library's policy is greedy smallest-output-first, which keeps the
intermediates of projection chains (tall matrices applied transposed) as
small as possible.  The order depends only on the *shapes* involved, and the
iteration phase asks for the same handful of shapes thousands of times —
once per mode per sweep — so this module memoizes the plan per shape
signature instead of re-deriving it on every call.

The greedy selection here also fixes a latent bug in the original
``multi_mode_product``: the shrink ratio used to be read off the *original*
tensor's shape at every step rather than the evolving intermediate's.  For
chains whose modes are all distinct the two agree (contracting one mode
never changes another mode's extent), but the planner is now written
against the evolving shape so the invariant is structural, not accidental.
"""

from __future__ import annotations

__all__ = [
    "plan_ttm_chain",
    "ttm_chain_signature",
    "plan_cache_info",
    "clear_plan_cache",
]

#: Shape-signature → contraction order (indices into the ``modes`` list).
_PLAN_CACHE: dict[tuple, tuple[int, ...]] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0

#: Safety valve: the signature space is tiny in practice (a few shapes per
#: solver), but a pathological caller cycling through shapes must not leak.
_MAX_PLANS = 4096


def ttm_chain_signature(
    tensor_shape: tuple[int, ...],
    matrix_shapes: tuple[tuple[int, int], ...],
    modes: tuple[int, ...],
    transpose: bool,
) -> tuple:
    """Hashable key identifying a chain-planning problem."""
    return (tuple(tensor_shape), tuple(matrix_shapes), tuple(modes), bool(transpose))


def plan_ttm_chain(
    tensor_shape: tuple[int, ...],
    matrix_shapes: tuple[tuple[int, int], ...],
    modes: tuple[int, ...],
    transpose: bool = False,
) -> tuple[int, ...]:
    """Greedy smallest-output-first contraction order for a TTM chain.

    Parameters
    ----------
    tensor_shape:
        Shape of the input tensor.
    matrix_shapes:
        ``(rows, cols)`` of each matrix, aligned with ``modes``.
    modes:
        Distinct modes to contract.
    transpose:
        Whether each matrix is applied transposed.

    Returns
    -------
    tuple of int
        Indices into ``modes`` in contraction order.  At every step the
        mode whose contraction shrinks the *current* intermediate the most
        is chosen; ties break on the original position, matching the
        stable-sort behaviour the solvers were validated against.
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = ttm_chain_signature(tensor_shape, matrix_shapes, modes, transpose)
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _CACHE_HITS += 1
        return cached
    _CACHE_MISSES += 1

    shape = list(tensor_shape)
    remaining = list(range(len(modes)))
    order: list[int] = []
    while remaining:
        # Shrink ratio against the evolving intermediate; < 1 shrinks.
        def ratio(idx: int) -> float:
            rows = matrix_shapes[idx][1] if transpose else matrix_shapes[idx][0]
            return rows / shape[modes[idx]]

        best = min(remaining, key=lambda idx: (ratio(idx), idx))
        order.append(best)
        remaining.remove(best)
        shape[modes[best]] = (
            matrix_shapes[best][1] if transpose else matrix_shapes[best][0]
        )

    plan = tuple(order)
    if len(_PLAN_CACHE) >= _MAX_PLANS:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[key] = plan
    return plan


def plan_cache_info() -> dict[str, int]:
    """Memoization counters (for diagnostics and tests)."""
    return {
        "size": len(_PLAN_CACHE),
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
    }


def clear_plan_cache() -> None:
    """Drop all memoized plans and reset the counters."""
    global _CACHE_HITS, _CACHE_MISSES
    _PLAN_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
