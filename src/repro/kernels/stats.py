"""Cache accounting for the sweep-level kernel layer.

Every cached quantity in :class:`~repro.kernels.workspace.SweepWorkspace`
(the ``A(1)ᵀU`` / ``VᵀA(2)`` projection stacks, the doubly-projected ``W``
tensor, TTM-chain prefixes) records a hit or a miss under a short kernel
name.  The counters are cheap plain integers; the iteration phase folds the
per-phase delta into its :class:`~repro.engine.trace.PhaseTrace`, which is
what ``python -m repro decompose --trace`` prints and what the perf-smoke
CI job asserts on (at most one ``w`` evaluation per sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Hit/miss tallies per kernel plus workspace-buffer reuse in bytes.

    Attributes
    ----------
    counts:
        Mapping of kernel name (``"au"``, ``"av"``, ``"w"``, ``"chain"``) to
        a ``[hits, misses]`` pair.
    bytes_reused:
        Bytes served from preallocated workspace buffers instead of fresh
        allocations.
    sweeps:
        ALS sweeps the workspace has executed (used to normalise
        per-sweep evaluation counts).
    """

    counts: dict[str, list[int]] = field(default_factory=dict)
    bytes_reused: int = 0
    sweeps: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    bytes_comm: int = 0

    # -- recording ---------------------------------------------------------
    def record_hit(self, name: str) -> None:
        self.counts.setdefault(name, [0, 0])[0] += 1

    def record_miss(self, name: str) -> None:
        self.counts.setdefault(name, [0, 0])[1] += 1

    def record_transfer(self, direction: str, nbytes: int) -> None:
        """Record one host↔device transfer (``"h2d"`` or ``"d2h"``).

        Each transfer counts as a miss under ``xfer:h2d`` / ``xfer:d2h``
        (so transfer *counts* surface wherever kernel counters do) and the
        bytes moved accumulate on :attr:`bytes_h2d` / :attr:`bytes_d2h`.
        """
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
        self.record_miss(f"xfer:{direction}")
        if direction == "h2d":
            self.bytes_h2d += int(nbytes)
        else:
            self.bytes_d2h += int(nbytes)

    def record_comm(self, kind: str, nbytes: int) -> None:
        """Record one cross-shard communication event.

        ``kind`` names the traffic class: ``"ship"`` for shard→coordinator
        factor products, ``"bcast"`` for coordinator→shard broadcast state
        (sketches, factor blocks), ``"reduce"`` for one combine round on the
        coordinator.  Each event counts as a miss under ``comm:<kind>`` and
        the bytes accumulate on :attr:`bytes_comm`, so the distributed layer
        can prove reduce traffic stays ``O((I1+I2+1)·K)`` per slice.
        """
        self.record_miss(f"comm:{kind}")
        self.bytes_comm += int(nbytes)

    def record(self, name: str, *, hit: bool) -> None:
        """Record one lookup under ``name`` as a hit or a miss.

        Convenience for callers that hold the outcome as a boolean (the
        serving-layer caches); equivalent to calling :meth:`record_hit` or
        :meth:`record_miss`.
        """
        if hit:
            self.record_hit(name)
        else:
            self.record_miss(name)

    # -- aggregates --------------------------------------------------------
    @property
    def hits(self) -> int:
        return sum(pair[0] for pair in self.counts.values())

    @property
    def misses(self) -> int:
        return sum(pair[1] for pair in self.counts.values())

    def hits_for(self, name: str) -> int:
        return self.counts.get(name, [0, 0])[0]

    def misses_for(self, name: str) -> int:
        return self.counts.get(name, [0, 0])[1]

    @property
    def w_evals(self) -> int:
        """Actual ``W = X̃ ×_1 A(1)ᵀ ×_2 A(2)ᵀ`` evaluations (cache misses)."""
        return self.misses_for("w")

    @property
    def sketch_draws(self) -> int:
        """Gaussian test-matrix draws recorded by the compression planner.

        The planner amortises sketching to one draw per slab/batch; the
        perf-smoke CI job asserts this never exceeds the batch count.
        """
        return self.misses_for("sketch")

    def plan_decisions(self) -> dict[str, int]:
        """Compression-planner decisions per method, e.g. ``{"gram": 4}``.

        Each :func:`repro.kernels.compress_plan.execute_plan` call records
        its chosen method under ``plan:<method>``.
        """
        return {
            name.split(":", 1)[1]: pair[1]
            for name, pair in self.counts.items()
            if name.startswith("plan:")
        }

    def w_evals_per_sweep(self) -> float:
        """Average ``W`` evaluations per completed sweep (``inf`` pre-sweep)."""
        if self.sweeps <= 0:
            return float("inf") if self.w_evals else 0.0
        return self.w_evals / self.sweeps

    def merge(self, other: "KernelStats") -> None:
        """Fold another stats object into this one (streaming accumulation)."""
        for name, (h, m) in other.counts.items():
            pair = self.counts.setdefault(name, [0, 0])
            pair[0] += h
            pair[1] += m
        self.bytes_reused += other.bytes_reused
        self.sweeps += other.sweeps
        self.bytes_h2d += other.bytes_h2d
        self.bytes_d2h += other.bytes_d2h
        self.bytes_comm += other.bytes_comm

    # -- snapshots ---------------------------------------------------------
    def copy(self) -> "KernelStats":
        return KernelStats(
            counts={k: list(v) for k, v in self.counts.items()},
            bytes_reused=self.bytes_reused,
            sweeps=self.sweeps,
            bytes_h2d=self.bytes_h2d,
            bytes_d2h=self.bytes_d2h,
            bytes_comm=self.bytes_comm,
        )

    def delta(self, earlier: "KernelStats") -> "KernelStats":
        """Counters accumulated since ``earlier`` (a prior :meth:`copy`)."""
        counts: dict[str, list[int]] = {}
        for name, (h, m) in self.counts.items():
            eh, em = earlier.counts.get(name, [0, 0])
            if h - eh or m - em:
                counts[name] = [h - eh, m - em]
        return KernelStats(
            counts=counts,
            bytes_reused=self.bytes_reused - earlier.bytes_reused,
            sweeps=self.sweeps - earlier.sweeps,
            bytes_h2d=self.bytes_h2d - earlier.bytes_h2d,
            bytes_d2h=self.bytes_d2h - earlier.bytes_d2h,
            bytes_comm=self.bytes_comm - earlier.bytes_comm,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (used by the sweep-kernel benchmark)."""
        return {
            "counts": {k: {"hits": v[0], "misses": v[1]} for k, v in self.counts.items()},
            "hits": self.hits,
            "misses": self.misses,
            "bytes_reused": self.bytes_reused,
            "sweeps": self.sweeps,
            "w_evals": self.w_evals,
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "bytes_comm": self.bytes_comm,
        }

    def summary(self) -> str:
        """One-line human-readable summary, mirroring PhaseTrace style."""
        per_kernel = " ".join(
            f"{name}={pair[0]}h/{pair[1]}m" for name, pair in sorted(self.counts.items())
        )
        xfer = ""
        if self.bytes_h2d or self.bytes_d2h:
            xfer = (
                f" xfer={self.bytes_h2d / 2**20:.1f}MiB>/"
                f"{self.bytes_d2h / 2**20:.1f}MiB<"
            )
        comm = ""
        if self.bytes_comm:
            comm = f" comm={self.bytes_comm / 2**20:.1f}MiB"
        return (
            f"kernel cache: {self.hits} hits / {self.misses} misses "
            f"[{per_kernel or '-'}] reuse={self.bytes_reused / 2**20:.1f}MiB "
            f"sweeps={self.sweeps}" + xfer + comm
        )
