"""Reference (uncached) ALS sweep loop, kept for parity testing.

:func:`naive_als_sweeps` is the iteration loop exactly as the library ran
it before the sweep-level kernel layer existed: every per-mode contraction
recomputes its slice projections from scratch, and each sweep evaluates the
doubly-projected ``W`` tensor *twice* — once for the ``skip = n`` factor
updates and once more for the core projection, even though no factor
changed in between.

It exists so the optimized path has a ground truth: ``tests/test_kernels.py``
asserts the :class:`~repro.kernels.workspace.SweepWorkspace`-backed
:func:`repro.core.als_sweeps` returns bit-identical factors, core and error
sequence on every backend, and ``benchmarks/bench_a8_sweep_kernels.py``
times the two against each other.  It is not part of the public API and
intentionally keeps the redundant work.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["naive_als_sweeps"]


def naive_als_sweeps(
    ssvd,
    ranks,
    factors: Sequence[np.ndarray],
    *,
    config=None,
    engine=None,
    callback: Callable[[int, float], None] | None = None,
):
    """Run the historical uncached sweep loop; mirrors ``als_sweeps``.

    Same signature subset and return type as
    :func:`repro.core.iteration.als_sweeps`; traces are recorded under the
    phase name ``"iteration-naive"`` so the two paths can be told apart in
    a shared engine's trace list.
    """
    # Function-level imports: this module is loaded by ``repro.kernels``,
    # which the core iteration module imports in turn.
    from ..core._ops import mode1_partial, mode2_partial, w_tensor
    from ..core.config import resolve_config
    from ..core.iteration import IterationResult
    from ..engine import backend_scope
    from ..exceptions import ConvergenceError
    from ..linalg.svd import leading_left_singular_vectors
    from ..tensor.norms import core_based_error
    from ..tensor.products import multi_mode_product
    from ..tensor.unfold import unfold
    from ..validation import check_ranks

    def project_trailing(tensor, facs, *, skip):
        modes = [m for m in range(2, tensor.ndim) if m != skip]
        if not modes:
            return tensor
        return multi_mode_product(
            tensor, [facs[m] for m in modes], modes=modes, transpose=True
        )

    cfg = resolve_config(config, where="naive_als_sweeps")
    rank_tuple = check_ranks(ranks, ssvd.shape)
    order = len(rank_tuple)
    facs = [np.asarray(a, dtype=float) for a in factors]
    if len(facs) != order:
        raise ConvergenceError(f"expected {order} initial factors, got {len(facs)}")

    errors: list[float] = []
    converged = False
    sweep = 0
    with backend_scope(engine, config=cfg) as eng, eng.phase("iteration-naive"):
        for sweep in range(1, int(cfg.max_iters) + 1):
            z1 = project_trailing(
                mode1_partial(ssvd, facs[1], engine=eng), facs, skip=None
            )
            facs[0] = leading_left_singular_vectors(unfold(z1, 0), rank_tuple[0])

            z2 = project_trailing(
                mode2_partial(ssvd, facs[0], engine=eng), facs, skip=None
            )
            facs[1] = leading_left_singular_vectors(unfold(z2, 1), rank_tuple[1])

            w = w_tensor(ssvd, facs[0], facs[1], engine=eng)
            for n in range(2, order):
                zn = project_trailing(w, facs, skip=n)
                facs[n] = leading_left_singular_vectors(unfold(zn, n), rank_tuple[n])

            # The historical redundancy under test: W is rebuilt although
            # factors 0/1 have not changed since the build above.
            w = w_tensor(ssvd, facs[0], facs[1], engine=eng)
            core = project_trailing(w, facs, skip=None)
            err = core_based_error(ssvd.norm_squared, core)
            if not np.isfinite(err):
                raise ConvergenceError(
                    f"non-finite error estimate at sweep {sweep}; input corrupt?"
                )
            errors.append(err)
            if callback is not None:
                callback(sweep, err)
            if len(errors) >= 2 and abs(errors[-2] - errors[-1]) < float(cfg.tol):
                converged = True
                break

    return IterationResult(
        core=core,
        factors=facs,
        errors=errors,
        converged=converged,
        n_iters=sweep,
    )
