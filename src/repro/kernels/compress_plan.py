"""Input-adaptive planning for the approximation (compression) phase.

The approximation phase factors ``L`` slice matrices of identical shape
``(I1, I2)``.  Three algorithms can produce the truncated SVD of such a
stack, with very different cost profiles:

* **exact** — batched ``numpy.linalg.svd``: ``O(M·m²)`` per slice with a
  large constant; unbeatable only when the short side is already
  rank-sized (a sketch would span the whole side anyway).
* **gram** — eigendecomposition of the ``m × m`` Gram matrix
  (:func:`repro.linalg.rsvd.batched_svd_via_gram`): one ``M·m²`` GEMM plus
  an ``O(m³)`` eig; wins when one side is much shorter than the other but
  still larger than the sketch size.
* **rsvd** — randomized SVD with a shared test matrix
  (:func:`repro.linalg.rsvd.batched_rsvd`): ``O(M·m·k)`` with
  ``k = rank + oversampling``; wins on squarish slices where ``k ≪ m``.

:func:`plan_compression` picks among them with the flop model of
:func:`estimate_costs` (``strategy="auto"``), reproduces the historical
dispatch for ``strategy="rsvd"``, or honours an explicit ``"gram"`` /
``"exact"`` request.  :func:`execute_plan` then runs the chosen method
through the execution engine: it draws (or receives) *one* Gaussian test
matrix per slab, applies it with a single stacked GEMM into a pooled
buffer, and fans the factorization out in chunks that are bitwise
identical to the unchunked batched call.

The cost constants were calibrated on batched NumPy/LAPACK timings (QR and
eig/SVD flops carry much larger constants than GEMM flops); they only need
to rank the three methods correctly, not predict wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine import ExecutionBackend, chunked, concat_chunks
from ..engine.array_api import ArrayModule, get_module, resolve_device
from ..exceptions import RankError, ShapeError
from ..linalg.rsvd import batched_rsvd, batched_svd_via_gram
from ..linalg.svd import sign_fix
from ..tensor.random import default_rng
from .buffers import BufferPool
from .stats import KernelStats

__all__ = [
    "CompressionPlan",
    "estimate_costs",
    "estimate_device_costs",
    "plan_compression",
    "plan_from_config",
    "plan_item_costs",
    "execute_plan",
    "factor_nbytes",
    "slab_norms",
]

#: Methods a plan can select.
_METHODS = ("exact", "gram", "rsvd")

# Relative per-flop weights of the building blocks, calibrated against
# batched NumPy timings on (L, I1, I2) stacks.  GEMM flops are the unit.
_C_EIG = 8.0  # eigh on the Gram matrix, per m³
_C_QR = 4.0  # batched QR, per M·k² flop block
_C_SVD_EXACT = 20.0  # full LAPACK SVD tail, per m³
_C_SVD_SMALL = 20.0  # SVD of the small (k, n) projection, per k³

# Device-placement constants (flop-equivalent units, calibrated against the
# same GEMM-flop scale as the method constants above).  An accelerator runs
# the batched GEMM/QR work roughly an order of magnitude faster than the
# host BLAS, but every slab byte must cross PCIe twice (slab up, factors
# down) at an effective cost of tens of host flops per byte — so small
# slabs stay on the CPU under ``strategy="auto"`` and only
# transfer-amortised ones move.
_DEVICE_SPEEDUP = 8.0  # host-flops of work retired per device "flop"
_XFER_FLOPS_PER_BYTE = 24.0  # host-flop-equivalents per transferred byte


@dataclass(frozen=True)
class CompressionPlan:
    """The planner's decision for one ``(L, I1, I2)`` slab.

    Attributes
    ----------
    method:
        Chosen algorithm: ``"exact"``, ``"gram"``, or ``"rsvd"``.
    strategy:
        The strategy that was requested (``"auto"``, ``"rsvd"``, …).
    k_eff:
        Sketch width ``min(rank + oversampling, min(I1, I2))``; the number
        of Gaussian test vectors the rsvd method draws.
    power_iterations:
        Subspace iterations the rsvd method will run.
    compute_dtype:
        Dtype the slab is factored in (norm accumulation stays float64).
    costs:
        Estimated per-slice flop costs for all three methods (for
        introspection and benchmarks), from :func:`estimate_costs`.
    device:
        Where the slab runs: ``"cpu"`` (the historical host path, default)
        or an array-namespace name (``"torch"``, ``"torch-cuda"``,
        ``"cupy"``).  ``strategy="auto"`` places the slab by the calibrated
        transfer + kernel cost model of :func:`estimate_device_costs`;
        explicit strategies honour the requested device directly.
    device_costs:
        Estimated total (transfer + kernel) cost per placement from
        :func:`estimate_device_costs`; empty when only the CPU was ever a
        candidate.
    """

    method: str
    strategy: str
    k_eff: int
    power_iterations: int
    compute_dtype: np.dtype
    costs: dict[str, float] = field(default_factory=dict)
    device: str = "cpu"
    device_costs: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (used by the planner benchmark)."""
        return {
            "method": self.method,
            "strategy": self.strategy,
            "k_eff": self.k_eff,
            "power_iterations": self.power_iterations,
            "compute_dtype": str(np.dtype(self.compute_dtype)),
            "costs": dict(self.costs),
            "device": self.device,
            "device_costs": dict(self.device_costs),
        }


def estimate_costs(
    i1: int,
    i2: int,
    rank: int,
    *,
    oversampling: int = 10,
    power_iterations: int = 1,
) -> dict[str, float]:
    """Per-slice flop estimates for the three compression methods.

    With ``m = min(I1, I2)``, ``M = max(I1, I2)``, ``r = rank``,
    ``k = min(r + oversampling, m)`` and ``p = power_iterations``:

    * ``exact``: ``6·M·m²`` (bidiagonalisation) + ``20·m³`` (SVD tail);
    * ``gram``: ``M·m²`` (Gram GEMM) + ``8·m³`` (eigh) + ``M·m·r``
      (recovering the long-side factor);
    * ``rsvd``: ``(2 + 2p)·M·m·k`` (sketch + power-iteration GEMMs)
      + QR and small-SVD terms in ``k``.

    Only the *ranking* of the three numbers matters; see the module
    docstring for how the constants were calibrated.
    """
    m = float(min(int(i1), int(i2)))
    big = float(max(int(i1), int(i2)))
    r = float(int(rank))
    p = float(max(0, int(power_iterations)))
    k = float(min(int(rank) + max(0, int(oversampling)), int(m)))
    exact = 6.0 * big * m * m + _C_SVD_EXACT * m**3
    gram = big * m * m + _C_EIG * m**3 + big * m * r
    rsvd = (
        (2.0 + 2.0 * p) * big * m * k
        + _C_QR * ((1.0 + p) * big * k * k + p * m * k * k)
        + 6.0 * m * k * k
        + _C_SVD_SMALL * k**3
    )
    return {"exact": exact, "gram": gram, "rsvd": rsvd}


def factor_nbytes(
    i1: int,
    i2: int,
    rank: int,
    *,
    n_slices: int = 1,
    dtype: "np.dtype | type" = np.float64,
    norms: bool = True,
) -> int:
    """Bytes of the compressed ``(U, s, Vᵀ[, norms])`` triples per slab.

    The D-Tucker invariant in byte form: ``n_slices · (I1 + I2 + 1) · K``
    factor entries (plus one float64 norm per slice when ``norms``) —
    independent of the slab width ``I1·I2``.  This is the payload that
    crosses a boundary whenever compressed slices do: device→host
    downloads (:func:`estimate_device_costs`) and shard→coordinator
    shipping in the distributed layer both price traffic with it.
    """
    l = int(n_slices)
    itemsize = int(np.dtype(dtype).itemsize)
    total = l * (int(i1) + int(i2) + 1) * int(rank) * itemsize
    if norms:
        total += l * np.dtype(np.float64).itemsize
    return total


def estimate_device_costs(
    i1: int,
    i2: int,
    rank: int,
    *,
    n_slices: int = 1,
    method_cost: float,
    dtype: "np.dtype | type" = np.float64,
    device: str = "cuda",
) -> dict[str, float]:
    """Total (kernel + transfer) cost of one slab per placement.

    The CPU runs the chosen method at its :func:`estimate_costs` flop cost.
    A device retires the same flops ``_DEVICE_SPEEDUP`` times faster, but
    pays ``_XFER_FLOPS_PER_BYTE`` host-flop-equivalents for every byte of
    the slab shipped up and every byte of the ``(U, s, Vᵀ)`` factors
    shipped back.  The calibration only needs to *rank* the placements:
    transfer-dominated (small or skinny) slabs land on the CPU, compute-
    dominated ones on the device.  Keyed per ``(I1, I2, K, dtype)`` via the
    arguments; ``n_slices`` scales both terms linearly, so the ranking is
    batch-size independent unless transfer and kernel costs cross.
    """
    l = float(max(1, int(n_slices)))
    itemsize = float(np.dtype(dtype).itemsize)
    kernel = l * float(method_cost)
    slab_bytes = l * float(int(i1)) * float(int(i2)) * itemsize
    factor_bytes = l * (int(i1) + int(i2) + 1.0) * float(int(rank)) * itemsize
    xfer = _XFER_FLOPS_PER_BYTE * (slab_bytes + factor_bytes)
    return {
        "cpu": kernel,
        str(device): kernel / _DEVICE_SPEEDUP + xfer,
    }


def plan_compression(
    i1: int,
    i2: int,
    rank: int,
    *,
    strategy: str = "auto",
    precision: str = "float64",
    oversampling: int = 10,
    power_iterations: int = 1,
    exact_slice_svd: bool = False,
    device: str = "cpu",
    n_slices: int = 1,
) -> CompressionPlan:
    """Choose the compression method for slices of shape ``(i1, i2)``.

    ``strategy="rsvd"`` reproduces the historical dispatch exactly (Gram
    when ``min(I1, I2) <= 2·(rank + oversampling)``, randomized SVD
    otherwise), so existing seeds keep their bit-identical results.
    ``strategy="auto"`` consults :func:`estimate_costs`: the exact SVD for
    tall-skinny slices whose short side the sketch would span entirely,
    else the cheaper of Gram and rsvd.  ``"gram"``/``"exact"`` force those
    methods.  ``exact_slice_svd=True`` (the ablation reference knob)
    overrides everything.

    ``device`` names where the slab *may* run (``"cpu"`` — the default and
    the historical behaviour — or a resolved accelerator namespace).  With
    an accelerator offered, ``strategy="auto"`` additionally decides
    *where* via :func:`estimate_device_costs` (``n_slices`` sizes the
    slab); any explicit strategy honours the offered device directly.
    """
    m = min(int(i1), int(i2))
    r = int(rank)
    if r < 1 or r > m:
        raise RankError(f"rank {rank} invalid for slice shape ({i1}, {i2})")
    if precision not in ("float64", "float32"):
        raise ShapeError(f"precision must be 'float64' or 'float32', got {precision!r}")
    over = max(0, int(oversampling))
    k_nom = r + over
    costs = estimate_costs(
        i1, i2, r, oversampling=over, power_iterations=power_iterations
    )
    if exact_slice_svd or strategy == "exact":
        method = "exact"
    elif strategy == "gram":
        method = "gram"
    elif strategy == "rsvd":
        # Historical dispatch: the Gram shortcut when one slice side is
        # already rank-sized, the randomized path otherwise.
        method = "gram" if m <= 2 * k_nom else "rsvd"
    elif strategy == "auto":
        if m <= k_nom:
            # The sketch would span the whole short side: randomization
            # saves nothing, and the exact SVD is the accuracy optimum.
            method = "exact"
        else:
            method = "gram" if costs["gram"] <= costs["rsvd"] else "rsvd"
    else:
        raise ShapeError(
            f"strategy must be one of auto, rsvd, gram, exact; got {strategy!r}"
        )
    compute_dtype = np.dtype(np.float32 if precision == "float32" else np.float64)
    dev = str(device).lower().replace("_", "-")
    if dev in ("", "auto", "numpy"):
        dev = "cpu"
    device_costs: dict[str, float] = {}
    placed = "cpu"
    if dev != "cpu":
        device_costs = estimate_device_costs(
            i1,
            i2,
            rank,
            n_slices=n_slices,
            method_cost=costs[method],
            dtype=compute_dtype,
            device=dev,
        )
        if strategy == "auto":
            placed = min(device_costs, key=device_costs.get)
        else:
            placed = dev
    return CompressionPlan(
        method=method,
        strategy=strategy,
        k_eff=min(k_nom, m),
        power_iterations=max(0, int(power_iterations)),
        compute_dtype=compute_dtype,
        costs=costs,
        device=placed,
        device_costs=device_costs,
    )


def plan_from_config(
    i1: int, i2: int, rank: int, config, *, n_slices: int = 1
) -> CompressionPlan:
    """:func:`plan_compression` with knobs taken from a ``DTuckerConfig``.

    The config's ``device`` spec is resolved here (``"auto"`` honours the
    ``REPRO_DEVICE`` environment variable, then CPU), so the plan's
    ``device`` is always a concrete namespace name.  Requesting a namespace
    that is not installed raises at planning time with an actionable
    message rather than mid-phase.
    """
    module = resolve_device(None, config=config)
    return plan_compression(
        i1,
        i2,
        rank,
        strategy=config.strategy,
        precision=config.precision,
        oversampling=max(0, int(config.oversampling)),
        power_iterations=int(config.power_iterations),
        exact_slice_svd=bool(config.exact_slice_svd),
        device="cpu" if module.is_numpy else module.name,
        n_slices=n_slices,
    )


def plan_item_costs(plan: CompressionPlan, n_items: int) -> np.ndarray:
    """Per-slice scheduling cost of a plan's chosen method.

    Slices of one slab share a shape, so the per-slice cost is uniform
    *within* the slab — but it differs *across* slabs whose shapes or
    planned methods differ.  Sources that mix slab shapes (block sources,
    out-of-core batches) combine these arrays into one cost model so the
    scheduler balances heavy-method slices against light ones; see
    :mod:`repro.engine.cost`.
    """
    per_slice = float(plan.costs.get(plan.method, 1.0)) or 1.0
    return np.full(int(n_items), per_slice)


def slab_norms(stack: np.ndarray) -> np.ndarray:
    """Per-slice ``‖X_l‖_F²`` with float64 accumulation regardless of dtype."""
    if stack.dtype == np.float64:
        return np.einsum("lij,lij->l", stack, stack, optimize=True)
    return np.einsum("lij,lij->l", stack, stack, optimize=True, dtype=np.float64)


# -- chunk kernels (module level so the process backend can pickle them) ----

def plan_exact_chunk(
    stack: np.ndarray, *, rank: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Exact truncated SVD of one chunk of the slice stack."""
    u, s, vt = np.linalg.svd(stack, full_matrices=False)
    u, s, vt = u[:, :, :rank], s[:, :rank], vt[:, :rank, :]
    fixed = [sign_fix(u[l], vt[l]) for l in range(u.shape[0])]
    u = np.stack([f[0] for f in fixed])
    vt = np.stack([f[1] for f in fixed])
    return u, np.ascontiguousarray(s), vt, slab_norms(stack)


def plan_gram_chunk(
    stack: np.ndarray, *, rank: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Gram-side truncated SVD of one chunk of the slice stack."""
    u, s, vt = batched_svd_via_gram(stack, rank)
    return u, s, vt, slab_norms(stack)


def plan_rsvd_chunk(
    stack: np.ndarray,
    sketch: np.ndarray,
    *,
    rank: int,
    power_iterations: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD of one chunk, from a precomputed sketch.

    The planner sketches the whole slab with one stacked GEMM and ships
    each chunk its rows of ``Y = A @ Ω``; since batched matmul is one GEMM
    per matrix, the chunk factors exactly what a per-chunk sketch product
    would produce.
    """
    u, s, vt = batched_rsvd(
        stack, rank, power_iterations=power_iterations, sketch=sketch
    )
    return u, s, vt, slab_norms(stack)


def _execute_plan_device(
    stack: np.ndarray,
    rank: int,
    plan: CompressionPlan,
    *,
    rng: "int | np.random.Generator | None" = None,
    omega: "np.ndarray | None" = None,
    stats: KernelStats | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run a device-placed plan inline: upload the slab, factor, download.

    The per-slice norms accumulate on the host slab in float64 *before* the
    upload (same code as the CPU path); the factorization itself runs
    through the batched generic paths of :mod:`repro.linalg.rsvd` on the
    plan's device.  Transfers are tallied on ``stats`` as ``xfer:h2d`` /
    ``xfer:d2h``.  Factors return as host arrays, so the resulting
    :class:`~repro.core.slice_svd.SliceSVD` is host-resident either way.
    """
    am = get_module(plan.device)
    l, i1, i2 = stack.shape
    norms = slab_norms(stack)
    dev = am.to_device(stack)
    if stats is not None:
        stats.record_transfer("h2d", stack.nbytes)
    if plan.method == "exact":
        from ..linalg.rsvd import _batched_sign_fix

        u, s, vt = am.svd(dev)
        u, s, vt = u[:, :, :rank], s[:, :rank], vt[:, :rank, :]
        u, vt = _batched_sign_fix(u, vt)
    elif plan.method == "gram":
        u, s, vt = batched_svd_via_gram(dev, rank)
    else:
        if omega is None:
            gen = default_rng(rng)
            omega = gen.standard_normal((i2, plan.k_eff))
        om = np.asarray(omega, dtype=plan.compute_dtype)
        if om.shape != (i2, plan.k_eff):
            raise ShapeError(
                f"omega must have shape ({i2}, {plan.k_eff}), got {om.shape}"
            )
        if stats is not None:
            stats.record_miss("sketch")
        om_dev = am.to_device(om)
        if stats is not None:
            stats.record_transfer("h2d", om.nbytes)
        y = am.matmul(dev, om_dev)
        u, s, vt = batched_rsvd(
            dev, rank, power_iterations=plan.power_iterations, sketch=y
        )
    u, s, vt = am.from_device(u), am.from_device(s), am.from_device(vt)
    if stats is not None:
        for arr in (u, s, vt):
            stats.record_transfer("d2h", arr.nbytes)
    return u, np.ascontiguousarray(s), vt, norms


def execute_plan(
    engine: ExecutionBackend,
    stack: np.ndarray,
    rank: int,
    plan: CompressionPlan,
    *,
    rng: int | np.random.Generator | None = None,
    omega: np.ndarray | None = None,
    pool: BufferPool | None = None,
    stats: KernelStats | None = None,
    chunk_size: int | None = None,
    costs: "np.ndarray | None" = None,
    schedule: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run a :class:`CompressionPlan` on one ``(L, I1, I2)`` slab.

    Parameters
    ----------
    engine:
        Live execution backend; the factorization fans out in chunks along
        the slice axis (bitwise identical to the unchunked batched call,
        because every batched LAPACK/BLAS primitive is a per-matrix loop).
    stack:
        The slab; cast to ``plan.compute_dtype`` up front.  Its memory
        layout is otherwise preserved: the factor kernels contiguize their
        chunks internally, while the per-slice norm accumulation runs on
        the caller's layout — summation order matters in the last bits, so
        this keeps a strided in-memory slice view bit-identical to the
        historical unplanned path.
    rank:
        Truncation rank ``K``.
    plan:
        The decision from :func:`plan_compression`.
    rng:
        Seed or generator for the test-matrix draw (rsvd method only).
    omega:
        Pre-drawn test matrix of shape ``(I2, plan.k_eff)``; the
        out-of-core path draws all batches' matrices upfront in batch
        order so results do not depend on scheduling.  Overrides ``rng``.
    pool:
        Optional :class:`~repro.kernels.buffers.BufferPool` the sketch GEMM
        writes into, so repeated same-shape slabs (out-of-core batches)
        reuse one buffer.  Ignored on the process backend: its
        shared-memory uploads are cached by array identity, so slabs
        shipped to workers must always be fresh arrays.
    stats:
        Optional :class:`~repro.kernels.stats.KernelStats`; records the
        planner decision (``plan:<method>`` miss) and each test-matrix
        draw (``sketch`` miss).
    costs:
        Optional per-slice scheduling costs (e.g. nnz from a sparse
        source, or :func:`plan_item_costs` combined with IO weights);
        ``None`` lets the scheduler treat slices as uniform — correct
        here, since one slab's slices share a shape.
    schedule:
        Scheduling-policy override forwarded to :func:`~repro.engine
        .chunked` (``None`` uses the engine's configured policy).

    Returns
    -------
    tuple
        ``(U, s, Vt, norms)`` — factors in ``plan.compute_dtype``, per-slice
        squared norms always in float64.
    """
    a = np.asarray(stack, dtype=plan.compute_dtype)
    if a.ndim != 3:
        raise ShapeError(f"stack must be 3-D (L, I1, I2), got shape {a.shape}")
    l, i1, i2 = a.shape
    if stats is not None:
        stats.record_miss(f"plan:{plan.method}")
    if plan.device != "cpu":
        return _execute_plan_device(a, rank, plan, rng=rng, omega=omega, stats=stats)
    if plan.method == "exact":
        return chunked(
            engine,
            plan_exact_chunk,
            l,
            slabs=(a,),
            broadcast={"rank": int(rank)},
            chunk_size=chunk_size,
            reduce=concat_chunks,
            costs=costs,
            schedule=schedule,
        )
    if plan.method == "gram":
        return chunked(
            engine,
            plan_gram_chunk,
            l,
            slabs=(a,),
            broadcast={"rank": int(rank)},
            chunk_size=chunk_size,
            reduce=concat_chunks,
            costs=costs,
            schedule=schedule,
        )
    if plan.method != "rsvd":  # pragma: no cover - plan construction guards this
        raise ShapeError(f"unknown plan method {plan.method!r}")
    if omega is None:
        gen = default_rng(rng)
        omega = gen.standard_normal((i2, plan.k_eff))
    om = np.asarray(omega, dtype=plan.compute_dtype)
    if om.shape != (i2, plan.k_eff):
        raise ShapeError(
            f"omega must have shape ({i2}, {plan.k_eff}), got {om.shape}"
        )
    if stats is not None:
        stats.record_miss("sketch")
    # One stacked GEMM sketches the whole slab; chunks then receive their
    # rows of Y instead of re-multiplying against Ω.
    if pool is not None and engine.name != "process":
        y = pool.take("compress:sketch", (l, i1, plan.k_eff), plan.compute_dtype)
        np.matmul(a, om, out=y)
    else:
        y = a @ om
    return chunked(
        engine,
        plan_rsvd_chunk,
        l,
        slabs=(a, y),
        broadcast={
            "rank": int(rank),
            "power_iterations": plan.power_iterations,
        },
        chunk_size=chunk_size,
        reduce=concat_chunks,
        costs=costs,
        schedule=schedule,
    )
