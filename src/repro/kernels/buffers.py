"""Preallocated scratch buffers for the sweep hot path.

ALS sweeps are shape-stationary: every sweep computes the same projection
stacks and intermediates with identical shapes.  A :class:`BufferPool`
hands out one persistent array per named slot, so steady-state sweeps write
into memory allocated during sweep one instead of hitting the allocator
(and the page fault / zeroing cost behind it) every time.  Buffers are
plain C-contiguous arrays suitable for ``out=`` targets of
:func:`numpy.einsum`, :func:`numpy.concatenate` and
:func:`repro.engine.blas.gemm_into`.

A slot is handed out again only after its previous contents are dead; the
workspace enforces this by tying each slot to a cache entry that is
invalidated before the slot is rewritten.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferPool"]


class BufferPool:
    """Named, shape-checked scratch buffers with reuse accounting."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.bytes_reused = 0
        self.bytes_allocated = 0

    def take(
        self, tag: str, shape: tuple[int, ...], dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """Return the buffer for ``tag``, reallocating on shape/dtype change.

        The returned array's contents are unspecified (callers overwrite it
        entirely via ``out=``).  Reuse of a matching buffer is tallied in
        :attr:`bytes_reused`; fresh allocations in :attr:`bytes_allocated`.
        """
        shape = tuple(int(d) for d in shape)
        buf = self._buffers.get(tag)
        if buf is not None and buf.shape == shape and buf.dtype == np.dtype(dtype):
            self.bytes_reused += buf.nbytes
            return buf
        buf = np.empty(shape, dtype=dtype)
        self.bytes_allocated += buf.nbytes
        self._buffers[tag] = buf
        return buf

    def clear(self) -> None:
        """Drop every buffer (counters are kept)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(slots={len(self)}, held={self.nbytes / 2**20:.1f}MiB, "
            f"reused={self.bytes_reused / 2**20:.1f}MiB)"
        )
