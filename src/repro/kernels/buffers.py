"""Preallocated scratch buffers for the sweep hot path.

ALS sweeps are shape-stationary: every sweep computes the same projection
stacks and intermediates with identical shapes.  A :class:`BufferPool`
hands out one persistent array per named slot, so steady-state sweeps write
into memory allocated during sweep one instead of hitting the allocator
(and the page fault / zeroing cost behind it) every time.  Buffers are
plain C-contiguous arrays suitable for ``out=`` targets of
:func:`numpy.einsum`, :func:`numpy.concatenate` and
:func:`repro.engine.blas.gemm_into`.

The pool is device-aware: it allocates through an
:class:`~repro.engine.array_api.ArrayModule`, so a workspace running on
torch or CuPy gets device-resident scratch with the same slot semantics
(the default module is NumPy and allocates with the exact historical
``np.empty`` call).  A slot keyed to one module is reallocated when asked
for under a different module, exactly like a shape or dtype change.

A slot is handed out again only after its previous contents are dead; the
workspace enforces this by tying each slot to a cache entry that is
invalidated before the slot is rewritten.
"""

from __future__ import annotations

import numpy as np

from ..engine.array_api import NUMPY, ArrayModule

__all__ = ["BufferPool"]


class BufferPool:
    """Named, shape-checked scratch buffers with reuse accounting.

    Parameters
    ----------
    module:
        The :class:`~repro.engine.array_api.ArrayModule` to allocate on.
        Defaults to NumPy (host memory).
    """

    def __init__(self, module: ArrayModule | None = None) -> None:
        self._buffers: dict[str, tuple[object, ArrayModule]] = {}
        self.module = module if module is not None else NUMPY
        self.bytes_reused = 0
        self.bytes_allocated = 0

    def take(
        self,
        tag: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        *,
        module: ArrayModule | None = None,
    ):
        """Return the buffer for ``tag``, reallocating on shape/dtype change.

        The returned array's contents are unspecified (callers overwrite it
        entirely via ``out=``).  Reuse of a matching buffer is tallied in
        :attr:`bytes_reused`; fresh allocations in :attr:`bytes_allocated`.
        ``module`` overrides the pool's default namespace for this slot.
        """
        am = module if module is not None else self.module
        shape = tuple(int(d) for d in shape)
        entry = self._buffers.get(tag)
        if entry is not None:
            buf, owner = entry
            if (
                owner is am
                and tuple(buf.shape) == shape
                and am.np_dtype(buf) == np.dtype(dtype)
            ):
                self.bytes_reused += am.nbytes(buf)
                return buf
        buf = am.empty(shape, dtype=dtype)
        self.bytes_allocated += am.nbytes(buf)
        self._buffers[tag] = (buf, am)
        return buf

    def clear(self) -> None:
        """Drop every buffer (counters are kept)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Bytes currently held by the pool."""
        return sum(am.nbytes(b) for b, am in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(slots={len(self)}, held={self.nbytes / 2**20:.1f}MiB, "
            f"reused={self.bytes_reused / 2**20:.1f}MiB)"
        )
