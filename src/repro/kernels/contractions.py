"""Per-slice compressed-domain contraction kernels.

This module is the single home of the slice-parallel einsum kernels used by
both the classic entry points in :mod:`repro.core._ops` and the cached
:class:`~repro.kernels.workspace.SweepWorkspace` path.  Two families live
here:

* **fused kernels** (``w_chunk``, ``mode1_chunk``, ``mode2_chunk``) — the
  original operations that rebuild the per-slice projections ``A(1)ᵀU_l`` /
  ``V_lᵀA(2)`` on every call;
* **projection-cached kernels** (``*_from_projections_chunk``) — the same
  final contraction applied to *precomputed* projection stacks, so a
  projection computed once per factor update can be shared by every kernel
  that needs it.

Bit-identity contract: each fused kernel computes its projections with
exactly the einsum expressions of :func:`project_left_chunk` /
:func:`project_right_chunk`, and every output element depends on a single
slice ``l`` — so (a) feeding cached projections to the ``*_from_projections``
kernels reproduces the fused results bit for bit, and (b) chunked execution
over any slice partition equals the one-shot einsum.  The parity suite in
``tests/test_kernels.py`` pins both properties across all backends.

All kernels are module level so the process backend can pickle them, and
accept an optional ``out=`` so the inline (no-engine) path can write into
preallocated workspace buffers; ``numpy.einsum`` honours ``out=`` without
changing the computation.
"""

from __future__ import annotations

import numpy as np

from ..engine import ExecutionBackend, chunked, concat_chunks
from ..engine.array_api import array_module_of

__all__ = [
    "project_left_chunk",
    "project_right_chunk",
    "w_chunk",
    "mode1_chunk",
    "mode2_chunk",
    "w_from_projections_chunk",
    "mode1_from_projection_chunk",
    "mode2_from_projection_chunk",
    "stack_to_tensor",
    "dispatch_slices",
]


def _einsum(subscripts: str, *operands, out=None):
    """Namespace-dispatched einsum: literal ``np.einsum`` for NumPy stacks."""
    if all(type(op) is np.ndarray for op in operands):
        return np.einsum(subscripts, *operands, optimize=True, out=out)
    am = array_module_of(*operands)
    if am.is_numpy:
        return np.einsum(subscripts, *operands, optimize=True, out=out)
    return am.einsum(subscripts, *operands, out=out)


# -- projection kernels ------------------------------------------------------

def project_left_chunk(
    u: np.ndarray, *, a1: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Per-slice ``A(1)ᵀ U_l`` stacked as ``(L, J1, K)``."""
    return _einsum("lik,ia->lak", u, a1, out=out)


def project_right_chunk(
    vt: np.ndarray, *, a2: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Per-slice ``V_lᵀ A(2)`` stacked as ``(L, K, J2)``."""
    return _einsum("lki,ib->lkb", vt, a2, out=out)


# -- fused kernels (recompute projections per call) --------------------------

def w_chunk(
    u: np.ndarray,
    s: np.ndarray,
    vt: np.ndarray,
    *,
    a1: np.ndarray,
    a2: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``W_l = (A(1)ᵀU_l) diag(s_l) (V_lᵀA(2))`` for one slice range."""
    au = project_left_chunk(u, a1=a1)
    av = project_right_chunk(vt, a2=a2)
    return w_from_projections_chunk(au, s, av, out=out)


def mode1_chunk(
    u: np.ndarray,
    s: np.ndarray,
    vt: np.ndarray,
    *,
    a2: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``U_l diag(s_l) (V_lᵀA(2))`` for one slice range (mode 1 kept)."""
    av = project_right_chunk(vt, a2=a2)
    return mode1_from_projection_chunk(u, s, av, out=out)


def mode2_chunk(
    u: np.ndarray,
    s: np.ndarray,
    vt: np.ndarray,
    *,
    a1: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``(A(1)ᵀU_l) diag(s_l) V_lᵀ`` for one slice range (mode 2 kept)."""
    au = project_left_chunk(u, a1=a1)
    return mode2_from_projection_chunk(au, s, vt, out=out)


# -- projection-cached kernels -----------------------------------------------

def w_from_projections_chunk(
    au: np.ndarray, s: np.ndarray, av: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Final ``W`` contraction from cached ``A(1)ᵀU`` / ``VᵀA(2)`` stacks."""
    return _einsum("lak,lk,lkb->lab", au, s, av, out=out)


def mode1_from_projection_chunk(
    u: np.ndarray, s: np.ndarray, av: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Mode-1 partial from the cached ``VᵀA(2)`` stack."""
    return _einsum("lik,lk,lkb->lib", u, s, av, out=out)


def mode2_from_projection_chunk(
    au: np.ndarray, s: np.ndarray, vt: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Mode-2 partial from the cached ``A(1)ᵀU`` stack."""
    return _einsum("lak,lk,lki->lai", au, s, vt, out=out)


# -- shaping -----------------------------------------------------------------

def stack_to_tensor(stack: np.ndarray, trailing: tuple[int, ...]) -> np.ndarray:
    """Reshape an ``(L, a, b)`` slice stack to an ``(a, b, *trailing)`` tensor.

    The slice index is Fortran-ordered over the trailing modes, matching
    :func:`repro.tensor.slices.to_slices`.
    """
    am = array_module_of(stack)
    if am.is_numpy:
        moved = np.moveaxis(stack, 0, 2)  # (a, b, L)
        shape = stack.shape[1:3] + trailing
        return moved.reshape(shape, order="F")
    moved = am.moveaxis(stack, 0, 2)
    shape = tuple(int(d) for d in stack.shape[1:3]) + tuple(trailing)
    return am.reshape(moved, shape, order="F")


# -- dispatch ----------------------------------------------------------------

def dispatch_slices(
    engine: ExecutionBackend | None,
    kernel,
    n_items: int,
    slabs: tuple[np.ndarray, ...],
    broadcast: dict[str, np.ndarray],
    *,
    out: np.ndarray | None = None,
    costs: np.ndarray | None = None,
    schedule: str | None = None,
) -> np.ndarray:
    """Run a per-slice kernel inline or as engine chunks, optionally into ``out``.

    Inline execution passes ``out`` straight to the kernel's einsum; engine
    execution keeps the chunk protocol (fresh per-chunk arrays, required by
    the process backend) and concatenates the ordered results into ``out``.
    Both routes produce values identical to the unbuffered call.  ``costs``
    and ``schedule`` are forwarded to :func:`~repro.engine.chunked` — the
    sweep workspace supplies per-slice contraction flop weights so dynamic
    dispatches order their queues by actual work.
    """
    if engine is None:
        return kernel(*slabs, **broadcast, out=out)
    if out is None:
        return chunked(
            engine, kernel, n_items, slabs=slabs, broadcast=broadcast,
            reduce=concat_chunks, costs=costs, schedule=schedule,
        )
    def _concat_into(parts):
        am = array_module_of(out, *parts)
        if am.is_numpy:
            return np.concatenate(parts, axis=0, out=out)
        return am.concatenate(parts, axis=0, out=out)

    return chunked(
        engine, kernel, n_items, slabs=slabs, broadcast=broadcast,
        reduce=_concat_into, costs=costs, schedule=schedule,
    )
