"""Sweep-level kernel layer: cached projections, planned TTM chains, reuse.

This package owns every compressed-domain contraction of the iteration hot
path.  The pieces:

* :mod:`~repro.kernels.contractions` — the per-slice einsum kernels (fused
  and projection-cached variants), shared with :mod:`repro.core._ops`;
* :mod:`~repro.kernels.planner` — memoized greedy TTM-chain ordering used
  by :func:`repro.tensor.products.multi_mode_product` and the workspace;
* :mod:`~repro.kernels.buffers` — named preallocated scratch buffers for
  ``out=``-style GEMMs/einsums;
* :mod:`~repro.kernels.workspace` — :class:`SweepWorkspace`, the cache that
  ties them together (dirty-tracked projection stacks, the once-per-sweep
  ``W`` build, chain-prefix reuse);
* :mod:`~repro.kernels.stats` — hit/miss/bytes accounting surfaced through
  :class:`repro.engine.trace.PhaseTrace`;
* :mod:`~repro.kernels.naive` — the historical uncached loop, kept as the
  bit-identity reference;
* :mod:`~repro.kernels.compress_plan` — the input-adaptive compression
  planner of the approximation phase (cost-model method selection,
  shared-sketch batching, float32 compute path).

Everything the optimized path computes is produced by exactly the
operations the naive path would run on identical inputs, so results are
reproducible bit for bit; see ``docs/performance.md`` for the invalidation
rules and cache economics.
"""

from .buffers import BufferPool
from .compress_plan import (
    CompressionPlan,
    estimate_costs,
    execute_plan,
    factor_nbytes,
    plan_compression,
    plan_from_config,
    slab_norms,
)
from .contractions import (
    mode1_chunk,
    mode1_from_projection_chunk,
    mode2_chunk,
    mode2_from_projection_chunk,
    project_left_chunk,
    project_right_chunk,
    stack_to_tensor,
    w_chunk,
    w_from_projections_chunk,
)
from .naive import naive_als_sweeps
from .planner import (
    clear_plan_cache,
    plan_cache_info,
    plan_ttm_chain,
    ttm_chain_signature,
)
from .stats import KernelStats
from .workspace import SweepWorkspace

__all__ = [
    "BufferPool",
    "CompressionPlan",
    "KernelStats",
    "estimate_costs",
    "execute_plan",
    "factor_nbytes",
    "plan_compression",
    "plan_from_config",
    "slab_norms",
    "SweepWorkspace",
    "naive_als_sweeps",
    "plan_ttm_chain",
    "ttm_chain_signature",
    "plan_cache_info",
    "clear_plan_cache",
    "project_left_chunk",
    "project_right_chunk",
    "w_chunk",
    "mode1_chunk",
    "mode2_chunk",
    "w_from_projections_chunk",
    "mode1_from_projection_chunk",
    "mode2_from_projection_chunk",
    "stack_to_tensor",
]
