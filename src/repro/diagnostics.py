"""Diagnostics for Tucker decompositions.

A production tensor library needs a way to answer "is this decomposition
healthy?" without the caller hand-rolling linear algebra.
:func:`check_tucker` audits a result against the library's invariants and
(optionally) the original tensor, returning a structured
:class:`TuckerDiagnostics` that prints as a readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .core.result import TuckerResult
from .exceptions import ShapeError
from .tensor.norms import reconstruction_error
from .validation import as_tensor

__all__ = ["TuckerDiagnostics", "check_tucker"]


@dataclass
class TuckerDiagnostics:
    """Structured audit of one Tucker decomposition.

    Attributes
    ----------
    orthonormality_residuals:
        Per mode, ``‖A(n)ᵀA(n) − I‖_max`` — zero for healthy factors.
    core_energy:
        ``‖G‖_F²``.
    core_energy_by_mode:
        Per mode, the fraction of core energy captured by each slice index
        of the core along that mode (descending when healthy — leading
        factor columns matter most).
    error:
        Reconstruction error vs the reference tensor (``None`` if no
        reference was given).
    issues:
        Human-readable list of detected problems (empty = healthy).
    """

    orthonormality_residuals: list[float]
    core_energy: float
    core_energy_by_mode: list[np.ndarray]
    error: float | None
    issues: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """``True`` when no issues were detected."""
        return not self.issues

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = ["TuckerDiagnostics:"]
        lines.append(
            "  orthonormality residuals: "
            + ", ".join(f"{r:.2e}" for r in self.orthonormality_residuals)
        )
        lines.append(f"  core energy: {self.core_energy:.6g}")
        for n, frac in enumerate(self.core_energy_by_mode):
            shown = ", ".join(f"{v:.3f}" for v in frac[:5])
            suffix = ", ..." if frac.size > 5 else ""
            lines.append(f"  mode-{n} core energy fractions: [{shown}{suffix}]")
        if self.error is not None:
            lines.append(f"  reconstruction error: {self.error:.6g}")
        if self.issues:
            lines.append("  ISSUES:")
            lines.extend(f"    - {msg}" for msg in self.issues)
        else:
            lines.append("  healthy: yes")
        return "\n".join(lines)


def check_tucker(
    result: TuckerResult,
    reference: np.ndarray | None = None,
    *,
    ortho_tol: float = 1e-6,
    dead_component_tol: float = 1e-12,
) -> TuckerDiagnostics:
    """Audit ``result`` and optionally score it against ``reference``.

    Checks performed:

    1. every factor has orthonormal columns (within ``ortho_tol``),
    2. the core is finite,
    3. no factor column is *dead* (a core slice with ~zero energy means the
       rank is higher than the data supports — wasteful but not wrong),
    4. when ``reference`` is given: shapes match and the reconstruction
       error is finite.

    Returns
    -------
    TuckerDiagnostics
        With ``issues`` describing any violations; never raises for
        unhealthy-but-well-formed inputs.
    """
    issues: list[str] = []

    residuals = []
    for n, a in enumerate(result.factors):
        gram = a.T @ a
        residual = float(np.max(np.abs(gram - np.eye(a.shape[1]))))
        residuals.append(residual)
        if residual > ortho_tol:
            issues.append(
                f"factor {n} is not orthonormal (residual {residual:.2e} "
                f"> tol {ortho_tol:.2e})"
            )

    core = result.core
    if not np.isfinite(core).all():
        issues.append("core contains non-finite values")
        core = np.nan_to_num(core)

    core_energy = float(np.sum(core**2))
    energy_by_mode: list[np.ndarray] = []
    for n in range(result.order):
        axes = tuple(k for k in range(result.order) if k != n)
        slice_energy = np.sum(core**2, axis=axes)
        frac = slice_energy / core_energy if core_energy > 0 else slice_energy
        energy_by_mode.append(frac)
        dead = np.flatnonzero(slice_energy <= dead_component_tol)
        if dead.size and core_energy > 0:
            issues.append(
                f"mode {n} has {dead.size} dead component(s) "
                f"{dead.tolist()[:4]}{'...' if dead.size > 4 else ''} — "
                "consider a smaller rank"
            )

    error = None
    if reference is not None:
        x = as_tensor(reference, min_order=1, name="reference")
        if x.shape != result.shape:
            raise ShapeError(
                f"reference shape {x.shape} does not match result "
                f"shape {result.shape}"
            )
        error = reconstruction_error(x, result.reconstruct())
        if not np.isfinite(error):
            issues.append("reconstruction error is non-finite")

    return TuckerDiagnostics(
        orthonormality_residuals=residuals,
        core_energy=core_energy,
        core_energy_by_mode=energy_by_mode,
        error=error,
        issues=issues,
    )
