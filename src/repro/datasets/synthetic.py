"""Synthetic low-rank tensors for scalability and correctness experiments.

These mirror the paper's synthetic-data experiments exactly: a random Tucker
model of known rank plus i.i.d. Gaussian noise, with the dimensionality,
order, and rank swept by the scalability benchmarks (F4–F6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..tensor.random import default_rng, random_tensor
from ..validation import check_positive_int

__all__ = ["low_rank_tensor", "scalability_tensor"]


def low_rank_tensor(
    shape: Sequence[int],
    ranks: int | Sequence[int],
    *,
    noise: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Random Tucker tensor of given ``shape`` / ``ranks`` plus relative noise.

    Parameters
    ----------
    shape:
        Tensor shape.
    ranks:
        Exact Tucker rank of the signal part.
    noise:
        Noise standard deviation relative to the signal RMS.
    seed:
        Seed or generator.
    """
    return random_tensor(shape, ranks, rng=default_rng(seed), noise=noise)


def scalability_tensor(
    dimensionality: int,
    order: int,
    rank: int,
    *,
    noise: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Cubic tensor ``(I, …, I)`` of order ``order`` with Tucker rank ``rank``.

    The shape class used by the paper's scalability figures: one knob per
    experiment axis (dimensionality ``I``, order ``N``, rank ``J``).
    """
    i = check_positive_int(dimensionality, name="dimensionality")
    n = check_positive_int(order, name="order")
    j = check_positive_int(rank, name="rank")
    if n < 2:
        from ..exceptions import ShapeError

        raise ShapeError(f"order must be >= 2, got {n}")
    if j > i:
        from ..exceptions import RankError

        raise RankError(f"rank {j} exceeds dimensionality {i}")
    return low_rank_tensor((i,) * n, j, noise=noise, seed=seed)
