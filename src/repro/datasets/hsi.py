"""Hyperspectral-image tensor simulator (HSI dataset stand-in, 4-order).

The paper's 4-order tensor is a hyperspectral image sequence
``(x, y, band, time)``.  Hyperspectral cubes are the textbook case of the
*linear mixing model*: every pixel's spectrum is a convex combination of a
few endmember spectra, with spatially smooth abundance maps.  This
generator implements exactly that model and adds slow temporal drift
(illumination/seasonal change), yielding a genuinely 4-order low-rank
structure — and, importantly for D-Tucker, an ``L = bands × time`` slice
count with strongly correlated slices.
"""

from __future__ import annotations

import numpy as np

from ..tensor.random import default_rng
from ..validation import check_positive_int

__all__ = ["hsi_like"]


def _abundance_maps(
    height: int, width: int, n_endmembers: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth non-negative abundance maps summing to one per pixel."""
    y = np.linspace(0.0, 1.0, height)[:, None]
    x = np.linspace(0.0, 1.0, width)[None, :]
    maps = np.empty((n_endmembers, height, width))
    for k in range(n_endmembers):
        field = np.zeros((height, width))
        for _ in range(3):
            cy, cx = rng.uniform(0.0, 1.0, size=2)
            sigma = rng.uniform(0.15, 0.4)
            field += rng.uniform(0.5, 1.5) * np.exp(
                -((y - cy) ** 2 + (x - cx) ** 2) / (2 * sigma**2)
            )
        maps[k] = field
    total = maps.sum(axis=0, keepdims=True)
    return maps / np.clip(total, 1e-9, None)


def _endmember_spectra(
    n_endmembers: int, n_bands: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth positive spectral signatures (Gaussian absorption mixture)."""
    wavelengths = np.linspace(0.0, 1.0, n_bands)
    spectra = np.empty((n_endmembers, n_bands))
    for k in range(n_endmembers):
        base = rng.uniform(0.3, 0.8)
        curve = np.full(n_bands, base)
        for _ in range(4):
            center = rng.uniform(0.0, 1.0)
            depth = rng.uniform(-0.25, 0.25)
            widthp = rng.uniform(0.05, 0.2)
            curve += depth * np.exp(-((wavelengths - center) ** 2) / (2 * widthp**2))
        spectra[k] = np.clip(curve, 0.02, None)
    return spectra


def hsi_like(
    height: int = 96,
    width: int = 96,
    n_bands: int = 33,
    n_times: int = 8,
    *,
    n_endmembers: int = 6,
    noise: float = 0.01,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Simulated 4-order hyperspectral sequence ``(x, y, band, time)``.

    Parameters
    ----------
    height, width, n_bands, n_times:
        Tensor shape.
    n_endmembers:
        Number of latent materials in the linear mixing model.
    noise:
        Additive Gaussian sensor-noise standard deviation.
    seed:
        Seed or generator.
    """
    h = check_positive_int(height, name="height")
    w = check_positive_int(width, name="width")
    b = check_positive_int(n_bands, name="n_bands")
    t = check_positive_int(n_times, name="n_times")
    k = check_positive_int(n_endmembers, name="n_endmembers")
    rng = default_rng(seed)

    abundances = _abundance_maps(h, w, k, rng)  # (k, h, w)
    spectra = _endmember_spectra(k, b, rng)  # (k, b)

    # Slow per-endmember temporal drift (illumination / phenology).
    steps = np.arange(t) / max(t - 1, 1)
    drift = 1.0 + rng.uniform(-0.2, 0.2, size=(k, 1)) * steps[None, :] + 0.05 * np.sin(
        2 * np.pi * rng.uniform(0.5, 1.5, size=(k, 1)) * steps[None, :]
    )  # (k, t)

    cube = np.einsum("khw,kb,kt->hwbt", abundances, spectra, drift, optimize=True)
    return cube + noise * rng.standard_normal((h, w, b, t))
