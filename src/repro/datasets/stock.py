"""Stock-market tensor simulator (Korea Stocks stand-in).

The paper's Stock dataset is ``(stock, feature, day)`` with 5 basic features
(open/high/low/close prices, volume) and 49 technical indicators, collected
daily for ~3000 Korean stocks.  This simulator reproduces the generating
mechanism finance actually exhibits:

* **cross-sectional low rank** — log-returns follow a linear factor model
  ``r_t = B f_t + ε_t`` (market + sector factors), so the stock mode is
  approximately low rank;
* **derived features** — open/high/low track the close with intraday
  spreads, volume couples to absolute returns, and all 49 technical
  indicators are deterministic transforms (moving averages, momenta,
  rolling volatilities, oscillators) of the price/volume series, exactly
  like real TA features — making the feature mode highly redundant;
* **heavy-ish tails** — idiosyncratic returns are Student-t distributed.

Each (stock, feature) series is z-normalised over time, mirroring the usual
preprocessing for tensor analysis of heterogeneous features.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from ..tensor.random import default_rng
from ..validation import check_positive_int

__all__ = ["stock_like", "N_BASIC_FEATURES"]

N_BASIC_FEATURES = 5


def _moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average along the last axis (edge-padded)."""
    kernel = np.ones(window) / window
    padded = np.concatenate(
        [np.repeat(series[..., :1], window - 1, axis=-1), series], axis=-1
    )
    return np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), -1, padded
    )


def _znorm(x: np.ndarray) -> np.ndarray:
    """Z-normalise along the last axis, guarding zero-variance series."""
    mu = x.mean(axis=-1, keepdims=True)
    sd = x.std(axis=-1, keepdims=True)
    sd = np.where(sd < 1e-12, 1.0, sd)
    return (x - mu) / sd


def stock_like(
    n_stocks: int = 400,
    n_features: int = 54,
    n_days: int = 1000,
    *,
    n_factors: int = 8,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Simulated ``(stock, feature, day)`` tensor with factor-model structure.

    Parameters
    ----------
    n_stocks, n_features, n_days:
        Tensor shape; ``n_features >= 5`` (the 5 basic features come first,
        the rest are technical indicators).
    n_factors:
        Number of latent return factors (market + sectors).
    seed:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Shape ``(n_stocks, n_features, n_days)``, z-normalised per series.
    """
    s = check_positive_int(n_stocks, name="n_stocks")
    f = check_positive_int(n_features, name="n_features")
    t = check_positive_int(n_days, name="n_days")
    if f < N_BASIC_FEATURES:
        raise DatasetError(
            f"n_features must be >= {N_BASIC_FEATURES} (the basic features), got {f}"
        )
    k = check_positive_int(n_factors, name="n_factors")
    rng = default_rng(seed)

    # Latent factor returns: market factor with higher volatility + sectors.
    factor_vol = np.concatenate([[0.015], rng.uniform(0.004, 0.009, size=k - 1)]) if k > 1 else np.array([0.015])
    factor_returns = rng.standard_normal((k, t)) * factor_vol[:, None]
    loadings = np.concatenate(
        [np.abs(rng.normal(1.0, 0.3, size=(s, 1))), rng.normal(0.0, 0.5, size=(s, k - 1))],
        axis=1,
    ) if k > 1 else np.abs(rng.normal(1.0, 0.3, size=(s, 1)))
    idio = rng.standard_t(df=5, size=(s, t)) * 0.008
    returns = loadings @ factor_returns + idio

    log_price = np.cumsum(returns, axis=1) + rng.uniform(1.0, 4.0, size=(s, 1))
    close = np.exp(log_price)

    spread = np.abs(rng.normal(0.0, 0.004, size=(s, t))) + 0.001
    high = close * (1.0 + spread)
    low = close * (1.0 - spread)
    open_ = np.concatenate([close[:, :1], close[:, :-1]], axis=1) * (
        1.0 + rng.normal(0.0, 0.002, size=(s, t))
    )
    base_volume = np.exp(rng.normal(10.0, 1.0, size=(s, 1)))
    volume = base_volume * (1.0 + 20.0 * np.abs(returns)) * np.exp(
        rng.normal(0.0, 0.2, size=(s, t))
    )

    features = [open_, high, low, close, volume]
    # Technical indicators: deterministic transforms of close/volume, with
    # window lengths cycling over typical TA horizons.
    windows = [5, 10, 20, 30, 60]
    kind = 0
    while len(features) < f:
        w = windows[kind % len(windows)]
        family = kind // len(windows) % 4
        if family == 0:  # simple moving average of the close
            features.append(_moving_average(close, w))
        elif family == 1:  # momentum: close / lagged close - 1
            lag = min(w, t - 1) if t > 1 else 0
            lagged = np.concatenate(
                [close[:, :1].repeat(lag, axis=1), close[:, : t - lag]], axis=1
            ) if lag else close
            features.append(close / lagged - 1.0)
        elif family == 2:  # rolling volatility of returns
            features.append(np.sqrt(_moving_average(returns**2, w)))
        else:  # volume moving average (liquidity trend)
            features.append(_moving_average(volume, w))
        kind += 1

    tensor = np.stack(features[:f], axis=1)  # (stocks, features, days)
    return _znorm(tensor)
