"""Air-quality tensor simulator (Air Quality dataset stand-in).

The paper's Air Quality tensor is ``(station, time-of-year, pollutant)`` —
one very long station mode (~30k), one medium time mode and one tiny
pollutant mode (6).  This shape class stresses D-Tucker's slice layout: the
two big modes form the slices and the tiny pollutant mode supplies very few
slices, so per-slice compression must carry almost all of the work.

The generator uses the mechanism that makes real air-quality data low rank:
stations belong to a few *regional/urban regimes* (cluster loadings), each
pollutant follows a smooth *seasonal profile* (sinusoidal annual + weekly
cycles), and pollutants co-vary through a shared emission mixing matrix.
Measurements are non-negative with multiplicative log-normal noise, like
real concentration readings.
"""

from __future__ import annotations

import numpy as np

from ..tensor.random import default_rng
from ..validation import check_positive_int

__all__ = ["airquality_like"]


def airquality_like(
    n_stations: int = 2000,
    n_times: int = 376,
    n_pollutants: int = 6,
    *,
    n_regimes: int = 5,
    noise: float = 0.15,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Simulated ``(station, time, pollutant)`` concentration tensor.

    Parameters
    ----------
    n_stations, n_times, n_pollutants:
        Tensor shape.
    n_regimes:
        Number of latent station regimes (urban / suburban / industrial …).
    noise:
        Log-normal noise scale (multiplicative).
    seed:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Non-negative tensor of shape ``(n_stations, n_times, n_pollutants)``.
    """
    s = check_positive_int(n_stations, name="n_stations")
    t = check_positive_int(n_times, name="n_times")
    p = check_positive_int(n_pollutants, name="n_pollutants")
    r = check_positive_int(n_regimes, name="n_regimes")
    rng = default_rng(seed)

    # Station loadings: soft regime membership plus a per-station scale.
    membership = rng.dirichlet(alpha=np.full(r, 0.5), size=s)  # (s, r)
    station_scale = np.exp(rng.normal(0.0, 0.4, size=(s, 1)))

    # Regime time profiles: annual + weekly cycles with regime-specific
    # phases, plus slow trends.
    days = np.arange(t)
    profiles = np.empty((r, t))
    for k in range(r):
        annual = 1.0 + 0.6 * np.sin(2 * np.pi * days / 365.0 + rng.uniform(0, 2 * np.pi))
        weekly = 1.0 + 0.2 * np.sin(2 * np.pi * days / 7.0 + rng.uniform(0, 2 * np.pi))
        trend = 1.0 + rng.uniform(-0.3, 0.3) * days / max(t - 1, 1)
        profiles[k] = annual * weekly * trend
    profiles = np.clip(profiles, 0.05, None)

    # Pollutant mixing: each regime emits a characteristic pollutant blend.
    mixing = rng.gamma(shape=2.0, scale=1.0, size=(r, p))
    pollutant_scale = np.exp(rng.normal(0.0, 0.8, size=p))

    clean = np.einsum(
        "sr,rt,rp->stp", membership * station_scale, profiles, mixing,
        optimize=True,
    ) * pollutant_scale[None, None, :]
    lognormal = np.exp(noise * rng.standard_normal((s, t, p)) - 0.5 * noise**2)
    return clean * lognormal
