"""Grayscale-video simulators (Boats / Walking Video stand-ins).

The paper evaluates on two surveillance-style grayscale videos
(*Boats*, 320×240×7000, and *Walking Video*, 1080×1980×2400), neither
redistributable here.  These generators reproduce the statistical regime
that makes such videos friendly to Tucker compression: a static smooth
background dominating the energy, a handful of compact moving objects, and
sensor noise.  Per-frame slices therefore have rapidly decaying spectra —
the property D-Tucker's slice SVDs exploit — while object motion creates
genuine temporal structure for the time-mode factors.

Tensors are returned as ``(height, width, time)`` with values in ``[0, 1]``
(plus noise), matching the paper's mode layout.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from ..tensor.random import default_rng
from ..validation import check_positive_int

__all__ = ["boats_like", "walking_like"]


def _background(height: int, width: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth static background: low-frequency cosine mixture, range ~[0, 1]."""
    y = np.linspace(0.0, 1.0, height)[:, None]
    x = np.linspace(0.0, 1.0, width)[None, :]
    bg = 0.5 + 0.15 * np.cos(2 * np.pi * (1.3 * y + 0.7 * x))
    for _ in range(3):
        fy, fx = rng.uniform(0.5, 2.5, size=2)
        py, px = rng.uniform(0.0, 2 * np.pi, size=2)
        bg = bg + 0.08 * np.cos(2 * np.pi * fy * y + py) * np.cos(
            2 * np.pi * fx * x + px
        )
    return bg


def _moving_blobs(
    height: int,
    width: int,
    frames: int,
    paths: np.ndarray,
    sigmas: np.ndarray,
    amplitudes: np.ndarray,
) -> np.ndarray:
    """Sum of Gaussian blobs following ``paths`` — shape ``(H, W, T)``.

    ``paths`` has shape ``(n_objects, T, 2)`` in unit coordinates.
    """
    y = np.linspace(0.0, 1.0, height)[:, None, None]
    x = np.linspace(0.0, 1.0, width)[None, :, None]
    video = np.zeros((height, width, frames))
    for obj in range(paths.shape[0]):
        cy = paths[obj, :, 0][None, None, :]
        cx = paths[obj, :, 1][None, None, :]
        dist2 = (y - cy) ** 2 + (x - cx) ** 2
        video += amplitudes[obj] * np.exp(-dist2 / (2.0 * sigmas[obj] ** 2))
    return video


def boats_like(
    height: int = 120,
    width: int = 90,
    frames: int = 1200,
    *,
    n_objects: int = 4,
    noise: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Boats-style video: objects drifting linearly across a static scene.

    Each object enters at a random edge position and crosses the frame at a
    constant velocity (like boats crossing a waterway), re-entering when it
    leaves — producing slow, non-periodic temporal structure.

    Parameters
    ----------
    height, width, frames:
        Tensor shape ``(height, width, frames)``.
    n_objects:
        Number of moving objects.
    noise:
        Additive Gaussian sensor-noise standard deviation.
    seed:
        Seed or generator.
    """
    h = check_positive_int(height, name="height")
    w = check_positive_int(width, name="width")
    t = check_positive_int(frames, name="frames")
    if n_objects < 0:
        raise DatasetError(f"n_objects must be >= 0, got {n_objects}")
    rng = default_rng(seed)
    bg = _background(h, w, rng)

    time = np.arange(t) / max(t - 1, 1)
    paths = np.empty((n_objects, t, 2))
    for obj in range(n_objects):
        lane = rng.uniform(0.15, 0.85)
        speed = rng.uniform(1.0, 3.0) * rng.choice([-1.0, 1.0])
        start = rng.uniform(0.0, 1.0)
        paths[obj, :, 0] = lane + 0.02 * np.sin(2 * np.pi * rng.uniform(0.5, 2) * time)
        paths[obj, :, 1] = (start + speed * time) % 1.0
    sigmas = rng.uniform(0.03, 0.07, size=max(n_objects, 1))
    amplitudes = rng.uniform(0.2, 0.5, size=max(n_objects, 1))

    video = bg[:, :, None] + (
        _moving_blobs(h, w, t, paths, sigmas, amplitudes) if n_objects else 0.0
    )
    return video + noise * rng.standard_normal((h, w, t))


def walking_like(
    height: int = 160,
    width: int = 120,
    frames: int = 600,
    *,
    n_walkers: int = 3,
    noise: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Walking-style video: periodically swaying figures pacing back and forth.

    Walkers oscillate horizontally with individual gait frequencies and bob
    vertically at twice the stride frequency — giving the time mode strong
    periodic factors, the regime where a whole-tensor Tucker time factor is
    genuinely informative.

    Parameters
    ----------
    height, width, frames:
        Tensor shape ``(height, width, frames)``.
    n_walkers:
        Number of periodic figures.
    noise:
        Additive Gaussian sensor-noise standard deviation.
    seed:
        Seed or generator.
    """
    h = check_positive_int(height, name="height")
    w = check_positive_int(width, name="width")
    t = check_positive_int(frames, name="frames")
    if n_walkers < 0:
        raise DatasetError(f"n_walkers must be >= 0, got {n_walkers}")
    rng = default_rng(seed)
    bg = _background(h, w, rng)

    time = np.arange(t) / max(t - 1, 1)
    paths = np.empty((n_walkers, t, 2))
    for obj in range(n_walkers):
        cy = rng.uniform(0.3, 0.7)
        cx = rng.uniform(0.3, 0.7)
        freq = rng.uniform(2.0, 6.0)
        span = rng.uniform(0.15, 0.35)
        phase = rng.uniform(0.0, 2 * np.pi)
        paths[obj, :, 1] = cx + span * np.sin(2 * np.pi * freq * time + phase)
        paths[obj, :, 0] = cy + 0.03 * np.sin(4 * np.pi * freq * time + phase)
    sigmas = rng.uniform(0.04, 0.08, size=max(n_walkers, 1))
    amplitudes = rng.uniform(0.25, 0.5, size=max(n_walkers, 1))

    video = bg[:, :, None] + (
        _moving_blobs(h, w, t, paths, sigmas, amplitudes) if n_walkers else 0.0
    )
    return video + noise * rng.standard_normal((h, w, t))
