"""Dataset registry: named, scaled, seeded access to every simulator.

The experiment harness and the benchmarks address datasets by name and
*scale* so that the same experiment code runs as a fast test (``tiny``), a
quick local check (``small``), or the full benchmark (``default``).  Shapes
at ``default`` scale are laptop-sized versions of the paper's datasets; the
mapping (and why each substitution is faithful) is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..exceptions import DatasetError
from .airquality import airquality_like
from .hsi import hsi_like
from .stock import stock_like
from .synthetic import low_rank_tensor
from .video import boats_like, walking_like

__all__ = ["DatasetSpec", "LoadedDataset", "list_datasets", "load_dataset", "ranks_for"]

SCALES = ("tiny", "small", "default", "large")


def ranks_for(shape: Sequence[int], target: int = 10) -> tuple[int, ...]:
    """Paper-style ranks: ``target`` per mode, clipped to each mode's size."""
    return tuple(min(int(target), int(d)) for d in shape)


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset generator with per-scale shapes.

    Attributes
    ----------
    name:
        Registry key.
    description:
        What paper dataset this stands in for.
    shapes:
        Mapping scale → tensor shape.
    generator:
        ``generator(shape, seed)`` → tensor.
    rank_target:
        Per-mode rank used by default experiments (paper default: 10).
    """

    name: str
    description: str
    shapes: Mapping[str, tuple[int, ...]]
    generator: Callable[[tuple[int, ...], int | None], np.ndarray]
    rank_target: int = 10


@dataclass
class LoadedDataset:
    """A materialised dataset: tensor plus its default experiment ranks."""

    name: str
    scale: str
    tensor: np.ndarray
    ranks: tuple[int, ...]
    description: str

    @property
    def shape(self) -> tuple[int, ...]:
        return self.tensor.shape


def _gen_boats(shape: tuple[int, ...], seed: int | None) -> np.ndarray:
    return boats_like(*shape, seed=seed)


def _gen_walking(shape: tuple[int, ...], seed: int | None) -> np.ndarray:
    return walking_like(*shape, seed=seed)


def _gen_stock(shape: tuple[int, ...], seed: int | None) -> np.ndarray:
    return stock_like(*shape, seed=seed)


def _gen_airquality(shape: tuple[int, ...], seed: int | None) -> np.ndarray:
    return airquality_like(*shape, seed=seed)


def _gen_hsi(shape: tuple[int, ...], seed: int | None) -> np.ndarray:
    return hsi_like(*shape, seed=seed)


def _gen_synthetic(shape: tuple[int, ...], seed: int | None) -> np.ndarray:
    return low_rank_tensor(shape, ranks_for(shape), noise=0.1, seed=seed)


_REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="boats",
            description="Boats video stand-in (paper: 320x240x7000 grayscale video)",
            shapes={
                "tiny": (24, 18, 40),
                "small": (60, 45, 300),
                "default": (120, 90, 1200),
                "large": (160, 120, 2400),
            },
            generator=_gen_boats,
        ),
        DatasetSpec(
            name="walking",
            description="Walking Video stand-in (paper: 1080x1980x2400 video)",
            shapes={
                "tiny": (24, 20, 30),
                "small": (80, 60, 200),
                "default": (160, 120, 600),
                "large": (200, 160, 1200),
            },
            generator=_gen_walking,
        ),
        DatasetSpec(
            name="stock",
            description="Korea Stocks stand-in (paper: 3028x54x3050 stock/feature/day)",
            shapes={
                "tiny": (30, 10, 60),
                "small": (120, 54, 300),
                "default": (400, 54, 1000),
                "large": (800, 54, 2000),
            },
            generator=_gen_stock,
        ),
        DatasetSpec(
            name="airquality",
            description="Air Quality stand-in (paper: 30562x376x6 station/time/pollutant)",
            shapes={
                "tiny": (60, 40, 6),
                "small": (400, 120, 6),
                "default": (2000, 376, 6),
                "large": (4000, 376, 6),
            },
            generator=_gen_airquality,
            rank_target=6,
        ),
        DatasetSpec(
            name="hsi",
            description="Hyperspectral stand-in (paper: 1021x1340x33x8, 4-order)",
            shapes={
                "tiny": (16, 16, 8, 4),
                "small": (48, 48, 16, 6),
                "default": (96, 96, 33, 8),
                "large": (128, 128, 33, 8),
            },
            generator=_gen_hsi,
            rank_target=8,
        ),
        DatasetSpec(
            name="synthetic",
            description="Random Tucker + noise (paper: synthetic scalability tensors)",
            shapes={
                "tiny": (20, 20, 20),
                "small": (60, 60, 60),
                "default": (150, 150, 150),
                "large": (250, 250, 250),
            },
            generator=_gen_synthetic,
        ),
    ]
}


def list_datasets() -> list[str]:
    """Names of all registered datasets, sorted."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(list_datasets())}"
        ) from None


def load_dataset(
    name: str,
    scale: str = "default",
    *,
    seed: int | None = 0,
    rank_target: int | None = None,
) -> LoadedDataset:
    """Materialise a registered dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    scale:
        ``"tiny"`` (unit tests), ``"small"`` (quick runs) or ``"default"``
        (benchmarks).
    seed:
        Seed forwarded to the generator (``0`` for reproducible defaults).
    rank_target:
        Override the spec's per-mode rank target.

    Returns
    -------
    LoadedDataset
    """
    spec = get_spec(name)
    if scale not in spec.shapes:
        raise DatasetError(
            f"unknown scale {scale!r} for dataset {name!r}; "
            f"available: {', '.join(spec.shapes)}"
        )
    shape = spec.shapes[scale]
    tensor = spec.generator(shape, seed)
    target = spec.rank_target if rank_target is None else int(rank_target)
    if scale == "tiny":
        target = min(target, 3)
    return LoadedDataset(
        name=name,
        scale=scale,
        tensor=tensor,
        ranks=ranks_for(shape, target),
        description=spec.description,
    )
