"""Dataset simulators standing in for the paper's six real datasets.

Real datasets (videos, Korean stock data, air-quality measurements,
hyperspectral imagery) are not redistributable/available offline; each
module here generates a synthetic tensor with the same shape class and the
statistical structure that makes the real one Tucker-compressible.  See
DESIGN.md §3 for the substitution table.
"""

from .airquality import airquality_like
from .hsi import hsi_like
from .registry import (
    DatasetSpec,
    LoadedDataset,
    get_spec,
    list_datasets,
    load_dataset,
    ranks_for,
)
from .stock import stock_like
from .synthetic import low_rank_tensor, scalability_tensor
from .video import boats_like, walking_like

__all__ = [
    "airquality_like",
    "hsi_like",
    "DatasetSpec",
    "LoadedDataset",
    "get_spec",
    "list_datasets",
    "load_dataset",
    "ranks_for",
    "stock_like",
    "low_rank_tensor",
    "scalability_tensor",
    "boats_like",
    "walking_like",
]
