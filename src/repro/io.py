"""Persistence for compressed representations and Tucker results.

The memory-efficiency story of D-Tucker extends to disk: a tensor is
compressed once, the :class:`~repro.core.slice_svd.SliceSVD` is saved, and
later sessions answer decomposition requests without ever re-reading the
raw tensor.  Both artifact types round-trip through NumPy ``.npz`` archives
(portable, no pickle, safe to load from untrusted sources with
``allow_pickle=False``).

Format
------
``save_slice_svd`` writes keys ``u, s, vt, shape, norm_squared, format``;
``save_tucker`` writes ``core, factor_0 … factor_{N-1}, format``.  The
``format`` key carries a version string so future revisions can migrate.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .core.result import TuckerResult
from .core.slice_svd import SliceSVD
from .exceptions import ShapeError

__all__ = [
    "save_slice_svd",
    "load_slice_svd",
    "save_tucker",
    "load_tucker",
    "SLICE_SVD_FORMAT",
    "TUCKER_FORMAT",
]

SLICE_SVD_FORMAT = "repro.slice_svd.v1"
TUCKER_FORMAT = "repro.tucker.v1"


def _as_path(path: str | os.PathLike, *, suffix: str = ".npz") -> Path:
    p = Path(path)
    if p.suffix != suffix:
        p = p.with_suffix(p.suffix + suffix)
    return p


def save_slice_svd(ssvd: SliceSVD, path: str | os.PathLike) -> Path:
    """Save a compressed slice representation to ``path`` (``.npz``).

    Returns
    -------
    pathlib.Path
        The path actually written (a ``.npz`` suffix is appended if absent).
    """
    p = _as_path(path)
    extras = {}
    if ssvd.slice_norms_squared is not None:
        extras["slice_norms_squared"] = ssvd.slice_norms_squared
    np.savez_compressed(
        p,
        format=np.array(SLICE_SVD_FORMAT),
        u=ssvd.u,
        s=ssvd.s,
        vt=ssvd.vt,
        shape=np.array(ssvd.shape, dtype=np.int64),
        norm_squared=np.array(ssvd.norm_squared),
        **extras,
    )
    return p


def load_slice_svd(path: str | os.PathLike) -> SliceSVD:
    """Load a :class:`SliceSVD` previously written by :func:`save_slice_svd`.

    Raises
    ------
    ShapeError
        If the archive is missing keys or carries a different format tag.
    """
    with np.load(_as_path(path), allow_pickle=False) as data:
        tag = str(data.get("format", ""))
        if tag != SLICE_SVD_FORMAT:
            raise ShapeError(
                f"not a slice-SVD archive (format {tag!r}, "
                f"expected {SLICE_SVD_FORMAT!r})"
            )
        return SliceSVD(
            u=data["u"],
            s=data["s"],
            vt=data["vt"],
            shape=tuple(int(d) for d in data["shape"]),
            norm_squared=float(data["norm_squared"]),
            slice_norms_squared=(
                data["slice_norms_squared"]
                if "slice_norms_squared" in data
                else None
            ),
        )


def save_tucker(result: TuckerResult, path: str | os.PathLike) -> Path:
    """Save a Tucker decomposition to ``path`` (``.npz``)."""
    p = _as_path(path)
    arrays = {f"factor_{n}": f for n, f in enumerate(result.factors)}
    np.savez_compressed(
        p,
        format=np.array(TUCKER_FORMAT),
        core=result.core,
        **arrays,
    )
    return p


def load_tucker(path: str | os.PathLike) -> TuckerResult:
    """Load a :class:`TuckerResult` previously written by :func:`save_tucker`."""
    with np.load(_as_path(path), allow_pickle=False) as data:
        tag = str(data.get("format", ""))
        if tag != TUCKER_FORMAT:
            raise ShapeError(
                f"not a Tucker archive (format {tag!r}, expected {TUCKER_FORMAT!r})"
            )
        core = data["core"]
        factors = []
        for n in range(core.ndim):
            key = f"factor_{n}"
            if key not in data:
                raise ShapeError(f"Tucker archive missing {key!r}")
            factors.append(data[key])
        return TuckerResult(core=core, factors=factors)
