"""Deprecated ``.npz`` persistence shims — use :mod:`repro.store` instead.

The archive format these functions speak is unchanged (files written by any
release keep loading), but the implementation now lives in
:mod:`repro.store.format` alongside the model-store layout, and the public
surface is :class:`repro.store.ModelStore` /
:meth:`repro.core.dtucker.DTucker.save`:

==========================  ==============================================
historical call             replacement
==========================  ==============================================
``save_slice_svd(s, p)``    ``s.to_dir(p)`` or ``ModelStore.save(...)``
``load_slice_svd(p)``       ``SliceSVD.from_dir(p)`` / ``store.open()``
``save_tucker(r, p)``       ``r.to_dir(p)`` or ``ModelStore.save(...)``
``load_tucker(p)``          ``TuckerResult.from_dir(p)`` / ``store.open()``
==========================  ==============================================

Each wrapper emits a :class:`DeprecationWarning` and delegates; importing
this module stays silent.  Load failures now raise
:class:`repro.exceptions.StoreFormatError` (a :class:`~repro.exceptions
.ShapeError` subclass, so historical ``except ShapeError`` still works) for
*every* corruption mode — including missing archive keys, which previously
escaped as ``KeyError``.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

from .core.result import TuckerResult
from .core.slice_svd import SliceSVD
from .store.format import (
    SLICE_SVD_FORMAT,
    TUCKER_FORMAT,
    read_slice_svd_archive,
    read_tucker_archive,
    write_slice_svd_archive,
    write_tucker_archive,
)

__all__ = [
    "save_slice_svd",
    "load_slice_svd",
    "save_tucker",
    "load_tucker",
    "SLICE_SVD_FORMAT",
    "TUCKER_FORMAT",
]


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.io.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def save_slice_svd(ssvd: SliceSVD, path: str | os.PathLike) -> Path:
    """Save a compressed slice representation to ``path`` (``.npz``).

    .. deprecated:: use :meth:`SliceSVD.to_dir` or
       :func:`repro.store.write_slice_svd_archive`.
    """
    _warn("save_slice_svd", "repro.store.write_slice_svd_archive")
    return write_slice_svd_archive(ssvd, path)


def load_slice_svd(path: str | os.PathLike) -> SliceSVD:
    """Load a :class:`SliceSVD` previously written by :func:`save_slice_svd`.

    .. deprecated:: use :meth:`SliceSVD.from_dir` or
       :func:`repro.store.read_slice_svd_archive`.

    Raises
    ------
    repro.exceptions.StoreFormatError
        If the archive is corrupt, missing keys, or carries a different
        format tag.
    """
    _warn("load_slice_svd", "repro.store.read_slice_svd_archive")
    return read_slice_svd_archive(path)


def save_tucker(result: TuckerResult, path: str | os.PathLike) -> Path:
    """Save a Tucker decomposition to ``path`` (``.npz``).

    .. deprecated:: use :meth:`TuckerResult.to_dir` or
       :func:`repro.store.write_tucker_archive`.
    """
    _warn("save_tucker", "repro.store.write_tucker_archive")
    return write_tucker_archive(result, path)


def load_tucker(path: str | os.PathLike) -> TuckerResult:
    """Load a :class:`TuckerResult` previously written by :func:`save_tucker`.

    .. deprecated:: use :meth:`TuckerResult.from_dir` or
       :func:`repro.store.read_tucker_archive`.
    """
    _warn("load_tucker", "repro.store.read_tucker_archive")
    return read_tucker_archive(path)
