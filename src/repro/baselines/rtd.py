"""RTD: randomized Tucker decomposition (Che & Wei 2019 style).

A one-pass randomized algorithm: process the modes sequentially, replacing
the deterministic truncated SVD of ST-HOSVD with a Halko randomized SVD of
the (shrinking) partial core's unfolding.  No ALS refinement — this is the
"fast but no iteration" point in the accuracy/time trade-off space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import UNSET, DTuckerConfig, resolve_config
from ..core.result import TuckerResult
from ..exceptions import ShapeError
from ..linalg.rsvd import rsvd
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.products import mode_product
from ..tensor.random import default_rng
from ..tensor.unfold import unfold
from ..validation import as_tensor, check_ranks
from ._common import BaselineFit

__all__ = ["rtd"]


def rtd(
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    mode_order: Sequence[int] | None = None,
    seed: int | None = None,
    config: DTuckerConfig | None = None,
    oversampling: object = UNSET,
    power_iterations: object = UNSET,
) -> BaselineFit:
    """Randomized sequentially truncated Tucker decomposition.

    Parameters
    ----------
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    mode_order:
        Processing order; defaults to largest mode first.
    seed:
        Seed for the Gaussian test matrices; overrides ``config.seed``.
    config:
        Solver configuration supplying the randomized-SVD parameters used
        for every mode.
    oversampling, power_iterations:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    BaselineFit
        One-pass fit with a single ``decomposition`` phase.
    """
    cfg = resolve_config(
        config,
        where="rtd",
        oversampling=oversampling,
        power_iterations=power_iterations,
    )
    if seed is None:
        seed = cfg.seed
    x = as_tensor(tensor, min_order=1, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    if mode_order is None:
        order = sorted(range(x.ndim), key=lambda n: (-x.shape[n], n))
    else:
        order = [int(m) for m in mode_order]
        if sorted(order) != list(range(x.ndim)):
            raise ShapeError(
                f"mode_order must be a permutation of 0..{x.ndim - 1}, got {mode_order}"
            )
    gen = default_rng(seed)
    timings = PhaseTimings()
    factors: list[np.ndarray | None] = [None] * x.ndim
    with Timer() as t:
        g = x
        for n in order:
            u = rsvd(
                unfold(g, n),
                rank_tuple[n],
                oversampling=int(cfg.oversampling),
                power_iterations=int(cfg.power_iterations),
                rng=gen,
            )[0]
            factors[n] = u
            g = mode_product(g, u, n, transpose=True)
    timings.add("decomposition", t.seconds)
    assert all(f is not None for f in factors)
    return BaselineFit(
        result=TuckerResult(core=g, factors=list(factors)),  # type: ignore[arg-type]
        timings=timings,
    )
