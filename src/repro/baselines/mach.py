"""MACH (Tsourakakis 2010): randomized element sampling, then Tucker.

MACH sparsifies the tensor by keeping each entry independently with
probability ``p`` (rescaled by ``1/p`` so the sample is unbiased:
``E[X_sampled] = X``) and then runs an exact Tucker solver on the much
sparser tensor.  The paper family uses it as the "sampling" competitor: its
preprocessing is cheap but accuracy degrades quickly as ``p`` shrinks,
especially on tensors without strong entrywise redundancy.

At this library's (laptop) scale the sampled tensor is kept as a dense
array with zeros — the HOOI pass is dense either way — while the *memory
figure* accounts for what a real deployment would store: ``nnz`` values plus
their indices (see :func:`repro.metrics.memory.mach_nbytes`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import UNSET, DTuckerConfig, resolve_config
from ..metrics.memory import mach_nbytes
from ..metrics.timing import Timer
from ..tensor.random import default_rng
from ..validation import as_tensor, check_probability, check_ranks
from ._common import BaselineFit
from .tucker_als import tucker_als

__all__ = ["mach_tucker", "sample_tensor"]


def sample_tensor(
    tensor: np.ndarray,
    keep_probability: float,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, float]:
    """Bernoulli-sample ``tensor``, rescaling kept entries by ``1/p``.

    Returns
    -------
    tuple
        ``(sampled, realised_fraction)`` — the unbiased sparsified tensor
        and the realised fraction of kept entries.
    """
    x = as_tensor(tensor, min_order=1, name="tensor")
    p = check_probability(keep_probability, name="keep_probability")
    gen = default_rng(rng)
    mask = gen.random(x.shape) < p
    sampled = np.where(mask, x / p, 0.0)
    return sampled, float(mask.mean())


def mach_tucker(
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    keep_probability: float = 0.1,
    seed: int | None = None,
    config: DTuckerConfig | None = None,
    max_iters: object = UNSET,
    tol: object = UNSET,
) -> BaselineFit:
    """Tucker decomposition of a Bernoulli-sampled tensor (MACH).

    Parameters
    ----------
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    keep_probability:
        Sampling rate ``p ∈ (0, 1]`` (the paper's ``S``).
    seed:
        Sampling seed; overrides ``config.seed``.
    config:
        Solver configuration; ``max_iters``/``tol`` reach the inner HOOI
        solve.
    max_iters, tol:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    BaselineFit
        With phases ``sampling``, ``init``, ``iteration``; extras record the
        realised keep fraction and the bytes a sparse store would need.
    """
    cfg = resolve_config(config, where="mach_tucker", max_iters=max_iters, tol=tol)
    if seed is None:
        seed = cfg.seed
    x = as_tensor(tensor, min_order=1, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    gen = default_rng(seed)
    with Timer() as t_sample:
        sampled, realised = sample_tensor(x, keep_probability, gen)
    inner = tucker_als(sampled, rank_tuple, config=cfg, init="hosvd")
    inner.timings.add("sampling", t_sample.seconds)
    inner.extras["keep_fraction"] = realised
    inner.extras["stored_nbytes"] = float(mach_nbytes(x.shape, realised))
    return inner
