"""(Sequentially) truncated higher-order SVD.

HOSVD computes each factor as the leading left singular vectors of the
corresponding unfolding of the *original* tensor; ST-HOSVD (Vannieuwenhoven
et al. 2012) truncates as it goes, shrinking every subsequent unfolding and
usually both faster *and* slightly more accurate.  Both are one-pass
(non-iterative) and serve two roles here: standalone baselines, and the
initializer of :func:`repro.baselines.tucker_als.tucker_als`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import DTuckerConfig
from ..core.result import TuckerResult
from ..linalg.svd import leading_left_singular_vectors
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.products import mode_product, multi_mode_product
from ..tensor.unfold import unfold
from ..validation import as_tensor, check_ranks
from ._common import BaselineFit

__all__ = ["hosvd", "st_hosvd"]


def hosvd(
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    config: DTuckerConfig | None = None,
) -> BaselineFit:
    """Truncated HOSVD: factors from unfoldings of the raw tensor.

    Parameters
    ----------
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    config:
        Accepted for call-surface uniformity; HOSVD is deterministic and
        one-pass, so no field applies.

    Returns
    -------
    BaselineFit
        One-pass fit (empty history).
    """
    del config  # no tunable fields apply to a deterministic one-pass method
    x = as_tensor(tensor, min_order=1, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    timings = PhaseTimings()
    with Timer() as t:
        factors = [
            leading_left_singular_vectors(unfold(x, n), rank_tuple[n])
            for n in range(x.ndim)
        ]
        core = multi_mode_product(x, factors, transpose=True)
    timings.add("decomposition", t.seconds)
    return BaselineFit(
        result=TuckerResult(core=core, factors=factors), timings=timings
    )


def st_hosvd(
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    mode_order: Sequence[int] | None = None,
    config: DTuckerConfig | None = None,
) -> BaselineFit:
    """Sequentially truncated HOSVD.

    Parameters
    ----------
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    mode_order:
        Order in which modes are processed; defaults to processing the
        largest mode first (greatest early shrinkage).
    config:
        Accepted for call-surface uniformity; no field applies.

    Returns
    -------
    BaselineFit
    """
    del config  # no tunable fields apply to a deterministic one-pass method
    x = as_tensor(tensor, min_order=1, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    if mode_order is None:
        order = sorted(range(x.ndim), key=lambda n: (-x.shape[n], n))
    else:
        order = [int(m) for m in mode_order]
        if sorted(order) != list(range(x.ndim)):
            from ..exceptions import ShapeError

            raise ShapeError(
                f"mode_order must be a permutation of 0..{x.ndim - 1}, got {mode_order}"
            )
    timings = PhaseTimings()
    factors: list[np.ndarray | None] = [None] * x.ndim
    with Timer() as t:
        g = x
        for n in order:
            u = leading_left_singular_vectors(unfold(g, n), rank_tuple[n])
            factors[n] = u
            g = mode_product(g, u, n, transpose=True)
    timings.add("decomposition", t.seconds)
    assert all(f is not None for f in factors)
    return BaselineFit(
        result=TuckerResult(core=g, factors=list(factors)),  # type: ignore[arg-type]
        timings=timings,
    )
