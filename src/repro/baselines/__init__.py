"""Baseline Tucker solvers the paper compares against — all from scratch.

* :func:`tucker_als` — HOOI on the raw tensor (accuracy gold standard),
* :func:`hosvd` / :func:`st_hosvd` — one-pass truncated HOSVD,
* :func:`mach_tucker` — Bernoulli element sampling + HOOI (MACH),
* :func:`rtd` — one-pass randomized sequentially-truncated Tucker,
* :func:`tucker_ts` / :func:`tucker_ttmts` — TensorSketch methods.

Every solver returns a :class:`BaselineFit`.
"""

from ._common import BaselineFit
from .hosvd import hosvd, st_hosvd
from .mach import mach_tucker, sample_tensor
from .rtd import rtd
from .tucker_als import tucker_als
from .tucker_ts import tucker_ts
from .tucker_ttmts import tucker_ttmts

__all__ = [
    "BaselineFit",
    "hosvd",
    "st_hosvd",
    "mach_tucker",
    "sample_tensor",
    "rtd",
    "tucker_als",
    "tucker_ts",
    "tucker_ttmts",
]
