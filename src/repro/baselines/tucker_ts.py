"""Tucker-ts (Malik & Becker, NeurIPS 2018): sketched-least-squares ALS.

The exact ALS subproblem for mode ``n`` is the least squares problem

.. math:: \\min_A \\;\\big\\| (\\otimes_{k \\ne n} A^{(k)})\\, G_{(n)}^T A^T
          - X_{(n)}^T \\big\\|_F ,

whose design matrix has ``Π_{k≠n} I_k`` rows.  Tucker-ts sketches both sides
with a TensorSketch ``S1⁽ⁿ⁾``: the right-hand side ``S1⁽ⁿ⁾ X_(n)ᵀ`` is
precomputed *once*, and the design side ``S1⁽ⁿ⁾(⊗A) G_(n)ᵀ`` is recomputed
each sweep via the FFT trick without forming the Kronecker product.  The
core solves the analogous fully sketched problem with a second sketch
``S2``.  Factors are orthonormalized once at the end (QR, pushing ``R``
into the core), preserving this library's orthonormal-factor convention.
"""

from __future__ import annotations

import logging
from typing import Sequence

import numpy as np

from ..core.config import UNSET, DTuckerConfig, resolve_config
from ..core.result import TuckerResult
from ..exceptions import ConvergenceError
from ..linalg.qr import economy_qr
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.products import mode_product
from ..tensor.random import default_rng
from ..tensor.unfold import tensorize, unfold
from ..validation import as_tensor, check_ranks
from ._common import BaselineFit
from ._sketched import SketchedTensor, default_sketch_dims, sketch_tensor

__all__ = ["tucker_ts"]

logger = logging.getLogger("repro.baselines.tucker_ts")


def _sketched_design(
    sk: SketchedTensor,
    mode: int,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
) -> np.ndarray:
    """``S1⁽ⁿ⁾ (⊗_{k≠n} A(k)) G_(n)ᵀ`` of shape ``(s1, J_n)``."""
    kron_sketch = sk.mode_sketches[mode].sketch_kron(
        sk.descending_secondary(mode, factors)
    )
    return kron_sketch @ unfold(core, mode).T


def _solve_core(sk: SketchedTensor, factors: Sequence[np.ndarray], ranks: tuple[int, ...]) -> tuple[np.ndarray, float]:
    """Solve the fully sketched core problem; return ``(core, rel_residual)``."""
    design = sk.full_sketch.sketch_kron(sk.descending_all(factors))
    vec_g, *_ = np.linalg.lstsq(design, sk.z_full, rcond=None)
    residual = float(
        np.linalg.norm(design @ vec_g - sk.z_full) / np.linalg.norm(sk.z_full)
    )
    return tensorize(vec_g, ranks), residual


def tucker_ts(
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    sketch_dims: tuple[int, int] | None = None,
    sketch_factor: int = 10,
    seed: int | None = None,
    config: DTuckerConfig | None = None,
    max_iters: object = UNSET,
    tol: object = UNSET,
) -> BaselineFit:
    """Tucker decomposition with TensorSketch-ed ALS least squares.

    Parameters
    ----------
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    sketch_dims:
        ``(s1, s2)``; defaults to :func:`repro.baselines._sketched.
        default_sketch_dims` scaled by ``sketch_factor``.
    sketch_factor:
        Multiplier for the default sketch sizes (accuracy vs time/space).
    seed:
        Seed for hash functions and initialization; overrides
        ``config.seed``.
    config:
        Solver configuration supplying the sweep budget and the tolerance
        on the sketched-residual change.
    max_iters, tol:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    BaselineFit
        With phases ``sketch`` and ``iteration``; ``history`` holds the
        *sketched* relative residuals (not exact errors), and extras record
        the sketch sizes and stored bytes.
    """
    cfg = resolve_config(config, where="tucker_ts", max_iters=max_iters, tol=tol)
    if seed is None:
        seed = cfg.seed
    x = as_tensor(tensor, min_order=1, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    dims = sketch_dims or default_sketch_dims(rank_tuple, factor=sketch_factor)
    gen = default_rng(seed)
    timings = PhaseTimings()

    with Timer() as t_sketch:
        sk = sketch_tensor(x, dims, gen)
    timings.add("sketch", t_sketch.seconds)

    # Gaussian init (the reference implementation's default); the sketched
    # LS solves fix the scale immediately in the first sweep.
    factors = [
        gen.standard_normal((i, j)) for i, j in zip(x.shape, rank_tuple)
    ]
    core = gen.standard_normal(rank_tuple)

    history: list[float] = []
    converged = False
    sweep = 0
    with Timer() as t_iter:
        for sweep in range(1, int(cfg.max_iters) + 1):
            for n in range(x.ndim):
                design = _sketched_design(sk, n, factors, core)
                at, *_ = np.linalg.lstsq(design, sk.z_modes[n], rcond=None)
                factors[n] = at.T
            core, residual = _solve_core(sk, factors, rank_tuple)
            if not np.isfinite(residual):
                raise ConvergenceError(
                    f"non-finite sketched residual at sweep {sweep}"
                )
            history.append(residual)
            logger.debug("tucker_ts sweep %d: sketched residual %.6e", sweep, residual)
            if len(history) >= 2 and abs(history[-2] - history[-1]) < float(cfg.tol):
                converged = True
                break
        # Orthonormalize factors, pushing the triangular parts into the core.
        for n in range(x.ndim):
            q, r = economy_qr(factors[n])
            factors[n] = q
            core = mode_product(core, r, n)
    timings.add("iteration", t_iter.seconds)

    return BaselineFit(
        result=TuckerResult(core=core, factors=factors),
        timings=timings,
        history=history,
        converged=converged,
        n_iters=sweep,
        extras={
            "sketch_dim_1": float(dims[0]),
            "sketch_dim_2": float(dims[1]),
            "stored_nbytes": float(sk.stored_nbytes),
        },
    )
