"""Tucker-ttmts (Malik & Becker, NeurIPS 2018): sketched TTM chains.

Tucker-ts solves a sketched least squares problem per mode; Tucker-ttmts is
the cheaper sibling that instead *estimates the HOOI TTM chain* through the
sketch and proceeds exactly like HOOI:

.. math:: Y_{(n)} = X_{(n)} (\\otimes_{k \\ne n} A^{(k)})
          \\;\\approx\\; (S_1 X_{(n)}^T)^T \\, S_1 (\\otimes_{k \\ne n} A^{(k)}) ,

using that a CountSketch-style operator satisfies ``E[SᵀS] = I``.  The
factor update then takes the leading left singular vectors of the estimate
(so factors stay orthonormal throughout), and the core solves the same
fully sketched problem as Tucker-ts.  Per sweep this avoids every large
least squares solve — the trade-off is a noisier update direction.
"""

from __future__ import annotations

import logging
from typing import Sequence

import numpy as np

from ..core.config import UNSET, DTuckerConfig, resolve_config
from ..core.result import TuckerResult
from ..exceptions import ConvergenceError
from ..linalg.svd import leading_left_singular_vectors
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.random import default_rng, random_orthonormal
from ..validation import as_tensor, check_ranks
from ._common import BaselineFit
from ._sketched import default_sketch_dims, sketch_tensor
from .tucker_ts import _solve_core

__all__ = ["tucker_ttmts"]

logger = logging.getLogger("repro.baselines.tucker_ttmts")


def tucker_ttmts(
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    sketch_dims: tuple[int, int] | None = None,
    sketch_factor: int = 10,
    seed: int | None = None,
    config: DTuckerConfig | None = None,
    max_iters: object = UNSET,
    tol: object = UNSET,
) -> BaselineFit:
    """Tucker decomposition with TensorSketch-estimated TTM chains.

    Parameters
    ----------
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    sketch_dims, sketch_factor:
        As in :func:`repro.baselines.tucker_ts.tucker_ts`.
    seed:
        Seed for hash functions and initialization; overrides
        ``config.seed``.
    config:
        Solver configuration supplying the sweep budget and the tolerance
        on the sketched-residual change.
    max_iters, tol:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    BaselineFit
        With phases ``sketch`` and ``iteration``; ``history`` holds sketched
        relative residuals.
    """
    cfg = resolve_config(config, where="tucker_ttmts", max_iters=max_iters, tol=tol)
    if seed is None:
        seed = cfg.seed
    x = as_tensor(tensor, min_order=1, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    dims = sketch_dims or default_sketch_dims(rank_tuple, factor=sketch_factor)
    gen = default_rng(seed)
    timings = PhaseTimings()

    with Timer() as t_sketch:
        sk = sketch_tensor(x, dims, gen)
    timings.add("sketch", t_sketch.seconds)

    factors = [
        random_orthonormal(i, j, gen) for i, j in zip(x.shape, rank_tuple)
    ]

    history: list[float] = []
    converged = False
    sweep = 0
    with Timer() as t_iter:
        for sweep in range(1, int(cfg.max_iters) + 1):
            for n in range(x.ndim):
                kron_sketch = sk.mode_sketches[n].sketch_kron(
                    sk.descending_secondary(n, factors)
                )
                # Sketch-estimated TTM chain: (S1 X_(n)ᵀ)ᵀ (S1 ⊗A).
                y = sk.z_modes[n].T @ kron_sketch
                factors[n] = leading_left_singular_vectors(y, rank_tuple[n])
            core, residual = _solve_core(sk, factors, rank_tuple)
            if not np.isfinite(residual):
                raise ConvergenceError(
                    f"non-finite sketched residual at sweep {sweep}"
                )
            history.append(residual)
            logger.debug(
                "tucker_ttmts sweep %d: sketched residual %.6e", sweep, residual
            )
            if len(history) >= 2 and abs(history[-2] - history[-1]) < float(cfg.tol):
                converged = True
                break
    timings.add("iteration", t_iter.seconds)

    return BaselineFit(
        result=TuckerResult(core=core, factors=factors),
        timings=timings,
        history=history,
        converged=converged,
        n_iters=sweep,
        extras={
            "sketch_dim_1": float(dims[0]),
            "sketch_dim_2": float(dims[1]),
            "stored_nbytes": float(sk.stored_nbytes),
        },
    )
