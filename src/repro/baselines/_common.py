"""Shared return type and helpers for the baseline solvers.

Every baseline returns a :class:`BaselineFit` so the experiment harness can
treat D-Tucker and its competitors uniformly: a :class:`~repro.core.result.
TuckerResult`, per-phase timings, a per-sweep error history, and
method-specific extras (e.g. MACH's realised keep fraction, Tucker-ts sketch
sizes).  Like :class:`TuckerResult` itself, the class satisfies the
:class:`~repro.core.protocol.FitLike` protocol, so consumers never need to
know whether they are holding a bare result or a baseline wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.result import TuckerResult
from ..metrics.timing import PhaseTimings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import PhaseTrace

__all__ = ["BaselineFit"]


@dataclass
class BaselineFit:
    """Outcome of one baseline run.

    Attributes
    ----------
    result:
        The Tucker decomposition (factors column-orthonormal).
    timings:
        Wall-clock seconds per phase (phase names vary by method).
    history:
        Per-sweep error estimates for iterative methods (empty for one-pass
        methods like HOSVD/RTD).
    converged:
        Whether the iterative stop criterion fired within the budget
        (``True`` for one-pass methods).
    n_iters:
        Completed sweeps (``0`` for one-pass methods).
    extras:
        Method-specific scalars for reports (sketch sizes, keep fractions,
        preprocessed-representation bytes under key ``"stored_nbytes"``, …).
    """

    result: TuckerResult
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    history: list[float] = field(default_factory=list)
    converged: bool = True
    n_iters: int = 0
    extras: dict[str, float] = field(default_factory=dict)
    trace_: "list[PhaseTrace]" = field(default_factory=list)

    # -- FitLike protocol ----------------------------------------------------
    @property
    def core(self) -> np.ndarray:
        """Core tensor of the wrapped decomposition."""
        return self.result.core

    @property
    def factors(self) -> list[np.ndarray]:
        """Factor matrices of the wrapped decomposition."""
        return self.result.factors

    @property
    def elapsed(self) -> float:
        """Total wall-clock seconds across all recorded phases."""
        return float(self.timings.total)

    def error(self, reference: np.ndarray) -> float:
        """Relative reconstruction error against ``reference``."""
        return self.result.error(reference)
