"""Shared return type and helpers for the baseline solvers.

Every baseline returns a :class:`BaselineFit` so the experiment harness can
treat D-Tucker and its competitors uniformly: a :class:`~repro.core.result.
TuckerResult`, per-phase timings, a per-sweep error history, and
method-specific extras (e.g. MACH's realised keep fraction, Tucker-ts sketch
sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.result import TuckerResult
from ..metrics.timing import PhaseTimings

__all__ = ["BaselineFit"]


@dataclass
class BaselineFit:
    """Outcome of one baseline run.

    Attributes
    ----------
    result:
        The Tucker decomposition (factors column-orthonormal).
    timings:
        Wall-clock seconds per phase (phase names vary by method).
    history:
        Per-sweep error estimates for iterative methods (empty for one-pass
        methods like HOSVD/RTD).
    converged:
        Whether the iterative stop criterion fired within the budget
        (``True`` for one-pass methods).
    n_iters:
        Completed sweeps (``0`` for one-pass methods).
    extras:
        Method-specific scalars for reports (sketch sizes, keep fractions,
        preprocessed-representation bytes under key ``"stored_nbytes"``, …).
    """

    result: TuckerResult
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    history: list[float] = field(default_factory=list)
    converged: bool = True
    n_iters: int = 0
    extras: dict[str, float] = field(default_factory=dict)
