"""Shared machinery for the TensorSketch baselines (Tucker-ts / Tucker-ttmts).

Both methods preprocess the tensor *once* into sketches and then iterate on
those sketches only:

* per mode ``n``, a TensorSketch ``S1⁽ⁿ⁾`` of the rows of ``X_(n)ᵀ`` —
  stored as ``Z_n = S1⁽ⁿ⁾ X_(n)ᵀ ∈ R^{s1 × I_n}``;
* one TensorSketch ``S2`` of ``vec(X)`` — stored as ``z ∈ R^{s2}``.

Ordering: the rows of ``X_(n)ᵀ`` follow the Kolda unfolding (Fortran over
the secondary modes, lowest fastest), which equals left-to-right Kronecker
order over the modes in *descending* order — so every TensorSketch here is
built over descending-mode dimension lists, and ``sketch_kron`` receives the
factor matrices in the same descending order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..linalg.sketch import TensorSketch
from ..metrics.memory import total_nbytes
from ..tensor.random import default_rng
from ..tensor.unfold import unfold, vectorize
from ..validation import as_tensor, check_positive_int

__all__ = ["SketchedTensor", "default_sketch_dims", "sketch_tensor"]


def default_sketch_dims(
    ranks: Sequence[int], *, factor: int = 10
) -> tuple[int, int]:
    """Recommended sketch sizes ``(s1, s2)`` for ranks ``(J_1, …, J_N)``.

    Following Malik & Becker's guidance, ``s1`` scales with the largest
    secondary-rank product ``max_n Π_{k≠n} J_k`` and ``s2`` with ``Π_k J_k``.
    """
    rank_arr = [int(r) for r in ranks]
    total = int(np.prod(rank_arr, dtype=np.int64))
    secondary = max(total // r for r in rank_arr)
    return factor * secondary, factor * total


@dataclass
class SketchedTensor:
    """The preprocessed sketches of one tensor.

    Attributes
    ----------
    shape:
        Original tensor shape.
    mode_sketches:
        Per mode ``n``, the operator ``S1⁽ⁿ⁾`` (needed again each sweep to
        sketch the Kronecker factor product).
    z_modes:
        Per mode ``n``, the stored sketch ``Z_n = S1⁽ⁿ⁾ X_(n)ᵀ``.
    full_sketch:
        The operator ``S2`` over all modes.
    z_full:
        The stored sketch ``z = S2 vec(X)``.
    """

    shape: tuple[int, ...]
    mode_sketches: list[TensorSketch]
    z_modes: list[np.ndarray]
    full_sketch: TensorSketch
    z_full: np.ndarray

    @property
    def stored_nbytes(self) -> int:
        """Bytes of the stored numeric sketches (what a deployment keeps)."""
        return total_nbytes(self.z_modes) + int(np.asarray(self.z_full).nbytes)

    def descending_secondary(self, mode: int, matrices: Sequence[np.ndarray]) -> list[np.ndarray]:
        """``matrices`` for all modes but ``mode``, in descending mode order."""
        return [matrices[k] for k in range(len(self.shape) - 1, -1, -1) if k != mode]

    def descending_all(self, matrices: Sequence[np.ndarray]) -> list[np.ndarray]:
        """``matrices`` for all modes, in descending mode order."""
        return [matrices[k] for k in range(len(self.shape) - 1, -1, -1)]


def sketch_tensor(
    tensor: np.ndarray,
    sketch_dims: tuple[int, int],
    rng: int | np.random.Generator | None = None,
) -> SketchedTensor:
    """Run the one-time sketching pass over ``tensor``.

    Parameters
    ----------
    tensor:
        Dense tensor.
    sketch_dims:
        ``(s1, s2)`` — per-mode and full sketch sizes.
    rng:
        Seed or generator for the hash functions.

    Returns
    -------
    SketchedTensor
    """
    x = as_tensor(tensor, min_order=1, name="tensor")
    s1 = check_positive_int(sketch_dims[0], name="sketch_dims[0]")
    s2 = check_positive_int(sketch_dims[1], name="sketch_dims[1]")
    gen = default_rng(rng)
    order = x.ndim
    mode_sketches: list[TensorSketch] = []
    z_modes: list[np.ndarray] = []
    for n in range(order):
        dims = [x.shape[k] for k in range(order - 1, -1, -1) if k != n]
        ts = TensorSketch(dims, s1, gen)
        mode_sketches.append(ts)
        z_modes.append(ts.apply(unfold(x, n).T))
    full_dims = [x.shape[k] for k in range(order - 1, -1, -1)]
    full_sketch = TensorSketch(full_dims, s2, gen)
    z_full = full_sketch.apply(vectorize(x))
    return SketchedTensor(
        shape=x.shape,
        mode_sketches=mode_sketches,
        z_modes=z_modes,
        full_sketch=full_sketch,
        z_full=z_full,
    )
