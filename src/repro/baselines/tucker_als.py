"""Tucker-ALS (HOOI) — the classical baseline, on the raw tensor.

Higher-Order Orthogonal Iteration (De Lathauwer et al. 2000; Kolda & Bader
2009, Alg. "HOOI"): every sweep replaces each factor with the leading left
singular vectors of the TTM chain ``X ×_{k≠n} A(k)ᵀ`` computed on the *full
tensor*.  This is the accuracy gold standard D-Tucker is measured against —
and the cost center, since each sweep touches all ``Π I_k`` entries per mode.
"""

from __future__ import annotations

import logging
from typing import Sequence

import numpy as np

from ..core.config import UNSET, DTuckerConfig, resolve_config
from ..core.result import TuckerResult
from ..exceptions import ConvergenceError, ShapeError
from ..linalg.svd import leading_left_singular_vectors
from ..metrics.timing import PhaseTimings, Timer
from ..tensor.norms import core_based_error, frobenius_norm_squared
from ..tensor.products import multi_mode_product
from ..tensor.random import default_rng, random_orthonormal
from ..tensor.unfold import unfold
from ..validation import as_tensor, check_ranks
from ._common import BaselineFit
from .hosvd import st_hosvd

__all__ = ["tucker_als"]

logger = logging.getLogger("repro.baselines.tucker_als")


def tucker_als(
    tensor: np.ndarray,
    ranks: int | Sequence[int],
    *,
    init: str = "hosvd",
    seed: int | None = None,
    initial_factors: Sequence[np.ndarray] | None = None,
    config: DTuckerConfig | None = None,
    max_iters: object = UNSET,
    tol: object = UNSET,
) -> BaselineFit:
    """Tucker decomposition via HOOI on the dense tensor.

    Parameters
    ----------
    tensor:
        Dense tensor.
    ranks:
        Target Tucker ranks.
    init:
        ``"hosvd"`` (ST-HOSVD warm start, the standard choice) or
        ``"random"``.
    seed:
        Seed for random initialization; overrides ``config.seed``.
    initial_factors:
        Explicit starting factors; overrides ``init`` when given.
    config:
        Solver configuration supplying the sweep budget and tolerance —
        the same object every other entry point accepts.
    max_iters, tol:
        .. deprecated:: use ``config=DTuckerConfig(...)`` instead.

    Returns
    -------
    BaselineFit
        With phases ``init`` and ``iteration`` and a per-sweep error history
        (exact, via the core-norm identity — HOOI projects the true tensor,
        so ``||X - X̂||² = ||X||² - ||G||²`` holds exactly here).
    """
    cfg = resolve_config(config, where="tucker_als", max_iters=max_iters, tol=tol)
    if seed is None:
        seed = cfg.seed
    x = as_tensor(tensor, min_order=1, name="tensor")
    rank_tuple = check_ranks(ranks, x.shape)
    timings = PhaseTimings()
    norm_sq = frobenius_norm_squared(x)

    with Timer() as t_init:
        if initial_factors is not None:
            factors = [np.asarray(a, dtype=float) for a in initial_factors]
            if len(factors) != x.ndim:
                raise ShapeError(
                    f"expected {x.ndim} initial factors, got {len(factors)}"
                )
        elif init == "hosvd":
            factors = st_hosvd(x, rank_tuple).result.factors
        elif init == "random":
            gen = default_rng(seed)
            factors = [
                random_orthonormal(i, j, gen)
                for i, j in zip(x.shape, rank_tuple)
            ]
        else:
            raise ShapeError(f"init must be 'hosvd' or 'random', got {init!r}")
    timings.add("init", t_init.seconds)

    errors: list[float] = []
    converged = False
    sweep = 0
    core = multi_mode_product(x, factors, transpose=True)
    with Timer() as t_iter:
        for sweep in range(1, int(cfg.max_iters) + 1):
            for n in range(x.ndim):
                y = multi_mode_product(
                    x,
                    [factors[k] for k in range(x.ndim) if k != n],
                    modes=[k for k in range(x.ndim) if k != n],
                    transpose=True,
                )
                factors[n] = leading_left_singular_vectors(
                    unfold(y, n), rank_tuple[n]
                )
            core = multi_mode_product(x, factors, transpose=True)
            err = core_based_error(norm_sq, core)
            if not np.isfinite(err):
                raise ConvergenceError(
                    f"non-finite error at sweep {sweep}; input corrupt?"
                )
            errors.append(err)
            logger.debug("HOOI sweep %d: error %.6e", sweep, err)
            if len(errors) >= 2 and abs(errors[-2] - errors[-1]) < float(cfg.tol):
                converged = True
                break
    timings.add("iteration", t_iter.seconds)

    return BaselineFit(
        result=TuckerResult(core=core, factors=factors),
        timings=timings,
        history=errors,
        converged=converged,
        n_iters=sweep,
    )
