"""A COO sparse tensor substrate.

The D-Tucker paper closes with *"future research includes extending the
method for sparse tensors"*; this subpackage realises that extension.  The
:class:`SparseTensor` here is a minimal but complete coordinate-format
tensor: validated construction, dense round-trips, slice extraction as
``scipy.sparse`` matrices (the shape D-Tucker's approximation phase needs),
norms, and mode-``n`` unfolding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..exceptions import ShapeError
from ..tensor.slices import slice_count
from ..validation import as_tensor

__all__ = ["SparseTensor"]


@dataclass
class SparseTensor:
    """An order-``N`` tensor stored as coordinates + values (COO).

    Attributes
    ----------
    coords:
        Integer array of shape ``(nnz, N)``; one row per stored entry.
    values:
        Float array of shape ``(nnz,)``.
    shape:
        Full tensor shape.

    Duplicate coordinates are summed on construction (COO convention).
    """

    coords: np.ndarray
    values: np.ndarray
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        coords = np.asarray(self.coords, dtype=np.int64)
        values = np.asarray(self.values, dtype=float)
        self.shape = tuple(int(d) for d in self.shape)
        if coords.ndim != 2 or coords.shape[1] != len(self.shape):
            raise ShapeError(
                f"coords must have shape (nnz, {len(self.shape)}), got {coords.shape}"
            )
        if values.shape != (coords.shape[0],):
            raise ShapeError(
                f"values must have shape ({coords.shape[0]},), got {values.shape}"
            )
        if not np.isfinite(values).all():
            raise ShapeError("values contain non-finite entries")
        if coords.size:
            if coords.min() < 0 or (coords >= np.array(self.shape)).any():
                raise ShapeError("coords out of bounds for shape")
        # Coalesce duplicates so nnz and norms are well defined.
        if coords.shape[0]:
            flat = np.ravel_multi_index(coords.T, self.shape, order="F")
            order = np.argsort(flat, kind="stable")
            flat, values = flat[order], values[order]
            unique, start = np.unique(flat, return_index=True)
            summed = np.add.reduceat(values, start)
            keep = summed != 0.0
            unique, summed = unique[keep], summed[keep]
            coords = np.stack(
                np.unravel_index(unique, self.shape, order="F"), axis=1
            ).astype(np.int64)
            values = summed
        self.coords = coords
        self.values = values

    # -- construction --------------------------------------------------------
    @classmethod
    def from_dense(cls, tensor: np.ndarray, *, threshold: float = 0.0) -> "SparseTensor":
        """Build from a dense array, keeping entries with ``|x| > threshold``."""
        x = as_tensor(tensor, min_order=1, name="tensor")
        mask = np.abs(x) > threshold
        coords = np.argwhere(mask)
        return cls(coords=coords, values=x[mask], shape=x.shape)

    @classmethod
    def random(
        cls,
        shape: tuple[int, ...],
        density: float,
        rng: int | np.random.Generator | None = None,
    ) -> "SparseTensor":
        """Uniformly random sparse tensor with the given expected density."""
        from ..tensor.random import default_rng
        from ..validation import check_probability

        check_probability(density, name="density")
        gen = default_rng(rng)
        total = int(np.prod(shape, dtype=np.int64))
        nnz = max(1, int(round(total * density)))
        flat = gen.choice(total, size=nnz, replace=False)
        coords = np.stack(np.unravel_index(flat, shape, order="F"), axis=1)
        return cls(coords=coords, values=gen.standard_normal(nnz), shape=shape)

    # -- basic properties ------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return int(self.values.shape[0])

    @property
    def density(self) -> float:
        """Fraction of stored entries."""
        return self.nnz / float(np.prod(self.shape, dtype=np.int64))

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nbytes(self) -> int:
        """Bytes of the COO representation."""
        return int(self.coords.nbytes + self.values.nbytes)

    def norm_squared(self) -> float:
        """``‖X‖_F²`` (exact — zeros contribute nothing)."""
        return float(self.values @ self.values)

    # -- conversions -----------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise the dense array."""
        out = np.zeros(self.shape)
        out[tuple(self.coords.T)] = self.values
        return out

    def unfold(self, mode: int) -> sparse.csr_matrix:
        """Mode-``mode`` unfolding as a CSR matrix (Kolda convention)."""
        from ..validation import check_mode

        m = check_mode(mode, self.order)
        rows = self.coords[:, m]
        other = [k for k in range(self.order) if k != m]
        if other:
            cols = np.ravel_multi_index(
                tuple(self.coords[:, k] for k in other),
                tuple(self.shape[k] for k in other),
                order="F",
            )
        else:
            cols = np.zeros(self.nnz, dtype=np.int64)
        n_cols = int(np.prod([self.shape[k] for k in other], dtype=np.int64)) if other else 1
        return sparse.csr_matrix(
            (self.values, (rows, cols)), shape=(self.shape[m], n_cols)
        )

    def slice_nnz(self) -> np.ndarray:
        """Stored entries per slice, in slice-index order (length ``L``).

        The distribution of these counts is exactly the per-slice work
        profile of the ``O(nnz)`` sparse compression kernel, so the
        execution engine uses it as the scheduling cost model for sparse
        fan-outs (see :mod:`repro.engine.cost`).
        """
        count = slice_count(self.shape)
        if self.order < 2:
            raise ShapeError("slices require order >= 2")
        if self.order == 2:
            return np.array([self.nnz], dtype=np.int64)
        keys = np.ravel_multi_index(
            tuple(self.coords[:, k] for k in range(2, self.order)),
            self.shape[2:],
            order="F",
        )
        return np.bincount(keys, minlength=count).astype(np.int64)

    def slice_matrices(
        self, start: int | None = None, stop: int | None = None
    ) -> list[sparse.csr_matrix]:
        """The slices ``X_l ∈ R^{I1×I2}`` as CSR matrices.

        Slice index runs Fortran-order over modes ``3..N``, matching
        :mod:`repro.tensor.slices`.  ``start``/``stop`` restrict the result
        to the slice range ``[start, stop)`` (default: all ``L`` slices),
        so batch-at-a-time consumers — the pipelined sparse compressor —
        never materialise every slice at once.
        """
        if self.order < 2:
            raise ShapeError("slices require order >= 2")
        i1, i2 = self.shape[:2]
        count = slice_count(self.shape)
        lo = 0 if start is None else int(start)
        hi = count if stop is None else int(stop)
        if not 0 <= lo <= hi <= count:
            raise ShapeError(
                f"slice range [{lo}, {hi}) invalid for {count} slices"
            )
        if self.order == 2:
            keys = np.zeros(self.nnz, dtype=np.int64)
        else:
            keys = np.ravel_multi_index(
                tuple(self.coords[:, k] for k in range(2, self.order)),
                self.shape[2:],
                order="F",
            )
        slices = []
        for l in range(lo, hi):
            sel = keys == l
            slices.append(
                sparse.csr_matrix(
                    (
                        self.values[sel],
                        (self.coords[sel, 0], self.coords[sel, 1]),
                    ),
                    shape=(i1, i2),
                )
            )
        return slices
