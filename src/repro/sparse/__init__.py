"""Sparse-tensor substrate (the paper's future-work direction).

:class:`SparseTensor` is a COO tensor with slice extraction; the matching
solver lives in :func:`repro.core.sparse_dtucker.sparse_dtucker`.
"""

from .coo import SparseTensor

__all__ = ["SparseTensor"]
