"""Argument validation helpers shared by every public entry point.

These functions normalise user input (lists to tuples, integer-likes to
``int``), check it, and raise exceptions from :mod:`repro.exceptions` with
messages that name the offending argument.  They are deliberately small and
composable; public functions call them in their first few lines so that all
error paths are exercised before any expensive work starts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .exceptions import RankError, ShapeError

__all__ = [
    "as_tensor",
    "check_mode",
    "check_ranks",
    "check_positive_int",
    "check_probability",
    "check_matrix",
    "check_same_length",
]


def as_tensor(x: np.ndarray, *, min_order: int = 1, name: str = "tensor") -> np.ndarray:
    """Coerce ``x`` to a floating-point ``ndarray`` and validate its order.

    Parameters
    ----------
    x:
        Array-like input.  Integer arrays are promoted to ``float64``;
        ``float32`` is preserved to let callers trade precision for memory.
    min_order:
        Minimum number of dimensions required.
    name:
        Argument name used in error messages.

    Returns
    -------
    numpy.ndarray
        A C-contiguous floating point array (a view when possible).

    Raises
    ------
    ShapeError
        If the input has fewer than ``min_order`` dimensions, a zero-length
        mode, or contains non-finite values.

    Notes
    -----
    Arrays owned by a non-NumPy namespace (torch / CuPy / array-API) are
    validated through their :class:`~repro.engine.array_api.ArrayModule`
    and returned *in place* — they are never pulled back to the host, so
    device-resident pipelines keep their residency through validation.
    """
    if type(x) is not np.ndarray and (
        hasattr(x, "__array_namespace__")
        or type(x).__module__.partition(".")[0] in ("torch", "cupy")
    ):
        from .engine.array_api import array_module_of

        am = array_module_of(x)
        if not am.is_numpy:
            return _as_foreign_tensor(am, x, min_order=min_order, name=name)
    arr = np.asarray(x)
    if arr.dtype.kind not in "fiu":
        raise ShapeError(f"{name} must be numeric, got dtype {arr.dtype!r}")
    if arr.dtype.kind in "iu":
        arr = arr.astype(np.float64)
    elif arr.dtype not in (np.float32, np.float64):
        arr = arr.astype(np.float64)
    if arr.ndim < min_order:
        raise ShapeError(
            f"{name} must have at least {min_order} mode(s), got shape {arr.shape}"
        )
    if any(s == 0 for s in arr.shape):
        raise ShapeError(f"{name} has an empty mode: shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ShapeError(f"{name} contains non-finite values (NaN or Inf)")
    return arr


def _as_foreign_tensor(am, x, *, min_order: int, name: str):
    """Validate a non-NumPy array via its namespace facade (no host copy)."""
    dt = am.np_dtype(x)
    if dt.kind not in "fiu":
        raise ShapeError(f"{name} must be numeric, got dtype {dt!r}")
    if dt.kind in "iu" or dt not in (np.float32, np.float64):
        x = am.astype(x, np.float64)
    if x.ndim < min_order:
        raise ShapeError(
            f"{name} must have at least {min_order} mode(s), got shape "
            f"{tuple(x.shape)}"
        )
    if any(int(s) == 0 for s in x.shape):
        raise ShapeError(f"{name} has an empty mode: shape {tuple(x.shape)}")
    if not am.all_finite(x):
        raise ShapeError(f"{name} contains non-finite values (NaN or Inf)")
    return x


def check_mode(mode: int, order: int, *, name: str = "mode") -> int:
    """Validate a mode index against a tensor order, supporting no negatives.

    Parameters
    ----------
    mode:
        Zero-based mode index.
    order:
        Number of modes of the tensor being indexed.

    Returns
    -------
    int
        The validated mode as a plain ``int``.
    """
    m = int(mode)
    if m != mode:
        raise ShapeError(f"{name} must be an integer, got {mode!r}")
    if not 0 <= m < order:
        raise ShapeError(f"{name}={m} out of range for an order-{order} tensor")
    return m


def check_ranks(
    ranks: int | Sequence[int], shape: Sequence[int], *, name: str = "ranks"
) -> tuple[int, ...]:
    """Validate per-mode Tucker ranks against a tensor shape.

    A single integer is broadcast to every mode (clipped to each mode's
    dimensionality is *not* done silently — an oversized rank raises).

    Parameters
    ----------
    ranks:
        One rank per mode, or one integer for all modes.
    shape:
        Shape of the tensor to be decomposed.

    Returns
    -------
    tuple of int
        Ranks, one per mode.

    Raises
    ------
    RankError
        If a rank is not a positive integer or exceeds its mode.
    """
    order = len(shape)
    if np.isscalar(ranks):
        seq = [ranks] * order
    else:
        seq = list(ranks)  # type: ignore[arg-type]
        if len(seq) != order:
            raise RankError(
                f"{name} must have one entry per mode ({order}), got {len(seq)}"
            )
    out = []
    for n, (r, dim) in enumerate(zip(seq, shape)):
        ri = int(r)
        if ri != r or ri < 1:
            raise RankError(f"{name}[{n}] must be a positive integer, got {r!r}")
        if ri > dim:
            raise RankError(
                f"{name}[{n}]={ri} exceeds the mode-{n} dimensionality {dim}"
            )
        out.append(ri)
    return tuple(out)


def check_positive_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    v = int(value)
    if v != value or v < 1:
        raise ShapeError(f"{name} must be a positive integer, got {value!r}")
    return v


def check_probability(value: float, *, name: str) -> float:
    """Validate that ``value`` lies in the half-open interval (0, 1]."""
    v = float(value)
    if not 0.0 < v <= 1.0:
        raise ShapeError(f"{name} must be in (0, 1], got {value!r}")
    return v


def check_matrix(m: np.ndarray, *, name: str = "matrix") -> np.ndarray:
    """Coerce ``m`` to a 2-D floating point array."""
    arr = as_tensor(m, min_order=2, name=name)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_same_length(a: Sequence, b: Sequence, *, names: tuple[str, str]) -> None:
    """Raise :class:`ShapeError` unless the two sequences have equal length."""
    if len(a) != len(b):
        raise ShapeError(
            f"{names[0]} (length {len(a)}) and {names[1]} (length {len(b)}) "
            "must have the same length"
        )
