"""Tests for DTuckerConfig validation."""

from __future__ import annotations

import pytest

from repro.core.config import DTuckerConfig
from repro.exceptions import ShapeError


class TestDTuckerConfig:
    def test_defaults(self) -> None:
        cfg = DTuckerConfig()
        assert cfg.oversampling == 10
        assert cfg.power_iterations == 1
        assert cfg.max_iters == 50
        assert cfg.tol == 1e-4
        assert not cfg.exact_slice_svd
        assert cfg.seed is None
        assert cfg.strategy == "rsvd"
        assert cfg.precision == "float64"

    def test_frozen(self) -> None:
        cfg = DTuckerConfig()
        with pytest.raises(AttributeError):
            cfg.tol = 1.0  # type: ignore[misc]

    def test_hashable(self) -> None:
        assert hash(DTuckerConfig()) == hash(DTuckerConfig())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"oversampling": -1},
            {"power_iterations": -2},
            {"max_iters": 0},
            {"tol": 0.0},
            {"tol": -1e-3},
            {"strategy": "fastest"},
            {"precision": "float16"},
        ],
    )
    def test_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ShapeError):
            DTuckerConfig(**kwargs)
