"""Edge-case and robustness tests across the library.

Failure injection and unusual-but-legal inputs: float32 tensors, constant
tensors, rank-1 everything, single-slice tensors, tensors with zero
slices, and logging/verbose paths.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro import DTucker, tucker_als
from repro.core.slice_svd import compress
from repro.tensor.random import random_tensor


class TestDtypes:
    def test_float32_input_accepted(self, rng) -> None:
        x = random_tensor((12, 10, 8), (2, 2, 2), rng=rng).astype(np.float32)
        model = DTucker(ranks=2, seed=0).fit(x)
        assert model.result_.error(x.astype(np.float64)) < 1e-4

    def test_integer_input_promoted(self) -> None:
        x = np.arange(2 * 3 * 4).reshape(2, 3, 4)
        model = DTucker(ranks=(2, 2, 2), seed=0).fit(x)
        assert model.result_.core.dtype == np.float64


class TestDegenerateTensors:
    def test_constant_tensor(self) -> None:
        x = np.full((8, 7, 6), 3.0)
        model = DTucker(ranks=(1, 1, 1), seed=0).fit(x)
        assert model.result_.error(x) < 1e-10

    def test_rank_one_everything(self, rng) -> None:
        a = rng.standard_normal(9)
        b = rng.standard_normal(8)
        c = rng.standard_normal(7)
        x = np.einsum("i,j,k->ijk", a, b, c)
        model = DTucker(ranks=1, seed=0).fit(x)
        assert model.result_.error(x) < 1e-10

    def test_tensor_with_zero_slices(self, rng) -> None:
        x = random_tensor((10, 8, 6), (2, 2, 2), rng=rng)
        x[:, :, 2] = 0.0  # one completely empty slice
        model = DTucker(ranks=(2, 2, 2), seed=0).fit(x)
        assert np.isfinite(model.result_.core).all()
        assert model.result_.error(x) < 0.05

    def test_single_timestep(self, rng) -> None:
        x = rng.standard_normal((10, 8, 1))
        model = DTucker(ranks=(3, 3, 1), seed=0).fit(x)
        assert model.result_.ranks == (3, 3, 1)

    def test_mode_of_size_one(self, rng) -> None:
        x = rng.standard_normal((10, 1, 8))
        model = DTucker(ranks=(3, 1, 3), seed=0).fit(x)
        assert model.result_.error(x) < 1.0

    def test_tiny_tensor(self, rng) -> None:
        x = rng.standard_normal((2, 2, 2))
        model = DTucker(ranks=1, seed=0).fit(x)
        assert model.result_.ranks == (1, 1, 1)


class TestRankExtremes:
    def test_full_ranks_reconstruct_exactly(self, rng) -> None:
        x = rng.standard_normal((6, 5, 4))
        model = DTucker(ranks=(6, 5, 4), slice_rank=5, seed=0).fit(x)
        assert model.result_.error(x) < 1e-12

    def test_rank_exceeding_secondary_product(self, rng) -> None:
        # J3 > J1*J2: legal but degenerate; factors must stay well formed.
        x = random_tensor((8, 7, 9), (2, 2, 4), rng=rng, noise=0.05)
        model = DTucker(ranks=(1, 2, 4), seed=0).fit(x)
        a3 = model.result_.factors[2]
        assert a3.shape == (9, 4)
        np.testing.assert_allclose(a3.T @ a3, np.eye(4), atol=1e-8)

    def test_hooi_same_degenerate_geometry(self, rng) -> None:
        x = random_tensor((8, 7, 9), (2, 2, 4), rng=rng, noise=0.05)
        fit = tucker_als(x, (1, 2, 4))
        a3 = fit.result.factors[2]
        np.testing.assert_allclose(a3.T @ a3, np.eye(4), atol=1e-8)


class TestLogging:
    def test_verbose_fit_logs(self, rng, caplog) -> None:
        x = random_tensor((12, 10, 8), (2, 2, 2), rng=rng)
        with caplog.at_level(logging.INFO, logger="repro.core.dtucker"):
            DTucker(ranks=2, seed=0, verbose=True).fit(x)
        messages = " ".join(r.message for r in caplog.records)
        assert "approximation" in messages and "iteration" in messages

    def test_debug_sweep_logs(self, rng, caplog) -> None:
        from repro.core.initialization import initialize
        from repro.core.iteration import als_sweeps

        x = random_tensor((12, 10, 8), (2, 2, 2), rng=rng)
        ssvd = compress(x, 2, rng=0)
        _, factors = initialize(ssvd, (2, 2, 2))
        with caplog.at_level(logging.DEBUG, logger="repro.core.iteration"):
            als_sweeps(ssvd, (2, 2, 2), factors, max_iters=2, tol=1e-16)
        assert any("sweep" in r.message for r in caplog.records)


class TestReportHelpers:
    def test_human_bytes_units(self) -> None:
        from repro.experiments.report import _human_bytes

        assert _human_bytes(512) == "512.0B"
        assert _human_bytes(2048) == "2.0KiB"
        assert _human_bytes(3 * 1024**2) == "3.0MiB"
        assert _human_bytes(5 * 1024**3) == "5.0GiB"
