"""Tests for the frequent-directions streaming sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.linalg import FrequentDirections


@pytest.fixture
def rows(rng) -> np.ndarray:
    # A stream with a strong rank-3 signal plus noise.
    basis = rng.standard_normal((3, 24))
    coeffs = rng.standard_normal((200, 3)) * np.array([10.0, 5.0, 2.0])
    return coeffs @ basis + 0.01 * rng.standard_normal((200, 24))


class TestGuarantee:
    def test_covariance_error_bound(self, rows) -> None:
        """0 <= AᵀA - BᵀB <= (||A||_F² / ℓ)·I — the FD guarantee."""
        ell = 8
        fd = FrequentDirections(rows.shape[1], ell)
        fd.update(rows)
        diff = rows.T @ rows - fd.covariance()
        eigs = np.linalg.eigvalsh(diff)
        bound = (np.linalg.norm(rows) ** 2) / ell
        assert eigs.min() >= -1e-8
        assert eigs.max() <= bound + 1e-8

    def test_sketch_never_exceeds_ell_rows(self, rows) -> None:
        fd = FrequentDirections(rows.shape[1], 6)
        for row in rows:
            fd.update(row)
        assert fd.sketch().shape[0] <= 6
        assert fd.n_inserted == rows.shape[0]
        assert fd.n_shrinks > 0

    def test_batching_does_not_change_the_guarantee(self, rows) -> None:
        one = FrequentDirections(rows.shape[1], 8)
        batched = FrequentDirections(rows.shape[1], 8)
        for row in rows:
            one.update(row)
        batched.update(rows)
        gram = rows.T @ rows
        for fd in (one, batched):
            err = np.linalg.norm(gram - fd.covariance(), 2)
            assert err <= (np.linalg.norm(rows) ** 2) / 8 + 1e-8

    def test_exact_below_capacity(self, rng) -> None:
        """Fewer rows than ℓ: the sketch loses nothing."""
        rows = rng.standard_normal((5, 12))
        fd = FrequentDirections(12, 8)
        fd.update(rows)
        np.testing.assert_allclose(fd.covariance(), rows.T @ rows, atol=1e-10)


class TestLeadingDirections:
    def test_orthonormal_and_aligned(self, rows) -> None:
        fd = FrequentDirections(rows.shape[1], 10)
        fd.update(rows)
        q = fd.leading_directions(3)
        assert q.shape == (24, 3)
        np.testing.assert_allclose(q.T @ q, np.eye(3), atol=1e-10)
        # The sketched subspace captures the dominant exact subspace.
        _, _, vt = np.linalg.svd(rows, full_matrices=False)
        overlap = np.linalg.norm(vt[:3] @ q, 2)
        assert overlap > 0.99

    def test_rank_bound(self, rows) -> None:
        fd = FrequentDirections(rows.shape[1], 4)
        fd.update(rows)
        with pytest.raises(ShapeError):
            fd.leading_directions(25)


class TestScale:
    def test_scale_decays_covariance(self, rows) -> None:
        fd = FrequentDirections(rows.shape[1], 8)
        fd.update(rows)
        before = fd.covariance()
        fd.scale(0.5)
        np.testing.assert_allclose(fd.covariance(), before * 0.25, rtol=1e-10)

    def test_scale_rejects_negative(self, rows) -> None:
        fd = FrequentDirections(rows.shape[1], 8)
        with pytest.raises(ShapeError):
            fd.scale(-0.1)
        with pytest.raises(ShapeError):
            fd.scale(float("nan"))


class TestStateRoundTrip:
    def test_bit_identical_resume(self, rows) -> None:
        fd = FrequentDirections(rows.shape[1], 8)
        fd.update(rows[:150])
        clone = FrequentDirections.from_state(fd.state())
        fd.update(rows[150:])
        clone.update(rows[150:])
        np.testing.assert_array_equal(fd.sketch(), clone.sketch())
        assert clone.n_inserted == fd.n_inserted
        assert clone.n_shrinks == fd.n_shrinks

    def test_bad_state_rejected(self) -> None:
        fd = FrequentDirections(10, 4)
        state = fd.state()
        state["buffer"] = np.zeros((2, 7))
        with pytest.raises(ShapeError):
            FrequentDirections.from_state(state)


class TestValidation:
    def test_wrong_row_width(self) -> None:
        fd = FrequentDirections(10, 4)
        with pytest.raises(ShapeError):
            fd.update(np.zeros((3, 9)))

    def test_bad_geometry(self) -> None:
        with pytest.raises(Exception):
            FrequentDirections(0, 4)
        with pytest.raises(Exception):
            FrequentDirections(10, 0)
