"""Tests for the cost-aware scheduling layer (`repro.engine` + cost models).

Pins the four contracts of the scheduler:

* **bit-identity** — factors/cores/compressions are identical under every
  ``schedule`` on every backend, for orders 3–5, remainder chunk plans and
  the single-worker degenerate cases;
* **planning** — ``plan_dynamic_chunks`` oversplits correctly, cost-aware
  boundaries balance skewed work, explicit ``chunk_size`` pins granularity
  under both policies, and undersubscribing plans warn;
* **telemetry** — dynamic dispatches surface schedule labels, per-worker
  busy time, queue wait, steal counts and the imbalance ratio;
* **BLAS capping** — ``limit_blas_threads`` is no-op-safe on both the
  threadpoolctl path and the ctypes fallback.
"""

from __future__ import annotations

import logging
import sys
import types

import numpy as np
import pytest

from repro.core.config import DTuckerConfig
from repro.core.dtucker import DTucker
from repro.core.slice_svd import compress
from repro.engine import (
    OVERSPLIT,
    ArrayCost,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    UniformCost,
    as_cost_array,
    chunk_costs,
    chunked,
    combine_costs,
    concat_chunks,
    plan_chunks,
    plan_dynamic_chunks,
    resolve_backend,
    resolve_schedule,
)
from repro.engine import blas as blas_module
from repro.exceptions import BackendError, ShapeError
from repro.tensor.random import random_tensor

BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def _scale_chunk(rows: np.ndarray, *, scale: float) -> np.ndarray:
    """Module-level kernel (picklable) whose output encodes item identity."""
    return rows * scale


def _square(x: float) -> float:
    return x * x


# -- schedule resolution -----------------------------------------------------

class TestResolveSchedule:
    def test_explicit_pass_through(self) -> None:
        assert resolve_schedule("static", 8, 100) == "static"
        assert resolve_schedule("dynamic", 1, 2) == "dynamic"

    @pytest.mark.parametrize("spec", [None, "auto"])
    def test_auto_needs_workers_and_oversplit_room(self, spec) -> None:
        assert resolve_schedule(spec, 4, 100) == "dynamic"
        assert resolve_schedule(spec, 1, 100) == "static"
        assert resolve_schedule(spec, 4, 4) == "static"
        assert resolve_schedule(spec, 4, 3) == "static"

    def test_invalid_rejected(self) -> None:
        with pytest.raises(BackendError):
            resolve_schedule("eager", 4, 10)

    def test_backend_constructor_validates(self) -> None:
        with pytest.raises(BackendError):
            SerialBackend(schedule="eager")

    def test_config_validates(self) -> None:
        with pytest.raises(BackendError):
            DTuckerConfig(schedule="eager")
        assert DTuckerConfig(schedule="dynamic").schedule == "dynamic"

    def test_with_overrides(self) -> None:
        cfg = DTuckerConfig().with_overrides(schedule="static")
        assert cfg.schedule == "static"

    def test_env_override(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_SCHEDULE", "static")
        with resolve_backend("thread", n_workers=2) as eng:
            assert eng.schedule == "static"

    def test_env_invalid(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_SCHEDULE", "eager")
        with pytest.raises(BackendError):
            resolve_backend("serial")

    def test_config_schedule_flows_to_backend(self) -> None:
        cfg = DTuckerConfig(schedule="dynamic")
        with resolve_backend("thread", n_workers=2, config=cfg) as eng:
            assert eng.schedule == "dynamic"


# -- cost models -------------------------------------------------------------

class TestCostModels:
    def test_none_is_dropped(self) -> None:
        assert as_cost_array(None, 5) is None

    def test_uniform_model_is_flat(self) -> None:
        np.testing.assert_array_equal(
            as_cost_array(UniformCost(), 5), np.ones(5)
        )

    def test_array_cost_slices(self) -> None:
        model = ArrayCost([3.0, 1.0, 2.0, 5.0])
        np.testing.assert_array_equal(
            model.slice(1, 3).item_costs(2), [1.0, 2.0]
        )

    def test_as_cost_array_validates(self) -> None:
        with pytest.raises(ShapeError):
            as_cost_array([1.0, 2.0], 3)  # wrong length
        with pytest.raises(ShapeError):
            as_cost_array([1.0, -2.0], 2)  # negative
        with pytest.raises(ShapeError):
            as_cost_array([[1.0], [2.0]], 2)  # not 1-D

    def test_all_zero_treated_as_uniform(self) -> None:
        assert as_cost_array([0.0, 0.0, 0.0], 3) is None

    def test_combine_costs(self) -> None:
        out = combine_costs([1.0, 2.0], [10.0, 0.0], io_weight=0.5)
        np.testing.assert_allclose(out, [6.0, 2.0])


# -- chunk planning ----------------------------------------------------------

class TestDynamicPlanning:
    def test_single_worker_single_chunk(self) -> None:
        assert plan_dynamic_chunks(10, 1) == [(0, 10)]

    def test_oversplits_up_to_factor(self) -> None:
        plan = plan_dynamic_chunks(100, 4)
        assert len(plan) == 4 * OVERSPLIT
        assert plan[0][0] == 0 and plan[-1][1] == 100
        assert all(plan[i][1] == plan[i + 1][0] for i in range(len(plan) - 1))

    def test_fewer_items_than_tasks(self) -> None:
        plan = plan_dynamic_chunks(5, 4)
        assert len(plan) == 5
        assert all(b - a == 1 for a, b in plan)

    def test_explicit_chunk_size_pins_granularity(self) -> None:
        assert plan_dynamic_chunks(10, 4, chunk_size=4) == plan_chunks(
            10, 4, chunk_size=4
        )

    def test_cost_balanced_boundaries(self) -> None:
        costs = np.array([100.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        plan = plan_dynamic_chunks(6, 2, costs=costs, oversplit=1)
        weights = chunk_costs(plan, costs)
        # The heavy head is isolated instead of dragging half the range.
        assert plan[0] == (0, 1)
        assert weights[0] == 100.0

    def test_uniform_costs_match_equal_count(self) -> None:
        uniform = np.ones(11)
        assert plan_chunks(11, 3, costs=uniform) == plan_chunks(11, 3)

    def test_undersubscription_warns(
        self, caplog: pytest.LogCaptureFixture
    ) -> None:
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            plan = plan_chunks(10, 4, chunk_size=10)
        assert plan == [(0, 10)]
        assert any("idle" in rec.getMessage() for rec in caplog.records)

    def test_well_subscribed_explicit_size_is_silent(
        self, caplog: pytest.LogCaptureFixture
    ) -> None:
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            plan_chunks(10, 4, chunk_size=2)
        assert not caplog.records


# -- bit-identity across backends and schedules ------------------------------

def _reference(kind: str, x: np.ndarray, ranks: tuple[int, ...]):
    cfg = DTuckerConfig(seed=0, backend="serial")
    if kind == "compress":
        return compress(x, 3, config=cfg)
    return DTucker(ranks, config=cfg).fit(x)


def _assert_compress_equal(got, ref) -> None:
    np.testing.assert_array_equal(got.u, ref.u)
    np.testing.assert_array_equal(got.s, ref.s)
    np.testing.assert_array_equal(got.vt, ref.vt)


class TestBitIdentity:
    #: Orders 3-5; the trailing-mode products are deliberately not multiples
    #: of the worker counts so every plan carries a remainder chunk.
    SHAPES = {
        3: ((18, 12, 7), (3, 3, 2)),
        4: ((14, 10, 3, 3), (3, 3, 2, 2)),
        5: ((12, 9, 3, 2, 2), (3, 3, 2, 2, 2)),
    }

    @pytest.mark.parametrize("order", [3, 4, 5])
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_compress_matches_serial_static(
        self, order: int, backend: str, schedule: str
    ) -> None:
        shape, ranks = self.SHAPES[order]
        x = random_tensor(shape, ranks, rng=0, noise=0.1)
        ref = _reference("compress", x, ranks)
        cfg = DTuckerConfig(
            seed=0, backend=backend, n_workers=3, schedule=schedule
        )
        _assert_compress_equal(compress(x, 3, config=cfg), ref)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_fit_matches_serial_static(
        self, backend: str, schedule: str
    ) -> None:
        shape, ranks = self.SHAPES[4]
        x = random_tensor(shape, ranks, rng=0, noise=0.1)
        ref = _reference("fit", x, ranks)
        cfg = DTuckerConfig(
            seed=0, backend=backend, n_workers=3, schedule=schedule
        )
        got = DTucker(ranks, config=cfg).fit(x)
        np.testing.assert_array_equal(got.result_.core, ref.result_.core)
        for a, b in zip(got.result_.factors, ref.result_.factors):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_single_worker_dynamic_degenerates_to_static(
        self, backend: str
    ) -> None:
        shape, ranks = self.SHAPES[3]
        x = random_tensor(shape, ranks, rng=0, noise=0.1)
        ref = _reference("compress", x, ranks)
        cfg = DTuckerConfig(
            seed=0, backend=backend, n_workers=1, schedule="dynamic"
        )
        _assert_compress_equal(compress(x, 3, config=cfg), ref)

    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_remainder_chunk_size_parity(self, schedule: str) -> None:
        shape, ranks = self.SHAPES[3]
        x = random_tensor(shape, ranks, rng=0, noise=0.1)
        ref = _reference("compress", x, ranks)
        cfg = DTuckerConfig(
            seed=0, backend="thread", n_workers=3, chunk_size=3,
            schedule=schedule,  # 7 slices / chunk_size 3 -> remainder chunk
        )
        _assert_compress_equal(compress(x, 3, config=cfg), ref)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_chunked_with_costs_preserves_order(self, backend: str) -> None:
        """Skewed costs + LPT submission still reduce in range order."""
        rows = np.arange(23, dtype=float).reshape(23, 1)
        costs = np.r_[np.full(3, 50.0), np.ones(20)]
        with BACKENDS[backend](n_workers=3) as eng:
            got = chunked(
                eng, _scale_chunk, 23, slabs=(rows,),
                broadcast={"scale": 2.0}, reduce=concat_chunks,
                costs=costs, schedule="dynamic",
            )
        np.testing.assert_array_equal(got, rows * 2.0)

    def test_map_with_costs_preserves_order(self) -> None:
        costs = [5.0, 1.0, 9.0, 1.0, 2.0, 7.0]
        with ThreadBackend(n_workers=3) as eng:
            got = eng.map(
                _square, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                costs=costs, schedule="dynamic",
            )
        assert got == [1.0, 4.0, 9.0, 16.0, 25.0, 36.0]

    def test_process_map_with_costs_preserves_order(self) -> None:
        costs = [5.0, 1.0, 9.0, 1.0]
        with ProcessBackend(n_workers=2) as eng:
            got = eng.map(
                _square, [1.0, 2.0, 3.0, 4.0], costs=costs, schedule="dynamic"
            )
        assert got == [1.0, 4.0, 9.0, 16.0]


# -- telemetry ---------------------------------------------------------------

class TestTelemetry:
    def test_dynamic_dispatch_records_schedule_and_balance(self) -> None:
        rows = np.arange(40, dtype=float).reshape(40, 1)
        with ThreadBackend(n_workers=2) as eng:
            with eng.phase("bench") as trace:
                chunked(
                    eng, _scale_chunk, 40, slabs=(rows,),
                    broadcast={"scale": 1.0}, reduce=concat_chunks,
                    schedule="dynamic",
                )
        assert trace.schedules == ["dynamic"]
        assert trace.n_tasks == 2 * OVERSPLIT
        assert trace.steals >= 0
        assert trace.queue_wait_seconds >= 0.0
        assert trace.busy_seconds_per_worker
        assert trace.imbalance_ratio() >= 1.0
        assert "sched=dynamic" in trace.summary()
        assert "imbalance=" in trace.summary()

    def test_static_dispatch_records_schedule(self) -> None:
        rows = np.ones((8, 2))
        with ThreadBackend(n_workers=2) as eng:
            with eng.phase("bench") as trace:
                chunked(
                    eng, _scale_chunk, 8, slabs=(rows,),
                    broadcast={"scale": 1.0}, reduce=concat_chunks,
                    schedule="static",
                )
        assert trace.schedules == ["static"]
        assert trace.steals == 0 or trace.steals > 0  # tallied, never None

    def test_serial_single_chunk_skips_dispatch_label(self) -> None:
        rows = np.ones((8, 2))
        with SerialBackend() as eng:
            with eng.phase("bench") as trace:
                chunked(
                    eng, _scale_chunk, 8, slabs=(rows,),
                    broadcast={"scale": 1.0}, reduce=concat_chunks,
                )
        assert trace.schedules == []
        assert trace.n_tasks == 1
        assert trace.busy_seconds_per_worker  # serial still reports busy time


# -- BLAS thread capping -----------------------------------------------------

def _stub_threadpoolctl(calls: list) -> types.ModuleType:
    stub = types.ModuleType("threadpoolctl")

    class _Limits:
        def __init__(self, limits=None, user_api=None):
            calls.append((limits, user_api))

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            calls.append("exit")
            return False

    stub.threadpool_limits = _Limits
    stub.threadpool_info = lambda: [
        {"user_api": "blas", "num_threads": 6},
        {"user_api": "openmp", "num_threads": 2},
    ]
    return stub


class TestBlasCapping:
    def test_noop_safe_without_threadpoolctl(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """The ctypes path never raises, whatever the probe found."""
        monkeypatch.setattr(blas_module, "_THREADPOOLCTL", None)
        with blas_module.limit_blas_threads(2) as applied:
            assert applied in (True, False)
        # Twice in a row: the cached probe result stays consistent.
        with blas_module.limit_blas_threads(1) as applied_again:
            assert applied_again == applied

    def test_noop_when_no_controls_at_all(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        monkeypatch.setattr(blas_module, "_THREADPOOLCTL", None)
        monkeypatch.setattr(blas_module, "_CONTROLS", None)
        with blas_module.limit_blas_threads(2) as applied:
            assert applied is False
        assert blas_module.current_blas_threads() is None

    def test_prefers_threadpoolctl(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        calls: list = []
        monkeypatch.setitem(
            sys.modules, "threadpoolctl", _stub_threadpoolctl(calls)
        )
        monkeypatch.setattr(blas_module, "_THREADPOOLCTL", False)  # re-probe
        try:
            with blas_module.limit_blas_threads(3) as applied:
                assert applied is True
            assert calls == [(3, "blas"), "exit"]
            assert blas_module.current_blas_threads() == 6
        finally:
            monkeypatch.setattr(blas_module, "_THREADPOOLCTL", False)

    def test_broken_threadpoolctl_degrades(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        stub = types.ModuleType("threadpoolctl")  # no threadpool_limits
        monkeypatch.setitem(sys.modules, "threadpoolctl", stub)
        monkeypatch.setattr(blas_module, "_THREADPOOLCTL", False)
        try:
            assert blas_module._threadpoolctl() is None
            with blas_module.limit_blas_threads(2):
                pass  # must not raise on the fallback path
        finally:
            monkeypatch.setattr(blas_module, "_THREADPOOLCTL", False)

    def test_floor_of_one_thread(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        calls: list = []
        monkeypatch.setitem(
            sys.modules, "threadpoolctl", _stub_threadpoolctl(calls)
        )
        monkeypatch.setattr(blas_module, "_THREADPOOLCTL", False)
        try:
            with blas_module.limit_blas_threads(0):
                pass
            assert calls[0] == (1, "blas")
        finally:
            monkeypatch.setattr(blas_module, "_THREADPOOLCTL", False)
