"""Tests for the TensorSketch baselines (tucker_ts / tucker_ttmts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines._sketched import default_sketch_dims, sketch_tensor
from repro.baselines.tucker_ts import tucker_ts
from repro.baselines.tucker_ttmts import tucker_ttmts
from repro.tensor.random import random_tensor
from repro.tensor.products import kron_all
from repro.tensor.unfold import unfold, vectorize
from tests.conftest import assert_orthonormal


class TestSketchTensor:
    def test_stored_shapes(self, lowrank3) -> None:
        sk = sketch_tensor(lowrank3, (40, 80), rng=0)
        assert [z.shape for z in sk.z_modes] == [(40, 12), (40, 10), (40, 8)]
        assert sk.z_full.shape == (80,)

    def test_mode_sketch_consistency(self, lowrank3) -> None:
        # z_modes[n] must equal applying the registered operator to X_(n)^T.
        sk = sketch_tensor(lowrank3, (32, 64), rng=0)
        for n in range(3):
            np.testing.assert_allclose(
                sk.z_modes[n], sk.mode_sketches[n].apply(unfold(lowrank3, n).T)
            )

    def test_full_sketch_consistency(self, lowrank3) -> None:
        sk = sketch_tensor(lowrank3, (32, 64), rng=0)
        np.testing.assert_allclose(sk.z_full, sk.full_sketch.apply(vectorize(lowrank3)))

    def test_descending_order_matches_kron_secondary(self, lowrank3, rng) -> None:
        # The sketched Kronecker of factors must agree with sketching the
        # explicit kron_secondary product.
        from repro.tensor.products import kron_secondary

        sk = sketch_tensor(lowrank3, (48, 64), rng=0)
        factors = [rng.standard_normal((d, 2)) for d in lowrank3.shape]
        for n in range(3):
            lhs = sk.mode_sketches[n].sketch_kron(sk.descending_secondary(n, factors))
            rhs = sk.mode_sketches[n].apply(kron_secondary(factors, n))
            np.testing.assert_allclose(lhs, rhs, atol=1e-8)

    def test_descending_all_matches_vec_identity(self, lowrank3, rng) -> None:
        sk = sketch_tensor(lowrank3, (48, 64), rng=0)
        factors = [rng.standard_normal((d, 2)) for d in lowrank3.shape]
        lhs = sk.full_sketch.sketch_kron(sk.descending_all(factors))
        rhs = sk.full_sketch.apply(kron_all(factors[::-1]))
        np.testing.assert_allclose(lhs, rhs, atol=1e-8)

    def test_stored_nbytes(self, lowrank3) -> None:
        sk = sketch_tensor(lowrank3, (40, 80), rng=0)
        expected = sum(z.nbytes for z in sk.z_modes) + sk.z_full.nbytes
        assert sk.stored_nbytes == expected


class TestDefaultSketchDims:
    def test_scaling(self) -> None:
        s1, s2 = default_sketch_dims((5, 4, 3), factor=10)
        assert s2 == 10 * 60
        assert s1 == 10 * 20  # max over modes of 60 / J_n

    def test_factor(self) -> None:
        a = default_sketch_dims((3, 3, 3), factor=1)
        b = default_sketch_dims((3, 3, 3), factor=4)
        assert b[0] == 4 * a[0] and b[1] == 4 * a[1]


@pytest.mark.parametrize("method", [tucker_ts, tucker_ttmts])
class TestSketchedSolvers:
    def test_recovers_lowrank(self, method, rng) -> None:
        x = random_tensor((15, 12, 10), (3, 2, 2), rng=rng, noise=0.0)
        fit = method(x, (3, 2, 2), seed=0)
        assert fit.result.error(x) < 0.05

    def test_orthonormal_factors(self, method, lowrank3) -> None:
        for f in method(lowrank3, (3, 2, 2), seed=0).result.factors:
            assert_orthonormal(f)

    def test_history_is_sketched_residual(self, method, lowrank3) -> None:
        fit = method(lowrank3, (3, 2, 2), seed=0)
        assert len(fit.history) == fit.n_iters
        assert all(h >= 0 for h in fit.history)

    def test_extras(self, method, lowrank3) -> None:
        fit = method(lowrank3, (3, 2, 2), seed=0)
        assert fit.extras["sketch_dim_1"] > 0
        assert fit.extras["stored_nbytes"] > 0

    def test_phases(self, method, lowrank3) -> None:
        fit = method(lowrank3, (3, 2, 2), seed=0)
        assert set(fit.timings.phases) == {"sketch", "iteration"}

    def test_seed_reproducible(self, method, lowrank3) -> None:
        a = method(lowrank3, (3, 2, 2), seed=11)
        b = method(lowrank3, (3, 2, 2), seed=11)
        np.testing.assert_array_equal(a.result.core, b.result.core)

    def test_explicit_sketch_dims(self, method, lowrank3) -> None:
        fit = method(lowrank3, (3, 2, 2), sketch_dims=(50, 100), seed=0)
        assert fit.extras["sketch_dim_1"] == 50.0

    def test_bigger_sketch_more_accurate(self, method, rng) -> None:
        x = random_tensor((15, 12, 10), (3, 2, 2), rng=rng, noise=0.05)
        e_small = method(x, (3, 2, 2), sketch_factor=2, seed=0).result.error(x)
        e_large = method(x, (3, 2, 2), sketch_factor=20, seed=0).result.error(x)
        assert e_large <= e_small + 0.01

    def test_order4(self, method, rng) -> None:
        x = random_tensor((8, 7, 5, 4), (2, 2, 2, 2), rng=rng, noise=0.0)
        assert method(x, 2, seed=0).result.error(x) < 0.05
