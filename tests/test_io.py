"""Tests for persistence of SliceSVD and TuckerResult archives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.slice_svd import compress
from repro.exceptions import ShapeError
from repro.io import load_slice_svd, load_tucker, save_slice_svd, save_tucker
from repro.core.result import TuckerResult
from repro.tensor.random import random_tucker


class TestSliceSvdRoundtrip:
    def test_roundtrip(self, lowrank3, tmp_path) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        path = save_slice_svd(ssvd, tmp_path / "c")
        assert path.suffix == ".npz"
        back = load_slice_svd(path)
        np.testing.assert_array_equal(back.u, ssvd.u)
        np.testing.assert_array_equal(back.s, ssvd.s)
        np.testing.assert_array_equal(back.vt, ssvd.vt)
        assert back.shape == ssvd.shape
        assert back.norm_squared == ssvd.norm_squared

    def test_loaded_object_is_usable(self, lowrank3, tmp_path) -> None:
        from repro.core.initialization import initialize
        from repro.core.iteration import als_sweeps

        ssvd = compress(lowrank3, 3, rng=0)
        back = load_slice_svd(save_slice_svd(ssvd, tmp_path / "c.npz"))
        _, factors = initialize(back, (3, 2, 2))
        out = als_sweeps(back, (3, 2, 2), factors)
        assert out.errors[-1] < 1e-8

    def test_suffix_appended(self, lowrank3, tmp_path) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        path = save_slice_svd(ssvd, tmp_path / "plain")
        assert path.name == "plain.npz"

    def test_wrong_format_rejected(self, lowrank3, tmp_path) -> None:
        core, factors = random_tucker((5, 4, 3), (2, 2, 2), np.random.default_rng(0))
        p = save_tucker(TuckerResult(core=core, factors=factors), tmp_path / "t")
        with pytest.raises(ShapeError, match="slice-SVD"):
            load_slice_svd(p)

    def test_garbage_archive_rejected(self, tmp_path) -> None:
        p = tmp_path / "junk.npz"
        np.savez(p, a=np.ones(3))
        with pytest.raises(ShapeError):
            load_slice_svd(p)


class TestTuckerRoundtrip:
    def test_roundtrip(self, rng, tmp_path) -> None:
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors)
        back = load_tucker(save_tucker(result, tmp_path / "t"))
        np.testing.assert_array_equal(back.core, result.core)
        for a, b in zip(back.factors, result.factors):
            np.testing.assert_array_equal(a, b)

    def test_reconstruction_identical(self, rng, tmp_path) -> None:
        core, factors = random_tucker((6, 5, 4), (3, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors)
        back = load_tucker(save_tucker(result, tmp_path / "t.npz"))
        np.testing.assert_array_equal(back.reconstruct(), result.reconstruct())

    def test_wrong_format_rejected(self, lowrank3, tmp_path) -> None:
        ssvd = compress(lowrank3, 3, rng=0)
        p = save_slice_svd(ssvd, tmp_path / "c")
        with pytest.raises(ShapeError, match="Tucker"):
            load_tucker(p)

    def test_order4(self, rng, tmp_path) -> None:
        core, factors = random_tucker((4, 3, 5, 2), (2, 2, 2, 2), rng)
        result = TuckerResult(core=core, factors=factors)
        back = load_tucker(save_tucker(result, tmp_path / "t4"))
        assert back.order == 4


class TestEndToEndPersistence:
    def test_compress_once_decompose_later(self, rng, tmp_path) -> None:
        """The deployment flow: session 1 compresses, session 2 decomposes."""
        from repro.core.dtucker import DTucker

        from repro.tensor.random import random_tensor

        x = random_tensor((18, 16, 12), (3, 3, 3), rng=rng, noise=0.02)
        model = DTucker(ranks=(3, 3, 3), slice_rank=5, seed=0).fit(x)
        archive = save_slice_svd(model.slice_svd_, tmp_path / "session1")

        # "Session 2": no access to x.
        ssvd = load_slice_svd(archive)
        from repro.core.initialization import initialize
        from repro.core.iteration import als_sweeps

        _, factors = initialize(ssvd, (3, 3, 3))
        out = als_sweeps(ssvd, (3, 3, 3), factors)
        assert out.errors[-1] == pytest.approx(model.history_[-1], abs=1e-8)
