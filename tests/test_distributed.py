"""Tests for the distributed layer: sharded sources + reduce-only coordinator.

Covers the three distribution guarantees:

* **Bit-identity** — a fit through a :class:`ShardedSource` (partitioned
  or manifest-backed, even/uneven shard counts) equals the equivalent
  single-source fit bit for bit on every backend, because compression is
  shard-local with a shared sketch and slice-local kernels.
* **Reduce-only traffic** — on the process backend only the stacked
  factor products cross shard boundaries: ``comm:ship`` accounts exactly
  ``(I1+I2+1)·K`` numbers (plus one norm) per slice, never a raw slab.
* **Spawn-safety** — every descriptor type round-trips through a
  ``spawn``-start-method subprocess (the strictest pickling regime) and
  reads back identical bytes.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle

import numpy as np
import pytest

from repro.core import (
    BlockSource,
    DenseSource,
    DTuckerConfig,
    FitPipeline,
    NpySource,
    SparseSource,
    compress_source,
)
from repro.core.iteration import als_sweeps
from repro.core.initialization import initialize
from repro.distributed import (
    GroupSource,
    ShardCoordinator,
    ShardedSource,
    SliceSpanSource,
    distributed_als_sweeps,
    partition_extent,
    write_manifest,
    write_npy_shards,
)
from repro.exceptions import BackendError, ShapeError
from repro.kernels import KernelStats, factor_nbytes
from repro.sparse import SparseTensor
from repro.tensor.random import random_tensor

BACKENDS = ["serial", "thread", "process"]

#: Temporal extent 7 is deliberately prime: every shard count but 1 and 7
#: produces a remainder shard, exercising the uneven-extent path.
SHAPE = (18, 14, 3, 7)
RANKS = (3, 3, 2, 2)


@pytest.fixture
def tensor(rng):
    return random_tensor(SHAPE, RANKS, rng=rng, noise=0.05)


@pytest.fixture
def npy_path(tmp_path, tensor):
    path = tmp_path / "x.npy"
    np.save(path, tensor)
    return path


@pytest.fixture
def manifest_dir(tmp_path, tensor):
    d = tmp_path / "shards"
    write_npy_shards(d, tensor, 3)
    return d


def _reopen_and_read(payload):
    """Spawn-subprocess worker: unpickle a descriptor, open it, read."""
    blob, start, stop = payload
    source = pickle.loads(blob).open()
    return np.ascontiguousarray(source.read_batch(start, stop), dtype=np.float64)


class TestPartitionExtent:
    def test_even_and_remainder_spans(self) -> None:
        assert partition_extent(8, 2) == [(0, 4), (4, 8)]
        assert partition_extent(7, 2) == [(0, 4), (4, 7)]
        assert partition_extent(7, 4) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_more_shards_than_extent_clamps(self) -> None:
        assert partition_extent(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_spans_cover_exactly(self) -> None:
        for t in (1, 5, 12, 13):
            for n in (1, 2, 3, 5):
                spans = partition_extent(t, n)
                assert spans[0][0] == 0 and spans[-1][1] == t
                for (_, a), (b, _) in zip(spans, spans[1:]):
                    assert a == b


class TestShardedSource:
    def test_geometry_and_reads_match_dense(self, tensor) -> None:
        dense = DenseSource(tensor)
        sharded = ShardedSource.partition(DenseSource(tensor), 3)
        assert sharded.shape == tensor.shape
        assert sharded.slice_count == dense.slice_count
        assert sharded.shard_bounds == [(0, 9), (9, 15), (15, 21)]
        for lo, hi in [(0, 21), (2, 11), (9, 15), (8, 16), (20, 21)]:
            np.testing.assert_array_equal(
                sharded.read_batch(lo, hi), dense.read_batch(lo, hi)
            )

    def test_span_source_is_an_index_shift(self, tensor) -> None:
        span = SliceSpanSource(DenseSource(tensor), 2, 5)
        assert span.shape == tensor.shape[:-1] + (3,)
        np.testing.assert_array_equal(
            span.read_batch(0, span.slice_count),
            DenseSource(tensor[..., 2:5]).read_batch(0, 9),
        )

    def test_members_must_agree_on_lead_modes(self, tensor) -> None:
        with pytest.raises(ShapeError):
            ShardedSource(
                [DenseSource(tensor), DenseSource(tensor[:-1])]
            )
        with pytest.raises(ShapeError):
            ShardedSource([])

    def test_order_two_cannot_shard(self, rng) -> None:
        with pytest.raises(ShapeError):
            ShardedSource.partition(DenseSource(rng.standard_normal((6, 5))), 2)

    def test_manifest_round_trip(self, tensor, manifest_dir) -> None:
        source = ShardedSource.from_manifest(manifest_dir)
        assert source.shape == tensor.shape
        assert not source.resident
        np.testing.assert_array_equal(
            source.read_batch(0, source.slice_count),
            DenseSource(tensor).read_batch(0, 21),
        )
        # The manifest file itself also resolves.
        again = ShardedSource.from_manifest(manifest_dir / "manifest.json")
        assert again.shard_bounds == source.shard_bounds

    def test_manifest_rejects_unknown_format_and_kind(self, tmp_path) -> None:
        bad = tmp_path / "bad"
        write_manifest(bad, [{"kind": "npy", "path": "x.npy"}])
        data = json.loads((bad / "manifest.json").read_text())
        data["format"] = "something-else"
        (bad / "manifest.json").write_text(json.dumps(data))
        with pytest.raises(ShapeError):
            ShardedSource.from_manifest(bad)
        worse = tmp_path / "worse"
        write_manifest(worse, [{"kind": "parquet", "path": "x.parquet"}])
        with pytest.raises(ShapeError):
            ShardedSource.from_manifest(worse)

    def test_group_members_are_gated_on_their_packages(self, tmp_path) -> None:
        # Without the backing package the member must fail loudly with
        # BackendError (nothing is ever installed on the user's behalf);
        # with it installed, the member serves slices like any other.
        for kind, modname in (("zarr", "zarr"), ("hdf5", "h5py")):
            try:
                __import__(modname)
            except ImportError:
                with pytest.raises(BackendError):
                    GroupSource(kind, tmp_path / f"missing.{kind}", "x")
        with pytest.raises(ShapeError):
            GroupSource("parquet", tmp_path / "x.parquet")

    def test_mixed_residency_cost_model(self, tensor, npy_path) -> None:
        mixed = ShardedSource(
            [DenseSource(tensor[..., :4]), NpySource(npy_path)]
        )
        src_all_dense = ShardedSource.partition(DenseSource(tensor), 2)
        plan = mixed.plan(3, DTuckerConfig())
        costs = mixed.item_costs(plan, 0, mixed.slice_count)
        assert costs is not None
        assert costs[0] == 1.0 and costs[-1] == 1.0 + mixed.io_surcharge
        assert src_all_dense.item_costs(plan, 0, 21) is None


class TestSpawnDescriptors:
    def test_every_descriptor_survives_spawn(
        self, tensor, npy_path, manifest_dir
    ) -> None:
        """Satellite: pickle each descriptor into a fresh ``spawn`` child.

        ``spawn`` is the strictest start method — nothing is inherited, so
        the descriptor alone must reconstruct the source.  Compares the
        bytes a child reads against the parent's.
        """
        sparse = SparseTensor.from_dense(
            np.where(np.abs(tensor) > 1, tensor, 0.0)
        )
        sources = [
            DenseSource(tensor),
            NpySource(npy_path),
            SparseSource(sparse),
            BlockSource([tensor[..., :2], tensor[..., 2:]]),
            ShardedSource.partition(DenseSource(tensor), 2),
            ShardedSource.from_manifest(manifest_dir),
            SliceSpanSource(NpySource(npy_path), 1, 5),
        ]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            for source in sources:
                blob = pickle.dumps(source.descriptor())
                child = pool.apply(_reopen_and_read, ((blob, 0, 5),))
                np.testing.assert_array_equal(
                    child,
                    np.ascontiguousarray(
                        source.read_batch(0, 5), dtype=np.float64
                    ),
                )


class TestShardParity:
    """Satellite: sharded fits are bit-identical to single-source fits."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_partitioned_fit_bitwise_equals_dense(
        self, tensor, backend, n_shards
    ) -> None:
        cfg = DTuckerConfig(seed=11, backend=backend, n_workers=2)
        pipe = FitPipeline(RANKS, config=cfg)
        ref = pipe.fit(DenseSource(tensor))
        fit = pipe.fit(ShardedSource.partition(DenseSource(tensor), n_shards))
        np.testing.assert_array_equal(fit.result.core, ref.result.core)
        for a, b in zip(fit.result.factors, ref.result.factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            fit.slice_svd.u, ref.slice_svd.u
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_manifest_fit_bitwise_equals_dense(
        self, tensor, manifest_dir, backend
    ) -> None:
        cfg = DTuckerConfig(seed=11, backend=backend, n_workers=2)
        pipe = FitPipeline(RANKS, config=cfg)
        ref = pipe.fit(DenseSource(tensor))
        fit = pipe.fit(ShardedSource.from_manifest(manifest_dir))
        np.testing.assert_array_equal(fit.result.core, ref.result.core)
        for a, b in zip(fit.result.factors, ref.result.factors):
            np.testing.assert_array_equal(a, b)

    def test_config_shards_flows_through_pipeline(self, tensor) -> None:
        ref = FitPipeline(
            RANKS, config=DTuckerConfig(seed=11, backend="serial")
        ).fit(DenseSource(tensor))
        fit = FitPipeline(
            RANKS, config=DTuckerConfig(seed=11, backend="serial", shards=3)
        ).fit(DenseSource(tensor))
        np.testing.assert_array_equal(fit.result.core, ref.result.core)

    def test_config_rejects_nonpositive_shards(self) -> None:
        with pytest.raises(ShapeError):
            DTuckerConfig(shards=0)


class TestCommCounters:
    def test_ship_bytes_are_exactly_the_factor_products(
        self, tensor, manifest_dir
    ) -> None:
        """The reduce-only invariant: comm:ship == (I1+I2+1)·K per slice.

        ``strategy="gram"`` draws no test matrix, so *all* counted comm is
        the shipped factor products — the total must equal the closed-form
        ``factor_nbytes`` for the whole tensor, orders of magnitude below
        the raw slab bytes.
        """
        i1, i2 = SHAPE[:2]
        k = 3
        source = ShardedSource.from_manifest(manifest_dir)
        stats = KernelStats()
        cfg = DTuckerConfig(
            seed=5, backend="process", n_workers=2, strategy="gram"
        )
        compress_source(source, k, config=cfg, stats=stats)
        count = source.slice_count
        expected = factor_nbytes(i1, i2, k, n_slices=count)
        assert stats.bytes_comm == expected
        assert stats.misses_for("comm:ship") == len(source.members)
        raw = count * i1 * i2 * np.dtype(np.float64).itemsize
        assert stats.bytes_comm < raw

    def test_rsvd_adds_one_sketch_broadcast_per_task(
        self, rng, tmp_path
    ) -> None:
        # Slices wide enough that the planner picks the randomized method
        # (tiny slabs dispatch to the cheaper Gram path, which draws no
        # test matrix and so broadcasts nothing).
        wide = random_tensor((64, 48, 6), (3, 3, 2), rng=rng, noise=0.05)
        write_npy_shards(tmp_path / "wide", wide, 3)
        source = ShardedSource.from_manifest(tmp_path / "wide")
        stats = KernelStats()
        cfg = DTuckerConfig(seed=5, backend="process", n_workers=2)
        compress_source(source, 3, config=cfg, stats=stats)
        n_members = len(source.members)
        assert stats.misses_for("comm:ship") == n_members
        assert stats.misses_for("comm:bcast") == n_members
        ship = factor_nbytes(64, 48, 3, n_slices=source.slice_count)
        assert stats.bytes_comm > ship  # sketches ride on top

    def test_trace_annotates_comm(self, tensor, manifest_dir) -> None:
        from repro.engine import backend_scope

        source = ShardedSource.from_manifest(manifest_dir)
        cfg = DTuckerConfig(seed=5, backend="process", n_workers=2)
        with backend_scope("process", config=cfg) as eng:
            compress_source(source, 3, config=cfg, engine=eng)
            trace = eng.traces[-1]
        assert trace.phase == "approximation-sharded"
        assert trace.comm_bytes > 0
        assert trace.reduce_rounds == 1


class TestDistributedSweeps:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_monolithic_sweeps(self, tensor, backend) -> None:
        cfg = DTuckerConfig(seed=11, backend=backend, n_workers=2)
        source = ShardedSource.partition(DenseSource(tensor), 3)
        ssvd = compress_source(source, 3, config=cfg)
        _, factors = initialize(ssvd, RANKS)
        ref = als_sweeps(ssvd, RANKS, factors, config=cfg)
        out = distributed_als_sweeps(
            ssvd,
            RANKS,
            factors,
            shard_bounds=source.shard_bounds,
            config=cfg,
        )
        assert out.n_iters == ref.n_iters
        assert out.converged == ref.converged
        np.testing.assert_allclose(out.core, ref.core, rtol=1e-9, atol=1e-12)
        for a, b in zip(out.factors, ref.factors):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(out.errors, ref.errors, rtol=1e-9)

    def test_reduce_rounds_and_comm_accounting(self, tensor) -> None:
        from repro.engine import backend_scope

        cfg = DTuckerConfig(seed=11, backend="serial")
        source = ShardedSource.partition(DenseSource(tensor), 2)
        ssvd = compress_source(source, 3, config=cfg)
        _, factors = initialize(ssvd, RANKS)
        with backend_scope("serial", config=cfg) as eng:
            out = distributed_als_sweeps(
                ssvd,
                RANKS,
                factors,
                shard_bounds=source.shard_bounds,
                config=cfg,
                engine=eng,
            )
            trace = eng.traces[-1]
        order = len(SHAPE)
        # One round per factor update plus one for the core, per sweep.
        assert trace.reduce_rounds == out.n_iters * (order + 1)
        assert trace.comm_bytes > 0
        assert out.kernel_stats is not None
        assert out.kernel_stats.misses_for("comm:ship") == trace.reduce_rounds * 2

    def test_rejects_misaligned_or_gapped_bounds(self, tensor) -> None:
        cfg = DTuckerConfig(seed=11, backend="serial")
        ssvd = compress_source(DenseSource(tensor), 3, config=cfg)
        _, factors = initialize(ssvd, RANKS)
        count = ssvd.num_slices
        for bad in ([(0, 10), (10, count)], [(0, 9), (12, count)], [(0, 9)]):
            with pytest.raises(ShapeError):
                distributed_als_sweeps(
                    ssvd, RANKS, factors, shard_bounds=bad, config=cfg
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_coordinator_fit_end_to_end(
        self, tensor, manifest_dir, backend
    ) -> None:
        cfg = DTuckerConfig(seed=11, backend=backend, n_workers=2)
        ref = FitPipeline(RANKS, config=cfg).fit(DenseSource(tensor))
        coordinator = ShardCoordinator(
            ShardedSource.from_manifest(manifest_dir), RANKS, config=cfg
        )
        fit = coordinator.fit()
        assert fit.n_iters >= 1
        np.testing.assert_allclose(
            fit.result.core, ref.result.core, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(fit.history, ref.history, rtol=1e-9)
        # The compression is still bitwise: only the sweeps reassociate.
        np.testing.assert_array_equal(fit.slice_svd.u, ref.slice_svd.u)

    def test_coordinator_partitions_plain_sources(self, tensor) -> None:
        cfg = DTuckerConfig(seed=11, backend="serial", shards=3)
        coordinator = ShardCoordinator(DenseSource(tensor), RANKS, config=cfg)
        assert coordinator.source.shard_bounds == [(0, 9), (9, 15), (15, 21)]
        fit = coordinator.fit()
        assert fit.converged or fit.n_iters >= 1
