"""Tests for mode-n matricization and its inverse."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.tensor.unfold import fold, tensorize, unfold, unfolding_shape, vectorize

shapes = st.lists(st.integers(1, 5), min_size=1, max_size=4).map(tuple)


class TestUnfold:
    def test_shape(self, tensor3: np.ndarray) -> None:
        assert unfold(tensor3, 0).shape == (7, 30)
        assert unfold(tensor3, 1).shape == (5, 42)
        assert unfold(tensor3, 2).shape == (6, 35)

    def test_kolda_column_ordering(self) -> None:
        # For X of shape (2, 3, 4), column j of unfold(X, 0) holds
        # X[:, i2, i3] with i2 varying fastest (Fortran over the rest).
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        u0 = unfold(x, 0)
        j = 0
        for i3 in range(4):
            for i2 in range(3):
                np.testing.assert_array_equal(u0[:, j], x[:, i2, i3])
                j += 1

    def test_mode_1_ordering(self) -> None:
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        u1 = unfold(x, 1)
        j = 0
        for i3 in range(4):
            for i1 in range(2):
                np.testing.assert_array_equal(u1[:, j], x[i1, :, i3])
                j += 1

    def test_matrix_identity(self, rng: np.random.Generator) -> None:
        m = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(unfold(m, 0), m)
        np.testing.assert_array_equal(unfold(m, 1), m.T)

    def test_vector(self) -> None:
        v = np.array([1.0, 2.0, 3.0])
        assert unfold(v, 0).shape == (3, 1)

    def test_bad_mode(self, tensor3: np.ndarray) -> None:
        with pytest.raises(ShapeError):
            unfold(tensor3, 3)
        with pytest.raises(ShapeError):
            unfold(tensor3, -1)

    def test_rejects_nan(self) -> None:
        x = np.ones((2, 2))
        x[0, 0] = np.nan
        with pytest.raises(ShapeError, match="non-finite"):
            unfold(x, 0)


class TestFold:
    def test_roundtrip_all_modes(self, tensor4: np.ndarray) -> None:
        for n in range(tensor4.ndim):
            np.testing.assert_array_equal(
                fold(unfold(tensor4, n), n, tensor4.shape), tensor4
            )

    @given(shape=shapes, mode_seed=st.integers(0, 100))
    def test_roundtrip_property(self, shape: tuple[int, ...], mode_seed: int) -> None:
        mode = mode_seed % len(shape)
        x = np.random.default_rng(0).standard_normal(shape)
        np.testing.assert_array_equal(fold(unfold(x, mode), mode, shape), x)

    def test_fold_wrong_size(self) -> None:
        with pytest.raises(ShapeError):
            fold(np.zeros((3, 5)), 0, (3, 4))

    def test_fold_wrong_mode_rows(self) -> None:
        with pytest.raises(ShapeError):
            fold(np.zeros((4, 6)), 0, (3, 8))


class TestUnfoldingShape:
    def test_matches_unfold(self, tensor4: np.ndarray) -> None:
        for n in range(tensor4.ndim):
            assert unfolding_shape(tensor4.shape, n) == unfold(tensor4, n).shape

    def test_no_materialisation_needed(self) -> None:
        assert unfolding_shape((1000, 2000, 3000), 1) == (2000, 3_000_000)


class TestVectorize:
    def test_fortran_order(self) -> None:
        x = np.arange(6, dtype=float).reshape(2, 3)
        np.testing.assert_array_equal(vectorize(x), x.reshape(-1, order="F"))

    def test_roundtrip(self, tensor3: np.ndarray) -> None:
        np.testing.assert_array_equal(
            tensorize(vectorize(tensor3), tensor3.shape), tensor3
        )

    def test_tensorize_wrong_size(self) -> None:
        with pytest.raises(ShapeError):
            tensorize(np.zeros(5), (2, 3))

    def test_vec_is_mode1_stacking(self, tensor3: np.ndarray) -> None:
        # vec(X) equals stacking the columns of the mode-1 unfolding.
        np.testing.assert_array_equal(
            vectorize(tensor3), unfold(tensor3, 0).reshape(-1, order="F")
        )
