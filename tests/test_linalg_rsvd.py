"""Tests for randomized SVD (single, batched, and Gram-side paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RankError
from repro.linalg.rsvd import (
    batched_rsvd,
    batched_svd_via_gram,
    randomized_range_finder,
    rsvd,
)
from tests.conftest import assert_orthonormal


def lowrank(rng: np.random.Generator, m: int, n: int, r: int) -> np.ndarray:
    return rng.standard_normal((m, r)) @ rng.standard_normal((r, n))


class TestRangeFinder:
    def test_orthonormal(self, rng) -> None:
        q = randomized_range_finder(rng.standard_normal((20, 15)), 5, rng=0)
        assert_orthonormal(q)

    def test_captures_range_of_lowrank(self, rng) -> None:
        a = lowrank(rng, 30, 20, 4)
        q = randomized_range_finder(a, 6, rng=0)
        np.testing.assert_allclose(q @ (q.T @ a), a, atol=1e-8)

    def test_size_too_large(self, rng) -> None:
        with pytest.raises(RankError):
            randomized_range_finder(rng.standard_normal((5, 4)), 5)


class TestRsvd:
    def test_exact_on_lowrank(self, rng) -> None:
        a = lowrank(rng, 40, 30, 5)
        u, s, vt = rsvd(a, 5, rng=0)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, a, atol=1e-7)

    def test_orthonormal_factors(self, rng) -> None:
        u, _, vt = rsvd(rng.standard_normal((20, 15)), 4, rng=0)
        assert_orthonormal(u)
        assert_orthonormal(vt.T)

    def test_near_optimal_on_decaying_spectrum(self, rng) -> None:
        # Singular values decaying geometrically: rSVD error within a small
        # factor of the optimal (Eckart-Young) truncation error.
        u0 = np.linalg.qr(rng.standard_normal((50, 20)))[0]
        v0 = np.linalg.qr(rng.standard_normal((40, 20)))[0]
        s0 = 2.0 ** -np.arange(20)
        a = u0 @ np.diag(s0) @ v0.T
        u, s, vt = rsvd(a, 5, power_iterations=2, rng=0)
        err = np.linalg.norm(a - u @ np.diag(s) @ vt)
        optimal = np.linalg.norm(s0[5:])
        assert err <= 3.0 * optimal

    def test_seed_reproducible(self, rng) -> None:
        a = rng.standard_normal((15, 12))
        u1, s1, v1 = rsvd(a, 4, rng=42)
        u2, s2, v2 = rsvd(a, 4, rng=42)
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(v1, v2)

    def test_rank_too_large(self, rng) -> None:
        with pytest.raises(RankError):
            rsvd(rng.standard_normal((6, 4)), 5)

    def test_oversampling_clipped(self, rng) -> None:
        # rank + oversampling exceeding min shape must not crash.
        a = rng.standard_normal((8, 6))
        u, s, vt = rsvd(a, 5, oversampling=100, rng=0)
        assert u.shape == (8, 5)


class TestBatchedRsvd:
    def test_matches_per_slice(self, rng) -> None:
        stack = np.stack([lowrank(rng, 15, 12, 3) for _ in range(4)])
        u, s, vt = batched_rsvd(stack, 3, rng=0)
        for l in range(4):
            np.testing.assert_allclose(
                u[l] @ np.diag(s[l]) @ vt[l], stack[l], atol=1e-7
            )

    def test_sign_convention(self, rng) -> None:
        stack = rng.standard_normal((3, 10, 8))
        u, _, _ = batched_rsvd(stack, 2, rng=0)
        for l in range(3):
            idx = np.argmax(np.abs(u[l]), axis=0)
            assert (u[l][idx, np.arange(2)] > 0).all()

    def test_orthonormal_per_slice(self, rng) -> None:
        stack = rng.standard_normal((3, 10, 8))
        u, _, vt = batched_rsvd(stack, 2, rng=0)
        for l in range(3):
            assert_orthonormal(u[l])
            assert_orthonormal(vt[l].T)

    def test_non3d_rejected(self, rng) -> None:
        with pytest.raises(RankError):
            batched_rsvd(rng.standard_normal((5, 5)), 2)

    def test_noncontiguous_input_ok(self, rng) -> None:
        base = rng.standard_normal((10, 8, 4))
        stack = np.moveaxis(base, 2, 0)  # strided view
        u, s, vt = batched_rsvd(stack, 2, rng=0)
        u2, s2, vt2 = batched_rsvd(np.ascontiguousarray(stack), 2, rng=0)
        np.testing.assert_allclose(u, u2)


class TestBatchedSvdViaGram:
    def test_matches_exact_svd_tall(self, rng) -> None:
        stack = rng.standard_normal((5, 20, 6))
        u, s, vt = batched_svd_via_gram(stack, 4)
        for l in range(5):
            s_ref = np.linalg.svd(stack[l], compute_uv=False)[:4]
            np.testing.assert_allclose(s[l], s_ref, rtol=1e-8)
            np.testing.assert_allclose(
                u[l] @ np.diag(s[l]) @ vt[l],
                stack[l]
                - (stack[l] - u[l] @ (u[l].T @ stack[l])),  # projection onto U
                atol=1e-8,
            )

    def test_matches_exact_svd_wide(self, rng) -> None:
        stack = rng.standard_normal((5, 6, 20))
        u, s, vt = batched_svd_via_gram(stack, 4)
        for l in range(5):
            s_ref = np.linalg.svd(stack[l], compute_uv=False)[:4]
            np.testing.assert_allclose(s[l], s_ref, rtol=1e-8)

    def test_orthonormal(self, rng) -> None:
        stack = rng.standard_normal((4, 15, 7))
        u, _, vt = batched_svd_via_gram(stack, 3)
        for l in range(4):
            assert_orthonormal(u[l], atol=1e-6)
            assert_orthonormal(vt[l].T, atol=1e-6)

    def test_exact_reconstruction_at_full_rank(self, rng) -> None:
        stack = np.stack([lowrank(rng, 12, 5, 2) for _ in range(3)])
        u, s, vt = batched_svd_via_gram(stack, 5)
        recon = u @ (s[:, :, None] * vt)
        np.testing.assert_allclose(recon, stack, atol=1e-7)

    def test_rank_deficient_slice_safe(self) -> None:
        # A zero slice must not produce NaNs.
        stack = np.zeros((2, 6, 4))
        stack[1] = np.random.default_rng(0).standard_normal((6, 4))
        u, s, vt = batched_svd_via_gram(stack, 3)
        assert np.isfinite(u).all() and np.isfinite(s).all() and np.isfinite(vt).all()
        np.testing.assert_allclose(s[0], 0.0, atol=1e-12)

    def test_rank_too_large(self, rng) -> None:
        with pytest.raises(RankError):
            batched_svd_via_gram(rng.standard_normal((2, 5, 4)), 5)
