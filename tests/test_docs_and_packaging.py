"""Consistency checks between code, docs, and packaging.

Cheap guards that keep the documentation honest: every public export must
be documented, every example must at least import, every benchmark file
must map to a DESIGN.md experiment id, and version strings must agree.
"""

from __future__ import annotations

import ast
import importlib.util
import re
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


class TestPublicApiDocumented:
    def test_all_exports_in_api_doc(self) -> None:
        import repro

        api_doc = (REPO / "docs" / "api.md").read_text()
        missing = [
            name
            for name in repro.__all__
            if name not in api_doc and name != "__version__"
        ]
        assert not missing, f"exports missing from docs/api.md: {missing}"

    def test_all_exports_exist(self) -> None:
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_strings_agree(self) -> None:
        import repro

        pyproject = (REPO / "pyproject.toml").read_text()
        match = re.search(r'^version = "([^"]+)"', pyproject, re.MULTILINE)
        assert match is not None
        assert repro.__version__ == match.group(1)


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        [p.stem for p in sorted((REPO / "examples").glob("*.py"))],
    )
    def test_example_parses_and_imports(self, name: str) -> None:
        path = REPO / "examples" / f"{name}.py"
        # Parse (syntax) ...
        tree = ast.parse(path.read_text())
        # ... require a main() and a __main__ guard ...
        names = {n.name for n in tree.body if isinstance(n, ast.FunctionDef)}
        assert "main" in names, f"{name} lacks a main()"
        # ... and import without executing main().
        spec = importlib.util.spec_from_file_location(f"_example_{name}", path)
        assert spec and spec.loader
        module = importlib.util.module_from_spec(spec)
        saved = sys.modules.get(spec.name)
        try:
            spec.loader.exec_module(module)
        finally:
            if saved is not None:
                sys.modules[spec.name] = saved
        assert callable(module.main)


class TestBenchmarksMapped:
    def test_every_bench_has_a_design_row(self) -> None:
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            artifact = bench.stem.split("_")[1].upper()  # t1, f1, a1, ...
            assert (
                f"| {artifact} |" in design or bench.name in design
            ), f"{bench.name} (artifact {artifact}) not indexed in DESIGN.md"

    def test_every_design_bench_target_exists(self) -> None:
        design = (REPO / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO / "benchmarks" / target).exists(), target


class TestReadme:
    def test_mentions_all_examples(self) -> None:
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"{example.name} not in README"

    def test_install_commands_present(self) -> None:
        readme = (REPO / "README.md").read_text()
        assert "pip install -e ." in readme
        assert "pytest tests/" in readme
