"""Tests for the streaming D-Tucker extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingDTucker
from repro.exceptions import NotFittedError, RankError, ShapeError
from repro.tensor.random import random_tensor
from tests.conftest import assert_orthonormal


@pytest.fixture
def temporal(rng) -> np.ndarray:
    return random_tensor((16, 12, 20), (3, 3, 4), rng=rng, noise=0.02)


class TestPartialFit:
    def test_single_block_matches_batch_quality(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0).partial_fit(temporal)
        assert s.result_.error(temporal) < 0.01

    def test_incremental_blocks(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        for t0 in range(0, 20, 5):
            s.partial_fit(temporal[..., t0 : t0 + 5])
        assert s.shape_ == (16, 12, 20)
        assert s.n_updates_ == 4
        assert s.result_.error(temporal) < 0.01

    def test_factors_orthonormal(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :10]).partial_fit(temporal[..., 10:])
        for f in s.result_.factors:
            assert_orthonormal(f)

    def test_temporal_rank_clipped_while_short(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :2])  # only 2 timesteps so far
        assert s.result_.ranks[-1] == 2
        s.partial_fit(temporal[..., 2:10])
        assert s.result_.ranks[-1] == 4

    def test_history_and_timings_grow(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :10])
        s.partial_fit(temporal[..., 10:])
        assert len(s.history_) == 2
        assert s.timings_.total > 0
        assert "approximation" in s.timings_

    def test_mismatched_block_shape(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :10])
        with pytest.raises(ShapeError):
            s.partial_fit(np.ones((16, 11, 5)))

    def test_wrong_block_order(self) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4))
        with pytest.raises(ShapeError):
            s.partial_fit(np.ones((16, 12)))

    def test_order2_ranks_rejected(self) -> None:
        with pytest.raises(ShapeError):
            StreamingDTucker(ranks=(3, 3))

    def test_slice_rank_too_large(self) -> None:
        s = StreamingDTucker(ranks=(3, 3, 2), slice_rank=10)
        with pytest.raises(RankError):
            s.partial_fit(np.ones((4, 4, 6)))

    def test_accessors_before_fit(self) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4))
        with pytest.raises(NotFittedError):
            _ = s.shape_
        with pytest.raises(NotFittedError):
            _ = s.slice_svd_

    def test_order4_streaming(self, rng) -> None:
        x = random_tensor((8, 7, 4, 6), (2, 2, 2, 2), rng=rng, noise=0.02)
        s = StreamingDTucker(ranks=(2, 2, 2, 2), seed=0)
        s.partial_fit(x[..., :3]).partial_fit(x[..., 3:])
        assert s.shape_ == (8, 7, 4, 6)
        assert s.result_.error(x) < 0.02

    def test_streaming_matches_batch_error(self, temporal) -> None:
        from repro.core.dtucker import DTucker

        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, sweeps_per_update=10)
        s.partial_fit(temporal[..., :10]).partial_fit(temporal[..., 10:])
        batch = DTucker(ranks=(3, 3, 4), seed=0).fit(temporal)
        stream_err = s.result_.error(temporal)
        batch_err = batch.result_.error(temporal)
        assert stream_err <= batch_err + 5e-3


def _stream_blocks(x: np.ndarray, step: int):
    for t0 in range(0, x.shape[-1], step):
        yield x[..., t0 : t0 + step]


class TestRefitBitIdentity:
    """update="refit" is the historical behaviour on every backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_bit_identical(self, temporal, backend) -> None:
        from repro.core.config import DTuckerConfig

        def run(name: str):
            s = StreamingDTucker(
                ranks=(3, 3, 4),
                config=DTuckerConfig(seed=0, backend=name, n_workers=2),
            )
            for block in _stream_blocks(temporal, 5):
                s.partial_fit(block)
            return s

        ref = run("serial")
        got = run(backend)
        np.testing.assert_array_equal(got.result_.core, ref.result_.core)
        for a, b in zip(got.result_.factors, ref.result_.factors):
            np.testing.assert_array_equal(a, b)
        # Scalar error estimates may differ in reduction order only.
        np.testing.assert_allclose(got.history_, ref.history_, rtol=1e-9)

    def test_refit_is_default_and_rejects_window(self) -> None:
        assert StreamingDTucker(ranks=(3, 3, 4)).update == "refit"
        with pytest.raises(ShapeError):
            StreamingDTucker(ranks=(3, 3, 4), window=8)
        with pytest.raises(ShapeError):
            StreamingDTucker(ranks=(3, 3, 4), decay=0.9)
        # decay=1.0 is a no-op and therefore fine under refit.
        StreamingDTucker(ranks=(3, 3, 4), decay=1.0)


class TestFailedIngestLeavesStateUntouched:
    """A rejected block must not consume RNG draws or bump accumulators."""

    @pytest.mark.parametrize("update", ["refit", "incremental", "sketch"])
    def test_bad_block_is_a_true_no_op(self, temporal, update) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update=update)
        s.partial_fit(temporal[..., :10])
        rng_before = repr(s._rng.bit_generator.state)
        ssvd_before = s.slice_svd_
        updates_before = s.n_updates_
        history_before = list(s.history_)

        with pytest.raises(ShapeError):
            s.partial_fit(np.ones((16, 11, 5)))  # wrong mode-2 size
        with pytest.raises(ShapeError):
            s.partial_fit(np.ones((16, 12)))  # wrong order

        assert s.n_updates_ == updates_before
        assert s.history_ == history_before
        assert repr(s._rng.bit_generator.state) == rng_before
        after = s.slice_svd_
        np.testing.assert_array_equal(after.u, ssvd_before.u)
        np.testing.assert_array_equal(after.s, ssvd_before.s)

        # The survivor stream is unperturbed: a fresh model that never saw
        # the bad block produces bit-identical results.
        clean = StreamingDTucker(ranks=(3, 3, 4), seed=0, update=update)
        clean.partial_fit(temporal[..., :10])
        s.partial_fit(temporal[..., 10:])
        clean.partial_fit(temporal[..., 10:])
        np.testing.assert_array_equal(s.result_.core, clean.result_.core)

    def test_oversized_slice_rank_before_first_fit(self) -> None:
        s = StreamingDTucker(ranks=(3, 3, 2), slice_rank=10, update="incremental")
        rng_before = repr(s._rng.bit_generator.state)
        with pytest.raises(RankError):
            s.partial_fit(np.ones((4, 4, 6)))
        assert s.n_updates_ == 0
        assert repr(s._rng.bit_generator.state) == rng_before
        with pytest.raises(NotFittedError):
            _ = s.slice_svd_


class TestOBlockCost:
    """KernelStats guard: per update, only the new block's rows are computed."""

    def test_proj_misses_stay_at_block_size(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        block_steps = 4
        misses = []
        hits = []
        for block in _stream_blocks(temporal, block_steps):
            m0 = s.kernel_stats_.misses_for("stream:proj")
            h0 = s.kernel_stats_.hits_for("stream:proj")
            s.partial_fit(block)
            misses.append(s.kernel_stats_.misses_for("stream:proj") - m0)
            hits.append(s.kernel_stats_.hits_for("stream:proj") - h0)
        # O(block): every update computes exactly the new block's slices,
        # regardless of how much history has accumulated ...
        assert misses == [block_steps] * len(misses)
        # ... while the reused (cached) rows grow with the extent.
        assert hits == [0, 4, 8, 12, 16]

    def test_traces_record_cache_deltas(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        s.partial_fit(temporal[..., :10]).partial_fit(temporal[..., 10:])
        updates = [t for t in s.traces_ if t.phase == "stream:update"]
        assert len(updates) == 2
        assert updates[0].cache_misses == 10 and updates[0].cache_hits == 0
        assert updates[1].cache_misses == 10 and updates[1].cache_hits == 10

    def test_order4_counts_slices_not_steps(self, rng) -> None:
        x = random_tensor((8, 7, 4, 6), (2, 2, 2, 2), rng=rng, noise=0.02)
        s = StreamingDTucker(ranks=(2, 2, 2, 2), seed=0, update="incremental")
        s.partial_fit(x[..., :3])
        assert s.kernel_stats_.misses_for("stream:proj") == 12  # 4 * 3 slices
        s.partial_fit(x[..., 3:])
        assert s.kernel_stats_.misses_for("stream:proj") == 24


class TestStreamingAccuracy:
    """Online modes track the refit solution on stationary data."""

    @pytest.mark.parametrize("update", ["incremental", "sketch"])
    def test_error_close_to_refit(self, temporal, update) -> None:
        refit = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        online = StreamingDTucker(ranks=(3, 3, 4), seed=0, update=update)
        for block in _stream_blocks(temporal, 5):
            refit.partial_fit(block)
            online.partial_fit(block)
        assert online.result_.error(temporal) <= refit.result_.error(temporal) + 5e-3

    def test_revise_streaming(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        for block in _stream_blocks(temporal, 5):
            s.partial_fit(block)
        corrected = temporal.copy()
        corrected[..., 5:10] = temporal[..., 5:10] + 0.01
        s.revise(5, corrected[..., 5:10])
        assert s.shape_ == (16, 12, 20)
        assert s.result_.error(corrected) < 0.02


class TestWindow:
    def test_extent_never_exceeds_window(self, temporal) -> None:
        s = StreamingDTucker(
            ranks=(3, 3, 4), seed=0, update="incremental", window=8
        )
        for block in _stream_blocks(temporal, 4):
            s.partial_fit(block)
            assert s.shape_[-1] <= 8
        assert s.shape_ == (16, 12, 8)
        assert s.t_seen_ == 20

    def test_window_matches_scratch_fit_of_tail(self, temporal) -> None:
        s = StreamingDTucker(
            ranks=(3, 3, 4), seed=0, update="incremental", window=8
        )
        for block in _stream_blocks(temporal, 4):
            s.partial_fit(block)
        tail = temporal[..., 12:]
        scratch = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        scratch.partial_fit(tail)
        # Same live data, same ranks: both models reconstruct the tail
        # comparably well (factor bases differ — the windowed model's were
        # initialized on evicted history).
        assert s.result_.error(tail) <= scratch.result_.error(tail) + 1e-2

    def test_block_larger_than_window(self, temporal) -> None:
        s = StreamingDTucker(
            ranks=(3, 3, 4), seed=0, update="incremental", window=4
        )
        s.partial_fit(temporal)  # 20 steps at once, window keeps last 4
        assert s.shape_ == (16, 12, 4)
        tail = temporal[..., -4:]
        assert s.result_.error(tail) < 0.05


class TestDecay:
    def test_decay_scales_historical_energy(self, temporal) -> None:
        plain = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        decayed = StreamingDTucker(
            ranks=(3, 3, 4), seed=0, update="incremental", decay=0.5
        )
        for block in _stream_blocks(temporal, 10):
            plain.partial_fit(block)
            decayed.partial_fit(block)
        n_plain = plain.slice_svd_.slice_norms_squared
        n_dec = decayed.slice_svd_.slice_norms_squared
        # Old slices aged by 10 steps: norms^2 scale by (0.5**10)**2 ...
        np.testing.assert_allclose(n_dec[:10], n_plain[:10] * 0.5 ** 20, rtol=1e-10)
        # ... while the newest block is still at full weight.
        np.testing.assert_allclose(n_dec[10:], n_plain[10:], rtol=1e-10)

    def test_decay_monotone_in_gamma(self, temporal) -> None:
        """Smaller γ leaves less historical energy in the live window."""
        totals = []
        for gamma in (1.0, 0.9, 0.5):
            s = StreamingDTucker(
                ranks=(3, 3, 4), seed=0, update="incremental", decay=gamma
            )
            for block in _stream_blocks(temporal, 5):
                s.partial_fit(block)
            totals.append(s.slice_svd_.norm_squared)
        assert totals[0] > totals[1] > totals[2]

    def test_decay_one_is_noop(self, temporal) -> None:
        base = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        one = StreamingDTucker(
            ranks=(3, 3, 4), seed=0, update="incremental", decay=1.0
        )
        for block in _stream_blocks(temporal, 10):
            base.partial_fit(block)
            one.partial_fit(block)
        np.testing.assert_array_equal(base.result_.core, one.result_.core)


class TestWatchdog:
    def test_triggers_on_drift(self, rng) -> None:
        stale = random_tensor((16, 12, 12), (3, 3, 4), rng=rng, noise=0.01)
        shifted = random_tensor(
            (16, 12, 12), (3, 3, 4), rng=np.random.default_rng(99), noise=0.01
        )
        s = StreamingDTucker(
            ranks=(3, 3, 4),
            seed=0,
            update="incremental",
            drift_budget=0.5,
            window=12,
        )
        for block in _stream_blocks(stale, 4):
            s.partial_fit(block)
        assert s.watchdog_triggers_ == 0
        # Distribution shift: the frozen factors no longer span the data.
        for block in _stream_blocks(shifted, 4):
            s.partial_fit(block)
        assert s.watchdog_triggers_ >= 1
        assert any(t.phase == "stream:watchdog" for t in s.traces_)
        # The refresh actually helped: a twin without a watchdog keeps the
        # stale factors and ends up much worse on the shifted window.
        twin = StreamingDTucker(
            ranks=(3, 3, 4), seed=0, update="incremental", window=12
        )
        for block in _stream_blocks(stale, 4):
            twin.partial_fit(block)
        for block in _stream_blocks(shifted, 4):
            twin.partial_fit(block)
        assert s.history_[-1] < 0.7 * twin.history_[-1]

    def test_no_watchdog_without_budget(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        for block in _stream_blocks(temporal, 5):
            s.partial_fit(block)
        assert s.watchdog_triggers_ == 0
        assert all(t.phase != "stream:watchdog" for t in s.traces_)


class TestIngestQueue:
    def test_backpressure_queue_feeds_partial_fit(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        with s.ingest_queue(depth=1) as q:
            for block in _stream_blocks(temporal, 5):
                q.put(block)
            q.join()
            assert q.n_put == q.n_done == 4
        assert s.n_updates_ == 4
        assert s.shape_ == (16, 12, 20)
        ingest = [t for t in s.traces_ if t.phase == "stream:ingest"]
        assert len(ingest) == 1
        assert ingest[0].n_tasks == 4

    def test_queue_matches_direct_calls(self, temporal) -> None:
        direct = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        for block in _stream_blocks(temporal, 5):
            direct.partial_fit(block)
        queued = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        with queued.ingest_queue() as q:
            for block in _stream_blocks(temporal, 5):
                q.put(block)
        np.testing.assert_array_equal(
            direct.result_.core, queued.result_.core
        )

    def test_consumer_error_reraises_on_put_or_join(self, temporal) -> None:
        from repro.engine import IngestQueue

        def boom(block) -> None:
            raise ValueError("bad block")

        q = IngestQueue(boom, depth=1)
        q.put(temporal[..., :5])
        with pytest.raises(ValueError, match="bad block"):
            q.join()
        with pytest.raises(RuntimeError):
            q.put(temporal[..., :5])  # closed after the failure

    def test_model_queue_surfaces_fit_errors(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        q = s.ingest_queue()
        q.put(temporal[..., :5])
        with pytest.raises(ShapeError):
            q.put(np.ones((16, 11, 5)))
            q.join()

    def test_invalid_depth(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4))
        with pytest.raises(ValueError):
            s.ingest_queue(depth=0)


class TestSaveLoad:
    @pytest.mark.parametrize("update", ["refit", "incremental"])
    def test_resume_is_bit_identical(self, temporal, tmp_path, update) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update=update)
        s.partial_fit(temporal[..., :5]).partial_fit(temporal[..., 5:10])
        s.save(tmp_path / "model")

        loaded = StreamingDTucker.load(tmp_path / "model")
        assert loaded.update == update
        assert loaded.n_updates_ == 2
        assert loaded.t_seen_ == 10
        np.testing.assert_allclose(loaded.history_, s.history_)

        # Resuming the stream gives exactly what the live instance gives:
        # same RNG position, same caches (rebuilt), same factors.
        s.partial_fit(temporal[..., 10:])
        loaded.partial_fit(temporal[..., 10:])
        np.testing.assert_array_equal(loaded.result_.core, s.result_.core)
        for a, b in zip(loaded.result_.factors, s.result_.factors):
            np.testing.assert_array_equal(a, b)

    def test_sketch_round_trip_restores_sketches(self, temporal, tmp_path) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="sketch")
        s.partial_fit(temporal[..., :10]).partial_fit(temporal[..., 10:15])
        s.save(tmp_path / "model")
        loaded = StreamingDTucker.load(tmp_path / "model")
        assert loaded._fd1 is not None and loaded._fd2 is not None
        np.testing.assert_array_equal(
            loaded._fd1.sketch(), s._fd1.sketch()
        )
        assert loaded._fd1.n_inserted == s._fd1.n_inserted
        # Resume: the loaded model rebuilds exact projections, the live one
        # carries rotated (approximate) caches — close, not bit-equal.
        s.partial_fit(temporal[..., 15:])
        loaded.partial_fit(temporal[..., 15:])
        np.testing.assert_allclose(
            loaded.result_.core, s.result_.core, atol=1e-4
        )

    def test_window_and_watchdog_state_survive(self, temporal, tmp_path) -> None:
        s = StreamingDTucker(
            ranks=(3, 3, 4),
            seed=0,
            update="incremental",
            window=8,
            decay=0.9,
            drift_budget=5.0,
        )
        for block in _stream_blocks(temporal, 4):
            s.partial_fit(block)
        s.save(tmp_path / "model")
        loaded = StreamingDTucker.load(tmp_path / "model")
        assert loaded.window == 8
        assert loaded.decay == 0.9
        assert loaded.drift_budget == 5.0
        assert loaded.shape_ == (16, 12, 8)
        assert loaded.t_seen_ == 20
        assert loaded._baseline == s._baseline
        assert loaded._ewma == s._ewma

    def test_save_requires_fit(self, tmp_path) -> None:
        with pytest.raises(NotFittedError):
            StreamingDTucker(ranks=(3, 3, 4)).save(tmp_path / "model")

    def test_load_rejects_plain_store(self, temporal, tmp_path) -> None:
        from repro.core.dtucker import DTucker
        from repro.exceptions import StoreFormatError
        from repro.store import ModelStore

        model = DTucker(ranks=(3, 3, 4), seed=0).fit(temporal)
        ModelStore.save(
            tmp_path / "plain",
            slice_svd=model.slice_svd_,
            result=model.result_,
            config=model.config,
        )
        with pytest.raises(StoreFormatError):
            StreamingDTucker.load(tmp_path / "plain")

    def test_saved_store_serves_queries(self, temporal, tmp_path) -> None:
        from repro.store import ModelStore

        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, update="incremental")
        s.partial_fit(temporal)
        s.save(tmp_path / "model")
        store = ModelStore(tmp_path / "model")
        assert store.shape == (16, 12, 20)
        np.testing.assert_allclose(
            store.load_result().core, s.result_.core
        )

    def test_append_parity_with_model_store(self, temporal, tmp_path) -> None:
        """Resumed streaming append == ModelStore.append, slice for slice."""
        from repro.store import ModelStore

        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :10])
        s.save(tmp_path / "a")
        s.save(tmp_path / "b")

        loaded = StreamingDTucker.load(tmp_path / "a")
        rng = np.random.default_rng(0)
        rng.bit_generator.state = loaded._rng.bit_generator.state
        loaded.partial_fit(temporal[..., 10:])

        store = ModelStore(tmp_path / "b").append(temporal[..., 10:], rng=rng)

        # Same RNG stream, same stored slice rank: the compressed
        # representations agree bit for bit.
        got = store.load_slice_svd()
        want = loaded.slice_svd_
        np.testing.assert_array_equal(got.u, want.u)
        np.testing.assert_array_equal(got.s, want.s)
        np.testing.assert_array_equal(got.vt, want.vt)
        assert got.shape == want.shape == (16, 12, 20)
        # Factor refreshes differ (warm start vs re-init) but land on
        # equally good decompositions.
        err_stream = loaded.result_.error(temporal)
        err_store = store.load_result().error(temporal)
        assert abs(err_stream - err_store) < 5e-3
