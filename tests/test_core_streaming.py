"""Tests for the streaming D-Tucker extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingDTucker
from repro.exceptions import NotFittedError, RankError, ShapeError
from repro.tensor.random import random_tensor
from tests.conftest import assert_orthonormal


@pytest.fixture
def temporal(rng) -> np.ndarray:
    return random_tensor((16, 12, 20), (3, 3, 4), rng=rng, noise=0.02)


class TestPartialFit:
    def test_single_block_matches_batch_quality(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0).partial_fit(temporal)
        assert s.result_.error(temporal) < 0.01

    def test_incremental_blocks(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        for t0 in range(0, 20, 5):
            s.partial_fit(temporal[..., t0 : t0 + 5])
        assert s.shape_ == (16, 12, 20)
        assert s.n_updates_ == 4
        assert s.result_.error(temporal) < 0.01

    def test_factors_orthonormal(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :10]).partial_fit(temporal[..., 10:])
        for f in s.result_.factors:
            assert_orthonormal(f)

    def test_temporal_rank_clipped_while_short(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :2])  # only 2 timesteps so far
        assert s.result_.ranks[-1] == 2
        s.partial_fit(temporal[..., 2:10])
        assert s.result_.ranks[-1] == 4

    def test_history_and_timings_grow(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :10])
        s.partial_fit(temporal[..., 10:])
        assert len(s.history_) == 2
        assert s.timings_.total > 0
        assert "approximation" in s.timings_

    def test_mismatched_block_shape(self, temporal) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4), seed=0)
        s.partial_fit(temporal[..., :10])
        with pytest.raises(ShapeError):
            s.partial_fit(np.ones((16, 11, 5)))

    def test_wrong_block_order(self) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4))
        with pytest.raises(ShapeError):
            s.partial_fit(np.ones((16, 12)))

    def test_order2_ranks_rejected(self) -> None:
        with pytest.raises(ShapeError):
            StreamingDTucker(ranks=(3, 3))

    def test_slice_rank_too_large(self) -> None:
        s = StreamingDTucker(ranks=(3, 3, 2), slice_rank=10)
        with pytest.raises(RankError):
            s.partial_fit(np.ones((4, 4, 6)))

    def test_accessors_before_fit(self) -> None:
        s = StreamingDTucker(ranks=(3, 3, 4))
        with pytest.raises(NotFittedError):
            _ = s.shape_
        with pytest.raises(NotFittedError):
            _ = s.slice_svd_

    def test_order4_streaming(self, rng) -> None:
        x = random_tensor((8, 7, 4, 6), (2, 2, 2, 2), rng=rng, noise=0.02)
        s = StreamingDTucker(ranks=(2, 2, 2, 2), seed=0)
        s.partial_fit(x[..., :3]).partial_fit(x[..., 3:])
        assert s.shape_ == (8, 7, 4, 6)
        assert s.result_.error(x) < 0.02

    def test_streaming_matches_batch_error(self, temporal) -> None:
        from repro.core.dtucker import DTucker

        s = StreamingDTucker(ranks=(3, 3, 4), seed=0, sweeps_per_update=10)
        s.partial_fit(temporal[..., :10]).partial_fit(temporal[..., 10:])
        batch = DTucker(ranks=(3, 3, 4), seed=0).fit(temporal)
        stream_err = s.result_.error(temporal)
        batch_err = batch.result_.error(temporal)
        assert stream_err <= batch_err + 5e-3
