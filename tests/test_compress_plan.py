"""Tests for the adaptive compression planner (``repro.kernels.compress_plan``).

Three contracts matter here:

* the planner's decisions match the documented rules (exact for
  tall-skinny, Gram for one-short-side, randomized otherwise — and the
  historical dispatch for ``strategy="rsvd"``);
* ``strategy="auto"`` is a pure re-route: its output is bit-identical to
  requesting the chosen method explicitly, and the default
  ``strategy="rsvd"`` path stays bit-identical to the raw linalg kernels;
* the float32 path trades precision for speed without corrupting the
  float64-accumulated norms or the final accuracy beyond tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DTuckerConfig
from repro.core.slice_svd import compress
from repro.engine import Prefetcher, backend_scope
from repro.exceptions import RankError, ShapeError
from repro.kernels import (
    BufferPool,
    CompressionPlan,
    KernelStats,
    estimate_costs,
    execute_plan,
    plan_compression,
    plan_from_config,
    slab_norms,
)
from repro.linalg.rsvd import batched_rsvd, batched_svd_via_gram
from repro.tensor.random import default_rng, random_tensor
from repro.tensor.slices import to_slices


def _stack(shape, *, seed=0):
    """A (L, I1, I2) slab of random slices."""
    return default_rng(seed).standard_normal(shape)


class TestPlanDecisions:
    @pytest.mark.parametrize(
        "i1,i2,rank,expected",
        [
            (512, 12, 8, "exact"),   # sketch would span the whole short side
            (512, 48, 8, "gram"),    # one side short but bigger than the sketch
            (256, 256, 8, "rsvd"),   # squarish: k << m
            (12, 512, 8, "exact"),   # orientation must not matter
            (48, 512, 8, "gram"),
        ],
    )
    def test_auto_rules(self, i1, i2, rank, expected) -> None:
        plan = plan_compression(i1, i2, rank, strategy="auto", oversampling=10)
        assert plan.method == expected

    @pytest.mark.parametrize(
        "i1,i2,rank,expected",
        [
            (256, 30, 8, "gram"),    # m <= 2 * (rank + oversampling)
            (256, 256, 8, "rsvd"),
            (256, 36, 8, "gram"),    # boundary: m == 2 * k_nom
            (256, 37, 8, "rsvd"),
        ],
    )
    def test_legacy_dispatch(self, i1, i2, rank, expected) -> None:
        plan = plan_compression(i1, i2, rank, strategy="rsvd", oversampling=10)
        assert plan.method == expected

    @pytest.mark.parametrize("strategy", ["gram", "exact"])
    def test_explicit_strategies(self, strategy) -> None:
        plan = plan_compression(256, 256, 8, strategy=strategy)
        assert plan.method == strategy

    def test_exact_slice_svd_overrides(self) -> None:
        plan = plan_compression(256, 256, 8, strategy="auto", exact_slice_svd=True)
        assert plan.method == "exact"

    def test_k_eff_capped_at_short_side(self) -> None:
        plan = plan_compression(100, 12, 8, strategy="auto", oversampling=10)
        assert plan.k_eff == 12

    def test_compute_dtype(self) -> None:
        assert plan_compression(20, 20, 4).compute_dtype == np.float64
        assert (
            plan_compression(20, 20, 4, precision="float32").compute_dtype
            == np.float32
        )

    def test_invalid_rank(self) -> None:
        with pytest.raises(RankError):
            plan_compression(20, 10, 11)
        with pytest.raises(RankError):
            plan_compression(20, 10, 0)

    def test_invalid_strategy(self) -> None:
        with pytest.raises(ShapeError):
            plan_compression(20, 20, 4, strategy="magic")

    def test_invalid_precision(self) -> None:
        with pytest.raises(ShapeError):
            plan_compression(20, 20, 4, precision="float16")

    def test_plan_from_config(self) -> None:
        cfg = DTuckerConfig(strategy="auto", precision="float32", oversampling=5)
        plan = plan_from_config(256, 256, 8, cfg)
        assert plan.method == "rsvd"
        assert plan.k_eff == 13
        assert plan.compute_dtype == np.float32

    def test_as_dict_json_ready(self) -> None:
        import json

        plan = plan_compression(64, 48, 6)
        encoded = json.loads(json.dumps(plan.as_dict()))
        assert encoded["method"] == plan.method
        assert set(encoded["costs"]) == {"exact", "gram", "rsvd"}


class TestEstimateCosts:
    def test_all_positive(self) -> None:
        costs = estimate_costs(100, 80, 5)
        assert all(v > 0 for v in costs.values())

    def test_symmetric_in_orientation(self) -> None:
        assert estimate_costs(100, 40, 5) == estimate_costs(40, 100, 5)

    def test_rsvd_wins_squarish(self) -> None:
        costs = estimate_costs(256, 256, 8, oversampling=10)
        assert costs["rsvd"] < costs["gram"] < costs["exact"]

    def test_gram_wins_short_side(self) -> None:
        costs = estimate_costs(512, 48, 8, oversampling=10)
        assert costs["gram"] < costs["rsvd"]


class TestAutoExplicitParity:
    """auto must be a pure re-route to the method it picks."""

    @pytest.mark.parametrize(
        "shape,rank,explicit",
        [
            ((80, 10, 4), 4, "exact"),   # auto -> exact (m <= k_nom)
            ((80, 25, 4), 5, "gram"),    # auto -> gram
        ],
    )
    def test_bitwise_equal(self, shape, rank, explicit) -> None:
        x = default_rng(7).standard_normal(shape)
        i1, i2 = shape[:2]
        assert plan_compression(i1, i2, rank, strategy="auto").method == explicit
        a = compress(x, rank, config=DTuckerConfig(strategy="auto"), rng=0)
        b = compress(x, rank, config=DTuckerConfig(strategy=explicit), rng=0)
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.s, b.s)
        np.testing.assert_array_equal(a.vt, b.vt)
        assert a.norm_squared == b.norm_squared

    def test_auto_rsvd_pinned_to_kernel(self) -> None:
        # auto -> rsvd; the explicit "rsvd" strategy is the *legacy* strided
        # path (kept verbatim for bit-stability), so pin auto against the
        # raw kernel on the contiguous stack instead.
        x = default_rng(7).standard_normal((40, 38, 4))
        rank = 3
        plan = plan_compression(40, 38, rank, strategy="auto")
        assert plan.method == "rsvd"
        a = compress(x, rank, config=DTuckerConfig(strategy="auto"), rng=0)
        stack = np.ascontiguousarray(np.moveaxis(to_slices(x), 2, 0))
        omega = default_rng(0).standard_normal((38, plan.k_eff))
        u, s, vt = batched_rsvd(stack, rank, test_matrix=omega)
        np.testing.assert_array_equal(a.u, u)
        np.testing.assert_array_equal(a.s, s)
        np.testing.assert_array_equal(a.vt, vt)


class TestDefaultPathRegression:
    """strategy="rsvd"/float64 must keep matching the raw linalg kernels."""

    def test_rsvd_regime_pinned(self) -> None:
        x = default_rng(3).standard_normal((50, 46, 4))
        rank, over = 5, 10
        ssvd = compress(x, rank, rng=0)
        stack = np.ascontiguousarray(np.moveaxis(to_slices(x), 2, 0))
        omega = default_rng(0).standard_normal((46, rank + over))
        u, s, vt = batched_rsvd(stack, rank, test_matrix=omega)
        np.testing.assert_array_equal(ssvd.u, u)
        np.testing.assert_array_equal(ssvd.s, s)
        np.testing.assert_array_equal(ssvd.vt, vt)

    def test_gram_regime_pinned(self) -> None:
        x = default_rng(3).standard_normal((50, 14, 4))
        ssvd = compress(x, 4, rng=0)
        stack = np.ascontiguousarray(np.moveaxis(to_slices(x), 2, 0))
        u, s, vt = batched_svd_via_gram(stack, 4)
        np.testing.assert_array_equal(ssvd.u, u)
        np.testing.assert_array_equal(ssvd.s, s)
        np.testing.assert_array_equal(ssvd.vt, vt)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_default_config_is_noop(self, backend) -> None:
        """An explicit default config routes through the same code path."""
        x = random_tensor((30, 28, 5), (4, 4, 2), rng=2, noise=0.05)
        with backend_scope(backend, n_workers=2) as eng:
            a = compress(x, 4, rng=0, engine=eng)
            b = compress(x, 4, rng=0, engine=eng, config=DTuckerConfig())
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.s, b.s)
        np.testing.assert_array_equal(a.vt, b.vt)


class TestFloat32Path:
    def test_end_to_end_accuracy(self) -> None:
        x = random_tensor((40, 36, 6), (4, 4, 3), rng=5, noise=0.01)
        f64 = compress(x, 4, rng=0)
        f32 = compress(x, 4, config=DTuckerConfig(precision="float32"), rng=0)
        # SliceSVD storage is always float64, whatever the compute dtype.
        assert f32.u.dtype == np.float64
        assert f32.compression_error(x) < f64.compression_error(x) + 1e-2

    def test_norms_accumulated_in_float64(self) -> None:
        x = default_rng(1).standard_normal((30, 25, 4))
        f32 = compress(x, 3, config=DTuckerConfig(precision="float32"), rng=0)
        exact = float(np.sum(x * x))
        # float64 accumulation over the float32-cast data: relative error is
        # bounded by the cast (~1e-7), far tighter than fp32 accumulation.
        assert f32.norm_squared == pytest.approx(exact, rel=1e-5)

    def test_slab_norms_dtype(self) -> None:
        stack = default_rng(2).standard_normal((5, 10, 8)).astype(np.float32)
        norms = slab_norms(stack)
        assert norms.dtype == np.float64
        np.testing.assert_allclose(
            norms, [float(np.sum(s.astype(np.float64) ** 2)) for s in stack],
            rtol=1e-6,
        )

    def test_slab_norms_float64_bit_exact(self) -> None:
        stack = np.ascontiguousarray(default_rng(2).standard_normal((5, 10, 8)))
        np.testing.assert_array_equal(
            slab_norms(stack),
            np.einsum("lij,lij->l", stack, stack, optimize=True),
        )


class TestGramGuard:
    """Near-rank-deficient slices must fall back to the direct SVD."""

    def _deficient_stack(self, dtype=np.float64):
        # Exactly rank-1 slices; requesting rank 3 drives the Gram
        # eigenproblem into its null space.
        gen = default_rng(11)
        stack = np.stack(
            [np.outer(gen.standard_normal(20), gen.standard_normal(12))
             for _ in range(4)]
        )
        return stack.astype(dtype)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_factors_finite(self, dtype) -> None:
        u, s, vt = batched_svd_via_gram(self._deficient_stack(dtype), 3)
        assert np.isfinite(u).all()
        assert np.isfinite(s).all()
        assert np.isfinite(vt).all()

    def test_fallback_is_exact(self) -> None:
        stack = self._deficient_stack()
        u, s, vt = batched_svd_via_gram(stack, 3)
        for l in range(stack.shape[0]):
            ref_s = np.linalg.svd(stack[l], compute_uv=False)[:3]
            np.testing.assert_allclose(s[l], ref_s, atol=1e-10)
            # Leading (non-degenerate) singular triple reconstructs.
            np.testing.assert_allclose(
                s[l, 0] * np.outer(u[l, :, 0], vt[l, 0]), stack[l], atol=1e-8
            )

    def test_well_conditioned_unaffected(self) -> None:
        stack = np.ascontiguousarray(default_rng(4).standard_normal((3, 30, 10)))
        u, s, vt = batched_svd_via_gram(stack, 4)
        # Guard must not trigger: s[-1]/s[0] of a Gaussian slice is O(1).
        assert (s[:, -1] > np.sqrt(np.finfo(np.float64).eps) * s[:, 0]).all()
        for l in range(3):
            np.testing.assert_allclose(
                u[l].T @ u[l], np.eye(4), atol=1e-10
            )


class TestExecutePlan:
    def test_matches_direct_kernels(self) -> None:
        stack = np.ascontiguousarray(default_rng(6).standard_normal((6, 32, 30)))
        omega = default_rng(0).standard_normal((30, 14))
        plan = plan_compression(32, 30, 4, strategy="rsvd")
        assert plan.method == "rsvd"
        with backend_scope("serial") as eng:
            u, s, vt, norms = execute_plan(eng, stack, 4, plan, omega=omega)
        ru, rs, rvt = batched_rsvd(stack, 4, test_matrix=omega)
        np.testing.assert_array_equal(u, ru)
        np.testing.assert_array_equal(s, rs)
        np.testing.assert_array_equal(vt, rvt)
        np.testing.assert_array_equal(norms, slab_norms(stack))

    def test_pool_reuse_and_parity(self) -> None:
        stack = np.ascontiguousarray(default_rng(8).standard_normal((5, 30, 28)))
        omega = default_rng(0).standard_normal((28, 13))
        plan = plan_compression(30, 28, 3, strategy="rsvd")
        pool = BufferPool()
        with backend_scope("serial") as eng:
            first = execute_plan(eng, stack, 3, plan, omega=omega, pool=pool)
            assert pool.bytes_reused == 0
            second = execute_plan(eng, stack, 3, plan, omega=omega, pool=pool)
            assert pool.bytes_reused > 0
            bare = execute_plan(eng, stack, 3, plan, omega=omega)
        for a, b, c in zip(first, second, bare):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_records_stats(self) -> None:
        stack = np.ascontiguousarray(default_rng(9).standard_normal((4, 30, 28)))
        plan = plan_compression(30, 28, 3, strategy="rsvd")
        stats = KernelStats()
        with backend_scope("serial") as eng:
            execute_plan(eng, stack, 3, plan, rng=0, stats=stats)
        assert stats.plan_decisions() == {"rsvd": 1}
        assert stats.sketch_draws == 1

    def test_non_3d_rejected(self) -> None:
        plan = plan_compression(10, 10, 2)
        with backend_scope("serial") as eng:
            with pytest.raises(ShapeError):
                execute_plan(eng, np.zeros((10, 10)), 2, plan)

    def test_bad_omega_shape_rejected(self) -> None:
        plan = plan_compression(30, 28, 3, strategy="rsvd")
        assert plan.method == "rsvd"
        with backend_scope("serial") as eng:
            with pytest.raises(ShapeError):
                execute_plan(
                    eng, np.zeros((2, 30, 28)), 3, plan,
                    omega=np.zeros((28, 3)),
                )


class TestCompressStats:
    def test_auto_records_decision_and_sketch(self) -> None:
        x = default_rng(2).standard_normal((40, 38, 4))
        stats = KernelStats()
        compress(x, 3, config=DTuckerConfig(strategy="auto"), rng=0, stats=stats)
        assert stats.plan_decisions() == {"rsvd": 1}
        assert stats.sketch_draws == 1

    def test_default_path_records_too(self) -> None:
        x = default_rng(2).standard_normal((40, 10, 4))
        stats = KernelStats()
        compress(x, 3, rng=0, stats=stats)
        assert stats.plan_decisions() == {"gram": 1}
        assert stats.sketch_draws == 0

    def test_exact_records_no_sketch(self) -> None:
        x = default_rng(2).standard_normal((40, 8, 4))
        stats = KernelStats()
        compress(
            x, 3, config=DTuckerConfig(strategy="exact"), rng=0, stats=stats
        )
        assert stats.plan_decisions() == {"exact": 1}
        assert stats.sketch_draws == 0


class TestPrefetcher:
    def test_yields_in_order(self) -> None:
        with Prefetcher(lambda i: i * i, range(10)) as pf:
            assert list(pf) == [i * i for i in range(10)]

    def test_len(self) -> None:
        pf = Prefetcher(lambda i: i, [1, 2, 3])
        assert len(pf) == 3
        pf.close()

    def test_empty(self) -> None:
        with Prefetcher(lambda i: i, []) as pf:
            assert list(pf) == []

    def test_exception_propagates(self) -> None:
        def boom(i):
            if i == 2:
                raise ValueError("bad item")
            return i

        with Prefetcher(boom, range(5)) as pf:
            it = iter(pf)
            assert next(it) == 0
            assert next(it) == 1
            with pytest.raises(ValueError, match="bad item"):
                next(it)

    def test_single_iteration_guard(self) -> None:
        with Prefetcher(lambda i: i, [1, 2]) as pf:
            list(pf)
            with pytest.raises(RuntimeError, match="once"):
                list(pf)

    def test_counters_accumulate(self) -> None:
        import time

        def slow(i):
            time.sleep(0.005)
            return i

        with Prefetcher(slow, range(4)) as pf:
            out = list(pf)
        assert out == [0, 1, 2, 3]
        assert pf.produce_seconds >= 4 * 0.005
        assert pf.wait_seconds >= 0.0

    def test_overlap_hides_io(self) -> None:
        import time

        def produce(i):
            time.sleep(0.02)
            return i

        with Prefetcher(produce, range(4)) as pf:
            for _ in pf:
                time.sleep(0.03)  # consumer slower than producer
        # All but the first gather should have been hidden behind compute.
        assert pf.wait_seconds < pf.produce_seconds

    def test_depth_validated(self) -> None:
        with pytest.raises(ValueError):
            Prefetcher(lambda i: i, [1], depth=0)

    def test_close_cancels_pending(self) -> None:
        pf = Prefetcher(lambda i: i, range(100))
        it = iter(pf)
        next(it)
        pf.close()  # must not hang


class TestConfigPlannerFields:
    def test_defaults(self) -> None:
        cfg = DTuckerConfig()
        assert cfg.strategy == "rsvd"
        assert cfg.precision == "float64"

    @pytest.mark.parametrize("strategy", ["rsvd", "auto", "gram", "exact"])
    def test_valid_strategies(self, strategy) -> None:
        assert DTuckerConfig(strategy=strategy).strategy == strategy

    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_valid_precisions(self, precision) -> None:
        assert DTuckerConfig(precision=precision).precision == precision

    def test_invalid_strategy(self) -> None:
        with pytest.raises(ShapeError):
            DTuckerConfig(strategy="fastest")

    def test_invalid_precision(self) -> None:
        with pytest.raises(ShapeError):
            DTuckerConfig(precision="bf16")

    def test_plan_is_frozen(self) -> None:
        plan = plan_compression(10, 10, 2)
        assert isinstance(plan, CompressionPlan)
        with pytest.raises(AttributeError):
            plan.method = "gram"  # type: ignore[misc]
