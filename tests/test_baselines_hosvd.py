"""Tests for HOSVD and ST-HOSVD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.hosvd import hosvd, st_hosvd
from repro.exceptions import ShapeError
from repro.tensor.random import random_tensor
from tests.conftest import assert_orthonormal


class TestHosvd:
    def test_exact_on_lowrank(self, lowrank3) -> None:
        fit = hosvd(lowrank3, (3, 2, 2))
        assert fit.result.error(lowrank3) < 1e-10

    def test_orthonormal(self, lowrank3) -> None:
        for f in hosvd(lowrank3, (3, 2, 2)).result.factors:
            assert_orthonormal(f)

    def test_one_pass_metadata(self, lowrank3) -> None:
        fit = hosvd(lowrank3, (3, 2, 2))
        assert fit.n_iters == 0 and fit.converged and fit.history == []

    def test_quasi_optimality(self, rng) -> None:
        # HOSVD error is within sqrt(N) of the best rank-(J,..) error; here
        # just check it is close to HOOI on a noisy tensor.
        from repro.baselines.tucker_als import tucker_als

        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.2)
        e_hosvd = hosvd(x, (3, 3, 3)).result.error(x)
        e_hooi = tucker_als(x, (3, 3, 3)).result.error(x)
        assert e_hooi <= e_hosvd <= 3.0 * e_hooi + 1e-12


class TestStHosvd:
    def test_exact_on_lowrank(self, lowrank3) -> None:
        fit = st_hosvd(lowrank3, (3, 2, 2))
        assert fit.result.error(lowrank3) < 1e-10

    def test_close_to_hosvd_on_noise(self, rng) -> None:
        x = random_tensor((14, 12, 10), (3, 3, 3), rng=rng, noise=0.2)
        e1 = hosvd(x, (3, 3, 3)).result.error(x)
        e2 = st_hosvd(x, (3, 3, 3)).result.error(x)
        assert e2 == pytest.approx(e1, rel=0.1)

    def test_custom_mode_order(self, lowrank3) -> None:
        fit = st_hosvd(lowrank3, (3, 2, 2), mode_order=[2, 0, 1])
        assert fit.result.error(lowrank3) < 1e-10

    def test_invalid_mode_order(self, lowrank3) -> None:
        with pytest.raises(ShapeError):
            st_hosvd(lowrank3, (3, 2, 2), mode_order=[0, 0, 1])

    def test_core_shape(self, lowrank3) -> None:
        assert st_hosvd(lowrank3, (3, 2, 2)).result.core.shape == (3, 2, 2)

    def test_order4(self, rng) -> None:
        x = random_tensor((8, 7, 5, 4), (2, 2, 2, 2), rng=rng)
        assert st_hosvd(x, 2).result.error(x) < 1e-9
