"""Tests for the out-of-core `compress` CLI command."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.io import load_slice_svd
from repro.tensor.random import random_tensor


@pytest.fixture
def npy_file(tmp_path, rng):
    x = random_tensor((20, 15, 8), (3, 3, 2), rng=rng, noise=0.05)
    p = tmp_path / "x.npy"
    np.save(p, x)
    return p, x


class TestCompressCommand:
    def test_writes_loadable_archive(self, npy_file, tmp_path, capsys) -> None:
        path, x = npy_file
        out = tmp_path / "compressed"
        assert main(
            ["compress", str(path), "--rank", "3", "-o", str(out)]
        ) == 0
        ssvd = load_slice_svd(tmp_path / "compressed.npz")
        assert ssvd.shape == x.shape
        assert ssvd.rank == 3
        assert ssvd.compression_error(x) < 0.02

    def test_reports_compression(self, npy_file, tmp_path, capsys) -> None:
        path, _ = npy_file
        main(["compress", str(path), "--rank", "3", "-o", str(tmp_path / "c")])
        output = capsys.readouterr().out
        assert "smaller than dense" in output

    @pytest.mark.parametrize("strategy", ["auto", "gram", "exact"])
    def test_strategy_flag(self, npy_file, tmp_path, strategy) -> None:
        path, x = npy_file
        out = tmp_path / "c"
        assert main(
            [
                "compress", str(path), "--rank", "3",
                "--strategy", strategy, "-o", str(out),
            ]
        ) == 0
        ssvd = load_slice_svd(tmp_path / "c.npz")
        assert ssvd.compression_error(x) < 0.02

    def test_precision_flag(self, npy_file, tmp_path) -> None:
        path, x = npy_file
        assert main(
            [
                "compress", str(path), "--rank", "3",
                "--precision", "float32", "-o", str(tmp_path / "c"),
            ]
        ) == 0
        ssvd = load_slice_svd(tmp_path / "c.npz")
        assert ssvd.compression_error(x) < 0.02

    def test_trace_prints_planner_line(self, npy_file, tmp_path, capsys) -> None:
        path, _ = npy_file
        assert main(
            [
                "compress", str(path), "--rank", "3", "--batch-slices", "3",
                "--strategy", "auto", "--trace", "-o", str(tmp_path / "c"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "planner" in out
        assert "sketch_draws=" in out
        assert "approximation-ooc" in out

    def test_batch_slices_option(self, npy_file, tmp_path) -> None:
        path, x = npy_file
        main(
            [
                "compress", str(path), "--rank", "3",
                "--batch-slices", "2", "-o", str(tmp_path / "c"),
            ]
        )
        ssvd = load_slice_svd(tmp_path / "c.npz")
        assert ssvd.num_slices == 8


class TestSuggestRanksFromArchive:
    def test_uses_archive_without_tensor(self, npy_file, tmp_path, capsys) -> None:
        path, x = npy_file
        archive = tmp_path / "c"
        main(["compress", str(path), "--rank", "5", "-o", str(archive)])
        capsys.readouterr()
        code = main(
            ["suggest-ranks", str(tmp_path / "c.npz"), "--target-error", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert str(x.shape) in out and "suggested" in out
