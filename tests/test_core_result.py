"""Tests for the TuckerResult value object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import TuckerResult
from repro.exceptions import ShapeError
from repro.tensor.random import random_tucker


@pytest.fixture
def result(rng) -> TuckerResult:
    core, factors = random_tucker((8, 7, 6), (3, 2, 2), rng)
    return TuckerResult(core=core, factors=factors)


class TestConstruction:
    def test_properties(self, result: TuckerResult) -> None:
        assert result.order == 3
        assert result.ranks == (3, 2, 2)
        assert result.shape == (8, 7, 6)

    def test_factor_count_mismatch(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (3, 2, 2), rng)
        with pytest.raises(ShapeError):
            TuckerResult(core=core, factors=factors[:2])

    def test_factor_column_mismatch(self, rng) -> None:
        core, factors = random_tucker((8, 7, 6), (3, 2, 2), rng)
        factors[1] = factors[1][:, :1]
        with pytest.raises(ShapeError):
            TuckerResult(core=core, factors=factors)

    def test_non2d_factor(self, rng) -> None:
        core, factors = random_tucker((8, 7), (3, 2), rng)
        with pytest.raises(ShapeError):
            TuckerResult(core=core, factors=[factors[0], np.zeros(7)])


class TestReconstruct:
    def test_matches_tucker_to_tensor(self, result: TuckerResult) -> None:
        from repro.tensor.products import tucker_to_tensor

        np.testing.assert_allclose(
            result.reconstruct(), tucker_to_tensor(result.core, result.factors)
        )

    def test_error_zero_against_own_reconstruction(self, result) -> None:
        assert result.error(result.reconstruct()) < 1e-14

    def test_fit_one_against_own_reconstruction(self, result) -> None:
        assert result.fit(result.reconstruct()) == pytest.approx(1.0)


class TestPermuteModes:
    def test_identity(self, result: TuckerResult) -> None:
        same = result.permute_modes((0, 1, 2))
        np.testing.assert_array_equal(same.core, result.core)

    def test_matches_transposed_tensor(self, result: TuckerResult) -> None:
        perm = (2, 0, 1)
        permuted = result.permute_modes(perm)
        np.testing.assert_allclose(
            permuted.reconstruct(), np.transpose(result.reconstruct(), perm)
        )

    def test_roundtrip_with_inverse(self, result: TuckerResult) -> None:
        perm = (1, 2, 0)
        inv = tuple(int(i) for i in np.argsort(perm))
        back = result.permute_modes(perm).permute_modes(inv)
        np.testing.assert_allclose(back.reconstruct(), result.reconstruct())

    def test_invalid_perm(self, result: TuckerResult) -> None:
        with pytest.raises(ShapeError):
            result.permute_modes((0, 0, 1))


class TestSizes:
    def test_nbytes(self, result: TuckerResult) -> None:
        expected = result.core.nbytes + sum(f.nbytes for f in result.factors)
        assert result.nbytes == expected

    def test_compression_ratio(self, result: TuckerResult) -> None:
        dense = 8 * 7 * 6 * 8
        assert result.compression_ratio() == pytest.approx(dense / result.nbytes)

    def test_copy_is_deep(self, result: TuckerResult) -> None:
        c = result.copy()
        c.core[0, 0, 0] += 1.0
        assert c.core[0, 0, 0] != result.core[0, 0, 0]


class TestTruncate:
    def test_shapes(self, result: TuckerResult) -> None:
        t = result.truncate((2, 1, 2))
        assert t.ranks == (2, 1, 2)
        assert t.shape == result.shape

    def test_keeps_leading_components(self, result: TuckerResult) -> None:
        t = result.truncate((2, 2, 2))
        np.testing.assert_array_equal(t.core, result.core[:2, :2, :2])
        for a, b in zip(t.factors, result.factors):
            np.testing.assert_array_equal(a, b[:, : a.shape[1]])

    def test_full_ranks_is_copy(self, result: TuckerResult) -> None:
        t = result.truncate(result.ranks)
        np.testing.assert_array_equal(t.core, result.core)
        assert t.core is not result.core

    def test_rank_too_large(self, result: TuckerResult) -> None:
        with pytest.raises(ShapeError):
            result.truncate((4, 2, 2))

    def test_rank_zero(self, result: TuckerResult) -> None:
        with pytest.raises(ShapeError):
            result.truncate((0, 2, 2))

    def test_wrong_count(self, result: TuckerResult) -> None:
        with pytest.raises(ShapeError):
            result.truncate((2, 2))

    def test_close_to_refit_on_svd_ordered_model(self, rng) -> None:
        # For a DTucker fit (factors ordered by singular value), truncation
        # should land near — though above — the refit-optimal error.
        from repro.core.dtucker import DTucker
        from repro.tensor.random import random_tensor

        x = random_tensor((16, 14, 12), (4, 4, 4), rng=rng, noise=0.05)
        model = DTucker(ranks=(4, 4, 4), slice_rank=6, seed=0).fit(x)
        truncated_err = model.result_.truncate((2, 2, 2)).error(x)
        refit_err = model.refit(ranks=(2, 2, 2)).error(x)
        assert refit_err <= truncated_err + 1e-9
        assert truncated_err <= refit_err * 2.0 + 0.05
